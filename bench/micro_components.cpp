// google-benchmark microbenchmarks for the library's hot components:
// boosted-tree training and inference, the propensity-score model, the
// detectors the online loop refits at every checkpoint, and a full NURD
// checkpoint step. These quantify the per-checkpoint cost a deployment
// would pay (the paper's online setting refits models as tasks finish).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/nurd.h"
#include "eval/harness.h"
#include "ml/gbt.h"
#include "ml/logistic.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"
#include "trace/generator.h"

namespace {

using namespace nurd;

// Synthetic regression problem of a given size.
struct Problem {
  Matrix x;
  std::vector<double> y;
};

Problem make_problem(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = Matrix(n, d);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      p.x(i, j) = rng.normal();
      target += (j % 2 == 0 ? 1.0 : -0.5) * p.x(i, j);
    }
    p.y[i] = target + rng.normal(0.0, 0.1);
  }
  return p;
}

void BM_GbtFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(n, 15, 1);
  for (auto _ : state) {
    auto model = ml::GradientBoosting::regressor();
    model.fit(p.x, p.y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GbtFit)->Arg(100)->Arg(400)->Arg(1000);

void BM_GbtPredict(benchmark::State& state) {
  const auto p = make_problem(1000, 15, 2);
  auto model = ml::GradientBoosting::regressor();
  model.fit(p.x, p.y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(p.x.row(i % p.x.rows())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GbtPredict);

void BM_LogisticFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto p = make_problem(n, 15, 3);
  std::vector<double> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = p.y[i] > 0 ? 1.0 : 0.0;
  for (auto _ : state) {
    ml::LogisticRegression lr;
    lr.fit(p.x, labels);
    benchmark::DoNotOptimize(lr);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LogisticFit)->Arg(100)->Arg(400)->Arg(1000);

void BM_IForestFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(n, 15, 4);
  for (auto _ : state) {
    outlier::IForestDetector det;
    det.fit(p.x);
    benchmark::DoNotOptimize(det.scores());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_IForestFit)->Arg(100)->Arg(400);

void BM_LofFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(n, 15, 5);
  for (auto _ : state) {
    outlier::LofDetector det;
    det.fit(p.x);
    benchmark::DoNotOptimize(det.scores());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LofFit)->Arg(100)->Arg(400);

void BM_NurdCheckpoint(benchmark::State& state) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = static_cast<std::size_t>(state.range(0));
  config.max_tasks = config.min_tasks;
  trace::GoogleLikeGenerator gen(config);
  const auto job = gen.generate_job(0, true);
  const core::JobContext ctx =
      eval::make_job_context(job, job.straggler_threshold());
  const auto view = job.checkpoint(2);
  for (auto _ : state) {
    core::NurdPredictor nurd;
    nurd.initialize(ctx);
    benchmark::DoNotOptimize(
        nurd.predict_stragglers(view, view.running()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NurdCheckpoint)->Arg(100)->Arg(400);

void BM_TraceGeneration(benchmark::State& state) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = static_cast<std::size_t>(state.range(0));
  config.max_tasks = config.min_tasks;
  std::size_t i = 0;
  for (auto _ : state) {
    trace::GoogleLikeGenerator gen(config);
    benchmark::DoNotOptimize(gen.generate_job(i++, true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
