// Kernel-primitive microbenchmark: per-primitive throughput (GB/s) for every
// compiled-in backend, plus the speedup of each accelerated backend over the
// reference scalar path.
//
//   $ ./bench_kernel [--n=262144] [--reps=200] [--cols=16]
//
// Each primitive runs `reps` times over an --n-element working set (matrix
// primitives use n/cols rows of --cols features). The reported bytes/sec
// counts the doubles the primitive must stream (reads + writes), so the
// numbers are comparable across primitives with different arithmetic
// intensity. A `sink` accumulator keeps the optimizer honest.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/aligned.h"
#include "common/rng.h"
#include "kernel/kernel.h"

namespace {

using Clock = std::chrono::steady_clock;
using nurd::AlignedVector;
using nurd::kernel::KernelOps;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workset {
  std::size_t n = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  AlignedVector<double> a, b, out;
  std::vector<std::size_t> idx;
  std::vector<std::uint16_t> bins16;
  std::vector<std::uint32_t> out32;
  AlignedVector<double> hist;
};

struct PrimitiveTiming {
  const char* name;
  double bytes_per_rep = 0.0;  ///< doubles streamed × 8
  double seconds = 0.0;
};

// Runs every primitive `reps` times under `ops` and returns one timing row
// per primitive. `sink` defeats dead-code elimination across reps.
std::vector<PrimitiveTiming> run_backend(const KernelOps& ops, Workset& w,
                                         int reps, double* sink) {
  std::vector<PrimitiveTiming> rows;
  const auto dn = static_cast<double>(w.n);
  auto time_it = [&](const char* name, double bytes, auto&& body) {
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r) body();
    rows.push_back({name, bytes, seconds_since(start)});
  };

  time_it("dot", 2 * dn * 8, [&] {
    *sink += ops.dot(0.0, w.a.data(), w.b.data(), w.n);
  });
  time_it("dot_sub", 2 * dn * 8, [&] {
    *sink += ops.dot_sub(0.0, w.a.data(), w.b.data(), w.n);
  });
  time_it("squared_l2", 2 * dn * 8, [&] {
    *sink += ops.squared_l2(w.a.data(), w.b.data(), w.n);
  });
  time_it("pair_sum_indexed", 3 * dn * 8, [&] {
    double sa = 0.0, sb = 0.0;
    ops.pair_sum_indexed(w.a.data(), w.b.data(), w.idx.data(), w.n, &sa, &sb);
    *sink += sa + sb;
  });
  time_it("axpy", 3 * dn * 8, [&] {
    ops.axpy(1e-9, w.a.data(), w.out.data(), w.n);
  });
  time_it("vsub", 3 * dn * 8, [&] {
    ops.vsub(w.out.data(), w.a.data(), w.b.data(), w.n);
  });
  time_it("gemv", (dn + static_cast<double>(w.rows + w.cols)) * 8, [&] {
    ops.gemv(w.a.data(), w.rows, w.cols, w.b.data(), 0.5, w.out.data());
    *sink += w.out[0];
  });
  time_it("squared_l2_rows", (dn + static_cast<double>(w.rows + w.cols)) * 8,
          [&] {
            ops.squared_l2_rows(w.a.data(), w.rows, w.cols, w.b.data(),
                                w.out.data());
            *sink += w.out[w.rows - 1];
          });
  time_it("hist_accumulate", 3 * dn * 8, [&] {
    ops.hist_accumulate(w.hist.data(), w.bins16.data(), w.idx.data(), w.n,
                        w.a.data(), w.b.data());
  });
  time_it("hist_subtract", 3 * static_cast<double>(w.hist.size()) * 8, [&] {
    ops.hist_subtract(w.hist.data(), w.hist.data() + 0, w.hist.size() / 2);
  });
  time_it("bin_index", dn * 8 + dn * 4, [&] {
    ops.bin_index(w.a.data(), w.n, -4.0, 4.0, 8.0 / 64.0, 64, w.out32.data());
  });
  time_it("sigmoid", 2 * dn * 8, [&] {
    ops.sigmoid(w.a.data(), w.out.data(), w.n);
    *sink += w.out[0];
  });
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;

  const auto n =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "n", 262144));
  const int reps = static_cast<int>(bench::arg_long(argc, argv, "reps", 200));
  const auto cols =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "cols", 16));

  Workset w;
  w.n = n;
  w.cols = cols;
  w.rows = n / cols;
  Rng rng(7);
  w.a.resize(n);
  w.b.resize(n);
  w.out.resize(n);
  w.idx.resize(n);
  w.bins16.resize(n);
  w.out32.resize(n);
  w.hist.assign(64 * kernel::kHistBinStride, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w.a[i] = rng.normal();
    w.b[i] = rng.normal();
    w.idx[i] = i;
    w.bins16[i] = static_cast<std::uint16_t>(i % 64);
  }

  std::printf("bench_kernel: n=%zu reps=%d cols=%zu (gemv/l2_rows: %zux%zu)\n",
              n, reps, cols, w.rows, cols);

  // Reference first: it is both a result column and the speedup baseline.
  std::vector<const kernel::KernelOps*> backends = {&kernel::reference_ops()};
  if (kernel::backend_available(kernel::Backend::kAvx2)) {
    backends.push_back(kernel::detail::avx2_ops());
  } else {
    std::printf("avx2: unavailable on this build/CPU — reference only\n");
  }

  double sink = 0.0;
  std::vector<std::vector<PrimitiveTiming>> results;
  for (const auto* ops : backends) {
    results.push_back(run_backend(*ops, w, reps, &sink));
  }

  std::printf("%-18s", "primitive");
  for (const auto* ops : backends) std::printf("  %9s GB/s", ops->name);
  if (backends.size() > 1) std::printf("   speedup");
  std::printf("\n");
  for (std::size_t p = 0; p < results[0].size(); ++p) {
    std::printf("%-18s", results[0][p].name);
    for (const auto& backend_rows : results) {
      const auto& t = backend_rows[p];
      const double gbs =
          t.bytes_per_rep * reps / t.seconds / (1024.0 * 1024.0 * 1024.0);
      std::printf("  %14.2f", gbs);
    }
    if (backends.size() > 1) {
      std::printf("  %7.2fx", results[0][p].seconds / results[1][p].seconds);
    }
    std::printf("\n");
  }

  std::printf("active dispatch backend: %s (best available: %s)\n",
              kernel::backend_name(),
              kernel::backend_available(kernel::Backend::kAvx2) ? "avx2"
                                                                : "reference");
  volatile double guard = sink;
  (void)guard;
  bench::print_resource_report("bench_kernel");
  return 0;
}
