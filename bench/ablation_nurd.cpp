// Ablations for NURD's design choices (paper §4 and §6):
//   * α sweep — the calibration range (paper sets 0.5 after pilot tuning);
//   * ε sweep — the minimum positive weight;
//   * calibration on/off — NURD vs NURD-NC (the paper's own ablation);
//   * latency-threshold robustness — p70..p95 (§4.2: "Tests with a wide
//     variety of thresholds show that NURD produces results that are robust
//     to the different latency thresholds");
//   * ρ by regime — verifies the §4.2 claim that the centroid ratio is
//     smaller for far-tail jobs than near-tail jobs.
//
//   $ ./ablation_nurd [--jobs=24] [--dataset=google|alibaba]
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/nurd.h"
#include "core/registry.h"
#include "eval/harness.h"

namespace {

nurd::core::NamedPredictor nurd_with(nurd::core::NurdParams params) {
  return {"NURD", [params]() {
            return std::make_unique<nurd::core::NurdPredictor>(params);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 24));
  const auto which = bench::arg_string(argc, argv, "dataset", "google");
  const auto dataset = which == "alibaba" ? bench::Dataset::kAlibaba
                                          : bench::Dataset::kGoogle;
  const auto jobs = bench::make_jobs(dataset, n_jobs);
  const auto tuned = bench::tuned_config(dataset);

  core::NurdParams base;
  base.alpha = tuned.nurd_alpha;
  base.epsilon = tuned.nurd_epsilon;
  base.gbt.n_rounds = tuned.nurd_gbt_rounds;
  base.gbt.tree.max_depth = tuned.nurd_tree_depth;
  base.propensity.l2 = tuned.nurd_propensity_l2;

  std::cout << "=== NURD ablations — " << bench::dataset_name(dataset) << " ("
            << jobs.size() << " jobs) ===\n\n";

  {
    std::cout << "--- alpha sweep (tuned value " << base.alpha << ") ---\n";
    TextTable t({"alpha", "F1", "TPR", "FPR"});
    for (double a : {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}) {
      auto p = base;
      p.alpha = a;
      const auto r = eval::evaluate_method(nurd_with(p), jobs);
      t.add_row({TextTable::num(a), TextTable::num(r.f1),
                 TextTable::num(r.tpr), TextTable::num(r.fpr)});
    }
    std::cout << t.render() << "\n";
  }

  {
    std::cout << "--- epsilon sweep (paper value 0.05) ---\n";
    TextTable t({"epsilon", "F1", "TPR", "FPR"});
    for (double e : {0.01, 0.02, 0.05, 0.10, 0.20}) {
      auto p = base;
      p.epsilon = e;
      const auto r = eval::evaluate_method(nurd_with(p), jobs);
      t.add_row({TextTable::num(e), TextTable::num(r.f1),
                 TextTable::num(r.tpr), TextTable::num(r.fpr)});
    }
    std::cout << t.render() << "\n";
  }

  {
    std::cout << "--- calibration on/off (NURD vs NURD-NC) ---\n";
    TextTable t({"variant", "F1", "TPR", "FPR"});
    for (bool cal : {true, false}) {
      auto p = base;
      p.calibrate = cal;
      const auto r = eval::evaluate_method(nurd_with(p), jobs);
      t.add_row({cal ? "NURD (calibrated)" : "NURD-NC (w = z)",
                 TextTable::num(r.f1), TextTable::num(r.tpr),
                 TextTable::num(r.fpr)});
    }
    std::cout << t.render() << "\n";
  }

  {
    std::cout << "--- latency-threshold robustness (p70..p95) ---\n";
    TextTable t({"threshold", "F1", "TPR", "FPR"});
    for (double pct : {70.0, 75.0, 80.0, 85.0, 90.0, 95.0}) {
      double f1 = 0.0, tpr = 0.0, fpr = 0.0;
      for (const auto& job : jobs) {
        core::NurdPredictor predictor(base);
        const auto run = eval::run_job(job, predictor, pct);
        f1 += run.final.f1();
        tpr += run.final.tpr();
        fpr += run.final.fpr();
      }
      const auto n = static_cast<double>(jobs.size());
      t.add_row({"p" + TextTable::num(pct, 0), TextTable::num(f1 / n),
                 TextTable::num(tpr / n), TextTable::num(fpr / n)});
    }
    std::cout << t.render() << "\n";
  }

  {
    std::cout << "--- centroid ratio rho by tail regime (section 4.2) ---\n";
    std::vector<double> far_rho, near_rho;
    for (const auto& job : jobs) {
      core::NurdPredictor p(base);
      // ρ is a property of the first checkpoint's centroids alone.
      p.calibrate(job.checkpoint(0));
      (job.id.starts_with("far") ? far_rho : near_rho).push_back(p.rho());
    }
    TextTable t({"regime", "jobs", "median rho"});
    if (!far_rho.empty()) {
      t.add_row({"far tail (threshold < max/2)",
                 std::to_string(far_rho.size()),
                 TextTable::num(median(far_rho))});
    }
    if (!near_rho.empty()) {
      t.add_row({"near tail (threshold > max/2)",
                 std::to_string(near_rho.size()),
                 TextTable::num(median(near_rho))});
    }
    std::cout << t.render() << "\n";
  }
  return 0;
}
