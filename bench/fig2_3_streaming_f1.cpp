// Figures 2 and 3 reproduction: cumulative F1 at each of the 10 normalized
// time checkpoints, averaged over all jobs, for all 23 methods.
//
//   $ ./fig2_3_streaming_f1 [--jobs=40] [--dataset=google|alibaba|both]
//
// The paper's qualitative claims: NURD outperforms all other methods at all
// time points (except possibly the very beginning on Google), i.e. it
// identifies stragglers earlier.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 40));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    const auto jobs = bench::make_jobs(dataset, n_jobs);
    const std::size_t T = jobs.front().checkpoint_count();

    std::cout << "=== Figure " << (dataset == bench::Dataset::kGoogle ? 2 : 3)
              << " — F1 vs normalized time, " << bench::dataset_name(dataset)
              << " (" << jobs.size() << " jobs) ===\n";
    std::vector<std::string> header{"Method"};
    for (std::size_t t = 0; t < T; ++t) {
      header.push_back("t=" + TextTable::num(
                                  static_cast<double>(t + 1) /
                                      static_cast<double>(T), 1));
    }
    TextTable table(header);
    for (const auto& method :
         core::all_predictors(bench::tuned_config(dataset))) {
      const auto res = eval::evaluate_method(method, jobs);
      std::vector<std::string> row{res.name};
      for (double f1 : res.f1_timeline) row.push_back(TextTable::num(f1));
      table.add_row(std::move(row));
      std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    std::cout << table.render() << "\n";
  }
  return 0;
}
