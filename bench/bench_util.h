// Shared helpers for the reproduction benches: dataset construction with the
// per-dataset defaults, simple --flag=value argument parsing, and process
// resource accounting (peak RSS + global allocation counters) so benches can
// report memory behavior alongside wall-clock timings.
//
// NOTE: this header defines the replaceable global allocation functions
// (operator new/delete) to count allocations. That is well-formed because
// every bench is a single translation unit and the replacement applies
// binary-wide (the nurd library's allocations are counted too). A bench
// composed of several TUs must include bench_util.h from exactly one of
// them — violating that fails loudly at link time with a duplicate-symbol
// error.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/registry.h"
#include "trace/generator.h"

namespace nurd::bench {

namespace detail {
inline std::atomic<std::size_t> alloc_count{0};
inline std::atomic<std::size_t> alloc_bytes{0};
}  // namespace detail

/// Global allocation counters since process start (relaxed atomics — exact
/// under single-threaded benches, approximate ordering under the pool).
struct AllocStats {
  std::size_t count = 0;
  std::size_t bytes = 0;
};

inline AllocStats alloc_stats() {
  return {detail::alloc_count.load(std::memory_order_relaxed),
          detail::alloc_bytes.load(std::memory_order_relaxed)};
}

/// Peak resident set size of the process in bytes (0 where unsupported).
/// Linux reports ru_maxrss in KiB, macOS in bytes.
inline std::size_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss);
#elif defined(__unix__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

/// Prints peak RSS and the allocation delta since `since` — the
/// scratch-reuse story of a bench phase: wall-clock says how fast, this says
/// how little the hot path had to touch the allocator to get there.
inline void print_resource_report(const char* label, AllocStats since = {}) {
  const auto now = alloc_stats();
  std::printf(
      "%s: peak RSS %.1f MiB, %zu allocations (%.1f MiB) in phase\n", label,
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
      now.count - since.count,
      static_cast<double>(now.bytes - since.bytes) / (1024.0 * 1024.0));
}

/// Which trace the bench replays.
enum class Dataset { kGoogle, kAlibaba };

inline const char* dataset_name(Dataset d) {
  return d == Dataset::kGoogle ? "Google" : "Alibaba";
}

/// Per-dataset tuned method configuration (§6 "Hyperparameter tuning").
inline core::RegistryConfig tuned_config(Dataset d) {
  return d == Dataset::kGoogle ? core::google_tuned()
                               : core::alibaba_tuned();
}

/// Generates the bench job set for a dataset with its paper-matched defaults.
inline std::vector<trace::Job> make_jobs(Dataset d, std::size_t count,
                                         std::uint64_t seed_offset = 0) {
  if (d == Dataset::kGoogle) {
    auto config = trace::GoogleLikeGenerator::google_defaults();
    config.seed += seed_offset;
    trace::GoogleLikeGenerator gen(config);
    return gen.generate(count);
  }
  auto config = trace::AlibabaLikeGenerator::alibaba_defaults();
  config.seed += seed_offset;
  trace::AlibabaLikeGenerator gen(config);
  return gen.generate(count);
}

/// Reads "--name=value" from argv; returns fallback when absent.
inline std::string arg_string(int argc, char** argv, std::string_view name,
                              std::string fallback) {
  const std::string prefix = "--" + std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with(prefix)) {
      return std::string(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

/// Reads an integer flag.
inline long arg_long(int argc, char** argv, std::string_view name,
                     long fallback) {
  const auto s = arg_string(argc, argv, name, "");
  return s.empty() ? fallback : std::strtol(s.c_str(), nullptr, 10);
}

/// Tiny streaming JSON emitter for the benches' machine-readable outputs
/// (--json=<path>). Supports exactly what they need — nested objects and
/// arrays, string / double / integer values — with standard escaping. Usage
/// is positional: key() before each value inside an object, bare value()
/// inside an array; no validation beyond that, the benches are the schema.
class JsonWriter {
 public:
  JsonWriter& begin_object() { sep(); out_ += '{'; firsts_.push_back(true); return *this; }
  JsonWriter& end_object() { firsts_.pop_back(); out_ += '}'; return *this; }
  JsonWriter& begin_array() { sep(); out_ += '['; firsts_.push_back(true); return *this; }
  JsonWriter& end_array() { firsts_.pop_back(); out_ += ']'; return *this; }

  JsonWriter& key(std::string_view k) {
    sep();
    quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }
  JsonWriter& value(std::string_view v) { sep(); quote(v); return *this; }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    sep();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::size_t v) {
    sep();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) { sep(); out_ += v ? "true" : "false"; return *this; }

  const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`; false + a
  /// stderr note on failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  // Comma bookkeeping: a value right after its key never takes a comma; any
  // other element takes one unless it is the first in its container.
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!firsts_.empty()) {
      if (!firsts_.back()) out_ += ',';
      firsts_.back() = false;
    }
  }
  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> firsts_;
  bool after_key_ = false;
};

/// Splits a comma-separated flag value ("--methods=NURD,GBTR",
/// "--levels=1,4,16") into its tokens.
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace nurd::bench

// Replaceable global allocation functions (counted). Non-inline by the
// rules for replacement functions; see the header comment for why defining
// them here is safe for single-TU benches.
//
// GCC 12's -Wmismatched-new-delete can misfire here: when a make_unique in
// the same TU inlines far enough, it pairs the caller's `delete` with the
// malloc INSIDE this replacement operator new and reports a mismatch that
// cannot exist (the matching replacement operator delete frees with
// std::free). Replacement allocators are exactly the case the warning is
// not built for, so silence it for these definitions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  nurd::bench::detail::alloc_count.fetch_add(1, std::memory_order_relaxed);
  nurd::bench::detail::alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
