// Shared helpers for the reproduction benches: dataset construction with the
// per-dataset defaults and simple --flag=value argument parsing.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.h"
#include "trace/generator.h"

namespace nurd::bench {

/// Which trace the bench replays.
enum class Dataset { kGoogle, kAlibaba };

inline const char* dataset_name(Dataset d) {
  return d == Dataset::kGoogle ? "Google" : "Alibaba";
}

/// Per-dataset tuned method configuration (§6 "Hyperparameter tuning").
inline core::RegistryConfig tuned_config(Dataset d) {
  return d == Dataset::kGoogle ? core::google_tuned()
                               : core::alibaba_tuned();
}

/// Generates the bench job set for a dataset with its paper-matched defaults.
inline std::vector<trace::Job> make_jobs(Dataset d, std::size_t count,
                                         std::uint64_t seed_offset = 0) {
  if (d == Dataset::kGoogle) {
    auto config = trace::GoogleLikeGenerator::google_defaults();
    config.seed += seed_offset;
    trace::GoogleLikeGenerator gen(config);
    return gen.generate(count);
  }
  auto config = trace::AlibabaLikeGenerator::alibaba_defaults();
  config.seed += seed_offset;
  trace::AlibabaLikeGenerator gen(config);
  return gen.generate(count);
}

/// Reads "--name=value" from argv; returns fallback when absent.
inline std::string arg_string(int argc, char** argv, std::string_view name,
                              std::string fallback) {
  const std::string prefix = "--" + std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with(prefix)) {
      return std::string(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

/// Reads an integer flag.
inline long arg_long(int argc, char** argv, std::string_view name,
                     long fallback) {
  const auto s = arg_string(argc, argv, name, "");
  return s.empty() ? fallback : std::strtol(s.c_str(), nullptr, 10);
}

}  // namespace nurd::bench
