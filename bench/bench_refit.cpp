// Full vs incremental checkpoint refits (RefitPolicy::kFull vs
// kIncremental) for the warm-startable learners: per-checkpoint refit cost
// and end-metric drift, on both tuned configs.
//
//   $ ./bench_refit [--jobs=16] [--dataset=google|alibaba|both]
//                   [--min-tasks=100] [--max-tasks=400] [--checkpoints=10]
//                   [--methods=NURD,NURD-NC,GBTR,Grabit] [--check=0]
//                   [--backend=reference|avx2|auto] [--json=<path>]
//
// --backend pins the kernel-dispatch backend every refit runs under
// (default: the library's env-resolved default); the active backend is
// named in the output header so timings are attributable. --json writes the
// per-method results machine-readably (the CI bench artifact).
//
// Defaults mirror the Table-3 evaluation protocol (the regime every warm
// knob is tuned against); --min-tasks/--max-tasks/--checkpoints scale the
// study up to larger jobs and denser checkpoint grids.
//
// Reports, per method and dataset:
//   * mean per-checkpoint predict_stragglers() cost (featurize + refit +
//     score) for each checkpoint index, both policies;
//   * the LATE-checkpoint ratio (mean over the last quartile of the
//     checkpoint grid) — the paper's Algorithm 1 refits from scratch as the
//     finished set peaks, which is exactly where the warm path's
//     continuation is cheapest;
//   * macro-F1 / TPR / FPR under both policies and the drift between them.
//
// --check=1 (the CI smoke mode) exits non-zero unless the late-checkpoint
// ratio is >= 3 and |macro-F1 drift| <= 0.01 for every method on both tuned
// configs — the acceptance bar for the incremental refit path.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/predictor.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "kernel/kernel.h"

namespace {

using namespace nurd;
using Clock = std::chrono::steady_clock;

/// Delegating predictor that accumulates per-checkpoint wall-clock spent in
/// predict_stragglers — the whole per-checkpoint cost a scheduler would pay.
class TimedPredictor final : public core::StragglerPredictor {
 public:
  TimedPredictor(std::unique_ptr<core::StragglerPredictor> inner,
                 std::vector<double>* seconds_per_checkpoint)
      : inner_(std::move(inner)), seconds_(seconds_per_checkpoint) {}

  std::string name() const override { return inner_->name(); }
  core::Privilege privilege() const override { return inner_->privilege(); }
  void initialize(const core::JobContext& context) override {
    inner_->initialize(context);
  }
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override {
    const auto start = Clock::now();
    auto out = inner_->predict_stragglers(view, candidates);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (view.index() >= seconds_->size()) seconds_->resize(view.index() + 1);
    (*seconds_)[view.index()] += elapsed.count();
    return out;
  }

 private:
  std::unique_ptr<core::StragglerPredictor> inner_;
  std::vector<double>* seconds_;
};

struct PolicyRun {
  eval::MethodResult metrics;
  std::vector<double> seconds;  ///< summed per checkpoint index, all jobs
};

PolicyRun run_policy(const core::NamedPredictor& method,
                     std::span<const trace::Job> jobs) {
  PolicyRun run;
  std::vector<eval::JobRunResult> results;
  results.reserve(jobs.size());
  for (const auto& job : jobs) {
    TimedPredictor timed(method.make(), &run.seconds);
    results.push_back(eval::run_job(job, timed));
  }
  run.metrics = eval::aggregate_method(method.name, results);
  return run;
}

double late_quartile_mean(const std::vector<double>& seconds) {
  if (seconds.empty()) return 0.0;
  const std::size_t from = seconds.size() - (seconds.size() + 3) / 4;
  double sum = 0.0;
  for (std::size_t t = from; t < seconds.size(); ++t) sum += seconds[t];
  return sum / static_cast<double>(seconds.size() - from);
}

}  // namespace

int main(int argc, char** argv) {
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 16));
  const auto min_tasks = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "min-tasks", 100));
  const auto max_tasks = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "max-tasks", 400));
  const auto checkpoints = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "checkpoints", 10));
  const bool check = bench::arg_long(argc, argv, "check", 0) != 0;
  const auto which = bench::arg_string(argc, argv, "dataset", "both");
  const auto backend = bench::arg_string(argc, argv, "backend", "");
  if (backend == "reference") {
    kernel::set_backend(kernel::Backend::kReference);
  } else if (backend == "avx2") {
    kernel::set_backend(kernel::Backend::kAvx2);
  } else if (backend == "auto") {
    kernel::set_backend(kernel::best_available());
  } else if (!backend.empty()) {
    std::fprintf(stderr, "unknown --backend=%s (reference|avx2|auto)\n",
                 backend.c_str());
    return 2;
  }
  const auto methods =
      bench::split_csv(bench::arg_string(argc, argv, "methods",
                                  "NURD,NURD-NC,GBTR,Grabit"));
  const auto json_path = bench::arg_string(argc, argv, "json", "");

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  const auto make_scaled_jobs = [&](bench::Dataset dataset) {
    if (dataset == bench::Dataset::kGoogle) {
      auto config = trace::GoogleLikeGenerator::google_defaults();
      config.min_tasks = min_tasks;
      config.max_tasks = max_tasks;
      config.checkpoints = checkpoints;
      return trace::GoogleLikeGenerator(config).generate(n_jobs);
    }
    auto config = trace::AlibabaLikeGenerator::alibaba_defaults();
    config.min_tasks = min_tasks;
    config.max_tasks = max_tasks;
    config.checkpoints = checkpoints;
    return trace::AlibabaLikeGenerator(config).generate(n_jobs);
  };

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("refit");
  json.key("jobs").value(n_jobs);
  json.key("kernel_backend").value(kernel::backend_name());
  json.key("datasets").begin_array();

  bool ok = true;
  for (const auto dataset : datasets) {
    const auto jobs = make_scaled_jobs(dataset);
    auto full_config = bench::tuned_config(dataset);
    auto incremental_config = full_config;
    incremental_config.refit = core::RefitPolicy::kIncremental;

    std::printf("=== bench_refit — %s (%zu jobs, kernel backend: %s) ===\n",
                bench::dataset_name(dataset), jobs.size(),
                kernel::backend_name());
    json.begin_object();
    json.key("dataset").value(bench::dataset_name(dataset));
    json.key("methods").begin_array();
    for (const auto& name : methods) {
      const auto alloc_before = bench::alloc_stats();
      const auto full =
          run_policy(core::predictor_by_name(name, full_config), jobs);
      const auto alloc_mid = bench::alloc_stats();
      const auto inc =
          run_policy(core::predictor_by_name(name, incremental_config), jobs);
      const auto alloc_after = bench::alloc_stats();

      std::printf("--- %s ---\n", name.c_str());
      std::printf("  cp:   ");
      for (std::size_t t = 0; t < full.seconds.size(); ++t) {
        std::printf("%8zu", t);
      }
      std::printf("\n  full: ");
      for (const double s : full.seconds) std::printf("%7.2fms", 1e3 * s);
      std::printf("\n  inc:  ");
      for (const double s : inc.seconds) std::printf("%7.2fms", 1e3 * s);
      const double late_full = late_quartile_mean(full.seconds);
      const double late_inc = late_quartile_mean(inc.seconds);
      const double ratio = late_inc > 0.0 ? late_full / late_inc : 0.0;
      const double drift = inc.metrics.f1 - full.metrics.f1;
      std::printf(
          "\n  late-checkpoint cost: full %.2fms, incremental %.2fms — "
          "%.1fx lower\n",
          1e3 * late_full, 1e3 * late_inc, ratio);
      std::printf(
          "  macro-F1: full %.4f, incremental %.4f (drift %+.4f); "
          "TPR %+.4f FPR %+.4f\n",
          full.metrics.f1, inc.metrics.f1, drift,
          inc.metrics.tpr - full.metrics.tpr,
          inc.metrics.fpr - full.metrics.fpr);
      std::printf(
          "  allocations: full %zu (%.1f MiB), incremental %zu (%.1f MiB)\n",
          alloc_mid.count - alloc_before.count,
          static_cast<double>(alloc_mid.bytes - alloc_before.bytes) /
              (1024.0 * 1024.0),
          alloc_after.count - alloc_mid.count,
          static_cast<double>(alloc_after.bytes - alloc_mid.bytes) /
              (1024.0 * 1024.0));

      json.begin_object();
      json.key("method").value(name);
      json.key("late_checkpoint_ms_full").value(1e3 * late_full);
      json.key("late_checkpoint_ms_incremental").value(1e3 * late_inc);
      json.key("late_checkpoint_ratio").value(ratio);
      json.key("macro_f1_full").value(full.metrics.f1);
      json.key("macro_f1_incremental").value(inc.metrics.f1);
      json.key("macro_f1_drift").value(drift);
      json.end_object();

      if (ratio < 3.0) {
        std::printf("  [check] FAIL: late-checkpoint ratio %.2fx < 3x\n",
                    ratio);
        ok = false;
      }
      if (drift > 0.01 || drift < -0.01) {
        std::printf("  [check] FAIL: |macro-F1 drift| %.4f > 0.01\n", drift);
        ok = false;
      }
    }
    json.end_array();
    json.end_object();
    std::printf("\n");
  }
  json.end_array();
  json.key("peak_rss_bytes").value(bench::peak_rss_bytes());
  json.key("check_ok").value(ok);
  json.end_object();
  if (!json_path.empty() && !json.write_file(json_path)) return 1;
  bench::print_resource_report("bench_refit");
  if (check && !ok) {
    std::printf("bench_refit --check: FAILED\n");
    return 1;
  }
  if (check) std::printf("bench_refit --check: OK\n");
  return 0;
}
