// Table 3 reproduction: averaged TPR / FPR / FNR / F1 over all jobs for all
// 23 methods, on the Google-like and Alibaba-like trace datasets.
//
//   $ ./table3 [--jobs=40] [--dataset=google|alibaba|both] [--seed-offset=0]
//
// The paper's qualitative claims this bench should reproduce:
//   * NURD has the best F1 on both datasets;
//   * GBTR has low TPR (negative-only training bias);
//   * outlier detectors score low F1 (high TPR + high FPR, or low + low);
//   * PU methods have high TPR but inconsistent FPR;
//   * censored/survival methods land between;
//   * NURD-NC has high TPR but much higher FPR than NURD.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 40));
  const auto seed_offset = static_cast<std::uint64_t>(
      bench::arg_long(argc, argv, "seed-offset", 0));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    const auto jobs = bench::make_jobs(dataset, n_jobs, seed_offset);
    std::cout << "=== Table 3 — " << bench::dataset_name(dataset) << " ("
              << jobs.size() << " jobs, seed offset " << seed_offset
              << ") ===\n";
    // "F1" is the paper's end-of-job score; "F1@t̄" (mean cumulative F1 over
    // the 10 normalized-time checkpoints, i.e. the area under Figure 2/3's
    // curve) quantifies earliness — late flags score on F1 but not on F1@t̄.
    TextTable table({"Method", "TPR", "FPR", "FNR", "F1", "F1@t-mean"});
    std::string best_name, best_early_name;
    double best_f1 = -1.0, best_early = -1.0;
    for (const auto& method : core::all_predictors(bench::tuned_config(dataset))) {
      const auto res = eval::evaluate_method(method, jobs);
      double early = 0.0;
      for (double f : res.f1_timeline) early += f;
      early /= static_cast<double>(res.f1_timeline.size());
      table.add_row({res.name, TextTable::num(res.tpr), TextTable::num(res.fpr),
                     TextTable::num(res.fnr), TextTable::num(res.f1),
                     TextTable::num(early)});
      if (res.f1 > best_f1) {
        best_f1 = res.f1;
        best_name = res.name;
      }
      if (early > best_early) {
        best_early = early;
        best_early_name = res.name;
      }
      std::cerr << "." << std::flush;  // progress without polluting stdout
    }
    std::cerr << "\n";
    std::cout << table.render();
    std::cout << "best final F1: " << best_name << " ("
              << TextTable::num(best_f1) << "); best time-averaged F1: "
              << best_early_name << " (" << TextTable::num(best_early)
              << ")\n\n";
  }
  return 0;
}
