// Trace-layer bench: the before/after of the columnar TraceStore refactor.
//
//   $ ./bench_trace [--jobs=24] [--dataset=google|alibaba|both] [--threads=0]
//
// Reports, per dataset at the default T=10 checkpoint grid:
//   * per-job trace memory — the seed's fully-materialized representation
//     (T dense n×d matrices + partition indexes) vs the columnar store's
//     actual bytes, and the reduction factor (acceptance: ≥ 4×);
//   * stored row-versions vs the T·n dense rows they replace;
//   * trace-generation throughput, serial vs thread-pool fan-out, with a
//     bit-identity spot check between the two runs;
//   * replay throughput: walking every checkpoint view and touching every
//     task's current row, in rows/s and effective GB/s.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "trace/replay.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 24));
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    std::cout << "=== bench_trace — " << bench::dataset_name(dataset) << " ("
              << n_jobs << " jobs, default T=10 grid) ===\n";

    // --- Memory: materialized (before) vs columnar (after) ---------------
    const auto jobs = bench::make_jobs(dataset, n_jobs);
    double dense_bytes = 0.0, columnar_bytes = 0.0;
    double dense_rows = 0.0, stored_rows = 0.0;
    for (const auto& job : jobs) {
      dense_bytes += static_cast<double>(job.trace.materialized_bytes());
      columnar_bytes += static_cast<double>(job.trace.memory_bytes());
      dense_rows += static_cast<double>(job.task_count() *
                                        job.checkpoint_count());
      stored_rows += static_cast<double>(job.trace.version_count());
    }
    const double n = static_cast<double>(jobs.size());
    TextTable mem({"representation", "per-job bytes", "stored rows/job"});
    mem.add_row({"materialized (seed: T dense n x d)",
                 TextTable::num(dense_bytes / n, 0),
                 TextTable::num(dense_rows / n, 0)});
    mem.add_row({"columnar TraceStore",
                 TextTable::num(columnar_bytes / n, 0),
                 TextTable::num(stored_rows / n, 0)});
    std::cout << mem.render();
    std::cout << "memory reduction: "
              << TextTable::num(dense_bytes / columnar_bytes, 2)
              << "x (target >= 4x)\n\n";

    // --- Generation throughput: serial vs pooled --------------------------
    const auto gen_run = [&](std::size_t lanes) {
      auto config = dataset == bench::Dataset::kGoogle
                        ? trace::GoogleLikeGenerator::google_defaults()
                        : trace::AlibabaLikeGenerator::alibaba_defaults();
      const auto start = Clock::now();
      std::vector<trace::Job> out;
      if (dataset == bench::Dataset::kGoogle) {
        trace::GoogleLikeGenerator gen(config);
        out = gen.generate(n_jobs, lanes);
      } else {
        trace::AlibabaLikeGenerator gen(config);
        out = gen.generate(n_jobs, lanes);
      }
      return std::make_pair(seconds_since(start), std::move(out));
    };
    const auto [serial_s, serial_jobs] = gen_run(1);
    const auto [pooled_s, pooled_jobs] = gen_run(threads);
    bool identical = serial_jobs.size() == pooled_jobs.size();
    for (std::size_t j = 0; identical && j < serial_jobs.size(); ++j) {
      identical = serial_jobs[j].trace.version_count() ==
                      pooled_jobs[j].trace.version_count() &&
                  serial_jobs[j].latency(0) == pooled_jobs[j].latency(0);
    }
    TextTable gen_table({"generation", "seconds", "jobs/s"});
    gen_table.add_row({"serial (threads=1)", TextTable::num(serial_s, 3),
                       TextTable::num(n / serial_s, 1)});
    gen_table.add_row({"thread pool", TextTable::num(pooled_s, 3),
                       TextTable::num(n / pooled_s, 1)});
    std::cout << gen_table.render();
    std::cout << "speedup: " << TextTable::num(serial_s / pooled_s, 2)
              << "x, outputs bit-identical: " << (identical ? "yes" : "NO")
              << "\n\n";

    // --- Replay throughput -------------------------------------------------
    const auto start = Clock::now();
    double checksum = 0.0;
    std::size_t rows_read = 0;
    for (const auto& job : jobs) {
      trace::Replay replay(job);
      while (replay.has_next()) {
        replay.advance();
        const auto& view = replay.view();
        for (std::size_t i = 0; i < view.task_count(); ++i) {
          checksum += view.row(i)[0];
          ++rows_read;
        }
      }
    }
    const double replay_s = seconds_since(start);
    const double bytes_read =
        dense_rows > 0.0
            ? static_cast<double>(rows_read) *
                  static_cast<double>(jobs.front().feature_count()) * 8.0
            : 0.0;
    std::cout << "replay: " << rows_read << " row reads in "
              << TextTable::num(replay_s * 1e3, 1) << " ms ("
              << TextTable::num(static_cast<double>(rows_read) / replay_s / 1e6,
                                1)
              << " M rows/s, "
              << TextTable::num(bytes_read / replay_s / 1e9, 2)
              << " GB/s effective; checksum "
              << TextTable::num(checksum, 1) << ")\n\n";
  }
  bench::print_resource_report("bench_trace");
  return 0;
}
