// The scenario-zoo robustness table: every registered scenario
// (src/scenario/scenario.h) swept against the chosen method families, on
// both synthetic trace families.
//
//   $ ./bench_scenarios [--jobs=16] [--reps=2] [--seed=99] [--threads=0]
//                       [--datasets=google,alibaba] [--methods=NURD,GBTR]
//                       [--scenarios=<csv, default all>] [--check=0]
//                       [--json=BENCH_scenarios.json]
//
// Per (dataset, scenario, method) cell: the predictor's macro-F1 over the
// scenario's job set, the cluster-level mean JCT reduction under the
// scenario's arrival/pool/injection regime, and both as DELTAS against the
// "baseline" scenario — the robustness story is how far each hostile axis
// pulls a method from its stationary numbers.
//
// --check=1 (the CI smoke mode) exits non-zero unless:
//   * every cell completed with zero stranded tasks (injected failures never
//     starve the pool for good);
//   * under the "drift" scenario, each method's macro-F1 with
//     RefitPolicy::kIncremental stays within 0.02 of kFull on BOTH tuned
//     configs — the warm-start path may not quietly rot when the feature
//     distribution rotates mid-stream (the gate needs the default >=16
//     jobs: per-job macro-F1 is coarse, so tiny job sets alias a handful
//     of flag flips into gaps several times the real policy difference);
//   * the "failures" and "drift" scenario cells are bit-identical at 1 vs 4
//     threads (the injection and drift machinery preserves the determinism
//     contract end to end).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "scenario/scenario.h"
#include "sched/cluster.h"

namespace {

using namespace nurd;

scenario::TraceFamily to_family(bench::Dataset d) {
  return d == bench::Dataset::kGoogle ? scenario::TraceFamily::kGoogle
                                      : scenario::TraceFamily::kAlibaba;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 16));
  const auto reps =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "reps", 2));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 99));
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const bool check = bench::arg_long(argc, argv, "check", 0) != 0;
  const auto json_path = bench::arg_string(argc, argv, "json", "");
  const auto method_names =
      bench::split_csv(bench::arg_string(argc, argv, "methods", "NURD,GBTR"));
  const auto dataset_names = bench::split_csv(
      bench::arg_string(argc, argv, "datasets", "google,alibaba"));

  std::vector<std::string> scenario_names;
  {
    const auto flag = bench::arg_string(argc, argv, "scenarios", "");
    if (flag.empty()) {
      for (const auto& spec : scenario::scenario_zoo()) {
        scenario_names.push_back(spec.name);
      }
    } else {
      scenario_names = bench::split_csv(flag);
    }
  }

  std::vector<bench::Dataset> datasets;
  for (const auto& name : dataset_names) {
    datasets.push_back(name == "alibaba" ? bench::Dataset::kAlibaba
                                         : bench::Dataset::kGoogle);
  }

  std::printf("=== Scenario-zoo robustness table (%zu jobs, %zu reps) ===\n\n",
              n_jobs, reps);

  bool ok = true;
  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("scenarios");
  json.key("jobs").value(n_jobs);
  json.key("replications").value(reps);
  json.key("datasets").begin_array();

  for (const bench::Dataset dataset : datasets) {
    const auto family = to_family(dataset);
    json.begin_object();
    json.key("dataset").value(bench::dataset_name(dataset));
    json.key("cells").begin_array();

    std::printf("-- %s\n", bench::dataset_name(dataset));
    nurd::TextTable table({"scenario", "method", "macro-F1", "dF1",
                           "JCT red %", "dred", "fail", "preempt",
                           "stranded"});

    // One cell per (scenario, method); the "baseline" scenario's cells are
    // the delta reference, so it is always evaluated (first) even when the
    // --scenarios list omits it.
    struct Baseline {
      double f1 = 0.0;
      double red = 0.0;
    };
    std::vector<Baseline> baselines(method_names.size());
    std::vector<std::string> ordered = scenario_names;
    if (ordered.empty() || ordered.front() != "baseline") {
      std::erase(ordered, std::string("baseline"));
      ordered.insert(ordered.begin(), "baseline");
    }

    for (const std::string& scenario_name : ordered) {
      const auto& spec = scenario::scenario_by_name(scenario_name);
      for (std::size_t m = 0; m < method_names.size(); ++m) {
        const auto method = core::predictor_by_name(
            method_names[m], bench::tuned_config(dataset));
        const auto cell = scenario::evaluate_scenario(
            spec, family, method, n_jobs, reps, seed, threads);
        if (scenario_name == "baseline") {
          baselines[m] = {cell.macro_f1, cell.mean_reduction_pct};
        }
        const double df1 = cell.macro_f1 - baselines[m].f1;
        const double dred = cell.mean_reduction_pct - baselines[m].red;
        table.add_row({spec.name, method_names[m],
                       nurd::TextTable::num(cell.macro_f1, 3),
                       nurd::TextTable::num(df1, 3),
                       nurd::TextTable::num(cell.mean_reduction_pct, 1),
                       nurd::TextTable::num(dred, 1),
                       std::to_string(cell.machine_failures),
                       std::to_string(cell.preempted),
                       std::to_string(cell.stranded)});
        json.begin_object();
        json.key("scenario").value(spec.name);
        json.key("method").value(method_names[m]);
        json.key("macro_f1").value(cell.macro_f1);
        json.key("delta_f1").value(df1);
        json.key("mean_reduction_pct").value(cell.mean_reduction_pct);
        json.key("delta_reduction_pct").value(dred);
        json.key("mean_makespan_s").value(cell.mean_makespan);
        json.key("relaunched").value(cell.relaunched);
        json.key("machine_failures").value(cell.machine_failures);
        json.key("preempted").value(cell.preempted);
        json.key("stranded").value(cell.stranded);
        json.end_object();
        if (check && cell.stranded != 0) {
          ok = false;
          std::printf("  [check] FAIL: %s/%s/%s stranded %zu tasks\n",
                      bench::dataset_name(dataset), spec.name.c_str(),
                      method_names[m].c_str(), cell.stranded);
        }
      }
    }
    std::printf("%s\n", table.render().c_str());
    json.end_array();
    json.end_object();
  }
  json.end_array();

  if (check) {
    // Drift pinning: the warm-start refit path under mid-stream distribution
    // shift, both tuned configs. The drift scenario's job set is generated
    // once per family and shared by both policies.
    std::printf("-- check: kIncremental vs kFull under drift\n");
    const auto& drift = scenario::scenario_by_name("drift");
    json.key("drift_check").begin_array();
    for (const bench::Dataset dataset : {bench::Dataset::kGoogle,
                                         bench::Dataset::kAlibaba}) {
      const auto jobs =
          scenario::make_jobs(drift, to_family(dataset), n_jobs, 0, threads);
      for (const auto& name : method_names) {
        auto config = bench::tuned_config(dataset);
        config.refit = core::RefitPolicy::kFull;
        const double full =
            eval::evaluate_method(core::predictor_by_name(name, config), jobs,
                                  90.0, threads)
                .f1;
        config.refit = core::RefitPolicy::kIncremental;
        const double warm =
            eval::evaluate_method(core::predictor_by_name(name, config), jobs,
                                  90.0, threads)
                .f1;
        const double diff = std::abs(full - warm);
        std::printf("  %s %-8s full %.4f warm %.4f |d| %.4f\n",
                    bench::dataset_name(dataset), name.c_str(), full, warm,
                    diff);
        json.begin_object();
        json.key("dataset").value(bench::dataset_name(dataset));
        json.key("method").value(name);
        json.key("f1_full").value(full);
        json.key("f1_incremental").value(warm);
        json.end_object();
        if (!(diff <= 0.02)) {
          ok = false;
          std::printf("  [check] FAIL: drift refit gap %.4f > 0.02\n", diff);
        }
      }
    }
    json.end_array();

    // Thread-count determinism: the injection and drift scenarios must be
    // bit-identical at 1 vs 4 threads.
    std::printf("-- check: 1 vs 4 thread bit-identity\n");
    for (const char* name : {"failures", "drift"}) {
      const auto& spec = scenario::scenario_by_name(name);
      const auto method = core::predictor_by_name(
          method_names.front(), bench::tuned_config(bench::Dataset::kGoogle));
      const auto serial = scenario::evaluate_scenario(
          spec, scenario::TraceFamily::kGoogle, method, n_jobs, reps, seed,
          /*threads=*/1);
      const auto wide = scenario::evaluate_scenario(
          spec, scenario::TraceFamily::kGoogle, method, n_jobs, reps, seed,
          /*threads=*/4);
      const bool same = bits_equal(serial.macro_f1, wide.macro_f1) &&
                        bits_equal(serial.mean_reduction_pct,
                                   wide.mean_reduction_pct) &&
                        bits_equal(serial.mean_makespan, wide.mean_makespan) &&
                        bits_equal(serial.mean_jct, wide.mean_jct) &&
                        serial.relaunched == wide.relaunched &&
                        serial.machine_failures == wide.machine_failures &&
                        serial.preempted == wide.preempted &&
                        serial.stranded == wide.stranded;
      std::printf("  %-9s %s\n", name, same ? "bit-identical" : "DIVERGED");
      if (!same) {
        ok = false;
        std::printf("  [check] FAIL: scenario '%s' diverges across thread "
                    "counts\n",
                    name);
      }
    }
  }

  json.key("check_ok").value(ok);
  json.end_object();
  if (!json_path.empty()) json.write_file(json_path);
  bench::print_resource_report("bench_scenarios");
  if (check) {
    std::printf("[check] %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
