// Serving-layer bench: sustained checkpoints/sec, per-checkpoint decision
// latency (p50/p99, admission -> flags emitted), and backlog depth while a
// StreamMonitor multiplexes concurrent jobs over the shared pool.
//
//   ./bench_serve                         # NURD, both tuned configs, 1/4/16
//   ./bench_serve --levels=1,4,16,64      # wider concurrency sweep
//   ./bench_serve --method=GBTR --rounds=10 --dataset=google   # CI smoke
//
// Flags: --levels (comma list of concurrent-job counts), --method (Table-3
// name), --dataset=google|alibaba|both, --threads (serving lanes, 0 = hw),
// --rounds (override boosting rounds; 0 keeps the tuned config), --seed.
// Every level serves each job's FULL checkpoint stream with batch arrivals,
// so `level` is exactly the number of jobs streaming concurrently.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "serve/stream_monitor.h"

namespace {

std::vector<std::size_t> parse_levels(const std::string& csv) {
  std::vector<std::size_t> levels;
  for (const auto& token : nurd::bench::split_csv(csv)) {
    if (!token.empty()) {
      levels.push_back(std::strtoul(token.c_str(), nullptr, 10));
    }
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto levels =
      parse_levels(bench::arg_string(argc, argv, "levels", "1,4,16"));
  const auto method_name = bench::arg_string(argc, argv, "method", "NURD");
  const auto dataset = bench::arg_string(argc, argv, "dataset", "both");
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const auto rounds = bench::arg_long(argc, argv, "rounds", 0);
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 0));

  std::vector<bench::Dataset> datasets;
  if (dataset != "alibaba") datasets.push_back(bench::Dataset::kGoogle);
  if (dataset != "google") datasets.push_back(bench::Dataset::kAlibaba);

  std::printf(
      "bench_serve: %s, RefitPolicy::kIncremental, batch arrivals, "
      "lanes=%zu (0 = hardware)\n",
      method_name.c_str(), threads);

  for (const auto ds : datasets) {
    auto tuned = bench::tuned_config(ds);
    if (rounds > 0) {
      tuned.gbt_rounds = static_cast<int>(rounds);
      tuned.nurd_gbt_rounds = static_cast<int>(rounds);
    }

    std::printf("\n%s-like traces\n", bench::dataset_name(ds));
    TextTable table({"jobs", "ckpts", "flags", "ckpt/s", "p50 ms", "p99 ms",
                     "peak backlog", "wall s"});
    const auto before = bench::alloc_stats();
    for (const auto level : levels) {
      const auto jobs = bench::make_jobs(ds, level, seed);
      serve::StreamMonitorConfig config;
      config.threads = threads;
      serve::StreamMonitor monitor(jobs, method_name, tuned, config);
      const auto served = monitor.run();
      const auto& s = served.stats;
      table.add_row({std::to_string(s.jobs), std::to_string(s.checkpoints),
                     std::to_string(s.flags),
                     TextTable::num(s.checkpoints_per_sec, 1),
                     TextTable::num(s.p50_latency_ms, 2),
                     TextTable::num(s.p99_latency_ms, 2),
                     std::to_string(s.peak_backlog),
                     TextTable::num(s.wall_seconds, 2)});
    }
    std::printf("%s", table.render().c_str());
    bench::print_resource_report("serve", before);
  }
  return 0;
}
