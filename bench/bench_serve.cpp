// Serving-layer bench: sustained checkpoints/sec, per-checkpoint decision
// latency (p50/p99, admission -> flags emitted), backlog depth, and the
// stage-level time breakdown while a sharded StreamMonitor fleet multiplexes
// concurrent jobs over per-shard pools.
//
//   ./bench_serve                         # NURD, both tuned configs, 1/4/16
//   ./bench_serve --levels=64,256 --shards=1,2,4
//                                         # the fleet-scaling sweep
//   ./bench_serve --shards=4 --check      # pin flag-set identity vs the
//                                         # first shard count in the list
//   ./bench_serve --executor=lanes        # the serial-lane baseline the
//                                         # task-DAG pipeline is compared to
//   ./bench_serve --method=GBTR --rounds=10 --dataset=google
//                 --json=BENCH_serve.json   # the CI smoke invocation
//
// Flags: --levels (comma list of concurrent-job counts), --shards (comma
// list of shard counts; each level runs once per count), --placement
// (hash|least-loaded|affinity), --check (assert per-job records and the
// flag set are identical across the --shards list; non-zero exit on drift),
// --method (Table-3 name), --dataset=google|alibaba|both, --threads
// (serving workers PER SHARD, 0 = hw), --executor=dag|lanes, --window,
// --rounds (override boosting rounds; 0 keeps the tuned config),
// --service_rate + --shed_budget (enable the modeled per-shard backlog and
// QoS-tiered load-shedding; sheds change flags, so --check refuses them),
// --seed, --json=<path> (machine-readable results; what CI uploads as the
// bench artifact). Every level serves each job's FULL checkpoint stream
// with batch arrivals, so `level` is exactly the number of jobs streaming
// concurrently.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/task_dag.h"
#include "kernel/kernel.h"
#include "serve/placement.h"
#include "serve/shard_pool.h"

namespace {

std::vector<std::size_t> parse_levels(const std::string& csv) {
  std::vector<std::size_t> levels;
  for (const auto& token : nurd::bench::split_csv(csv)) {
    if (!token.empty()) {
      levels.push_back(std::strtoul(token.c_str(), nullptr, 10));
    }
  }
  return levels;
}

using FlagSet = std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>;

// True when two fleet runs made the same decisions: same flag set and the
// same per-job confusion records.
bool runs_identical(const std::vector<nurd::eval::JobRunResult>& a,
                    const std::vector<nurd::eval::JobRunResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (a[j].flagged_at != b[j].flagged_at) return false;
    if (a[j].final.tp != b[j].final.tp || a[j].final.fp != b[j].final.fp ||
        a[j].final.fn != b[j].final.fn || a[j].final.tn != b[j].final.tn) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto levels =
      parse_levels(bench::arg_string(argc, argv, "levels", "1,4,16"));
  const auto shard_counts =
      parse_levels(bench::arg_string(argc, argv, "shards", "1"));
  const auto placement_name =
      bench::arg_string(argc, argv, "placement", "hash");
  const bool check = !bench::arg_string(argc, argv, "check", "").empty() ||
                     [&] {
                       for (int i = 1; i < argc; ++i) {
                         if (std::string_view(argv[i]) == "--check") return true;
                       }
                       return false;
                     }();
  const auto method_name = bench::arg_string(argc, argv, "method", "NURD");
  const auto dataset = bench::arg_string(argc, argv, "dataset", "both");
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const auto executor = bench::arg_string(argc, argv, "executor", "dag");
  const auto window =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "window", 4));
  const auto rounds = bench::arg_long(argc, argv, "rounds", 0);
  const auto service_rate = std::strtod(
      bench::arg_string(argc, argv, "service_rate", "0").c_str(), nullptr);
  const auto shed_budget = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "shed_budget", 0));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 0));
  const auto json_path = bench::arg_string(argc, argv, "json", "");

  if (executor != "dag" && executor != "lanes") {
    std::fprintf(stderr, "unknown --executor=%s (dag|lanes)\n",
                 executor.c_str());
    return 2;
  }
  const auto executor_mode = executor == "dag"
                                 ? serve::ExecutorMode::kDag
                                 : serve::ExecutorMode::kSerialLanes;
  if (check && shed_budget > 0) {
    std::fprintf(stderr,
                 "--check with --shed_budget: sheds change flags by design; "
                 "refusing to pin them equal\n");
    return 2;
  }

  std::vector<bench::Dataset> datasets;
  if (dataset != "alibaba") datasets.push_back(bench::Dataset::kGoogle);
  if (dataset != "google") datasets.push_back(bench::Dataset::kAlibaba);

  std::printf(
      "bench_serve: %s, RefitPolicy::kIncremental, batch arrivals, "
      "executor=%s, window=%zu, workers/shard=%zu (0 = hardware), "
      "placement=%s, kernel backend: %s\n",
      method_name.c_str(), executor.c_str(), window, threads,
      placement_name.c_str(), kernel::backend_name());

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("serve");
  json.key("method").value(method_name);
  json.key("executor").value(executor);
  json.key("window").value(window);
  json.key("threads").value(threads);
  json.key("placement").value(placement_name);
  json.key("kernel_backend").value(kernel::backend_name());
  json.key("datasets").begin_array();

  bool check_failed = false;
  for (const auto ds : datasets) {
    auto tuned = bench::tuned_config(ds);
    if (rounds > 0) {
      tuned.gbt_rounds = static_cast<int>(rounds);
      tuned.nurd_gbt_rounds = static_cast<int>(rounds);
    }

    std::printf("\n%s-like traces\n", bench::dataset_name(ds));
    TextTable table({"jobs", "shards", "ckpts", "flags", "shed", "ckpt/s",
                     "p50 ms", "p99 ms", "shard p99 ms", "peak backlog",
                     "wall s"});
    // Per-stage busy time as share of total stage work, one row per run —
    // the pipelining story: which stage the wall-clock actually goes to.
    TextTable stages({"jobs", "shards", "featurize", "refit", "predict",
                      "flag", "busy s"});
    json.begin_object();
    json.key("dataset").value(bench::dataset_name(ds));
    json.key("levels").begin_array();

    const auto before = bench::alloc_stats();
    for (const auto level : levels) {
      const auto jobs = bench::make_jobs(ds, level, seed);
      // --check reference: the first shard count's records + flag set.
      std::vector<eval::JobRunResult> reference_runs;
      FlagSet reference_flags;
      for (const auto shards : shard_counts) {
        serve::ShardedMonitorConfig config;
        config.shards = shards;
        config.threads = threads;
        config.executor = executor_mode;
        config.window = window;
        config.placement = serve::placement_by_name(placement_name);
        config.service_rate = service_rate;
        config.shed_budget = shed_budget;
        FlagSet flags;
        std::mutex flags_mutex;
        config.sink = [&](const serve::FlagDecision& d) {
          std::lock_guard<std::mutex> lock(flags_mutex);
          flags.emplace_back(d.job, d.task, d.checkpoint);
        };
        serve::ShardedMonitor fleet(jobs, method_name, tuned, config);
        const auto served = fleet.run();
        const auto& s = served.totals;
        std::sort(flags.begin(), flags.end());

        std::size_t shed = 0;
        double shard_p99 = 0.0;  // worst per-shard p99 — the straggler shard
        for (const auto& sh : served.shards) {
          shed += sh.shed;
          shard_p99 = std::max(shard_p99, sh.p99_latency_ms);
        }
        table.add_row({std::to_string(s.jobs), std::to_string(shards),
                       std::to_string(s.checkpoints), std::to_string(s.flags),
                       std::to_string(shed),
                       TextTable::num(s.checkpoints_per_sec, 1),
                       TextTable::num(s.p50_latency_ms, 2),
                       TextTable::num(s.p99_latency_ms, 2),
                       TextTable::num(shard_p99, 2),
                       std::to_string(s.peak_backlog),
                       TextTable::num(s.wall_seconds, 2)});

        double busy = 0.0;
        for (const double sec : s.stage_seconds) busy += sec;
        std::vector<std::string> row = {std::to_string(s.jobs),
                                        std::to_string(shards)};
        for (std::size_t i = 0; i < core::kStageCount; ++i) {
          row.push_back(
              TextTable::num(
                  busy > 0.0 ? 100.0 * s.stage_seconds[i] / busy : 0.0, 1) +
              "%");
        }
        row.push_back(TextTable::num(busy, 2));
        stages.add_row(row);

        json.begin_object();
        json.key("jobs").value(s.jobs);
        json.key("shards").value(shards);
        json.key("placement").value(placement_name);
        json.key("checkpoints").value(s.checkpoints);
        json.key("flags").value(s.flags);
        json.key("shed").value(shed);
        json.key("workers").value(s.lanes);
        json.key("ckpt_per_sec").value(s.checkpoints_per_sec);
        json.key("p50_latency_ms").value(s.p50_latency_ms);
        json.key("p99_latency_ms").value(s.p99_latency_ms);
        json.key("peak_backlog").value(s.peak_backlog);
        json.key("wall_seconds").value(s.wall_seconds);
        json.key("stage_seconds").begin_object();
        for (std::size_t i = 0; i < core::kStageCount; ++i) {
          json.key(core::stage_name(static_cast<core::Stage>(i)))
              .value(s.stage_seconds[i]);
        }
        json.end_object();
        json.key("per_shard").begin_array();
        for (const auto& sh : served.shards) {
          json.begin_object();
          json.key("shard").value(sh.shard);
          json.key("jobs").value(sh.jobs);
          json.key("checkpoints").value(sh.checkpoints);
          json.key("flags").value(sh.flags);
          json.key("shed").value(sh.shed);
          json.key("ckpt_per_sec").value(sh.checkpoints_per_sec);
          json.key("p50_latency_ms").value(sh.p50_latency_ms);
          json.key("p99_latency_ms").value(sh.p99_latency_ms);
          json.key("peak_backlog").value(sh.peak_backlog);
          json.end_object();
        }
        json.end_array();
        json.end_object();

        if (check) {
          if (reference_runs.empty() && reference_flags.empty()) {
            reference_runs = served.runs;
            reference_flags = std::move(flags);
          } else if (!runs_identical(served.runs, reference_runs) ||
                     flags != reference_flags) {
            std::fprintf(stderr,
                         "CHECK FAILED: %s level %zu: shards=%zu diverged "
                         "from shards=%zu\n",
                         bench::dataset_name(ds), level, shards,
                         shard_counts.front());
            check_failed = true;
          }
        }
      }
    }
    std::printf("%s", table.render().c_str());
    std::printf("stage share of busy time\n%s", stages.render().c_str());
    bench::print_resource_report("serve", before);
    json.end_array();
    json.key("peak_rss_bytes").value(bench::peak_rss_bytes());
    json.end_object();
  }
  json.end_array();
  json.key("check").value(check ? (check_failed ? "failed" : "passed")
                                : "off");
  json.end_object();
  if (!json_path.empty() && !json.write_file(json_path)) return 1;
  if (check_failed) return 1;
  if (check) std::printf("check: flag sets identical across shard counts\n");
  return 0;
}
