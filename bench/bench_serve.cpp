// Serving-layer bench: sustained checkpoints/sec, per-checkpoint decision
// latency (p50/p99, admission -> flags emitted), backlog depth, and the
// stage-level time breakdown while a StreamMonitor multiplexes concurrent
// jobs over the shared pool.
//
//   ./bench_serve                         # NURD, both tuned configs, 1/4/16
//   ./bench_serve --levels=1,4,16,64      # wider concurrency sweep
//   ./bench_serve --executor=lanes        # the serial-lane baseline the
//                                         # task-DAG pipeline is compared to
//   ./bench_serve --method=GBTR --rounds=10 --dataset=google
//                 --json=BENCH_serve.json   # the CI smoke invocation
//
// Flags: --levels (comma list of concurrent-job counts), --method (Table-3
// name), --dataset=google|alibaba|both, --threads (serving workers, 0 = hw),
// --executor=dag|lanes (stage-pipelined task-DAG executor, the default, vs
// monolithic per-job serial lanes), --window (per-job in-flight checkpoint
// window of the DAG), --rounds (override boosting rounds; 0 keeps the tuned
// config), --seed, --json=<path> (machine-readable results; what CI uploads
// as the bench artifact). Every level serves each job's FULL checkpoint
// stream with batch arrivals, so `level` is exactly the number of jobs
// streaming concurrently.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/task_dag.h"
#include "kernel/kernel.h"
#include "serve/stream_monitor.h"

namespace {

std::vector<std::size_t> parse_levels(const std::string& csv) {
  std::vector<std::size_t> levels;
  for (const auto& token : nurd::bench::split_csv(csv)) {
    if (!token.empty()) {
      levels.push_back(std::strtoul(token.c_str(), nullptr, 10));
    }
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto levels =
      parse_levels(bench::arg_string(argc, argv, "levels", "1,4,16"));
  const auto method_name = bench::arg_string(argc, argv, "method", "NURD");
  const auto dataset = bench::arg_string(argc, argv, "dataset", "both");
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const auto executor = bench::arg_string(argc, argv, "executor", "dag");
  const auto window =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "window", 4));
  const auto rounds = bench::arg_long(argc, argv, "rounds", 0);
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 0));
  const auto json_path = bench::arg_string(argc, argv, "json", "");

  if (executor != "dag" && executor != "lanes") {
    std::fprintf(stderr, "unknown --executor=%s (dag|lanes)\n",
                 executor.c_str());
    return 2;
  }
  const auto executor_mode = executor == "dag"
                                 ? serve::ExecutorMode::kDag
                                 : serve::ExecutorMode::kSerialLanes;

  std::vector<bench::Dataset> datasets;
  if (dataset != "alibaba") datasets.push_back(bench::Dataset::kGoogle);
  if (dataset != "google") datasets.push_back(bench::Dataset::kAlibaba);

  std::printf(
      "bench_serve: %s, RefitPolicy::kIncremental, batch arrivals, "
      "executor=%s, window=%zu, workers=%zu (0 = hardware), "
      "kernel backend: %s\n",
      method_name.c_str(), executor.c_str(), window, threads,
      kernel::backend_name());

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("serve");
  json.key("method").value(method_name);
  json.key("executor").value(executor);
  json.key("window").value(window);
  json.key("threads").value(threads);
  json.key("kernel_backend").value(kernel::backend_name());
  json.key("datasets").begin_array();

  for (const auto ds : datasets) {
    auto tuned = bench::tuned_config(ds);
    if (rounds > 0) {
      tuned.gbt_rounds = static_cast<int>(rounds);
      tuned.nurd_gbt_rounds = static_cast<int>(rounds);
    }

    std::printf("\n%s-like traces\n", bench::dataset_name(ds));
    TextTable table({"jobs", "ckpts", "flags", "ckpt/s", "p50 ms", "p99 ms",
                     "peak backlog", "wall s"});
    // Per-stage busy time as share of total stage work, one row per level —
    // the pipelining story: which stage the wall-clock actually goes to.
    TextTable stages({"jobs", "featurize", "refit", "predict", "flag",
                      "busy s"});
    json.begin_object();
    json.key("dataset").value(bench::dataset_name(ds));
    json.key("levels").begin_array();

    const auto before = bench::alloc_stats();
    for (const auto level : levels) {
      const auto jobs = bench::make_jobs(ds, level, seed);
      serve::StreamMonitorConfig config;
      config.threads = threads;
      config.executor = executor_mode;
      config.window = window;
      serve::StreamMonitor monitor(jobs, method_name, tuned, config);
      const auto served = monitor.run();
      const auto& s = served.stats;
      table.add_row({std::to_string(s.jobs), std::to_string(s.checkpoints),
                     std::to_string(s.flags),
                     TextTable::num(s.checkpoints_per_sec, 1),
                     TextTable::num(s.p50_latency_ms, 2),
                     TextTable::num(s.p99_latency_ms, 2),
                     std::to_string(s.peak_backlog),
                     TextTable::num(s.wall_seconds, 2)});

      double busy = 0.0;
      for (const double sec : s.stage_seconds) busy += sec;
      std::vector<std::string> row = {std::to_string(s.jobs)};
      for (std::size_t i = 0; i < core::kStageCount; ++i) {
        row.push_back(TextTable::num(
                          busy > 0.0 ? 100.0 * s.stage_seconds[i] / busy : 0.0,
                          1) +
                      "%");
      }
      row.push_back(TextTable::num(busy, 2));
      stages.add_row(row);

      json.begin_object();
      json.key("jobs").value(s.jobs);
      json.key("checkpoints").value(s.checkpoints);
      json.key("flags").value(s.flags);
      json.key("workers").value(s.lanes);
      json.key("ckpt_per_sec").value(s.checkpoints_per_sec);
      json.key("p50_latency_ms").value(s.p50_latency_ms);
      json.key("p99_latency_ms").value(s.p99_latency_ms);
      json.key("peak_backlog").value(s.peak_backlog);
      json.key("wall_seconds").value(s.wall_seconds);
      json.key("stage_seconds").begin_object();
      for (std::size_t i = 0; i < core::kStageCount; ++i) {
        json.key(core::stage_name(static_cast<core::Stage>(i)))
            .value(s.stage_seconds[i]);
      }
      json.end_object();
      json.end_object();
    }
    std::printf("%s", table.render().c_str());
    std::printf("stage share of busy time\n%s", stages.render().c_str());
    bench::print_resource_report("serve", before);
    json.end_array();
    json.key("peak_rss_bytes").value(bench::peak_rss_bytes());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json_path.empty() && !json.write_file(json_path)) return 1;
  return 0;
}
