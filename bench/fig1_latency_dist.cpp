// Figure 1 reproduction: normalized latency distributions for two jobs —
// one whose p90 threshold falls below half the maximum latency (far tail,
// Job 6274140245 in the paper) and one whose threshold exceeds it (near
// tail, Job 6343048076). Prints ASCII histograms with the half-max and
// p90-threshold positions marked.
//
//   $ ./fig1_latency_dist [--bins=20]
#include <iostream>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/table.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto bins =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "bins", 20));

  auto config = trace::GoogleLikeGenerator::google_defaults();
  trace::GoogleLikeGenerator generator(config);

  struct Case {
    const char* title;
    bool far;
  };
  for (const Case c : {Case{"far-tail job (threshold < max/2, like Job "
                            "6274140245)", true},
                       Case{"near-tail job (threshold > max/2, like Job "
                            "6343048076)", false}}) {
    const auto job = generator.generate_job(0, c.far);
    const auto norm = job.normalized_latencies();
    const double thr = job.straggler_threshold() / job.completion_time();

    std::cout << "=== Figure 1 — " << c.title << " ===\n";
    std::cout << "tasks: " << job.task_count()
              << ", normalized p90 threshold: " << TextTable::num(thr, 3)
              << ", half-max: 0.500 — threshold is "
              << (thr < 0.5 ? "BELOW" : "ABOVE") << " half-max\n";
    const Histogram hist(norm, bins);
    std::cout << hist.ascii() << "\n";
  }
  return 0;
}
