// Figures 8 and 9 reproduction: reduction in job completion time averaged
// over all machine counts of the Figure 6/7 sweep, per method, plus the
// cluster-level counterpart (one shared pool across concurrent jobs,
// event-driven simulator, replication-averaged).
//
//   $ ./fig8_9_jct_avg [--jobs=40] [--dataset=google|alibaba|both]
//                      [--reps=5]
//
// Paper claims: NURD has the highest machine-count-averaged reductions
// (16.7% Google / 10.9% Alibaba).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/cluster.h"
#include "sched/scheduler.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 40));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 99));
  const auto reps =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "reps", 5));
  const std::vector<std::size_t> machine_counts{10, 20, 30, 40, 50,
                                                60, 80, 100, 120};

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    const auto jobs = bench::make_jobs(dataset, n_jobs);
    std::cout << "=== Figure "
              << (dataset == bench::Dataset::kGoogle ? 8 : 9)
              << " — JCT reduction % averaged over machine counts, "
              << bench::dataset_name(dataset) << " (" << jobs.size()
              << " jobs) ===\n";
    TextTable table({"Method", "Avg reduction %", "Cluster avg %"});
    std::string best_name;
    double best = -1e9;
    for (const auto& method :
         core::all_predictors(bench::tuned_config(dataset))) {
      const auto runs = eval::run_method(method, jobs);
      double total = 0.0;
      double cluster_total = 0.0;
      for (auto m : machine_counts) {
        total += sched::mean_reduction_limited(jobs, runs, m, seed);
        sched::ClusterConfig config;
        config.machines = m;
        config.reclaim_releases = true;
        cluster_total += sched::summarize_replications(
                             sched::simulate_cluster_replicated(
                                 jobs, runs, config, reps, seed))
                             .mean_reduction_pct;
      }
      const double avg = total / static_cast<double>(machine_counts.size());
      const double cluster_avg =
          cluster_total / static_cast<double>(machine_counts.size());
      table.add_row({method.name, TextTable::num(avg, 1),
                     TextTable::num(cluster_avg, 1)});
      if (avg > best) {
        best = avg;
        best_name = method.name;
      }
      std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    std::cout << table.render();
    std::cout << "highest average reduction: " << best_name << " ("
              << TextTable::num(best, 1) << "%)\n\n";
  }
  return 0;
}
