// GBT training-throughput bench: exact vs histogram split finding on
// synthetic regression data, plus the parallel evaluation-harness speedup.
//
//   $ ./bench_gbt [--n=10000] [--d=16] [--rounds=20] [--min-depth=3]
//                 [--max-depth=8] [--eval-jobs=50] [--threads=4]
//                 [--eval-method=NURD] [--skip-eval=0]
//                 [--backend=reference|avx2|auto]
//
// --backend selects the kernel-dispatch backend the whole bench runs under
// (default: whatever NURD_KERNEL_BACKEND / the library default resolves to);
// the active backend is named in the output. A cross-backend section then
// re-times the histogram fit under every available backend and reports the
// measured end-to-end speedup over the reference scalar path.
//
// Prints, per depth: fit time, fit throughput (rows/sec, counting each
// boosting round as one pass over the rows), predict throughput, and the
// histogram/exact speedup. Then times evaluate_method at 1 thread vs
// --threads threads on a --eval-jobs Google-like trace and checks the two
// runs produce identical metrics. Note the harness-speedup number is
// conservative: the 1-thread baseline may still fan per-feature histogram
// work onto the global pool, while job lanes run their fits serially
// (nested parallel_for degrades to serial by design).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "kernel/kernel.h"
#include "ml/gbt.h"
#include "ml/logistic.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct FitTiming {
  double fit_seconds = 0.0;
  double predict_seconds = 0.0;
};

FitTiming time_gbt(const nurd::Matrix& x, const std::vector<double>& y,
                   nurd::ml::GbtParams params) {
  FitTiming t;
  auto model = nurd::ml::GradientBoosting::regressor(params);
  const auto fit_start = Clock::now();
  model.fit(x, y);
  t.fit_seconds = seconds_since(fit_start);
  const auto predict_start = Clock::now();
  double sum = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) sum += model.predict(x.row(i));
  volatile double sink = sum;  // keep the predict loop from being elided
  (void)sink;
  t.predict_seconds = seconds_since(predict_start);
  return t;
}

// Applies a --backend flag value; "" leaves the library default in place.
void select_backend(const std::string& flag) {
  using nurd::kernel::Backend;
  if (flag.empty()) return;
  if (flag == "reference") {
    nurd::kernel::set_backend(Backend::kReference);
  } else if (flag == "avx2") {
    nurd::kernel::set_backend(Backend::kAvx2);
  } else if (flag == "auto") {
    nurd::kernel::set_backend(nurd::kernel::best_available());
  } else {
    std::fprintf(stderr, "unknown --backend=%s (reference|avx2|auto)\n",
                 flag.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;

  const auto n = static_cast<std::size_t>(bench::arg_long(argc, argv, "n", 10000));
  const auto d = static_cast<std::size_t>(bench::arg_long(argc, argv, "d", 16));
  const int rounds = static_cast<int>(bench::arg_long(argc, argv, "rounds", 20));
  const int min_depth = static_cast<int>(bench::arg_long(argc, argv, "min-depth", 3));
  const int max_depth = static_cast<int>(bench::arg_long(argc, argv, "max-depth", 8));
  const auto eval_jobs = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "eval-jobs", 50));
  const auto threads = static_cast<std::size_t>(
      bench::arg_long(argc, argv, "threads", 4));
  const auto eval_method =
      bench::arg_string(argc, argv, "eval-method", "NURD");
  const bool skip_eval = bench::arg_long(argc, argv, "skip-eval", 0) != 0;
  select_backend(bench::arg_string(argc, argv, "backend", ""));

  // Synthetic regression task: nonlinear, every feature informative enough
  // that trees keep splitting to the depth cap.
  Rng rng(99);
  Matrix x(n, d);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.normal();
      s += (j % 2 == 0 ? 1.0 : -0.5) * x(i, j);
    }
    y[i] = std::sin(s) + 0.1 * s * s + rng.normal(0.0, 0.1);
  }

  std::printf("bench_gbt: n=%zu d=%zu rounds=%d kernel-backend=%s\n", n, d,
              rounds, kernel::backend_name());
  std::printf("%6s  %12s %14s  %12s %14s  %8s\n", "depth", "exact fit(s)",
              "exact rows/s", "hist fit(s)", "hist rows/s", "speedup");

  const double total_rows =
      static_cast<double>(n) * static_cast<double>(rounds);
  for (int depth = min_depth; depth <= max_depth; ++depth) {
    ml::GbtParams params;
    params.n_rounds = rounds;
    params.tree.max_depth = depth;

    params.tree.split = ml::SplitMethod::kExact;
    const auto exact = time_gbt(x, y, params);
    params.tree.split = ml::SplitMethod::kHistogram;
    const auto hist = time_gbt(x, y, params);

    std::printf("%6d  %12.3f %14.0f  %12.3f %14.0f  %7.2fx\n", depth,
                exact.fit_seconds, total_rows / exact.fit_seconds,
                hist.fit_seconds, total_rows / hist.fit_seconds,
                exact.fit_seconds / hist.fit_seconds);
    std::printf("%6s  predict: exact %.0f rows/s, hist %.0f rows/s\n", "",
                static_cast<double>(n) / exact.predict_seconds,
                static_cast<double>(n) / hist.predict_seconds);
  }

  // Cross-backend comparison, speedup measured against reference: the same
  // histogram fit at the deepest depth (tree traversal bounds this one), and
  // a logistic-regression Newton solve on the same design — the solver is
  // nearly all kernel primitives (gemv / sigmoid / syrk / Cholesky), so it
  // shows the kernel layer's end-to-end effect undiluted.
  {
    ml::GbtParams params;
    params.n_rounds = rounds;
    params.tree.max_depth = max_depth;
    params.tree.split = ml::SplitMethod::kHistogram;
    std::vector<double> ybin(n);
    for (std::size_t i = 0; i < n; ++i) ybin[i] = y[i] > 0.0 ? 1.0 : 0.0;

    auto time_logistic = [&] {
      ml::LogisticParams lp;
      ml::LogisticRegression lr(lp);
      const auto start = Clock::now();
      lr.fit(x, ybin);
      return seconds_since(start);
    };

    const auto prior = kernel::active_backend();
    kernel::set_backend(kernel::Backend::kReference);
    const auto ref_t = time_gbt(x, y, params);
    const double ref_logit = time_logistic();
    std::printf("\nbackend comparison (hist fit depth=%d; logistic fit):\n",
                max_depth);
    std::printf("  %-10s  gbt %8.3fs %12.0f rows/s %7s   logistic %8.3fs %7s\n",
                "reference", ref_t.fit_seconds, total_rows / ref_t.fit_seconds,
                "1.00x", ref_logit, "1.00x");
    if (kernel::backend_available(kernel::Backend::kAvx2)) {
      kernel::set_backend(kernel::Backend::kAvx2);
      const auto avx_t = time_gbt(x, y, params);
      const double avx_logit = time_logistic();
      std::printf(
          "  %-10s  gbt %8.3fs %12.0f rows/s %6.2fx   logistic %8.3fs %6.2fx\n",
          "avx2", avx_t.fit_seconds, total_rows / avx_t.fit_seconds,
          ref_t.fit_seconds / avx_t.fit_seconds, avx_logit,
          ref_logit / avx_logit);
    } else {
      std::printf("  avx2: unavailable on this build/CPU\n");
    }
    kernel::set_backend(prior);
  }

  if (skip_eval) return 0;

  // Parallel harness: same trace, same method, 1 thread vs `threads`.
  const auto jobs = bench::make_jobs(bench::Dataset::kGoogle, eval_jobs);
  const auto method =
      core::predictor_by_name(eval_method, core::google_tuned());

  const auto serial_start = Clock::now();
  const auto serial = eval::evaluate_method(method, jobs, 90.0, 1);
  const double serial_s = seconds_since(serial_start);

  const auto parallel_start = Clock::now();
  const auto parallel = eval::evaluate_method(method, jobs, 90.0, threads);
  const double parallel_s = seconds_since(parallel_start);

  std::printf("\nevaluate_method(%s, %zu jobs): 1 thread %.2fs, "
              "%zu threads %.2fs (%.2fx)\n",
              eval_method.c_str(), eval_jobs, serial_s, threads, parallel_s,
              serial_s / parallel_s);
  std::printf("determinism: F1 %s (%.6f vs %.6f), TPR %s, FPR %s\n",
              serial.f1 == parallel.f1 ? "identical" : "MISMATCH", serial.f1,
              parallel.f1, serial.tpr == parallel.tpr ? "identical" : "MISMATCH",
              serial.fpr == parallel.fpr ? "identical" : "MISMATCH");
  bench::print_resource_report("bench_gbt");
  return (serial.f1 == parallel.f1 && serial.tpr == parallel.tpr &&
          serial.fpr == parallel.fpr)
             ? 0
             : 1;
}
