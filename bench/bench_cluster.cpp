// Cluster-level scenario sweeps over the event-driven shared-pool simulator
// (the production-scale generalization of the paper's Figures 6-9 setting:
// many concurrent jobs, one spare-machine pool, continuous-time arrivals).
//
//   $ ./bench_cluster [--jobs=24] [--dataset=google|alibaba] [--method=NURD]
//                     [--reps=8] [--seed=99] [--threads=0]
//                     [--json=BENCH_cluster.json]
//
// Three sweeps, all driven by one run_method pass for the chosen predictor:
//   1. shared spare machines (batch arrivals) — the Figure 6/7 axis lifted
//      to a shared pool;
//   2. Poisson arrival rate at a fixed pool — offered load vs mitigation
//      and makespan;
//   3. cluster size (concurrent jobs) at a fixed spares-per-job ratio.
// Replications are parallelized over the thread pool with forked RNG
// streams; the printed numbers are bit-identical for any --threads.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/cluster.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 24));
  const auto reps =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "reps", 8));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 99));
  const auto threads =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "threads", 0));
  const auto which = bench::arg_string(argc, argv, "dataset", "google");
  const auto method_name = bench::arg_string(argc, argv, "method", "NURD");
  const auto json_path = bench::arg_string(argc, argv, "json", "");
  const auto dataset =
      which == "alibaba" ? bench::Dataset::kAlibaba : bench::Dataset::kGoogle;

  const auto jobs = bench::make_jobs(dataset, n_jobs);
  const auto method =
      core::predictor_by_name(method_name, bench::tuned_config(dataset));
  const auto runs = eval::run_method(method, jobs, 90.0, threads);

  double mean_jct = 0.0;
  for (const auto& job : jobs) mean_jct += job.completion_time();
  mean_jct /= static_cast<double>(jobs.size());

  std::cout << "=== Cluster scenario sweeps — " << method_name << ", "
            << bench::dataset_name(dataset) << " (" << jobs.size()
            << " jobs, " << reps << " replications, mean JCT "
            << TextTable::num(mean_jct, 0) << "s) ===\n\n";

  const auto sweep = [&](const sched::ClusterConfig& config) {
    return sched::summarize_replications(sched::simulate_cluster_replicated(
        jobs, runs, config, reps, seed, threads));
  };

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("cluster");
  json.key("method").value(method_name);
  json.key("dataset").value(bench::dataset_name(dataset));
  json.key("jobs").value(n_jobs);
  json.key("replications").value(reps);
  json.key("mean_jct_s").value(mean_jct);
  json.key("sweeps").begin_array();
  // One row per sweep point: the axis value plus the replication summary.
  const auto json_point = [&](const char* axis, double axis_value,
                              std::size_t machines,
                              const sched::ClusterSummary& s) {
    json.begin_object();
    json.key(axis).value(axis_value);
    json.key("machines").value(machines);
    json.key("mean_reduction_pct").value(s.mean_reduction_pct);
    json.key("mean_makespan_s").value(s.mean_makespan);
    json.key("mean_relaunched").value(s.mean_relaunched);
    json.key("mean_waited").value(s.mean_waited);
    json.key("max_peak_waiting").value(s.max_peak_waiting);
    json.end_object();
  };

  for (const bool reclaim : {false, true}) {
    std::cout << "-- Sweep 1" << (reclaim ? "b" : "a")
              << ": spare machines (batch arrivals), "
              << (reclaim ? "dedicated pool (releases reclaimed)"
                          : "donated releases (Algorithm 3 semantics)")
              << "\n";
    TextTable table({"machines", "mean red %", "makespan(s)", "relaunched",
                     "waited", "peak queue"});
    json.begin_object();
    json.key("sweep").value(reclaim ? "machines_reclaimed" : "machines_donated");
    json.key("points").begin_array();
    for (const std::size_t m : {0, 5, 10, 20, 40, 80, 160}) {
      sched::ClusterConfig config;
      config.machines = m;
      config.reclaim_releases = reclaim;
      const auto s = sweep(config);
      table.add_row({std::to_string(m), TextTable::num(s.mean_reduction_pct, 1),
                     TextTable::num(s.mean_makespan, 0),
                     TextTable::num(s.mean_relaunched, 1),
                     TextTable::num(s.mean_waited, 1),
                     std::to_string(s.max_peak_waiting)});
      json_point("machines", static_cast<double>(m), m, s);
    }
    json.end_array();
    json.end_object();
    std::cout << table.render() << "\n";
  }

  {
    std::cout << "-- Sweep 2: Poisson arrival rate (dedicated pool of "
              << n_jobs / 2 << " spares); load = rate x mean JCT\n";
    TextTable table({"load", "mean red %", "makespan(s)", "relaunched",
                     "waited", "peak queue"});
    json.begin_object();
    json.key("sweep").value("poisson_load");
    json.key("points").begin_array();
    for (const double load : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      sched::ClusterConfig config;
      config.machines = n_jobs / 2;
      config.reclaim_releases = true;
      config.arrivals = sched::poisson_arrivals(load / mean_jct);
      const auto s = sweep(config);
      table.add_row({TextTable::num(load, 2),
                     TextTable::num(s.mean_reduction_pct, 1),
                     TextTable::num(s.mean_makespan, 0),
                     TextTable::num(s.mean_relaunched, 1),
                     TextTable::num(s.mean_waited, 1),
                     std::to_string(s.max_peak_waiting)});
      json_point("load", load, config.machines, s);
    }
    json.end_array();
    json.end_object();
    std::cout << table.render() << "\n";
  }

  {
    std::cout << "-- Sweep 3: cluster size (batch arrivals, dedicated pool "
                 "of 1 spare per 2 jobs)\n";
    TextTable table({"jobs", "machines", "mean red %", "makespan(s)",
                     "waited", "peak queue"});
    std::vector<std::size_t> sizes;
    for (std::size_t c = 3; c < jobs.size(); c *= 2) sizes.push_back(c);
    sizes.push_back(jobs.size());  // always end on the full cluster
    json.begin_object();
    json.key("sweep").value("cluster_size");
    json.key("points").begin_array();
    for (const std::size_t count : sizes) {
      sched::ClusterConfig config;
      config.machines = count / 2;
      config.reclaim_releases = true;
      const std::span<const trace::Job> subset(jobs.data(), count);
      const std::span<const eval::JobRunResult> subruns(runs.data(), count);
      const auto s =
          sched::summarize_replications(sched::simulate_cluster_replicated(
              subset, subruns, config, reps, seed, threads));
      table.add_row({std::to_string(count), std::to_string(config.machines),
                     TextTable::num(s.mean_reduction_pct, 1),
                     TextTable::num(s.mean_makespan, 0),
                     TextTable::num(s.mean_waited, 1),
                     std::to_string(s.max_peak_waiting)});
      json_point("cluster_jobs", static_cast<double>(count), config.machines,
                 s);
    }
    json.end_array();
    json.end_object();
    std::cout << table.render() << "\n";
  }

  json.end_array();
  json.key("peak_rss_bytes").value(bench::peak_rss_bytes());
  json.end_object();
  if (!json_path.empty() && !json.write_file(json_path)) return 1;
  return 0;
}
