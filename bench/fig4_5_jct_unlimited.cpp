// Figures 4 and 5 reproduction: average reduction in job completion time
// with unlimited machines (Algorithm 2), per method, on both datasets.
//
//   $ ./fig4_5_jct_unlimited [--jobs=40] [--dataset=google|alibaba|both]
//
// Paper claims: NURD has the highest reductions (25.8% Google / 18.6%
// Alibaba), because its predictions are both early and precise — late or
// indiscriminate flags relaunch tasks too late or waste relaunches on
// non-stragglers whose resampled copies can finish *later* than the
// original.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/scheduler.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 40));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 99));

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    const auto jobs = bench::make_jobs(dataset, n_jobs);
    std::cout << "=== Figure "
              << (dataset == bench::Dataset::kGoogle ? 4 : 5)
              << " — JCT reduction %, unlimited machines, "
              << bench::dataset_name(dataset) << " (" << jobs.size()
              << " jobs, resample seed " << seed << ") ===\n";
    TextTable table({"Method", "Reduction %"});
    std::string best_name;
    double best = -1e9;
    for (const auto& method :
         core::all_predictors(bench::tuned_config(dataset))) {
      const auto runs = eval::run_method(method, jobs);
      const double red = sched::mean_reduction_unlimited(jobs, runs, seed);
      table.add_row({method.name, TextTable::num(red, 1)});
      if (red > best) {
        best = red;
        best_name = method.name;
      }
      std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    std::cout << table.render();
    std::cout << "highest reduction: " << best_name << " ("
              << TextTable::num(best, 1) << "%)\n\n";
  }
  return 0;
}
