// Figures 6 and 7 reproduction: reduction in job completion time under
// Algorithm 3 as a function of the number of spare machines (100..1000),
// per method, on both datasets; plus the cluster-level extension where the
// same machine sweep is ONE pool shared by all jobs running concurrently
// (event-driven simulator, batch arrivals, replication-averaged).
//
//   $ ./fig6_7_jct_machines [--jobs=40] [--dataset=google|alibaba|both]
//                           [--reps=5]
//
// Paper claims: reductions increase with machine count, and NURD is highest
// at every count except the smallest pools.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/cluster.h"
#include "sched/scheduler.h"

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "jobs", 40));
  const auto which = bench::arg_string(argc, argv, "dataset", "both");
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_long(argc, argv, "seed", 99));
  const auto reps =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "reps", 5));
  // Spare-machine pool sizes. The paper sweeps 100..1000 against jobs of
  // 100..9999 tasks; our jobs have 100..400 tasks, so the same *relative*
  // sweep is 10..120 spares (we also print the paper's absolute axis).
  const std::vector<std::size_t> machine_counts{10, 20, 30, 40, 50,
                                                60, 80, 100, 120};

  std::vector<bench::Dataset> datasets;
  if (which == "google" || which == "both") {
    datasets.push_back(bench::Dataset::kGoogle);
  }
  if (which == "alibaba" || which == "both") {
    datasets.push_back(bench::Dataset::kAlibaba);
  }

  for (const auto dataset : datasets) {
    const auto jobs = bench::make_jobs(dataset, n_jobs);
    std::cout << "=== Figure "
              << (dataset == bench::Dataset::kGoogle ? 6 : 7)
              << " — JCT reduction % vs machine count, "
              << bench::dataset_name(dataset) << " (" << jobs.size()
              << " jobs) ===\n";
    std::vector<std::string> header{"Method"};
    for (auto m : machine_counts) header.push_back("m=" + std::to_string(m));
    TextTable table(header);
    TextTable cluster_table(header);
    for (const auto& method :
         core::all_predictors(bench::tuned_config(dataset))) {
      const auto runs = eval::run_method(method, jobs);
      std::vector<std::string> row{method.name};
      std::vector<std::string> cluster_row{method.name};
      for (auto m : machine_counts) {
        row.push_back(TextTable::num(
            sched::mean_reduction_limited(jobs, runs, m, seed), 1));
        sched::ClusterConfig config;
        config.machines = m;
        config.reclaim_releases = true;  // the axis where spares bind
        const auto summary = sched::summarize_replications(
            sched::simulate_cluster_replicated(jobs, runs, config, reps,
                                               seed));
        cluster_row.push_back(
            TextTable::num(summary.mean_reduction_pct, 1));
      }
      table.add_row(std::move(row));
      cluster_table.add_row(std::move(cluster_row));
      std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    std::cout << table.render() << "\n";
    std::cout << "--- cluster extension: the same sweep with ONE dedicated"
                 " pool shared across all "
              << jobs.size() << " jobs running concurrently ("
              << reps << " replications, releases reclaimed) ---\n";
    std::cout << cluster_table.render() << "\n";
  }
  return 0;
}
