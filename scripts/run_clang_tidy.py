#!/usr/bin/env python3
"""clang-tidy driver with a baseline: the repo's second static-analysis leg.

Runs clang-tidy (config: the checked-in .clang-tidy) over every src/ entry of
a compile_commands.json, parses the findings, and compares them against
scripts/clang_tidy_baseline.json. The job FAILS on any finding not covered by
the baseline, so new code must land tidy-clean while pre-existing debt (if
any is ever baselined) cannot silently grow. With the shipped EMPTY baseline
this is simply "src/ is tidy-clean".

Baseline format — a JSON object mapping "relative/file.cpp:check-name" to an
allowed count. Line numbers are deliberately NOT part of the key (they drift
with every edit); a count regression on an existing key also fails.

  python3 scripts/run_clang_tidy.py --build build            # check
  python3 scripts/run_clang_tidy.py --build build --update-baseline

Tool discovery tries clang-tidy, then clang-tidy-19..14. When no binary
exists the script exits 0 with a SKIPPED notice by default (local boxes
without LLVM must not fail the `lint` target) or exits 2 under --require
(the CI leg, where absence means a broken job, not a clean one).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from collections import Counter

FINDING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[\w.,-]+)\]$")


def find_clang_tidy() -> str | None:
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                   range(19, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_db_entries(build_dir: str, root: str) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: {db_path} not found — configure with "
                 f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    src_prefix = os.path.join(os.path.abspath(root), "src") + os.sep
    files = sorted({os.path.abspath(e["file"]) for e in db
                    if os.path.abspath(e["file"]).startswith(src_prefix)})
    return files


def run_tidy(tool: str, build_dir: str, files: list[str],
             jobs: int) -> list[tuple[str, str]]:
    """Returns (relative_file, check) per finding, deduplicated per location
    (clang-tidy repeats header findings once per including TU)."""
    seen_locations = set()
    findings: list[tuple[str, str]] = []

    def tidy_one(path: str) -> str:
        proc = subprocess.run(
            [tool, "-p", build_dir, "--quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        return proc.stdout

    with multiprocessing.pool.ThreadPool(jobs) as pool:
        outputs = pool.map(tidy_one, files)

    root = os.getcwd()
    for output in outputs:
        for line in output.splitlines():
            m = FINDING_RE.match(line)
            if not m:
                continue
            abs_file = os.path.abspath(m.group("file"))
            rel = os.path.relpath(abs_file, root)
            if rel.startswith(".."):
                continue  # system/third-party header
            for check in m.group("check").split(","):
                loc = (rel, m.group("line"), m.group("col"), check)
                if loc in seen_locations:
                    continue
                seen_locations.add(loc)
                findings.append((rel, check))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--baseline",
                        default="scripts/clang_tidy_baseline.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping (the CI mode)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    args = parser.parse_args(argv)

    tool = find_clang_tidy()
    if tool is None:
        if args.require:
            print("error: clang-tidy not found and --require set",
                  file=sys.stderr)
            return 2
        print("run_clang_tidy: SKIPPED (no clang-tidy binary on PATH; "
              "install LLVM or rely on the CI leg)")
        return 0

    files = compile_db_entries(args.build, os.getcwd())
    if not files:
        sys.exit("error: no src/ entries in the compilation database")
    print(f"run_clang_tidy: {tool} over {len(files)} files "
          f"({args.jobs} jobs)")

    counts = Counter(f"{rel}:{check}"
                     for rel, check in run_tidy(tool, args.build, files,
                                                args.jobs))

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(dict(sorted(counts.items())), f, indent=2)
            f.write("\n")
        print(f"run_clang_tidy: baseline rewritten with "
              f"{sum(counts.values())} finding(s) in {len(counts)} key(s)")
        return 0

    baseline: dict[str, int] = {}
    if os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)

    regressions = []
    for key, n in sorted(counts.items()):
        allowed = baseline.get(key, 0)
        if n > allowed:
            regressions.append(f"  {key}: {n} finding(s), baseline allows "
                               f"{allowed}")
    stale = [key for key in baseline if key not in counts]

    if regressions:
        print("run_clang_tidy: NEW findings over the baseline:")
        print("\n".join(regressions))
        print("fix them (preferred) or, for accepted debt, re-run with "
              "--update-baseline and justify the diff in review")
        return 1
    if stale:
        print("run_clang_tidy: stale baseline keys (debt was paid off — "
              "shrink the baseline):")
        for key in stale:
            print(f"  {key}")
        return 1
    print(f"run_clang_tidy: clean "
          f"({sum(counts.values())} finding(s), all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
