#!/usr/bin/env bash
# Verifies that every C++ file under src/ and tests/ is clang-format-clean
# per the checked-in .clang-format. Read-only: prints a diff per offending
# file and exits 1; never rewrites the tree (run clang-format -i yourself).
#
#   scripts/check_format.sh             # skip politely if no clang-format
#   scripts/check_format.sh --require   # CI mode: missing tool is a failure
set -euo pipefail
cd "$(dirname "$0")/.."

require=0
[[ "${1:-}" == "--require" ]] && require=1

tool=""
for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
            clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$cand" >/dev/null 2>&1; then tool="$cand"; break; fi
done

if [[ -z "$tool" ]]; then
  if [[ "$require" == 1 ]]; then
    echo "check_format: clang-format not found and --require set" >&2
    exit 2
  fi
  echo "check_format: SKIPPED (no clang-format on PATH; the CI leg enforces)"
  exit 0
fi

bad=0
while IFS= read -r -d '' f; do
  if ! diff -u "$f" <("$tool" --style=file "$f") \
       --label "$f (on disk)" --label "$f (clang-format)"; then
    bad=1
  fi
done < <(find src tests \( -name '*.cpp' -o -name '*.h' \) -print0 | sort -z)

if [[ "$bad" == 1 ]]; then
  echo "check_format: files above are not clang-format-clean" >&2
  exit 1
fi
echo "check_format: clean ($tool)"
