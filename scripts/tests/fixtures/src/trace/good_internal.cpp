// Fixture: src/trace/ is the trace layer itself — it may touch its own
// internals freely. Must produce no [trace-access] finding.
struct Store {
  const double* latencies() const { return nullptr; }
};
struct View {
  Store s;
  const Store& store() const { return s; }
};

const double* internal_use(const View& v) { return v.store().latencies(); }
