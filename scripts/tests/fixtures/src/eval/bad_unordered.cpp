// Fixture: unordered-container iteration in a flag/metric path. The two
// iteration sites must produce [unordered-iter] findings; keyed lookup and
// ordered-map iteration must not.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

double accumulate_flags() {
  std::unordered_map<int, double> flag_scores;
  std::unordered_set<int> flagged;
  flag_scores[3] = 1.0;
  double total = flag_scores.at(3);           // OK: keyed lookup
  for (const auto& kv : flag_scores) {        // BAD: unordered iteration
    total += kv.second;
  }
  auto it = flagged.begin();                  // BAD: iterator walk
  (void)it;
  std::map<int, double> ordered;
  ordered.emplace(3, total);
  for (const auto& kv : ordered) total += kv.second;  // OK: ordered
  return total;
}
