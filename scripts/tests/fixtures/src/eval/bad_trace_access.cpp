// Fixture: online-discipline violations — reaching through the predictor
// API into TraceStore/CheckpointView internals from the eval layer. Both
// marked lines must produce [trace-access] findings.
struct FakeStore {
  int checkpoint_count() const { return 3; }
  const double* latencies() const { return nullptr; }
};
struct FakeView {
  FakeStore s;
  const FakeStore& store() const { return s; }
};

int peek_everything(const FakeView& view) {
  int grid = view.store().checkpoint_count();   // BAD: store escape hatch
  const double* oracle = view.s.latencies();    // BAD: ground-truth oracle
  (void)oracle;
  return grid;
}
