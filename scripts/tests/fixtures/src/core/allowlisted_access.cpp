// Fixture: a privileged trace access that the test's allowlist covers. The
// finding must be suppressed when the allowlist entry is present and
// reported when it is not.
struct FakeView {
  struct S {
    int checkpoint_count() const { return 7; }
  } s;
  const S& store() const { return s; }
};

int refresh_grid(const FakeView& view) {
  return view.store().checkpoint_count();  // allowlisted in the test
}
