// Fixture: wall-clock reads inside a deterministic path. Every marked line
// must produce a [wall-clock] finding.
#include <chrono>
#include <cstdlib>

double jitter() {
  auto now = std::chrono::steady_clock::now();  // BAD: wall clock in core
  (void)now;
  return static_cast<double>(std::rand());  // BAD: global C RNG
}

const char* knob() {
  return std::getenv("NURD_SECRET_KNOB");  // BAD: global process state
}

// A comment mentioning std::chrono::system_clock must NOT fire.
const char* doc = "std::rand in a string literal must not fire either";
