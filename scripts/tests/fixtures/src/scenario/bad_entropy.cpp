// Fixture: global entropy inside the scenario subsystem. Scenario
// generation and trace ingestion must be pure functions of (spec, seed,
// input bytes); every marked line must produce a [wall-clock] finding.
#include <chrono>
#include <random>

unsigned scenario_seed() {
  std::random_device entropy;  // BAD: non-reproducible scenario seeds
  return entropy();
}

double ingest_stamp() {
  auto t = std::chrono::system_clock::now();  // BAD: wall clock in ingest
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Mentioning random_device in a comment must NOT fire.
