// Fixture: src/serve is OUTSIDE the deterministic-path rule — wall-clock
// serving stats are the whole point of the layer. Must produce no
// [wall-clock] finding.
#include <chrono>

double serving_latency_seconds() {
  auto begin = std::chrono::steady_clock::now();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}
