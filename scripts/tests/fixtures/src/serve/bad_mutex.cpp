// Fixture: a Mutex with NO [mutex] entry in the fixture sync.h — the
// lock-table rule must report the declaration line.
struct Mutex {};

struct Undocumented {
  mutable Mutex undocumented_;  // line 6: the finding anchors here
};

// A commented-out declaration must NOT fire:
//   Mutex commented_out_;
