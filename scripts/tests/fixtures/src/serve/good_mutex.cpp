// Fixture: a Mutex with a matching [mutex] entry in the fixture sync.h —
// the lock-table rule must stay quiet.
struct Mutex {};

struct Documented {
  Mutex mutex_;
};
