// Fixture lock-ordering table for the lock-table rule. One live entry
// (serve/good_mutex.cpp declares it) and one stale entry (no such file) so
// both directions of the drift check have a test anchor.
//
//   [mutex] serve/good_mutex.cpp::mutex_
//       Documented fixture lock. Leaf.
//   [mutex] serve/gone.cpp::mutex_
//       Stale fixture entry — the full-tree lint must flag this line.
#pragma once
