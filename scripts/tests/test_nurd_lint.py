"""Self-tests for scripts/nurd_lint.py.

Fixtures under scripts/tests/fixtures/ mirror the repo's src/ layout with
known-bad snippets (each invariant rule must FIRE) and known-good snippets
(scope boundaries and allowlists must SUPPRESS). Run via

  python3 -m unittest discover -s scripts/tests -v

or through the `nurd_lint_selftest` ctest entry.
"""

import os
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, SCRIPTS_DIR)

import nurd_lint  # noqa: E402

FIXTURES = os.path.join(SCRIPTS_DIR, "tests", "fixtures")


def lint(relpath, allowlist_text=None):
    """Lints one fixture file; returns the surviving findings."""
    allowlist = None
    if allowlist_text is not None:
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".txt", delete=False, encoding="utf-8")
        tmp.write(allowlist_text)
        tmp.close()
        allowlist = tmp.name
    try:
        findings, unused = nurd_lint.run(FIXTURES, allowlist, [relpath])
        return findings, unused
    finally:
        if allowlist:
            os.unlink(allowlist)


class WallClockRule(unittest.TestCase):
    def test_fires_on_every_marked_line(self):
        findings, _ = lint("src/core/bad_wallclock.cpp")
        wall = [f for f in findings if f.rule == "wall-clock"]
        self.assertEqual([f.line for f in wall], [7, 9, 13])

    def test_comments_and_strings_do_not_fire(self):
        findings, _ = lint("src/core/bad_wallclock.cpp")
        lines = {f.line for f in findings}
        self.assertNotIn(16, lines)  # comment mentioning system_clock
        self.assertNotIn(17, lines)  # string literal mentioning std::rand

    def test_serve_layer_is_out_of_scope(self):
        findings, _ = lint("src/serve/good_timing.cpp")
        self.assertEqual(findings, [])

    def test_scenario_subsystem_is_in_scope(self):
        findings, _ = lint("src/scenario/bad_entropy.cpp")
        wall = [f for f in findings if f.rule == "wall-clock"]
        self.assertEqual([f.line for f in wall], [8, 13])
        self.assertNotIn(17, {f.line for f in findings})  # comment


class UnorderedIterationRule(unittest.TestCase):
    def test_fires_on_iteration_not_lookup(self):
        findings, _ = lint("src/eval/bad_unordered.cpp")
        unordered = [f for f in findings if f.rule == "unordered-iter"]
        self.assertEqual([f.line for f in unordered], [14, 17])

    def test_ordered_iteration_is_fine(self):
        findings, _ = lint("src/eval/bad_unordered.cpp")
        self.assertNotIn(20, {f.line for f in findings})


class TraceAccessRule(unittest.TestCase):
    def test_fires_outside_trace_layer(self):
        findings, _ = lint("src/eval/bad_trace_access.cpp")
        trace = [f for f in findings if f.rule == "trace-access"]
        self.assertEqual([f.line for f in trace], [14, 15])

    def test_trace_layer_itself_is_exempt(self):
        findings, _ = lint("src/trace/good_internal.cpp")
        self.assertEqual(findings, [])


class LockTableRule(unittest.TestCase):
    def test_undocumented_mutex_fires_at_declaration(self):
        findings, _ = lint("src/serve/bad_mutex.cpp")
        table = [f for f in findings if f.rule == "lock-table"]
        self.assertEqual([(f.path, f.line) for f in table],
                         [("src/serve/bad_mutex.cpp", 6)])
        self.assertIn("serve/bad_mutex.cpp::undocumented_",
                      table[0].message)

    def test_documented_mutex_is_quiet(self):
        findings, _ = lint("src/serve/good_mutex.cpp")
        self.assertEqual([f for f in findings if f.rule == "lock-table"], [])

    def test_partial_lint_never_reports_stale_entries(self):
        findings, _ = lint("src/serve/good_mutex.cpp")
        self.assertEqual(findings, [])

    def test_full_tree_lint_reports_stale_entries(self):
        findings, _ = nurd_lint.run(FIXTURES, None, None)
        stale = [f for f in findings
                 if f.rule == "lock-table" and "stale" in f.message]
        self.assertEqual([f.path for f in stale], ["src/common/sync.h"])
        self.assertIn("serve/gone.cpp::mutex_", stale[0].message)

    def test_commented_declaration_does_not_fire(self):
        findings, _ = lint("src/serve/bad_mutex.cpp")
        self.assertNotIn(10, {f.line for f in findings})


class Allowlist(unittest.TestCase):
    PATH = "src/core/allowlisted_access.cpp"

    def test_finding_reported_without_entry(self):
        findings, _ = lint(self.PATH)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "trace-access")

    def test_entry_suppresses_finding(self):
        findings, unused = lint(
            self.PATH,
            "trace-access src/core/allowlisted_access.cpp .store()"
            "  # refresh-grid read, test fixture\n")
        self.assertEqual(findings, [])
        self.assertEqual(unused, [])

    def test_token_scoping_is_respected(self):
        findings, unused = lint(
            self.PATH,
            "trace-access src/core/allowlisted_access.cpp .latencies()"
            "  # wrong token, must not suppress\n")
        self.assertEqual(len(findings), 1)
        self.assertEqual(len(unused), 1)  # and the entry reports as unused

    def test_unjustified_entry_rejected(self):
        with self.assertRaises(ValueError):
            nurd_lint.parse_allowlist(
                "trace-access src/core/allowlisted_access.cpp\n")


class RepoIsClean(unittest.TestCase):
    """The real src/ tree plus the checked-in allowlist must lint clean —
    this is the same invariant the CI leg enforces."""

    def test_src_lints_clean_with_checked_in_allowlist(self):
        root = os.path.dirname(SCRIPTS_DIR)
        allowlist = os.path.join(SCRIPTS_DIR, "nurd_lint_allowlist.txt")
        findings, unused = nurd_lint.run(root, allowlist, None)
        self.assertEqual([f.render() for f in findings], [])
        self.assertEqual([e.path for e in unused], [])


if __name__ == "__main__":
    unittest.main()
