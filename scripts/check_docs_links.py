#!/usr/bin/env python3
"""Fails on broken intra-repo markdown links (and anchors) in tracked docs.

Scans every *.md file in the repo (skipping build trees) for inline
markdown links. External links (http/https/mailto) are ignored; every other
target must resolve to a file or directory relative to the linking file,
and a `#fragment` on a markdown target must match one of its headings
(GitHub-style slugs). The CI docs job runs this next to the
docs_methods_sync ctest so documentation cannot silently rot.

Usage: scripts/check_docs_links.py [repo_root]
"""
import os
import re
import sys

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "build-asan", "node_modules"}


def heading_slugs(path):
    slugs = set()
    with open(path, encoding="utf-8") as handle:
        in_code = False
        for line in handle:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code or not line.startswith("#"):
                continue
            text = line.lstrip("#").strip()
            slug = re.sub(r"[^\w\- ]", "", text.lower())
            slugs.add(re.sub(r" +", "-", slug).strip("-"))
    return slugs


def check_file(md_path, root):
    errors = []
    with open(md_path, encoding="utf-8") as handle:
        content = handle.read()
    # Strip fenced code blocks: links inside them are examples, not links.
    content = re.sub(r"```.*?```", "", content, flags=re.S)
    for match in LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        base = os.path.dirname(md_path)
        resolved = os.path.normpath(os.path.join(base, path_part)) \
            if path_part else md_path
        if not os.path.exists(resolved):
            errors.append(f"{os.path.relpath(md_path, root)}: broken link "
                          f"-> {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if fragment.lower() not in heading_slugs(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}: missing "
                              f"anchor -> {target}")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                checked += 1
                errors.extend(check_file(os.path.join(dirpath, name), root))
    for error in errors:
        print(f"ERROR: {error}")
    print(f"checked {checked} markdown files: "
          f"{'FAILED' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
