#!/usr/bin/env python3
"""nurd_lint: the project-invariant linter.

Enforces the cross-cutting contracts the compiler cannot see (the
thread-safety annotations and clang-tidy cover lock discipline and generic
bug patterns; these rules are NURD-specific):

  wall-clock     Deterministic paths (src/core, src/eval, src/trace, src/ml,
                 src/sched) must not read wall-clock time, the C random
                 number generator, or process-global environment state. The
                 determinism contract says every result is a function of the
                 seeds; a stray steady_clock::now() or std::rand() in a fit
                 or scheduling path silently breaks bit-identical replay.
                 Timing belongs to bench/ and src/serve (wall-clock serving
                 stats), which are outside the rule's scope or allowlisted.

  unordered-iter Files that feed flag emission or metric accumulation
                 (src/eval, src/serve, src/core) must not ITERATE an
                 unordered container: iteration order is
                 implementation-defined, so any fold over it (flag sets,
                 confusion counts, float accumulation) breaks the
                 "bit-identical at any thread count" contract. Keyed lookup
                 is fine; range-for / begin() over the container is not.

  trace-access   The paper's online-information discipline: outside
                 src/trace/, code must not reach through the predictor API
                 into TraceStore/CheckpointView internals. Banned tokens are
                 `.store()` (CheckpointView's escape hatch to the whole
                 store) and `.latencies()` (ground-truth latencies, running
                 tasks included — the oracle the discipline exists to deny).
                 The documented privileged sites (the cluster simulator,
                 which plays reality; transfer learning's source jobs; the
                 FitSession featurization layer) are allowlisted with
                 justifications in scripts/nurd_lint_allowlist.txt.

  lock-table     src/common/sync.h's lock-ordering table is the authoritative
                 inventory of every `Mutex` under src/: each declaration must
                 have a `[mutex] <path-under-src>::<field>` entry documenting
                 its scope and nesting, and every entry must point at a live
                 declaration. Undocumented mutexes are reported at the
                 declaration site; stale entries at the table line (stale
                 detection only runs on a full-tree lint, since a partial
                 file list cannot prove absence).

Usage:
  python3 scripts/nurd_lint.py [--root DIR] [--allowlist FILE] [files...]

With no files, lints every .h/.cpp under <root>/src. Exit code 1 when any
finding is reported. Allowlist lines look like

  <rule> <path-relative-to-root> [token]  # justification

and suppress findings of that rule in that file (optionally only for lines
containing the token). Unused allowlist entries are reported as errors so
the file cannot rot.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# Directories whose results must be a pure function of the seeds.
DETERMINISTIC_DIRS = ("src/core", "src/eval", "src/trace", "src/ml",
                      "src/sched", "src/scenario")

# Wall-clock / global-entropy / global-state tokens banned there.
WALL_CLOCK_TOKENS = [
    "std::chrono::system_clock",
    "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock",
    "steady_clock::now",
    "system_clock::now",
    "high_resolution_clock::now",
    "std::rand",
    "std::srand",
    "std::random_device",
    "random_device",
    "std::getenv",
    "getenv(",
    "setenv(",
    "time(nullptr)",
    "time(NULL)",
    "clock()",
]

# Directories that feed flag emission / metric accumulation: iteration order
# there is part of the determinism contract.
ORDER_SENSITIVE_DIRS = ("src/eval", "src/serve", "src/core")

# Online-discipline tokens banned outside src/trace/.
TRACE_INTERNAL_TOKENS = [".store()", "->store()", ".latencies()",
                         "->latencies()"]
TRACE_DIR = "src/trace"

# The lock-ordering table lives here; entries look like
#   [mutex] serve/shard_pool.cpp::mutex_
SYNC_HEADER = "src/common/sync.h"
_MUTEX_DECL = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;")
_MUTEX_ENTRY = re.compile(r"\[mutex\]\s+([\w./-]+::\w+)")

_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)")
_LINE_COMMENT = re.compile(r"//.*$")


@dataclass
class Finding:
    path: str  # root-relative
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class AllowEntry:
    rule: str
    path: str
    token: str | None
    reason: str
    lineno: int
    used: bool = field(default=False)


def parse_allowlist(text: str) -> list[AllowEntry]:
    entries = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        parts = body.split()
        if len(parts) not in (2, 3):
            raise ValueError(
                f"allowlist line {lineno}: want '<rule> <path> [token]  "
                f"# reason', got: {raw!r}")
        if not reason.strip():
            raise ValueError(
                f"allowlist line {lineno}: entry needs a '# justification'")
        entries.append(
            AllowEntry(rule=parts[0], path=parts[1],
                       token=parts[2] if len(parts) == 3 else None,
                       reason=reason.strip(), lineno=lineno))
    return entries


def _strip_strings_and_comments(line: str, in_block_comment: bool):
    """Blanks out string/char literals, // and /* */ comment spans so token
    scans never fire on prose. Returns (scrubbed_line, still_in_block)."""
    out = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        if state == "code":
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and i + 1 < n and line[i + 1] == "/":
                state = "code"
                i += 2
                continue
            i += 1
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
            i += 1
    return "".join(out), state == "block"


def _scrubbed_lines(text: str):
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        scrubbed, in_block = _strip_strings_and_comments(raw, in_block)
        yield lineno, scrubbed


def _under(relpath: str, dirs) -> bool:
    p = relpath.replace(os.sep, "/")
    return any(p == d or p.startswith(d + "/") for d in dirs)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def check_wall_clock(relpath: str, text: str) -> list[Finding]:
    if not _under(relpath, DETERMINISTIC_DIRS):
        return []
    findings = []
    for lineno, line in _scrubbed_lines(text):
        for token in WALL_CLOCK_TOKENS:
            if token in line:
                findings.append(Finding(
                    relpath, lineno, "wall-clock",
                    f"'{token}' in a deterministic path — results must be a "
                    f"pure function of the seeds (move timing to bench/ or "
                    f"src/serve, or allowlist with a justification)"))
                break  # one finding per line is enough
    return findings


def check_unordered_iteration(relpath: str, text: str) -> list[Finding]:
    if not _under(relpath, ORDER_SENSITIVE_DIRS):
        return []
    findings = []
    # Pass 1: names declared (or aliased) as unordered containers anywhere in
    # the file — members, locals, typedef'd locals all end up here.
    unordered_names = set()
    scrubbed = list(_scrubbed_lines(text))
    for _, line in scrubbed:
        for m in _UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))
    # Pass 2: iteration over those names, or directly over an unordered
    # temporary.
    for lineno, line in scrubbed:
        hit = None
        if re.search(r"for\s*\([^)]*:\s*\w*\s*std::unordered_", line):
            hit = "range-for over an unordered container"
        else:
            for name in unordered_names:
                if re.search(rf"for\s*\([^)]*:\s*{re.escape(name)}\b", line):
                    hit = f"range-for over unordered container '{name}'"
                    break
                if re.search(rf"\b{re.escape(name)}\s*\.\s*(?:begin|cbegin)"
                             r"\s*\(", line):
                    hit = f"iterator walk over unordered container '{name}'"
                    break
        if hit:
            findings.append(Finding(
                relpath, lineno, "unordered-iter",
                f"{hit}: iteration order is implementation-defined and this "
                f"file feeds flag emission / metric accumulation — iterate a "
                f"sorted copy or an ordered container instead"))
    return findings


def check_trace_access(relpath: str, text: str) -> list[Finding]:
    if not relpath.replace(os.sep, "/").startswith("src/"):
        return []
    if _under(relpath, (TRACE_DIR,)):
        return []
    findings = []
    for lineno, line in _scrubbed_lines(text):
        for token in TRACE_INTERNAL_TOKENS:
            if token in line:
                findings.append(Finding(
                    relpath, lineno, "trace-access",
                    f"'{token}' outside src/trace/ — the online discipline "
                    f"confines TraceStore/CheckpointView internals to the "
                    f"trace layer and the documented predictor API; "
                    f"privileged sites need an allowlist entry with a "
                    f"justification"))
                break
    return findings


RULES = (check_wall_clock, check_unordered_iteration, check_trace_access)


def check_lock_table(root: str, relpaths: list[str],
                     full_tree: bool) -> list[Finding]:
    """Cross-file rule: every `Mutex` member declared under src/ must have a
    `[mutex] <path-under-src>::<field>` entry in the sync.h lock-ordering
    table; on a full-tree lint, every entry must also resolve to a live
    declaration."""
    entries: dict[str, int] = {}
    sync_path = os.path.join(root, SYNC_HEADER)
    if os.path.exists(sync_path):
        with open(sync_path, encoding="utf-8", errors="replace") as f:
            for lineno, raw in enumerate(f.read().splitlines(), 1):
                m = _MUTEX_ENTRY.search(raw)
                if m:
                    entries[m.group(1)] = lineno

    findings = []
    declared: set[str] = set()
    for relpath in relpaths:
        p = relpath.replace(os.sep, "/")
        if not p.startswith("src/"):
            continue
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        for lineno, line in _scrubbed_lines(text):
            m = _MUTEX_DECL.match(line)
            if not m:
                continue
            key = f"{p[len('src/'):]}::{m.group(1)}"
            declared.add(key)
            if key not in entries:
                findings.append(Finding(
                    relpath, lineno, "lock-table",
                    f"Mutex '{m.group(1)}' has no '[mutex] {key}' entry in "
                    f"{SYNC_HEADER}'s lock-ordering table — document its "
                    f"scope and nesting there"))
    if full_tree:
        for key, lineno in sorted(entries.items()):
            if key not in declared:
                findings.append(Finding(
                    SYNC_HEADER, lineno, "lock-table",
                    f"stale lock-table entry '[mutex] {key}': no such Mutex "
                    f"declaration under src/ — remove or update the entry"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_file(root: str, relpath: str) -> list[Finding]:
    with open(os.path.join(root, relpath), encoding="utf-8",
              errors="replace") as f:
        text = f.read()
    findings = []
    for rule in RULES:
        findings.extend(rule(relpath, text))
    return findings


def apply_allowlist(findings: list[Finding], entries: list[AllowEntry],
                    root: str) -> list[Finding]:
    kept = []
    # Re-read offending lines lazily for token-scoped entries.
    line_cache: dict[str, list[str]] = {}

    def line_text(path: str, lineno: int) -> str:
        if path not in line_cache:
            with open(os.path.join(root, path), encoding="utf-8",
                      errors="replace") as f:
                line_cache[path] = f.read().splitlines()
        lines = line_cache[path]
        return lines[lineno - 1] if 0 < lineno <= len(lines) else ""

    for finding in findings:
        suppressed = False
        for entry in entries:
            if entry.rule != finding.rule:
                continue
            if entry.path != finding.path.replace(os.sep, "/"):
                continue
            if entry.token and entry.token not in line_text(finding.path,
                                                            finding.line):
                continue
            entry.used = True
            suppressed = True
            break
        if not suppressed:
            kept.append(finding)
    return kept


def collect_files(root: str) -> list[str]:
    out = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".h", ".cpp", ".cc", ".hpp")):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


def run(root: str, allowlist_path: str | None,
        files: list[str] | None) -> tuple[list[Finding], list[AllowEntry]]:
    """Lints `files` (root-relative; default: all of src/) and returns
    (surviving findings, unused allowlist entries)."""
    entries: list[AllowEntry] = []
    if allowlist_path and os.path.exists(allowlist_path):
        with open(allowlist_path, encoding="utf-8") as f:
            entries = parse_allowlist(f.read())

    relpaths = files if files else collect_files(root)
    findings: list[Finding] = []
    for relpath in relpaths:
        findings.extend(lint_file(root, relpath))
    findings.extend(check_lock_table(root, relpaths, full_tree=files is None))
    findings = apply_allowlist(findings, entries, root)
    unused = [e for e in entries if not e.used]
    return findings, unused


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent dir)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "scripts/nurd_lint_allowlist.txt under root)")
    parser.add_argument("--no-unused-check", action="store_true",
                        help="do not fail on unused allowlist entries")
    parser.add_argument("files", nargs="*",
                        help="root-relative files (default: all of src/)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allowlist = args.allowlist or os.path.join(root, "scripts",
                                               "nurd_lint_allowlist.txt")

    findings, unused = run(root, allowlist, args.files or None)
    for finding in findings:
        print(finding.render())
    failed = bool(findings)
    if unused and not args.no_unused_check:
        for entry in unused:
            print(f"{allowlist}:{entry.lineno}: unused allowlist entry "
                  f"({entry.rule} {entry.path}) — remove it or fix the path")
        failed = True
    if failed:
        print(f"nurd_lint: {len(findings)} finding(s), "
              f"{len(unused)} unused allowlist entr(ies)", file=sys.stderr)
        return 1
    print(f"nurd_lint: clean ({len(args.files) if args.files else 'all src'}"
          f" files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
