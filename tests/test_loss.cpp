#include "ml/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace nurd::ml {
namespace {

// Finite-difference check of grad/hess for a loss at (target, score).
// Returns the analytic pair and fills fd_grad / fd_hess.
void finite_diff(const Loss& loss, const Target& target, double score,
                 double* fd_grad, double* fd_hess) {
  // Reconstruct the scalar loss from its gradient by numeric integration is
  // overkill; instead check that grad'(score) ≈ hess via differences of the
  // reported gradient, and that grad is consistent under small shifts.
  const double h = 1e-5;
  const double g_plus = loss.grad_hess(target, score + h).grad;
  const double g_minus = loss.grad_hess(target, score - h).grad;
  *fd_grad = 0.5 * (g_plus + g_minus);  // midpoint value
  *fd_hess = (g_plus - g_minus) / (2.0 * h);
}

TEST(SquaredLoss, GradHessExact) {
  SquaredLoss loss;
  const auto gh = loss.grad_hess({3.0, false}, 5.0);
  EXPECT_DOUBLE_EQ(gh.grad, 2.0);
  EXPECT_DOUBLE_EQ(gh.hess, 1.0);
}

TEST(SquaredLoss, InitScoreIsMean) {
  SquaredLoss loss;
  const std::vector<Target> t{{1.0, false}, {3.0, false}};
  EXPECT_DOUBLE_EQ(loss.init_score(t), 2.0);
}

TEST(LogisticLoss, GradAtZeroScore) {
  LogisticLoss loss;
  const auto gh = loss.grad_hess({1.0, false}, 0.0);
  EXPECT_DOUBLE_EQ(gh.grad, -0.5);  // p − y = 0.5 − 1
  EXPECT_DOUBLE_EQ(gh.hess, 0.25);
}

TEST(LogisticLoss, InitScoreIsLogOdds) {
  LogisticLoss loss;
  const std::vector<Target> t{{1.0, false}, {1.0, false}, {0.0, false},
                              {0.0, false}};
  EXPECT_NEAR(loss.init_score(t), 0.0, 1e-12);
}

TEST(LogisticLoss, TransformIsSigmoid) {
  LogisticLoss loss;
  EXPECT_DOUBLE_EQ(loss.transform(0.0), 0.5);
}

class LossConsistencyTest
    : public ::testing::TestWithParam<std::tuple<double, bool, double>> {};

TEST_P(LossConsistencyTest, TobitHessianMatchesGradientDerivative) {
  const auto [value, censored, score] = GetParam();
  TobitLoss loss(2.0);
  const Target target{value, censored};
  const auto gh = loss.grad_hess(target, score);
  double fd_grad = 0.0, fd_hess = 0.0;
  finite_diff(loss, target, score, &fd_grad, &fd_hess);
  EXPECT_NEAR(gh.grad, fd_grad, 1e-6 * std::max(1.0, std::abs(fd_grad)));
  EXPECT_NEAR(gh.hess, fd_hess, 1e-4 * std::max(1.0, std::abs(fd_hess)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossConsistencyTest,
    ::testing::Values(std::make_tuple(1.0, false, 0.0),
                      std::make_tuple(1.0, false, 5.0),
                      std::make_tuple(1.0, true, 0.0),
                      std::make_tuple(1.0, true, 3.0),
                      std::make_tuple(10.0, true, 2.0),
                      std::make_tuple(-2.0, true, 1.0),
                      std::make_tuple(4.0, true, -6.0)));

TEST(TobitLoss, UncensoredMatchesSquaredLoss) {
  TobitLoss loss(7.0);
  SquaredLoss sq;
  // The σ²-scaled Tobit loss reduces exactly to the squared loss for
  // uncensored samples.
  const auto a = loss.grad_hess({3.0, false}, 5.0);
  const auto b = sq.grad_hess({3.0, false}, 5.0);
  EXPECT_DOUBLE_EQ(a.grad, b.grad);
  EXPECT_DOUBLE_EQ(a.hess, b.hess);
}

TEST(TobitLoss, CensoredGradPullsUp) {
  TobitLoss loss(1.0);
  // Score far below the censoring point: strong negative gradient
  // (boosting steps −grad, i.e. upward).
  const auto gh = loss.grad_hess({10.0, true}, 0.0);
  EXPECT_LT(gh.grad, 0.0);
  EXPECT_GT(gh.hess, 0.0);
}

TEST(TobitLoss, CensoredGradVanishesAboveCensorPoint) {
  TobitLoss loss(1.0);
  // Score far above the censoring point: the observation is consistent,
  // gradient ≈ 0.
  const auto gh = loss.grad_hess({0.0, true}, 8.0);
  EXPECT_NEAR(gh.grad, 0.0, 1e-8);
}

TEST(TobitLoss, InverseMillsStableDeepTail) {
  // φ(u)/Φ(u) → −u as u → −∞; must not overflow or yield NaN.
  for (double u : {-5.0, -10.0, -50.0, -300.0}) {
    const double m = TobitLoss::inverse_mills(u);
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_NEAR(m, -u, std::abs(u) * 0.05 + 0.3);
  }
}

TEST(TobitLoss, InverseMillsKnownValues) {
  EXPECT_NEAR(TobitLoss::inverse_mills(0.0), 0.7978845608, 1e-9);
  EXPECT_NEAR(TobitLoss::inverse_mills(2.0), normal_pdf(2.0) / normal_cdf(2.0),
              1e-12);
}

TEST(TobitLoss, InitScoreUsesUncensoredMean) {
  TobitLoss loss(1.0);
  const std::vector<Target> t{{2.0, false}, {4.0, false}, {100.0, true}};
  EXPECT_DOUBLE_EQ(loss.init_score(t), 3.0);
}

TEST(TobitLoss, RejectsNonPositiveSigma) {
  EXPECT_THROW(TobitLoss(0.0), std::invalid_argument);
  EXPECT_THROW(TobitLoss(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::ml
