#include <gtest/gtest.h>

#include <cmath>

#include "censored/coxph.h"
#include "censored/tobit.h"
#include "common/rng.h"

namespace nurd::censored {
namespace {

TEST(Tobit, RecoversLinearModelWithoutCensoring) {
  Rng rng(51);
  const std::size_t n = 400;
  Matrix x(n, 2);
  std::vector<ml::Target> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    t[i] = {10.0 + 3.0 * x(i, 0) - 2.0 * x(i, 1) + rng.normal(0.0, 0.2),
            false};
  }
  TobitRegression model;
  model.fit(x, t);
  const std::vector<double> probe{1.0, 1.0};
  EXPECT_NEAR(model.predict(probe), 11.0, 0.3);
}

TEST(Tobit, CensoringAwareBeatsNaiveOnCensoredData) {
  // True model y = 5 + 4x; censor every observation above 6. A naive
  // regression on the censored values underestimates the slope badly; Tobit
  // should recover predictions beyond the censoring point.
  Rng rng(52);
  const std::size_t n = 500;
  Matrix x(n, 1);
  std::vector<ml::Target> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    const double y = 5.0 + 4.0 * x(i, 0) + rng.normal(0.0, 0.3);
    if (y > 6.0) {
      t[i] = {6.0, true};
    } else {
      t[i] = {y, false};
    }
  }
  TobitRegression model;
  model.fit(x, t);
  const std::vector<double> probe{1.0};
  // True value at x = 1 is 9, far above the censoring point 6.
  EXPECT_GT(model.predict(probe), 7.5);
}

TEST(Tobit, SigmaEstimateReasonable) {
  Rng rng(53);
  const std::size_t n = 400;
  Matrix x(n, 1);
  std::vector<ml::Target> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    t[i] = {2.0 * x(i, 0) + rng.normal(0.0, 1.5), false};
  }
  TobitRegression model;
  model.fit(x, t);
  EXPECT_NEAR(model.sigma(), 1.5, 0.5);
}

TEST(Tobit, PredictBeforeFitThrows) {
  TobitRegression model;
  const std::vector<double> row{1.0};
  EXPECT_THROW(model.predict(row), std::invalid_argument);
}

TEST(Tobit, RejectsMismatchedInput) {
  TobitRegression model;
  Matrix x(3, 1);
  std::vector<ml::Target> t(2);
  EXPECT_THROW(model.fit(x, t), std::invalid_argument);
}

// Exponential survival data with rate λ(x) = exp(β·x): CoxPH should recover
// the sign and rough magnitude of β.
struct SurvivalProblem {
  Matrix x;
  std::vector<SurvivalObservation> obs;
};

SurvivalProblem exp_survival(std::size_t n, double beta, double censor_at,
                             std::uint64_t seed) {
  Rng rng(seed);
  SurvivalProblem p;
  p.x = Matrix(n, 1);
  p.obs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.normal();
    const double rate = std::exp(beta * p.x(i, 0));
    const double t = rng.exponential(rate);
    if (t > censor_at) {
      p.obs[i] = {censor_at, false};
    } else {
      p.obs[i] = {t, true};
    }
  }
  return p;
}

TEST(CoxPh, RecoversHazardDirection) {
  const auto p = exp_survival(600, 1.0, 50.0, 54);
  CoxPh model;
  model.fit(p.x, p.obs);
  ASSERT_EQ(model.beta().size(), 1u);
  // Higher x ⇒ higher hazard ⇒ positive β (features standardized, sign kept).
  EXPECT_GT(model.beta()[0], 0.5);
  EXPECT_LT(model.beta()[0], 2.0);
}

TEST(CoxPh, BaselineHazardMonotone) {
  const auto p = exp_survival(300, 0.5, 10.0, 55);
  CoxPh model;
  model.fit(p.x, p.obs);
  double prev = -1.0;
  for (double t : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double h = model.baseline_cumulative_hazard(t);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(CoxPh, SurvivalIsProbabilityAndDecreasing) {
  const auto p = exp_survival(300, 0.5, 10.0, 56);
  CoxPh model;
  model.fit(p.x, p.obs);
  const std::vector<double> probe{0.0};
  double prev = 1.1;
  for (double t : {0.1, 1.0, 5.0, 20.0, 100.0}) {
    const double s = model.survival(t, probe);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

TEST(CoxPh, HigherRiskLowerSurvival) {
  const auto p = exp_survival(400, 1.0, 30.0, 57);
  CoxPh model;
  model.fit(p.x, p.obs);
  const std::vector<double> fast{2.0};   // high hazard
  const std::vector<double> slow{-2.0};  // low hazard
  EXPECT_LT(model.survival(1.0, fast), model.survival(1.0, slow));
}

TEST(CoxPh, ExtrapolatesBeyondObservedHorizon) {
  const auto p = exp_survival(200, 0.5, 2.0, 58);
  CoxPh model;
  model.fit(p.x, p.obs);
  // Beyond the last event time the cumulative hazard keeps growing at the
  // average observed rate.
  const double h_at_2 = model.baseline_cumulative_hazard(2.0);
  const double h_at_4 = model.baseline_cumulative_hazard(4.0);
  EXPECT_GT(h_at_4, h_at_2 * 1.5);
}

TEST(CoxPh, AllCensoredYieldsZeroHazard) {
  Matrix x(5, 1, 0.0);
  std::vector<SurvivalObservation> obs(5, {1.0, false});
  CoxPh model;
  model.fit(x, obs);
  EXPECT_DOUBLE_EQ(model.baseline_cumulative_hazard(10.0), 0.0);
  EXPECT_DOUBLE_EQ(model.survival(10.0, x.row(0)), 1.0);
}

TEST(CoxPh, RejectsMismatchedInput) {
  CoxPh model;
  Matrix x(3, 1);
  std::vector<SurvivalObservation> obs(2);
  EXPECT_THROW(model.fit(x, obs), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::censored
