// Property suite for the foreign-trace adapter (scenario/trace_adapter.h).
//
// Two property families:
//   * ROUND-TRIP — a generator store exported to a foreign task-event CSV
//     (Google- and Alibaba-style schemas, including the microsecond time
//     unit) and ingested back is BITWISE the original: latencies, checkpoint
//     horizons, freeze checkpoints, every row version, and the stored
//     version count.
//   * FUZZ — seeded random corruption of well-formed exports (truncated
//     fields, NaNs, garbage cells, negative and out-of-order timestamps,
//     duplicated rows, shuffled row order) never crashes the adapter, every
//     drop is counted under exactly one reason, and the accounting identity
//       rows_read == rows_ingested + stats.dropped()
//     holds on every iteration. Runs under the ASan/UBSan CI leg.
#include "scenario/trace_adapter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/generator.h"
#include "trace/job.h"

namespace nurd::scenario {
namespace {

trace::Job make_google_job(std::uint64_t seed = 7) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.seed = seed;
  config.min_tasks = 40;
  config.max_tasks = 80;
  trace::GoogleLikeGenerator gen(config);
  return gen.generate(1, 1).front();
}

trace::Job make_alibaba_job(std::uint64_t seed = 11) {
  auto config = trace::AlibabaLikeGenerator::alibaba_defaults();
  config.seed = seed;
  config.min_tasks = 40;
  config.max_tasks = 80;
  trace::AlibabaLikeGenerator gen(config);
  return gen.generate(1, 1).front();
}

std::string export_csv(const trace::Job& job, const ColumnMap& map) {
  std::ostringstream out;
  write_foreign_csv(out, job, map);
  return out.str();
}

IngestResult ingest(const std::string& csv, const ColumnMap& map) {
  std::istringstream in(csv);
  return ingest_foreign_csv(in, map);
}

void expect_round_trip(const trace::Job& job, const ColumnMap& map) {
  const auto result = ingest(export_csv(job, map), map);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.dropped(), 0u);
  EXPECT_EQ(result.stats.rows_read, result.stats.rows_ingested);
  ASSERT_EQ(result.job.task_count(), job.task_count());
  // Compacted ids of a clean export are the identity mapping.
  for (std::size_t i = 0; i < result.original_task_ids.size(); ++i) {
    EXPECT_EQ(result.original_task_ids[i], i);
  }
  EXPECT_TRUE(stores_bitwise_equal(job.trace, result.job.trace));
}

TEST(TraceAdapterRoundTrip, GoogleSchemaBitIdentical) {
  const auto job = make_google_job();
  expect_round_trip(job, google_task_events_columns(job.feature_count()));
}

TEST(TraceAdapterRoundTrip, AlibabaSchemaBitIdentical) {
  const auto job = make_alibaba_job();
  expect_round_trip(job, alibaba_instance_columns(job.feature_count()));
}

TEST(TraceAdapterRoundTrip, ManySeedsBothSchemas) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = make_google_job(seed);
    expect_round_trip(g, google_task_events_columns(g.feature_count()));
    const auto a = make_alibaba_job(seed);
    expect_round_trip(a, alibaba_instance_columns(a.feature_count()));
  }
}

TEST(TraceAdapterRoundTrip, DecimalExponentShiftIsExact) {
  // Unit conversion happens in decimal text, where powers of ten are exact:
  // shifting +6 (seconds -> microseconds) and back -6 must reproduce every
  // latency and horizon BITWISE. (A binary multiply by 1e-6 would not — the
  // two units' ulp grids interleave, and some doubles have no representable
  // microsecond preimage at all.)
  const auto job = make_google_job(3);
  const auto round_trip = [](double internal) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", internal);
    const auto micros = shift_decimal_exponent(buf, 6);
    const auto back = shift_decimal_exponent(micros, -6);
    return std::strtod(back.c_str(), nullptr);
  };
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    EXPECT_EQ(round_trip(job.latency(i)), job.latency(i));
  }
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    EXPECT_EQ(round_trip(job.trace.tau_run(t)), job.trace.tau_run(t));
  }
  EXPECT_EQ(shift_decimal_exponent("845.261", 6), "845.261e6");
  EXPECT_EQ(shift_decimal_exponent("8.45e+02", 6), "8.45e8");
  EXPECT_EQ(shift_decimal_exponent("8.45e+02", 0), "8.45e+02");
}

TEST(TraceAdapterRoundTrip, RowOrderDoesNotMatter) {
  // Task-event tables are only approximately sorted in the wild; ingestion
  // must be a pure function of the row SET.
  const auto job = make_google_job(5);
  const auto map = google_task_events_columns(job.feature_count());
  std::vector<std::string> lines;
  {
    std::istringstream in(export_csv(job, map));
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  Rng rng(99);
  const auto perm = rng.permutation(lines.size());
  std::string shuffled;
  for (const std::size_t i : perm) shuffled += lines[i] + "\n";
  const auto result = ingest(shuffled, map);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.dropped(), 0u);
  EXPECT_TRUE(stores_bitwise_equal(job.trace, result.job.trace));
}

// ---- malformed-data policy -------------------------------------------------

ColumnMap tiny_map() {
  ColumnMap map;
  map.name = "tiny";
  map.columns = 5;
  map.time_col = 0;
  map.task_col = 1;
  map.event_col = 2;
  map.feature_cols = {3, 4};
  map.measure_event = "M";
  map.finish_event = "F";
  return map;
}

TEST(TraceAdapterPolicy, CountsEachDropReasonOnce) {
  const std::string csv =
      "1.0,0,M,0.5,0.5\n"        // good measure
      "2.0,0,F,1.0,1.0\n"        // good finish
      "1.0,1,M,0.5\n"            // bad cell count
      "1.0,x,M,0.5,0.5\n"        // unparsable task id
      "oops,1,M,0.5,0.5\n"       // unparsable time
      "nan,1,M,0.5,0.5\n"        // non-finite time
      "-3.0,1,M,0.5,0.5\n"       // non-positive time
      "1.0,1,WAT,0.5,0.5\n"      // unknown event
      "1.0,1,M,0.5,nan\n"        // non-finite feature
      "1.0,0,M,9.0,9.0\n"        // duplicate (task 0, t=1) measurement
      "3.0,0,M,2.0,2.0\n"        // measurement after task 0 finished
      "1.5,7,M,0.1,0.1\n";       // orphan: task 7 never finishes
  const auto result = ingest(csv, tiny_map());
  ASSERT_TRUE(result.ok) << result.error;
  const AdapterStats& s = result.stats;
  EXPECT_EQ(s.rows_read, 12u);
  EXPECT_EQ(s.rows_ingested, 2u);
  EXPECT_EQ(s.bad_cell_count, 1u);
  EXPECT_EQ(s.unparsable_number, 2u);  // task id + time
  EXPECT_EQ(s.non_finite, 2u);         // time + feature
  EXPECT_EQ(s.bad_time, 1u);
  EXPECT_EQ(s.unknown_event, 1u);
  EXPECT_EQ(s.duplicate_row, 1u);
  EXPECT_EQ(s.post_freeze_rows, 1u);
  EXPECT_EQ(s.orphan_rows, 1u);
  EXPECT_EQ(s.tasks_dropped, 1u);
  EXPECT_EQ(s.rows_read, s.rows_ingested + s.dropped());
  EXPECT_EQ(result.job.task_count(), 1u);
  EXPECT_EQ(result.original_task_ids, (std::vector<std::uint64_t>{0}));
  EXPECT_DOUBLE_EQ(result.job.latency(0), 2.0);
}

TEST(TraceAdapterPolicy, DuplicateFinishKeepsFirst) {
  const std::string csv =
      "1.0,0,M,0.5,0.5\n"
      "2.0,0,F,1.0,1.0\n"
      "5.0,0,F,9.0,9.0\n";  // second finish dropped, first wins
  const auto result = ingest(csv, tiny_map());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stats.duplicate_row, 1u);
  EXPECT_DOUBLE_EQ(result.job.latency(0), 2.0);
}

TEST(TraceAdapterPolicy, NoFinishedTaskFailsCleanly) {
  const auto result = ingest("1.0,0,M,0.5,0.5\n", tiny_map());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(result.stats.rows_read,
            result.stats.rows_ingested + result.stats.dropped());
}

TEST(TraceAdapterPolicy, MissingGridCellsCarryForward) {
  // Task 1 has no measurement at t=2; its t=1 observation carries forward.
  const std::string csv =
      "1.0,0,M,1.0,1.0\n"
      "2.0,0,M,2.0,2.0\n"
      "9.0,0,F,3.0,3.0\n"
      "1.0,1,M,7.0,7.0\n"
      "9.5,1,F,8.0,8.0\n";
  const auto result = ingest(csv, tiny_map());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stats.carried_forward, 1u);
  ASSERT_EQ(result.job.checkpoint_count(), 2u);
  const auto row = result.job.trace.row(1, 1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row[1], 7.0);
}

TEST(TraceAdapterPolicy, InvalidColumnMapThrows) {
  auto broken = tiny_map();
  broken.feature_cols = {0, 3};  // collides with time_col
  std::istringstream in("");
  EXPECT_THROW(ingest_foreign_csv(in, broken), std::invalid_argument);
  broken = tiny_map();
  broken.time_power10 = 99;
  std::istringstream in2("");
  EXPECT_THROW(ingest_foreign_csv(in2, broken), std::invalid_argument);
}

// ---- fuzz ------------------------------------------------------------------

// Random structured corruption of a clean export. Each round applies a
// random batch of mutations and asserts only the INVARIANTS: no crash, the
// accounting identity, and a finalized store whenever ok.
TEST(TraceAdapterFuzz, CorruptedExportsNeverCrashAndAlwaysBalance) {
  const auto job = make_google_job(13);
  const auto map = google_task_events_columns(job.feature_count());
  std::vector<std::string> clean;
  {
    std::istringstream in(export_csv(job, map));
    std::string line;
    while (std::getline(in, line)) clean.push_back(line);
  }
  Rng rng(2024);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::string> lines = clean;
    const int mutations = static_cast<int>(rng.uniform_int(1, 20));
    for (int m = 0; m < mutations; ++m) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 1));
      switch (rng.uniform_int(0, 7)) {
        case 0:  // truncate the line mid-field
          lines[at] = lines[at].substr(
              0, static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(lines[at].size()))));
          break;
        case 1:  // NaN into a random cell
          lines[at] = "nan" + lines[at].substr(lines[at].find(','));
          break;
        case 2:  // pure garbage
          lines[at] = "<<>>garbage,,,???";
          break;
        case 3:  // negative timestamp
          lines[at] = "-" + lines[at];
          break;
        case 4:  // duplicate a row
          lines.push_back(lines[at]);
          break;
        case 5:  // blank line (not a data row)
          lines[at].clear();
          break;
        case 6:  // unknown event token
          lines.push_back(lines[at] + ",tail");  // also wrong cell count
          break;
        case 7: {  // swap two rows (out-of-order timestamps)
          const auto other = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(lines.size()) - 1));
          std::swap(lines[at], lines[other]);
          break;
        }
      }
    }
    std::string csv;
    for (const auto& line : lines) csv += line + "\n";
    const auto result = ingest(csv, map);  // must not crash or throw
    EXPECT_EQ(result.stats.rows_read,
              result.stats.rows_ingested + result.stats.dropped())
        << "round " << round;
    if (result.ok) {
      EXPECT_TRUE(result.job.trace.finalized());
      EXPECT_GT(result.job.task_count(), 0u);
      for (std::size_t i = 0; i < result.job.task_count(); ++i) {
        EXPECT_TRUE(std::isfinite(result.job.latency(i)));
        EXPECT_GT(result.job.latency(i), 0.0);
      }
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(TraceAdapterFuzz, RandomBytesNeverCrash) {
  const auto map = tiny_map();
  Rng rng(4242);
  const std::string alphabet = "0123456789.,-+eEnaif\n \tXF M";
  for (int round = 0; round < 40; ++round) {
    std::string csv;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    for (std::size_t i = 0; i < len; ++i) {
      csv += alphabet[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    const auto result = ingest(csv, map);
    EXPECT_EQ(result.stats.rows_read,
              result.stats.rows_ingested + result.stats.dropped());
  }
}

TEST(TraceAdapter, UnreadablePathFailsCleanly) {
  const auto result =
      load_foreign_csv("/nonexistent/no-such-file.csv", tiny_map());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace nurd::scenario
