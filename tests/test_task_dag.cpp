// TaskDag contracts the serving layer leans on:
//   * every pipeline edge is honored under randomized per-stage delays —
//     in particular Refit(j,t+1) never starts before Refit(j,t) retired;
//   * the per-job in-flight window never exceeds W;
//   * the emitted flag sequence is bit-identical to the 1-worker run across
//     100 shuffled schedules (seeded delays × varying worker counts);
//   * cancellation and stage errors retire every admitted checkpoint exactly
//     once and leave other jobs untouched.
#include "core/task_dag.h"

#include <gtest/gtest.h>

#include <array>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace nurd::core {
namespace {

// A miniature pipeline with the exact memory discipline the serving layer
// uses: per-job scratch RINGS of `window` cells. Featurize writes a cell,
// Refit folds it into the model chain, Predict scores into a second ring,
// Flag appends to the job's output. Stages take no locks — correctness (and
// the determinism assertion) rests entirely on the DAG edges.
struct PipelineSim {
  PipelineSim(std::size_t jobs, std::size_t checkpoints, TaskDagConfig config)
      : config(config),
        checkpoints(checkpoints),
        model(jobs, 0),
        feat(jobs, std::vector<std::uint64_t>(config.window, 0)),
        pred(jobs, std::vector<std::uint64_t>(config.window, 0)),
        flags(jobs),
        done(jobs),
        inflight(jobs),
        delays_us(jobs) {
    for (std::size_t j = 0; j < jobs; ++j) {
      flags[j].reserve(checkpoints);
      for (auto& stage : delays_us[j]) stage.assign(checkpoints, 0);
    }
  }

  void seed_delays(std::uint32_t seed, std::uint32_t max_us) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> dist(0, max_us);
    for (auto& job : delays_us) {
      for (auto& stage : job) {
        for (auto& d : stage) d = dist(rng);
      }
    }
  }

  // Start-of-stage edge asserts, phrased against per-(job,stage) retired
  // counters. Each stage chain is serialized by its own edge, so the
  // equality checks cannot race.
  void check_edges(const TaskKey& k) {
    const std::size_t t = k.checkpoint;
    const auto& d = done[k.job];
    auto expect = [&](bool ok) {
      if (!ok) violations.fetch_add(1);
    };
    switch (k.stage) {
      case Stage::kFeaturize:
        expect(d[0].load() == t);  // Featurize chain in order
        expect(t < config.featurize_ahead ||
               d[1].load() >= t - config.featurize_ahead + 1);
        expect(t < config.window || d[3].load() >= t - config.window + 1);
        break;
      case Stage::kRefit:
        expect(d[0].load() >= t + 1);  // Featurize(t) done
        expect(d[1].load() == t);      // Refit(t-1) RETIRED before this start
        expect(d[2].load() >= t);      // Predict(t-1) done
        break;
      case Stage::kPredict:
        expect(d[1].load() >= t + 1);       // Refit(t) done
        expect(t == 0 || d[3].load() >= t);  // Flag(t-1) done
        expect(d[2].load() == t);
        break;
      case Stage::kFlag:
        expect(d[2].load() >= t + 1);  // Predict(t) done
        expect(d[3].load() == t);      // flag order
        break;
    }
  }

  void run_stage(const TaskKey& k) {
    check_edges(k);
    const std::size_t t = k.checkpoint;
    const std::size_t cell = t % config.window;
    const auto delay = delays_us[k.job][static_cast<std::size_t>(k.stage)][t];
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    switch (k.stage) {
      case Stage::kFeaturize: {
        const int now = inflight[k.job].fetch_add(1) + 1;
        if (now > static_cast<int>(config.window)) {
          window_violations.fetch_add(1);
        }
        feat[k.job][cell] = (k.job + 1) * 0x9e3779b97f4a7c15ULL + t;
        break;
      }
      case Stage::kRefit:
        model[k.job] = model[k.job] * 1315423911ULL + feat[k.job][cell];
        break;
      case Stage::kPredict:
        pred[k.job][cell] = model[k.job] ^ (t * 2654435761ULL);
        break;
      case Stage::kFlag:
        flags[k.job].push_back(pred[k.job][cell]);
        inflight[k.job].fetch_sub(1);
        break;
    }
    done[k.job][static_cast<std::size_t>(k.stage)].fetch_add(1);
  }

  TaskDagConfig config;
  std::size_t checkpoints;
  std::vector<std::uint64_t> model;
  std::vector<std::vector<std::uint64_t>> feat;
  std::vector<std::vector<std::uint64_t>> pred;
  std::vector<std::vector<std::uint64_t>> flags;
  std::vector<std::array<std::atomic<std::size_t>, kStageCount>> done;
  std::vector<std::atomic<int>> inflight;
  std::vector<std::array<std::vector<std::uint32_t>, kStageCount>> delays_us;
  std::atomic<int> violations{0};
  std::atomic<int> window_violations{0};
};

// Drives `jobs` × `checkpoints` through a fresh dag and returns the flag
// sequences. Admissions interleave across jobs (round-robin), as the serving
// layer's arrival order does.
std::vector<std::vector<std::uint64_t>> run_pipeline(std::size_t jobs,
                                                     std::size_t checkpoints,
                                                     TaskDagConfig config,
                                                     std::uint32_t delay_seed,
                                                     std::uint32_t max_delay_us) {
  PipelineSim sim(jobs, checkpoints, config);
  if (max_delay_us > 0) sim.seed_delays(delay_seed, max_delay_us);
  ThreadPool pool(config.workers);
  TaskDag dag(jobs, config, [&](const TaskKey& k) { sim.run_stage(k); });
  dag.start(pool);
  for (std::size_t t = 0; t < checkpoints; ++t) {
    for (std::size_t j = 0; j < jobs; ++j) {
      EXPECT_TRUE(dag.admit(j, t)) << "admit refused without cancellation";
    }
  }
  dag.close();
  dag.wait();
  EXPECT_EQ(sim.violations.load(), 0) << "dependency edge violated";
  EXPECT_EQ(sim.window_violations.load(), 0)
      << "more than window=" << config.window << " checkpoints in flight";
  return sim.flags;
}

TEST(TaskDag, StageNamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kFeaturize), "featurize");
  EXPECT_STREQ(stage_name(Stage::kRefit), "refit");
  EXPECT_STREQ(stage_name(Stage::kPredict), "predict");
  EXPECT_STREQ(stage_name(Stage::kFlag), "flag");
}

TEST(TaskDag, SingleWorkerRunsEveryStageInOrder) {
  TaskDagConfig config;
  config.workers = 1;
  const auto flags = run_pipeline(2, 8, config, 0, 0);
  ASSERT_EQ(flags.size(), 2u);
  for (const auto& f : flags) EXPECT_EQ(f.size(), 8u);
}

// The satellite pin: randomized seeded per-stage delays, 100 shuffled
// schedules across worker counts, and (a) Refit(j,t+1) never starts before
// Refit(j,t) retires — asserted inside check_edges — while (b) the flag
// sequences stay bit-identical to the 1-worker zero-delay reference.
TEST(TaskDag, DeterministicFlagsAcross100ShuffledSchedules) {
  constexpr std::size_t kJobs = 3;
  constexpr std::size_t kCkpts = 12;
  TaskDagConfig ref_config;
  ref_config.workers = 1;
  const auto reference = run_pipeline(kJobs, kCkpts, ref_config, 0, 0);

  const std::size_t worker_grid[] = {2, 3, 4, 8};
  for (std::uint32_t schedule = 0; schedule < 100; ++schedule) {
    TaskDagConfig config;
    config.workers = worker_grid[schedule % 4];
    const auto flags =
        run_pipeline(kJobs, kCkpts, config, /*delay_seed=*/schedule * 7919u + 1,
                     /*max_delay_us=*/120);
    ASSERT_EQ(flags, reference) << "schedule " << schedule << " diverged at "
                                << config.workers << " workers";
  }
}

TEST(TaskDag, WindowOfOneSerializesCheckpoints) {
  TaskDagConfig config;
  config.workers = 4;
  config.window = 1;
  config.featurize_ahead = 1;
  TaskDagConfig ref_config;
  ref_config.workers = 1;
  const auto reference = run_pipeline(2, 6, ref_config, 0, 0);
  const auto flags = run_pipeline(2, 6, config, 11, 80);
  EXPECT_EQ(flags, reference);
}

TEST(TaskDag, RetireFiresExactlyOncePerCheckpoint) {
  constexpr std::size_t kJobs = 2;
  constexpr std::size_t kCkpts = 9;
  std::mutex mu;
  std::vector<std::vector<std::size_t>> retired(kJobs);
  std::vector<int> incomplete(kJobs, 0);

  PipelineSim sim(kJobs, kCkpts, TaskDagConfig{});
  TaskDagConfig config;
  config.workers = 3;
  ThreadPool pool(config.workers);
  TaskDag dag(
      kJobs, config, [&](const TaskKey& k) { sim.run_stage(k); },
      [&](std::size_t job, std::size_t checkpoint, bool completed) {
        std::lock_guard<std::mutex> lock(mu);
        retired[job].push_back(checkpoint);
        if (!completed) ++incomplete[job];
      });
  dag.start(pool);
  for (std::size_t t = 0; t < kCkpts; ++t) {
    for (std::size_t j = 0; j < kJobs; ++j) EXPECT_TRUE(dag.admit(j, t));
  }
  dag.close();
  dag.wait();
  for (std::size_t j = 0; j < kJobs; ++j) {
    ASSERT_EQ(retired[j].size(), kCkpts);
    EXPECT_EQ(incomplete[j], 0);
    // Retire callbacks run outside the registry lock, so consecutive
    // checkpoints' notifications may interleave — the contract is exactly
    // once per checkpoint, not callback order (order belongs to the Flag
    // stage bodies, pinned by the determinism tests).
    std::sort(retired[j].begin(), retired[j].end());
    for (std::size_t t = 0; t < kCkpts; ++t) {
      EXPECT_EQ(retired[j][t], t) << "each checkpoint retires exactly once";
    }
  }
}

TEST(TaskDag, CancelDropsRemainingCheckpointsAndRefusesNewAdmits) {
  constexpr std::size_t kJobs = 2;
  constexpr std::size_t kCkpts = 16;
  std::mutex mu;
  std::vector<std::set<std::size_t>> completed(kJobs), dropped(kJobs);

  PipelineSim sim(kJobs, kCkpts, TaskDagConfig{});
  sim.seed_delays(/*seed=*/5, /*max_us=*/300);  // keep work in flight
  TaskDagConfig config;
  config.workers = 4;
  ThreadPool pool(config.workers);
  TaskDag dag(
      kJobs, config, [&](const TaskKey& k) { sim.run_stage(k); },
      [&](std::size_t job, std::size_t checkpoint, bool ok) {
        std::lock_guard<std::mutex> lock(mu);
        (ok ? completed : dropped)[job].insert(checkpoint);
      });
  dag.start(pool);
  std::size_t admitted0 = 0;
  for (std::size_t t = 0; t < kCkpts; ++t) {
    if (dag.admit(0, t)) ++admitted0;
    EXPECT_TRUE(dag.admit(1, t));
    if (t == kCkpts / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      dag.cancel_job(0);
      EXPECT_FALSE(dag.admit(0, t + 1)) << "cancelled job must refuse admits";
      break;
    }
  }
  for (std::size_t t = kCkpts / 2 + 1; t < kCkpts; ++t) {
    EXPECT_TRUE(dag.admit(1, t));
  }
  dag.close();
  dag.wait();

  // Job 0: every admitted checkpoint retired exactly once, as completed or
  // dropped; nothing retired twice.
  EXPECT_EQ(completed[0].size() + dropped[0].size(), admitted0);
  for (const auto t : completed[0]) EXPECT_EQ(dropped[0].count(t), 0u);
  // Job 1 is untouched: all checkpoints complete.
  EXPECT_EQ(completed[1].size(), kCkpts);
  EXPECT_TRUE(dropped[1].empty());
}

TEST(TaskDag, StageErrorCancelsItsJobOnly) {
  constexpr std::size_t kJobs = 2;
  constexpr std::size_t kCkpts = 10;
  std::mutex mu;
  std::vector<std::set<std::size_t>> completed(kJobs), dropped(kJobs);
  std::atomic<int> errors{0};
  std::string error_what;

  PipelineSim sim(kJobs, kCkpts, TaskDagConfig{});
  TaskDagConfig config;
  config.workers = 3;
  ThreadPool pool(config.workers);
  TaskDag dag(
      kJobs, config,
      [&](const TaskKey& k) {
        if (k.job == 1 && k.checkpoint == 3 && k.stage == Stage::kRefit) {
          throw std::runtime_error("refit exploded");
        }
        sim.run_stage(k);
      },
      [&](std::size_t job, std::size_t checkpoint, bool ok) {
        std::lock_guard<std::mutex> lock(mu);
        (ok ? completed : dropped)[job].insert(checkpoint);
      },
      [&](std::size_t job, std::exception_ptr error) {
        EXPECT_EQ(job, 1u);
        errors.fetch_add(1);
        try {
          std::rethrow_exception(error);
        } catch (const std::runtime_error& e) {
          std::lock_guard<std::mutex> lock(mu);
          error_what = e.what();
        }
      });
  dag.start(pool);
  for (std::size_t t = 0; t < kCkpts; ++t) {
    for (std::size_t j = 0; j < kJobs; ++j) dag.admit(j, t);
  }
  dag.close();
  dag.wait();

  EXPECT_EQ(errors.load(), 1);
  EXPECT_EQ(error_what, "refit exploded");
  // The healthy job is untouched.
  EXPECT_EQ(completed[0].size(), kCkpts);
  EXPECT_TRUE(dropped[0].empty());
  // The failed job retired every admitted checkpoint exactly once, and the
  // failing checkpoint itself was dropped, not completed.
  std::set<std::size_t> all;
  for (const auto t : completed[1]) EXPECT_TRUE(all.insert(t).second);
  for (const auto t : dropped[1]) EXPECT_TRUE(all.insert(t).second);
  EXPECT_EQ(dropped[1].count(3), 1u);
  EXPECT_GE(dropped[1].size(), kCkpts - 3);
}

TEST(TaskDag, WaitReturnsImmediatelyWhenNothingAdmitted) {
  ThreadPool pool(2);
  TaskDagConfig config;
  config.workers = 2;
  TaskDag dag(1, config, [](const TaskKey&) {});
  dag.start(pool);
  dag.close();
  dag.wait();  // must not hang
}

// The migration hook: a job re-placed by the serving fleet resumes
// mid-stream on its new shard's DAG. begin_job_at(job, first) rebases the
// job so checkpoint `first` admits with every pre-boundary edge already
// satisfied, and the stage chains run in order from there.
TEST(TaskDag, BeginJobAtRunsAMidStreamSliceInOrder) {
  constexpr std::size_t kFirst = 5;
  constexpr std::size_t kCkpts = 9;  // serve checkpoints 5..8
  std::mutex mutex;
  std::vector<std::pair<Stage, std::size_t>> order;

  ThreadPool pool(3);
  TaskDagConfig config;
  config.workers = 3;
  config.window = 2;
  TaskDag dag(1, config, [&](const TaskKey& k) {
    std::lock_guard<std::mutex> lock(mutex);
    order.emplace_back(k.stage, k.checkpoint);
  });
  dag.start(pool);
  dag.begin_job_at(0, kFirst);
  for (std::size_t t = kFirst; t < kCkpts; ++t) {
    EXPECT_TRUE(dag.admit(0, t));
  }
  dag.close();
  dag.wait();

  ASSERT_EQ(order.size(), (kCkpts - kFirst) * kStageCount);
  // Per-stage chains run their checkpoints in ascending order from kFirst,
  // and each checkpoint's stages run featurize -> refit -> predict -> flag.
  std::array<std::size_t, kStageCount> next;
  next.fill(kFirst);
  std::vector<std::size_t> stages_done(kCkpts, 0);
  for (const auto& [stage, t] : order) {
    const auto s = static_cast<std::size_t>(stage);
    EXPECT_EQ(t, next[s]) << "stage chain out of order";
    ++next[s];
    EXPECT_EQ(stages_done[t], s) << "stage order broken at checkpoint " << t;
    ++stages_done[t];
  }
}

TEST(TaskDag, BeginJobAtRefusesAJobWithAdmissionHistory) {
  ThreadPool pool(1);
  TaskDagConfig config;
  config.workers = 1;
  TaskDag dag(1, config, [](const TaskKey&) {});
  dag.start(pool);
  ASSERT_TRUE(dag.admit(0, 0));
  EXPECT_THROW(dag.begin_job_at(0, 4), std::invalid_argument);
  dag.close();
  dag.wait();
}

}  // namespace
}  // namespace nurd::core
