// The method registry: lookup by Table-3 name, the unknown-name diagnostic,
// and RefitPolicy threading through RegistryConfig.
#include "core/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace nurd::core {
namespace {

TEST(Registry, LookupByNameReturnsTheNamedMethod) {
  for (const char* name : {"NURD", "NURD-NC", "GBTR", "Wrangler", "Grabit"}) {
    const auto method = predictor_by_name(name);
    EXPECT_EQ(method.name, name);
    auto predictor = method.make();
    ASSERT_NE(predictor, nullptr);
    EXPECT_EQ(predictor->name(), name);
  }
}

TEST(Registry, UnknownNameListsEveryValidMethod) {
  try {
    predictor_by_name("NURDD");
    FAIL() << "lookup of an unknown method must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NURDD"), std::string::npos)
        << "message should echo the bad name";
    EXPECT_NE(msg.find("valid Table-3 names"), std::string::npos);
    // Every registry row is spelled out, first to last.
    for (const auto& method : all_predictors()) {
      EXPECT_NE(msg.find(method.name), std::string::npos)
          << "message should list " << method.name << "; got: " << msg;
    }
  }
}

TEST(Registry, RefitPolicyThreadsThroughTheConfig) {
  RegistryConfig incremental;
  incremental.refit = RefitPolicy::kIncremental;
  // Every Table-3 row must still construct under the incremental policy.
  const auto methods = all_predictors(incremental);
  EXPECT_EQ(methods.size(), 23u);
  for (const auto& method : methods) {
    EXPECT_NE(method.make(), nullptr) << method.name;
  }
  // And the tuned configs default to the bit-identical reference path.
  EXPECT_EQ(google_tuned().refit, RefitPolicy::kFull);
  EXPECT_EQ(alibaba_tuned().refit, RefitPolicy::kFull);
}

}  // namespace
}  // namespace nurd::core
