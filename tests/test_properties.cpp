// Cross-module property tests: parameterized sweeps over generator
// configurations and method hyperparameters checking invariants that must
// hold for ANY setting (not just the tuned defaults).
#include <gtest/gtest.h>

#include <cmath>

#include "core/nurd.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "ml/gbt.h"
#include "trace/generator.h"

namespace nurd {
namespace {

// ---------------------------------------------------------------------------
// Generator invariants over a config grid.

struct GenCase {
  double signal;
  double noise;
  double straggler_rate;
  bool far;
  std::uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, JobInvariantsHold) {
  const auto& c = GetParam();
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 100;
  config.max_tasks = 140;
  config.feature_signal = c.signal;
  config.feature_noise = c.noise;
  config.straggler_rate = c.straggler_rate;
  config.regime = c.far ? trace::TailRegime::kFar : trace::TailRegime::kNear;
  config.seed = c.seed;
  trace::GoogleLikeGenerator gen(config);
  const auto job = gen.generate(1)[0];

  // Latencies positive, checkpoints strictly ascending, partitions exact.
  for (double y : job.latencies()) EXPECT_GT(y, 0.0);
  double prev = 0.0;
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    EXPECT_GT(view.tau_run(), prev);
    prev = view.tau_run();
    EXPECT_EQ(view.finished().size() + view.running().size(),
              job.task_count());
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      for (double v : view.row(i)) EXPECT_TRUE(std::isfinite(v));
    }
  }
  // The p90 threshold is inside the latency range.
  const double tau = job.straggler_threshold();
  EXPECT_GT(tau, 0.0);
  EXPECT_LT(tau, job.completion_time());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, GeneratorPropertyTest,
    ::testing::Values(GenCase{1.0, 0.3, 0.10, true, 1},
                      GenCase{1.0, 0.3, 0.10, false, 2},
                      GenCase{0.3, 1.5, 0.10, true, 3},
                      GenCase{0.3, 1.5, 0.10, false, 4},
                      GenCase{0.6, 1.0, 0.05, true, 5},
                      GenCase{0.6, 1.0, 0.20, true, 6},
                      GenCase{0.6, 1.0, 0.20, false, 7},
                      GenCase{1.5, 0.5, 0.12, true, 8}));

// ---------------------------------------------------------------------------
// Harness protocol invariants for NURD across α/ε settings.

struct NurdCase {
  double alpha;
  double epsilon;
};

class NurdProtocolTest : public ::testing::TestWithParam<NurdCase> {};

TEST_P(NurdProtocolTest, FlagsAreStickyAndCountsConsistent) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 100;
  config.max_tasks = 120;
  trace::GoogleLikeGenerator gen(config);
  const auto job = gen.generate(1)[0];

  core::NurdParams params;
  params.alpha = GetParam().alpha;
  params.epsilon = GetParam().epsilon;
  core::NurdPredictor predictor(params);
  const auto run = eval::run_job(job, predictor);

  // Confusion partitions the job.
  EXPECT_EQ(run.final.tp + run.final.fp + run.final.fn + run.final.tn,
            job.task_count());
  // Cumulative flagged counts never decrease across checkpoints.
  for (std::size_t t = 1; t < run.per_checkpoint.size(); ++t) {
    EXPECT_GE(run.per_checkpoint[t].tp + run.per_checkpoint[t].fp,
              run.per_checkpoint[t - 1].tp + run.per_checkpoint[t - 1].fp);
  }
  // A flag time points at a checkpoint where the task was still running.
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    if (run.flagged_at[i] == eval::kNeverFlagged) continue;
    EXPECT_GT(job.latency(i), job.trace.tau_run(run.flagged_at[i]));
  }
}

TEST_P(NurdProtocolTest, WeightAlwaysInEpsilonOneRange) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 100;
  config.max_tasks = 100;
  trace::GoogleLikeGenerator gen(config);
  const auto job = gen.generate(1)[0];
  core::NurdParams params;
  params.alpha = GetParam().alpha;
  params.epsilon = GetParam().epsilon;
  core::NurdPredictor predictor(params);
  predictor.initialize(
      eval::make_job_context(job, job.straggler_threshold()));
  predictor.calibrate(job.checkpoint(0));
  for (double z : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double w = predictor.weight(z);
    EXPECT_GE(w, params.epsilon);
    EXPECT_LE(w, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaEpsilonGrid, NurdProtocolTest,
                         ::testing::Values(NurdCase{0.15, 0.05},
                                           NurdCase{0.25, 0.05},
                                           NurdCase{0.5, 0.05},
                                           NurdCase{0.5, 0.01},
                                           NurdCase{0.5, 0.2},
                                           NurdCase{0.9, 0.05}));

// ---------------------------------------------------------------------------
// GBT invariants over hyperparameter grid.

struct GbtCase {
  int depth;
  double lr;
  double subsample;
  double colsample;
};

class GbtPropertyTest : public ::testing::TestWithParam<GbtCase> {};

TEST_P(GbtPropertyTest, PredictionsFiniteAndFitBeatsMeanBaseline) {
  Rng rng(91);
  const std::size_t n = 300;
  Matrix x(n, 5);
  std::vector<double> y(n);
  double mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = rng.normal();
    y[i] = 2.0 * x(i, 0) + std::abs(x(i, 1)) + rng.normal(0.0, 0.3);
    mean_y += y[i];
  }
  mean_y /= static_cast<double>(n);

  ml::GbtParams params;
  params.tree.max_depth = GetParam().depth;
  params.learning_rate = GetParam().lr;
  params.subsample = GetParam().subsample;
  params.tree.colsample = GetParam().colsample;
  auto model = ml::GradientBoosting::regressor(params);
  model.fit(x, y);

  double sse = 0.0, sse_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = model.predict(x.row(i));
    EXPECT_TRUE(std::isfinite(p));
    sse += (p - y[i]) * (p - y[i]);
    sse_mean += (mean_y - y[i]) * (mean_y - y[i]);
  }
  EXPECT_LT(sse, sse_mean);
}

INSTANTIATE_TEST_SUITE_P(HyperGrid, GbtPropertyTest,
                         ::testing::Values(GbtCase{1, 0.3, 1.0, 1.0},
                                           GbtCase{2, 0.1, 1.0, 1.0},
                                           GbtCase{3, 0.1, 0.7, 1.0},
                                           GbtCase{3, 0.1, 1.0, 0.5},
                                           GbtCase{5, 0.05, 0.8, 0.8},
                                           GbtCase{6, 0.3, 0.5, 0.3}));

// ---------------------------------------------------------------------------
// Registry-wide invariant: per-method flag rates are sane on both datasets.

class DatasetSweepTest : public ::testing::TestWithParam<bool> {};

TEST_P(DatasetSweepTest, NurdConfusionRatesAreRates) {
  const bool google = GetParam();
  std::vector<trace::Job> jobs;
  if (google) {
    auto c = trace::GoogleLikeGenerator::google_defaults();
    c.min_tasks = 100;
    c.max_tasks = 120;
    trace::GoogleLikeGenerator gen(c);
    jobs = gen.generate(3);
  } else {
    auto c = trace::AlibabaLikeGenerator::alibaba_defaults();
    c.min_tasks = 100;
    c.max_tasks = 120;
    trace::AlibabaLikeGenerator gen(c);
    jobs = gen.generate(3);
  }
  const auto cfg = google ? core::google_tuned() : core::alibaba_tuned();
  const auto res =
      eval::evaluate_method(core::predictor_by_name("NURD", cfg), jobs);
  for (double r : {res.tpr, res.fpr, res.fnr, res.f1}) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_NEAR(res.tpr + res.fnr, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothDatasets, DatasetSweepTest, ::testing::Bool());

}  // namespace
}  // namespace nurd
