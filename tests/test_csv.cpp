#include "trace/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.h"

namespace nurd::trace {
namespace {

Job sample_job() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 100;
  GoogleLikeGenerator gen(c);
  return gen.generate(1)[0];
}

TEST(CsvRoundTrip, PreservesJobExactly) {
  const auto job = sample_job();
  std::stringstream buffer;
  write_csv(buffer, job, google_schema());
  const auto back = read_csv(buffer, job.id);

  EXPECT_EQ(back.task_count(), job.task_count());
  EXPECT_EQ(back.feature_count, job.feature_count);
  ASSERT_EQ(back.checkpoints.size(), job.checkpoints.size());
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    EXPECT_NEAR(back.latencies[i], job.latencies[i],
                1e-6 * job.latencies[i]);
  }
  for (std::size_t t = 0; t < job.checkpoints.size(); ++t) {
    EXPECT_NEAR(back.checkpoints[t].tau_run, job.checkpoints[t].tau_run,
                1e-6 * job.checkpoints[t].tau_run);
    EXPECT_EQ(back.checkpoints[t].finished, job.checkpoints[t].finished);
    EXPECT_EQ(back.checkpoints[t].running, job.checkpoints[t].running);
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      EXPECT_NEAR(back.checkpoints[t].features(i, 0),
                  job.checkpoints[t].features(i, 0), 1e-6);
    }
  }
}

TEST(CsvRoundTrip, HeaderCarriesSchemaNames) {
  const auto job = sample_job();
  std::stringstream buffer;
  write_csv(buffer, job, google_schema());
  std::string header;
  std::getline(buffer, header);
  EXPECT_NE(header.find("CPI"), std::string::npos);
  EXPECT_NE(header.find("tau_run"), std::string::npos);
}

TEST(CsvWrite, RejectsSchemaWidthMismatch) {
  const auto job = sample_job();  // 15 features
  std::stringstream buffer;
  EXPECT_THROW(write_csv(buffer, job, alibaba_schema()),
               std::invalid_argument);
}

TEST(CsvRead, RejectsEmptyInput) {
  std::stringstream empty;
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
}

TEST(CsvRead, RejectsBadHeader) {
  std::stringstream bad("foo,bar\n1,2\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsWrongCellCount) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsConflictingLatency) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "0,11.0,1,6.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsNonAscendingTau) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "0,10.0,1,4.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsMissingTaskAtCheckpoint) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "1,12.0,0,5.0,1.0\n"
      "0,10.0,1,6.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, MinimalValidJob) {
  std::stringstream good(
      "task,latency,checkpoint,tau_run,f0,f1\n"
      "0,10.0,0,5.0,1.0,2.0\n"
      "1,4.0,0,5.0,3.0,4.0\n"
      "0,10.0,1,8.0,1.1,2.1\n"
      "1,4.0,1,8.0,3.1,4.1\n");
  const auto job = read_csv(good, "mini");
  EXPECT_EQ(job.task_count(), 2u);
  EXPECT_EQ(job.feature_count, 2u);
  ASSERT_EQ(job.checkpoints.size(), 2u);
  // Task 1 (latency 4) finished at both horizons; task 0 never.
  EXPECT_EQ(job.checkpoints[0].finished, (std::vector<std::size_t>{1}));
  EXPECT_EQ(job.checkpoints[0].running, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(job.checkpoints[1].features(1, 1), 4.1);
  EXPECT_EQ(job.id, "mini");
}

TEST(CsvFile, SaveAndLoadThroughFilesystem) {
  const auto job = sample_job();
  const std::string path = ::testing::TempDir() + "nurd_job.csv";
  save_csv(path, job, google_schema());
  const auto back = load_csv(path, "from-disk");
  EXPECT_EQ(back.task_count(), job.task_count());
  EXPECT_EQ(back.id, "from-disk");
}

TEST(CsvFile, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/dir/job.csv"), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::trace
