#include "trace/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "trace/generator.h"

namespace nurd::trace {
namespace {

Job sample_job() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 100;
  GoogleLikeGenerator gen(c);
  return gen.generate(1)[0];
}

TEST(CsvRoundTrip, PreservesJobExactly) {
  const auto job = sample_job();
  std::stringstream buffer;
  write_csv(buffer, job, google_schema());
  const auto back = read_csv(buffer, job.id);

  EXPECT_EQ(back.task_count(), job.task_count());
  EXPECT_EQ(back.feature_count(), job.feature_count());
  ASSERT_EQ(back.checkpoint_count(), job.checkpoint_count());
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    EXPECT_NEAR(back.latency(i), job.latency(i), 1e-6 * job.latency(i));
  }
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    EXPECT_NEAR(back.trace.tau_run(t), job.trace.tau_run(t),
                1e-6 * job.trace.tau_run(t));
    EXPECT_EQ(back.trace.finished(t), job.trace.finished(t));
    EXPECT_EQ(back.trace.running(t), job.trace.running(t));
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      EXPECT_NEAR(back.trace.row(t, i)[0], job.trace.row(t, i)[0], 1e-6);
    }
  }
}

TEST(CsvRoundTrip, ColumnarDedupSurvivesTheTrip) {
  // Freeze-on-finish means most on-disk rows are redundant copies of stored
  // versions; the reader's store must not balloon past the writer's.
  const auto job = sample_job();
  std::stringstream buffer;
  write_csv(buffer, job, google_schema());
  const auto back = read_csv(buffer, job.id);
  EXPECT_EQ(back.trace.version_count(), job.trace.version_count());
}

TEST(CsvRoundTrip, HeaderCarriesSchemaNames) {
  const auto job = sample_job();
  std::stringstream buffer;
  write_csv(buffer, job, google_schema());
  std::string header;
  std::getline(buffer, header);
  EXPECT_NE(header.find("CPI"), std::string::npos);
  EXPECT_NE(header.find("tau_run"), std::string::npos);
}

TEST(CsvWrite, RejectsSchemaWidthMismatch) {
  const auto job = sample_job();  // 15 features
  std::stringstream buffer;
  EXPECT_THROW(write_csv(buffer, job, alibaba_schema()),
               std::invalid_argument);
}

TEST(CsvRead, RejectsEmptyInput) {
  std::stringstream empty;
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
}

TEST(CsvRead, RejectsBadHeader) {
  std::stringstream bad("foo,bar\n1,2\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsWrongCellCount) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsConflictingLatency) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "0,11.0,1,6.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsNonAscendingTau) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "0,10.0,1,4.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, RejectsMissingTaskAtCheckpoint) {
  std::stringstream bad(
      "task,latency,checkpoint,tau_run,f0\n"
      "0,10.0,0,5.0,1.0\n"
      "1,12.0,0,5.0,1.0\n"
      "0,10.0,1,6.0,1.0\n");
  EXPECT_THROW(read_csv(bad), std::invalid_argument);
}

TEST(CsvRead, MinimalValidJob) {
  std::stringstream good(
      "task,latency,checkpoint,tau_run,f0,f1\n"
      "0,10.0,0,5.0,1.0,2.0\n"
      "1,4.0,0,5.0,3.0,4.0\n"
      "0,10.0,1,8.0,1.1,2.1\n"
      "1,4.0,1,8.0,3.1,4.1\n");
  std::size_t drifted = 0;
  ::testing::internal::CaptureStderr();
  const auto job = read_csv(good, "mini", &drifted);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(drifted, 1u);
  EXPECT_EQ(job.task_count(), 2u);
  EXPECT_EQ(job.feature_count(), 2u);
  ASSERT_EQ(job.checkpoint_count(), 2u);
  // Task 1 (latency 4) finished at both horizons; task 0 never.
  EXPECT_EQ(job.trace.finished(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(job.trace.running(0), (std::vector<std::size_t>{0}));
  // Task 0 kept running, so its checkpoint-1 row is the fresh observation…
  EXPECT_DOUBLE_EQ(job.trace.row(1, 0)[1], 2.1);
  // …while task 1 froze at checkpoint 0: its later on-disk row (4.1) is
  // drift after completion, which the freeze discipline ignores — loudly,
  // so lossy ingestion of a foreign trace is visible.
  EXPECT_DOUBLE_EQ(job.trace.row(1, 1)[1], 4.0);
  EXPECT_NE(warning.find("1 post-freeze row(s) drift"), std::string::npos)
      << "expected a drift diagnostic, got: " << warning;
  EXPECT_EQ(job.id, "mini");
}

TEST(CsvRead, FreezeRespectingFileLoadsSilently) {
  // Same trace, but task 1's post-freeze row repeats its frozen observation
  // exactly — the freeze assumption holds and no diagnostic is emitted.
  std::stringstream good(
      "task,latency,checkpoint,tau_run,f0,f1\n"
      "0,10.0,0,5.0,1.0,2.0\n"
      "1,4.0,0,5.0,3.0,4.0\n"
      "0,10.0,1,8.0,1.1,2.1\n"
      "1,4.0,1,8.0,3.0,4.0\n");
  std::size_t drifted = 99;
  ::testing::internal::CaptureStderr();
  const auto job = read_csv(good, "mini", &drifted);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(drifted, 0u);
  EXPECT_DOUBLE_EQ(job.trace.row(1, 1)[1], 4.0);
}

TEST(CsvFile, SaveAndLoadThroughFilesystem) {
  const auto job = sample_job();
  const std::string path = ::testing::TempDir() + "nurd_job.csv";
  save_csv(path, job, google_schema());
  const auto back = load_csv(path, "from-disk");
  EXPECT_EQ(back.task_count(), job.task_count());
  EXPECT_EQ(back.id, "from-disk");
}

TEST(CsvFile, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/dir/job.csv"), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::trace
