// Kernel-dispatch layer tests: per-primitive reference-vs-AVX2 parity
// (including remainder lanes, lengths that are not a multiple of the vector
// width, and NaN/inf propagation), dispatch/selection plumbing, and a
// backend-forced rerun of the golden-parity protocol over every Table-3
// method. Elementwise primitives must be BITWISE identical across backends;
// reductions and sigmoid are held to documented tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/registry.h"
#include "eval/harness.h"
#include "kernel/kernel.h"
#include "trace/generator.h"

namespace nurd::kernel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

// Lengths straddling the 4-lane vector width: empty, sub-vector, exact
// multiples, remainders, and a large block.
const std::vector<std::size_t> kSizes = {0, 1, 3, 4, 5, 7, 8, 31, 64, 1000};

// Deterministic value streams (no global RNG state between tests).
double lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  // Map the top bits into roughly [-4, 4) with a fractional part.
  return static_cast<double>(static_cast<std::int64_t>(s >> 11)) * 0x1p-50;
}

std::vector<double> random_block(std::size_t n, std::uint64_t seed) {
  std::uint64_t s = seed;
  std::vector<double> v(n);
  for (auto& x : v) x = lcg(s);
  return v;
}

bool avx2_ready() { return backend_available(Backend::kAvx2); }

// Fetches both tables without touching the global dispatch state.
const KernelOps& ref() { return reference_ops(); }
const KernelOps& avx() { return *detail::avx2_ops(); }

#define SKIP_WITHOUT_AVX2()                                       \
  if (!avx2_ready()) {                                            \
    GTEST_SKIP() << "AVX2 not available on this build/CPU";       \
  }

// ---------------------------------------------------------------------------
// Reference-backend semantics (golden path): spot-check the contract the
// call sites rely on, independent of any accelerated backend.
// ---------------------------------------------------------------------------

TEST(KernelReference, DotAccumulatesFromInitInIndexOrder) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  // Exactly the scalar loop: s = init; s += a[i]*b[i].
  double expect = 0.5;
  for (std::size_t i = 0; i < a.size(); ++i) expect += a[i] * b[i];
  EXPECT_EQ(ref().dot(0.5, a.data(), b.data(), a.size()), expect);
  EXPECT_EQ(ref().dot(0.5, a.data(), b.data(), 0), 0.5);
}

TEST(KernelReference, DotSubDeductsSequentially) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  double expect = 100.0;
  for (std::size_t i = 0; i < a.size(); ++i) expect -= a[i] * b[i];
  EXPECT_EQ(ref().dot_sub(100.0, a.data(), b.data(), a.size()), expect);
}

TEST(KernelReference, SigmoidMatchesStatsFormula) {
  for (const double z : {-800.0, -10.0, -1e-3, 0.0, 1e-3, 10.0, 800.0}) {
    double out = -1.0;
    ref().sigmoid(&z, &out, 1);
    // The overflow-safe two-branch form from common/stats.cpp.
    const double expect =
        z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                 : std::exp(z) / (1.0 + std::exp(z));
    EXPECT_EQ(out, expect) << "z=" << z;
  }
}

TEST(KernelReference, BinIndexMatchesHistogramBinOf) {
  const double lo = -1.0, hi = 3.0;
  const std::size_t n_bins = 8;
  const double width = (hi - lo) / static_cast<double>(n_bins);
  auto bin_of = [&](double v) -> std::uint32_t {
    if (v <= lo) return 0;
    if (v >= hi) return static_cast<std::uint32_t>(n_bins - 1);
    const auto b = static_cast<std::size_t>((v - lo) / width);
    return static_cast<std::uint32_t>(std::min(b, n_bins - 1));
  };
  std::vector<double> values = {-5.0, -1.0, -0.999, 0.0,  0.5, 1.0,
                                1.5,  2.0,  2.999,  3.0,  7.0, lo + width,
                                lo + 2 * width,     hi - 1e-12};
  std::vector<std::uint32_t> out(values.size(), 999);
  ref().bin_index(values.data(), values.size(), lo, hi, width, n_bins,
                  out.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], bin_of(values[i])) << "v=" << values[i];
  }
}

// ---------------------------------------------------------------------------
// Reference vs AVX2, per primitive, across sizes.
// ---------------------------------------------------------------------------

TEST(KernelAvx2Parity, DotWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const auto a = random_block(n, 11 + n);
    const auto b = random_block(n, 23 + n);
    const double r = ref().dot(1.25, a.data(), b.data(), n);
    const double v = avx().dot(1.25, a.data(), b.data(), n);
    EXPECT_NEAR(v, r, 1e-12 * (1.0 + std::abs(r))) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, DotSubWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const auto a = random_block(n, 31 + n);
    const auto b = random_block(n, 47 + n);
    const double r = ref().dot_sub(2.5, a.data(), b.data(), n);
    const double v = avx().dot_sub(2.5, a.data(), b.data(), n);
    EXPECT_NEAR(v, r, 1e-12 * (1.0 + std::abs(r))) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, SquaredL2WithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const auto a = random_block(n, 5 + n);
    const auto b = random_block(n, 7 + n);
    const double r = ref().squared_l2(a.data(), b.data(), n);
    const double v = avx().squared_l2(a.data(), b.data(), n);
    EXPECT_NEAR(v, r, 1e-12 * (1.0 + std::abs(r))) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, PairSumIndexedWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const std::size_t pool = 2 * n + 8;
    const auto a = random_block(pool, 13 + n);
    const auto b = random_block(pool, 17 + n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = (i * 7 + 3) % pool;
    double ra = 0, rb = 0, va = 0, vb = 0;
    ref().pair_sum_indexed(a.data(), b.data(), idx.data(), n, &ra, &rb);
    avx().pair_sum_indexed(a.data(), b.data(), idx.data(), n, &va, &vb);
    EXPECT_NEAR(va, ra, 1e-12 * (1.0 + std::abs(ra))) << "n=" << n;
    EXPECT_NEAR(vb, rb, 1e-12 * (1.0 + std::abs(rb))) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, AxpyBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const auto x = random_block(n, 3 + n);
    auto yr = random_block(n, 9 + n);
    auto yv = yr;
    ref().axpy(0.37, x.data(), yr.data(), n);
    avx().axpy(0.37, x.data(), yv.data(), n);
    EXPECT_EQ(yr, yv) << "n=" << n;  // elementwise: bitwise equal
  }
}

TEST(KernelAvx2Parity, VsubBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    const auto a = random_block(n, 19 + n);
    const auto b = random_block(n, 29 + n);
    std::vector<double> outr(n, -1.0), outv(n, -2.0);
    ref().vsub(outr.data(), a.data(), b.data(), n);
    avx().vsub(outv.data(), a.data(), b.data(), n);
    EXPECT_EQ(outr, outv) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, GemvWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const std::size_t cols : {1u, 3u, 4u, 5u, 17u}) {
    const std::size_t rows = 9;
    const auto a = random_block(rows * cols, 41 + cols);
    const auto x = random_block(cols, 43 + cols);
    std::vector<double> outr(rows), outv(rows);
    ref().gemv(a.data(), rows, cols, x.data(), 0.75, outr.data());
    avx().gemv(a.data(), rows, cols, x.data(), 0.75, outv.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(outv[r], outr[r], 1e-12 * (1.0 + std::abs(outr[r])))
          << "cols=" << cols << " r=" << r;
    }
  }
}

TEST(KernelAvx2Parity, SyrkRank1UpperBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (const std::size_t d : {1u, 2u, 4u, 5u, 9u, 16u}) {
    const std::size_t ld = d + 1;  // embedded in a larger (bordered) matrix
    const auto row = random_block(d, 53 + d);
    auto hr = random_block(ld * ld, 59 + d);
    auto hv = hr;
    ref().syrk_rank1_upper(hr.data(), ld, row.data(), d, 1.7);
    avx().syrk_rank1_upper(hv.data(), ld, row.data(), d, 1.7);
    EXPECT_EQ(hr, hv) << "d=" << d;  // one mul+add per entry: bitwise equal
  }
}

TEST(KernelAvx2Parity, SquaredL2RowsWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const std::size_t cols : {1u, 3u, 4u, 7u, 12u}) {
    const std::size_t rows = 11;
    const auto a = random_block(rows * cols, 61 + cols);
    const auto x = random_block(cols, 67 + cols);
    std::vector<double> outr(rows), outv(rows);
    ref().squared_l2_rows(a.data(), rows, cols, x.data(), outr.data());
    avx().squared_l2_rows(a.data(), rows, cols, x.data(), outv.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(outv[r], outr[r], 1e-12 * (1.0 + std::abs(outr[r])))
          << "cols=" << cols << " r=" << r;
    }
  }
}

TEST(KernelAvx2Parity, HistAccumulateBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const std::size_t n_rows = 257;
  const std::size_t n_bins = 13;
  const auto grad = random_block(n_rows, 71);
  const auto hess = random_block(n_rows, 73);
  std::vector<std::uint16_t> bin_of(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    bin_of[i] = static_cast<std::uint16_t>((i * 5) % n_bins);
  }
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n_rows; i += 2) rows.push_back(i);
  std::vector<double> br(n_bins * kHistBinStride, 0.0);
  std::vector<double> bv(n_bins * kHistBinStride, 0.0);
  ref().hist_accumulate(br.data(), bin_of.data(), rows.data(), rows.size(),
                        grad.data(), hess.data());
  avx().hist_accumulate(bv.data(), bin_of.data(), rows.data(), rows.size(),
                        grad.data(), hess.data());
  EXPECT_EQ(br, bv);  // serial per-bin adds in row order: bitwise equal
}

TEST(KernelAvx2Parity, HistSubtractBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    auto pr = random_block(n, 79 + n);
    auto pv = pr;
    const auto c = random_block(n, 83 + n);
    ref().hist_subtract(pr.data(), c.data(), n);
    avx().hist_subtract(pv.data(), c.data(), n);
    EXPECT_EQ(pr, pv) << "n=" << n;
  }
}

TEST(KernelAvx2Parity, BinIndexBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const double lo = 0.25, hi = 9.75;
  const std::size_t n_bins = 32;
  const double width = (hi - lo) / static_cast<double>(n_bins);
  // Dense sweep plus explicit boundary/out-of-range lanes in every vector
  // position (the AVX2 path patches ≤lo / ≥hi lanes via a mask).
  std::vector<double> values;
  std::uint64_t s = 97;
  for (std::size_t i = 0; i < 513; ++i) {
    values.push_back(lo + (hi - lo) * 0.5 * (1.0 + lcg(s) / 4.0));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    values.push_back(lo - 1.0 - static_cast<double>(i));
    values.push_back(hi + static_cast<double>(i));
    values.push_back(lo);
    values.push_back(hi);
  }
  std::vector<std::uint32_t> outr(values.size(), 111), outv(values.size(), 222);
  ref().bin_index(values.data(), values.size(), lo, hi, width, n_bins,
                  outr.data());
  avx().bin_index(values.data(), values.size(), lo, hi, width, n_bins,
                  outv.data());
  EXPECT_EQ(outr, outv);
}

TEST(KernelAvx2Parity, SigmoidWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  for (const auto n : kSizes) {
    auto z = random_block(n, 89 + n);
    for (auto& v : z) v *= 8.0;  // cover the interesting logistic range
    std::vector<double> outr(n), outv(n);
    ref().sigmoid(z.data(), outr.data(), n);
    avx().sigmoid(z.data(), outv.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(outv[i], outr[i], 1e-12) << "n=" << n << " z=" << z[i];
    }
  }
  // Saturated tails: both backends must pin to {0, 1} within 1e-300.
  const std::vector<double> tails = {-800.0, -710.0, -708.0, 708.0, 800.0};
  std::vector<double> outr(tails.size()), outv(tails.size());
  ref().sigmoid(tails.data(), outr.data(), tails.size());
  avx().sigmoid(tails.data(), outv.data(), tails.size());
  for (std::size_t i = 0; i < tails.size(); ++i) {
    EXPECT_NEAR(outv[i], outr[i], 1e-300) << "z=" << tails[i];
  }
}

// ---------------------------------------------------------------------------
// NaN / inf propagation.
// ---------------------------------------------------------------------------

TEST(KernelSpecials, ReductionsPropagateNaNAndInf) {
  std::vector<const KernelOps*> tables = {&ref()};
  if (avx2_ready()) tables.push_back(&avx());
  for (const auto* t : tables) {
    const std::vector<double> a = {1.0, kNaN, 2.0, 3.0, 4.0};
    const std::vector<double> ones(a.size(), 1.0);
    EXPECT_TRUE(std::isnan(t->dot(0.0, a.data(), ones.data(), a.size())))
        << t->name;
    EXPECT_TRUE(std::isnan(t->dot_sub(0.0, a.data(), ones.data(), a.size())))
        << t->name;
    EXPECT_TRUE(std::isnan(t->squared_l2(a.data(), ones.data(), a.size())))
        << t->name;
    const std::vector<double> b = {1.0, kInf, 2.0, 3.0, 4.0};
    EXPECT_EQ(t->dot(0.0, b.data(), ones.data(), b.size()), kInf) << t->name;
    EXPECT_EQ(t->squared_l2(b.data(), ones.data(), b.size()), kInf)
        << t->name;
  }
}

TEST(KernelSpecials, ElementwisePropagateNaN) {
  std::vector<const KernelOps*> tables = {&ref()};
  if (avx2_ready()) tables.push_back(&avx());
  for (const auto* t : tables) {
    const std::vector<double> x = {kNaN, 1.0, 2.0, 3.0, kNaN};
    std::vector<double> y(x.size(), 0.0);
    t->axpy(1.0, x.data(), y.data(), x.size());
    EXPECT_TRUE(std::isnan(y[0]) && std::isnan(y[4])) << t->name;
    EXPECT_EQ(y[2], 2.0) << t->name;

    std::vector<double> s(x.size(), -1.0);
    t->sigmoid(x.data(), s.data(), x.size());
    EXPECT_TRUE(std::isnan(s[0]) && std::isnan(s[4])) << t->name;
    EXPECT_NEAR(s[1], 1.0 / (1.0 + std::exp(-1.0)), 1e-12) << t->name;
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ReferenceAlwaysAvailableAndDefaultNamed) {
  EXPECT_TRUE(backend_available(Backend::kReference));
  EXPECT_STREQ(reference_ops().name, "reference");
}

TEST(KernelDispatch, BestAvailableIsAvailable) {
  EXPECT_TRUE(backend_available(best_available()));
}

TEST(KernelDispatch, SetBackendSwitchesTableAndName) {
  set_backend(Backend::kReference);
  EXPECT_EQ(active_backend(), Backend::kReference);
  EXPECT_STREQ(backend_name(), "reference");
  EXPECT_EQ(&ops(), &reference_ops());
  if (avx2_ready()) {
    set_backend(Backend::kAvx2);
    EXPECT_EQ(active_backend(), Backend::kAvx2);
    EXPECT_STREQ(backend_name(), "avx2");
    EXPECT_EQ(&ops(), detail::avx2_ops());
    set_backend(Backend::kReference);
  }
}

TEST(KernelDispatch, UnavailableBackendIsRejected) {
  // x86 builds have no NEON table; aarch64 builds have no AVX2 table. One of
  // the two must be unavailable on any build, and selecting it must throw.
  const Backend missing = detail::neon_ops() == nullptr
                              ? Backend::kNeon
                              : Backend::kAvx2;
  if (backend_available(missing)) GTEST_SKIP() << "both tables present";
  EXPECT_THROW(set_backend(missing), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Backend-forced golden parity: every Table-3 method, reference vs AVX2.
// Reductions differ in the last ulp under AVX2, and boosted-tree fits can
// amplify a near-tie split flip, so the cross-backend contract is a
// tolerance on flag agreement, not bitwise equality: at least 85% of tasks
// must get the same flagged/never decision per method, and most methods are
// expected to agree exactly.
// ---------------------------------------------------------------------------

class KernelBackendGuard {
 public:
  ~KernelBackendGuard() { set_backend(Backend::kReference); }
};

TEST(KernelGoldenParity, AllMethodsAgreeAcrossBackends) {
  SKIP_WITHOUT_AVX2();
  KernelBackendGuard guard;

  auto cfg = trace::GoogleLikeGenerator::google_defaults();
  cfg.min_tasks = 100;
  cfg.max_tasks = 130;
  const auto jobs = trace::GoogleLikeGenerator(cfg).generate(1);
  const auto& job = jobs.front();
  const auto tuned = core::google_tuned();

  std::size_t exact_methods = 0;
  const auto methods = core::all_predictors();
  ASSERT_EQ(methods.size(), 23u);
  for (const auto& method : core::all_predictors()) {
    const auto m = core::predictor_by_name(method.name, tuned);

    set_backend(Backend::kReference);
    auto ref_pred = m.make();
    const auto ref_run = eval::run_job(job, *ref_pred);

    set_backend(Backend::kAvx2);
    auto avx_pred = m.make();
    const auto avx_run = eval::run_job(job, *avx_pred);

    ASSERT_EQ(ref_run.flagged_at.size(), avx_run.flagged_at.size());
    std::size_t disagree = 0;
    for (std::size_t i = 0; i < ref_run.flagged_at.size(); ++i) {
      const bool fr = ref_run.flagged_at[i] != eval::kNeverFlagged;
      const bool fv = avx_run.flagged_at[i] != eval::kNeverFlagged;
      if (fr != fv) ++disagree;
    }
    const double rate = static_cast<double>(disagree) /
                        static_cast<double>(ref_run.flagged_at.size());
    EXPECT_LE(rate, 0.15) << method.name << ": " << disagree << "/"
                          << ref_run.flagged_at.size()
                          << " flag decisions diverged across backends";
    if (ref_run.flagged_at == avx_run.flagged_at) ++exact_methods;
  }
  // The sweep is only meaningful if cross-backend drift stays the exception:
  // the bulk of the surface must agree exactly, not merely within tolerance.
  EXPECT_GE(exact_methods, 12u);
}

}  // namespace
}  // namespace nurd::kernel
