#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/linear_svm.h"
#include "ml/logistic.h"

namespace nurd::ml {
namespace {

// Two Gaussian classes separated along the first feature.
struct BinaryProblem {
  Matrix x;
  std::vector<double> y;
};

BinaryProblem separated_classes(std::size_t n, double gap, std::uint64_t seed) {
  Rng rng(seed);
  BinaryProblem p;
  p.x = Matrix(n, 3);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    p.x(i, 0) = rng.normal(pos ? gap : -gap, 1.0);
    p.x(i, 1) = rng.normal();
    p.x(i, 2) = rng.normal();
    p.y[i] = pos ? 1.0 : 0.0;
  }
  return p;
}

TEST(LogisticRegression, SeparatesClearClasses) {
  const auto p = separated_classes(400, 3.0, 21);
  LogisticRegression lr;
  lr.fit(p.x, p.y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    if ((lr.predict_proba(p.x.row(i)) > 0.5) == (p.y[i] > 0.5)) ++correct;
  }
  EXPECT_GT(correct, p.x.rows() * 95 / 100);
}

TEST(LogisticRegression, ProbabilitiesInUnitInterval) {
  const auto p = separated_classes(100, 1.0, 23);
  LogisticRegression lr;
  lr.fit(p.x, p.y);
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    const double pr = lr.predict_proba(p.x.row(i));
    EXPECT_GE(pr, 0.0);
    EXPECT_LE(pr, 1.0);
  }
}

TEST(LogisticRegression, ConstantLabelsYieldExtremeBase) {
  Matrix x{{0.0}, {1.0}, {2.0}};
  const std::vector<double> y{1.0, 1.0, 1.0};
  LogisticRegression lr;
  lr.fit(x, y);
  EXPECT_GT(lr.predict_proba(x.row(0)), 0.8);
}

TEST(LogisticRegression, AverageProbabilityTracksPrior) {
  // With overlapping classes at an imbalanced prior, the calibrated mean
  // probability should be near the prior.
  Rng rng(27);
  const std::size_t n = 500;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = i % 10 == 0 ? 1.0 : 0.0;  // 10% positives, features uninformative
  }
  LogisticRegression lr;
  lr.fit(x, y);
  double mean_p = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_p += lr.predict_proba(x.row(i));
  EXPECT_NEAR(mean_p / static_cast<double>(n), 0.1, 0.03);
}

TEST(LogisticRegression, StrongerL2ShrinksWeights) {
  const auto p = separated_classes(200, 2.0, 29);
  LogisticParams weak;
  weak.l2 = 0.01;
  LogisticParams strong;
  strong.l2 = 100.0;
  LogisticRegression a(weak), b(strong);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  EXPECT_GT(std::abs(a.weights()[0]), std::abs(b.weights()[0]));
}

TEST(LogisticRegression, SampleWeightsShiftDecision) {
  // Upweighting the positive class should raise probabilities.
  const auto p = separated_classes(200, 0.5, 31);
  std::vector<double> w(p.y.size());
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    w[i] = p.y[i] > 0.5 ? 10.0 : 1.0;
  }
  LogisticRegression plain, weighted;
  plain.fit(p.x, p.y);
  weighted.fit(p.x, p.y, w);
  double mean_plain = 0.0, mean_weighted = 0.0;
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    mean_plain += plain.predict_proba(p.x.row(i));
    mean_weighted += weighted.predict_proba(p.x.row(i));
  }
  EXPECT_GT(mean_weighted, mean_plain);
}

TEST(LogisticRegression, MismatchedLabelsThrow) {
  Matrix x(2, 1);
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(LinearSVM, SeparatesClearClasses) {
  const auto p = separated_classes(400, 3.0, 33);
  LinearSVM svm;
  svm.fit(p.x, p.y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    if (svm.predict(p.x.row(i)) == p.y[i]) ++correct;
  }
  EXPECT_GT(correct, p.x.rows() * 93 / 100);
}

TEST(LinearSVM, DecisionSignMatchesPrediction) {
  const auto p = separated_classes(100, 2.0, 35);
  LinearSVM svm;
  svm.fit(p.x, p.y);
  for (std::size_t i = 0; i < 20; ++i) {
    const double d = svm.decision(p.x.row(i));
    EXPECT_EQ(svm.predict(p.x.row(i)), d > 0.0 ? 1.0 : 0.0);
  }
}

TEST(LinearSVM, ClassWeightsRecoverMinority) {
  // 5% positives overlapping the majority: with heavy positive weights the
  // SVM should flag far more positives than without.
  Rng rng(37);
  const std::size_t n = 600;
  Matrix x(n, 2);
  std::vector<double> y(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 20 == 0;
    x(i, 0) = rng.normal(pos ? 1.0 : 0.0, 1.0);
    x(i, 1) = rng.normal();
    y[i] = pos ? 1.0 : 0.0;
    w[i] = pos ? 19.0 : 1.0;
  }
  LinearSVM plain, weighted;
  plain.fit(x, y);
  weighted.fit(x, y, w);
  std::size_t flags_plain = 0, flags_weighted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    flags_plain += plain.predict(x.row(i)) > 0.5 ? 1 : 0;
    flags_weighted += weighted.predict(x.row(i)) > 0.5 ? 1 : 0;
  }
  EXPECT_GT(flags_weighted, flags_plain);
}

TEST(LinearSVM, DeterministicGivenSeed) {
  const auto p = separated_classes(100, 1.0, 39);
  LinearSVM a, b;
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.decision(p.x.row(i)), b.decision(p.x.row(i)));
  }
}

TEST(LinearSVM, UnfittedThrows) {
  LinearSVM svm;
  const std::vector<double> row{0.0, 0.0, 0.0};
  EXPECT_THROW(svm.decision(row), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::ml
