#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace nurd {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, PercentileMatchesNumpyLinear) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(Stats, MinMaxMedian) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{-2.0, -4.0, -6.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, PearsonRejectsLengthMismatch) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
}

TEST(Stats, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  // Symmetry: σ(x) + σ(−x) = 1.
  for (double x : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(sigmoid(x) + sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(Stats, NormalPdfCdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Stats, ArgsortStableAscending) {
  const std::vector<double> v{3.0, 1.0, 2.0, 1.0};
  const auto idx = argsort(v);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(Stats, MinmaxNormalizeRange) {
  const std::vector<double> v{2.0, 4.0, 6.0};
  const auto n = minmax_normalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(Stats, MinmaxNormalizeConstantIsZero) {
  const std::vector<double> v{5.0, 5.0};
  const auto n = minmax_normalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.0);
}

TEST(Stats, ZscoreMeanZeroUnitVar) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto z = zscore(v);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

class PercentileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0};
  const double p = GetParam();
  EXPECT_LE(percentile(v, p), percentile(v, std::min(p + 10.0, 100.0)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotoneTest,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 50.0, 65.0,
                                           75.0, 90.0));

}  // namespace
}  // namespace nurd
