// Algorithm-specific properties of individual detectors (beyond the shared
// planted-outlier suite in test_outlier.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "outlier/density_detectors.h"
#include "outlier/knn_detectors.h"
#include "outlier/statistical_detectors.h"

namespace nurd::outlier {
namespace {

TEST(KnnDetail, KthDistanceGrowsWithK) {
  // For the same data, the k-th neighbour distance is non-decreasing in k,
  // so the mean KNN score must be too.
  Rng rng(201);
  Matrix x(80, 3);
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
  }
  double prev = 0.0;
  for (std::size_t k : {1u, 3u, 8u, 20u}) {
    KnnDetector det(k);
    det.fit(x);
    double mean_score = 0.0;
    for (double s : det.scores()) mean_score += s;
    mean_score /= 80.0;
    EXPECT_GE(mean_score, prev);
    prev = mean_score;
  }
}

TEST(AbodDetail, CentralPointHasHighAngleVariance) {
  // A point surrounded by neighbours in all directions sees high variance
  // of angles; a point far outside sees all neighbours in a narrow cone
  // (low variance ⇒ higher score after negation).
  Matrix x(0, 0);
  Rng rng(202);
  for (int i = 0; i < 40; ++i) {
    const std::vector<double> p{rng.normal(), rng.normal()};
    x.push_row(p);
  }
  const std::vector<double> center{0.0, 0.0};
  const std::vector<double> far{30.0, 30.0};
  x.push_row(center);  // index 40
  x.push_row(far);     // index 41
  AbodDetector det(15);
  det.fit(x);
  EXPECT_GT(det.scores()[41], det.scores()[40]);
}

TEST(HbosDetail, ScoreIsAdditiveAcrossIndependentFeatures) {
  // HBOS treats features independently: a point anomalous in two features
  // scores higher than one anomalous in a single feature.
  Rng rng(203);
  Matrix x(0, 0);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> p{rng.normal(), rng.normal()};
    x.push_row(p);
  }
  const std::vector<double> one_dim{6.0, 0.0};
  const std::vector<double> two_dim{6.0, 6.0};
  x.push_row(one_dim);  // 100
  x.push_row(two_dim);  // 101
  HbosDetector det;
  det.fit(x);
  EXPECT_GT(det.scores()[101], det.scores()[100]);
}

TEST(McdDetail, RobustToContaminationClump) {
  // 25% contamination in a tight distant clump inflates the CLASSICAL
  // covariance enough to mask itself; MCD's concentration steps should
  // still score the clump above the inliers.
  Rng rng(204);
  Matrix x(0, 0);
  for (int i = 0; i < 90; ++i) {
    const std::vector<double> p{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    x.push_row(p);
  }
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> p{rng.normal(12.0, 0.2), rng.normal(12.0, 0.2)};
    x.push_row(p);
  }
  McdDetector det;
  det.fit(x);
  const auto& s = det.scores();
  double mean_in = 0.0, mean_out = 0.0;
  for (int i = 0; i < 90; ++i) mean_in += s[static_cast<std::size_t>(i)];
  for (int i = 90; i < 120; ++i) mean_out += s[static_cast<std::size_t>(i)];
  EXPECT_GT(mean_out / 30.0, 2.0 * (mean_in / 90.0));
}

TEST(CblofDetail, SmallClusterScoredByDistanceToLargeCluster) {
  // One dominant cluster and a small satellite: satellite points should
  // score roughly their distance to the dominant centroid, far above the
  // dominant cluster's internal distances.
  Rng rng(205);
  Matrix x(0, 0);
  for (int i = 0; i < 120; ++i) {
    const std::vector<double> p{rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)};
    x.push_row(p);
  }
  for (int i = 0; i < 6; ++i) {
    const std::vector<double> p{rng.normal(10.0, 0.2), rng.normal(10.0, 0.2)};
    x.push_row(p);
  }
  CblofParams params;
  params.n_clusters = 4;
  CblofDetector det(params);
  det.fit(x);
  const auto& s = det.scores();
  double max_in = 0.0;
  for (int i = 0; i < 120; ++i) {
    max_in = std::max(max_in, s[static_cast<std::size_t>(i)]);
  }
  for (int i = 120; i < 126; ++i) {
    EXPECT_GT(s[static_cast<std::size_t>(i)], max_in);
  }
}

TEST(LofDetail, DensityContrastDetected) {
  // A sparse halo point next to a dense cluster has LOF >> 1, while cluster
  // members stay near 1 — the density-ratio property that plain KNN misses.
  Rng rng(206);
  Matrix x(0, 0);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> p{rng.normal(0.0, 0.2), rng.normal(0.0, 0.2)};
    x.push_row(p);
  }
  const std::vector<double> halo{1.2, 1.2};
  x.push_row(halo);  // close, but in a much sparser region
  LofDetector det(10);
  det.fit(x);
  EXPECT_GT(det.scores()[100], 1.5);
}

TEST(PcaDetail, VarianceWeightingFlagsMinorComponentDeviations) {
  // Data on a strongly anisotropic Gaussian: a deviation along the MINOR
  // axis is more anomalous than an equal deviation along the major axis.
  Rng rng(207);
  Matrix x(0, 0);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> p{rng.normal(0.0, 5.0), rng.normal(0.0, 0.3)};
    x.push_row(p);
  }
  // Compare a 1.2σ major-axis point against a 6σ minor-axis point whose raw
  // norm is much smaller — variance weighting must rank the latter higher.
  const std::vector<double> along_major{6.0, 0.0};  // 1.2σ on major axis
  const std::vector<double> minor_big{0.0, 1.8};    // 6σ on minor axis
  x.push_row(along_major);  // index 200
  x.push_row(minor_big);    // index 201
  PcaDetector det;
  det.fit(x);
  EXPECT_GT(det.scores()[201], det.scores()[200]);
}

TEST(SosDetail, PerplexityBoundsRespected) {
  // Degenerate tiny inputs must not crash and must yield probabilities.
  Rng rng(208);
  Matrix x(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
  }
  SosDetector det(30.0);  // perplexity above n−1 gets clamped internally
  det.fit(x);
  for (double s : det.scores()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace nurd::outlier
