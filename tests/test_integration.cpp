// End-to-end integration tests: the full pipeline from trace generation
// through online prediction to scheduling, checking the paper's qualitative
// claims hold on small job sets (the full-scale versions are the benches).
#include <gtest/gtest.h>

#include "core/registry.h"
#include "eval/harness.h"
#include "sched/scheduler.h"
#include "trace/generator.h"

namespace nurd {
namespace {

std::vector<trace::Job> small_google(std::size_t n) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 200;
  trace::GoogleLikeGenerator gen(c);
  return gen.generate(n);
}

TEST(Integration, NurdBeatsSupervisedBaseline) {
  const auto jobs = small_google(8);
  const auto cfg = core::google_tuned();
  const auto nurd =
      eval::evaluate_method(core::predictor_by_name("NURD", cfg), jobs);
  const auto gbtr =
      eval::evaluate_method(core::predictor_by_name("GBTR", cfg), jobs);
  EXPECT_GT(nurd.f1, gbtr.f1);
  EXPECT_GT(nurd.tpr, gbtr.tpr);
}

TEST(Integration, NurdNcHasHigherFprThanNurd) {
  const auto jobs = small_google(8);
  const auto cfg = core::google_tuned();
  const auto nurd =
      eval::evaluate_method(core::predictor_by_name("NURD", cfg), jobs);
  const auto nc =
      eval::evaluate_method(core::predictor_by_name("NURD-NC", cfg), jobs);
  EXPECT_LT(nurd.fpr, nc.fpr);
}

TEST(Integration, PuMethodsOverFlag) {
  // §7.1: "PU learners aggressively classify tasks that are different from
  // training tasks to be stragglers" — high TPR, high FPR.
  const auto jobs = small_google(6);
  const auto cfg = core::google_tuned();
  for (const char* name : {"PU-EN", "PU-BG"}) {
    const auto res =
        eval::evaluate_method(core::predictor_by_name(name, cfg), jobs);
    EXPECT_GT(res.tpr, 0.8) << name;
    EXPECT_GT(res.fpr, 0.3) << name;
  }
}

TEST(Integration, StreamingF1IsNonTrivial) {
  const auto jobs = small_google(6);
  const auto cfg = core::google_tuned();
  const auto nurd =
      eval::evaluate_method(core::predictor_by_name("NURD", cfg), jobs);
  ASSERT_EQ(nurd.f1_timeline.size(), 10u);
  // Cumulative F1 at the final checkpoint equals the Table-3 value.
  EXPECT_NEAR(nurd.f1_timeline.back(), nurd.f1, 1e-9);
  // NURD finds most of its stragglers well before the end.
  EXPECT_GT(nurd.f1_timeline[4], 0.5 * nurd.f1);
}

TEST(Integration, NurdJctReductionPositiveAndAboveNc) {
  const auto jobs = small_google(8);
  const auto cfg = core::google_tuned();
  const auto nurd_runs =
      eval::run_method(core::predictor_by_name("NURD", cfg), jobs);
  const auto nc_runs =
      eval::run_method(core::predictor_by_name("NURD-NC", cfg), jobs);
  const double nurd_red = sched::mean_reduction_unlimited(jobs, nurd_runs, 7);
  const double nc_red = sched::mean_reduction_unlimited(jobs, nc_runs, 7);
  EXPECT_GT(nurd_red, 5.0);       // meaningful reduction
  EXPECT_GT(nurd_red, nc_red);    // calibration pays off in JCT too
}

TEST(Integration, LimitedMachinesReductionGrowsWithPool) {
  const auto jobs = small_google(6);
  const auto cfg = core::google_tuned();
  const auto runs =
      eval::run_method(core::predictor_by_name("NURD", cfg), jobs);
  const double small = sched::mean_reduction_limited(jobs, runs, 5, 7);
  const double large = sched::mean_reduction_limited(jobs, runs, 150, 7);
  EXPECT_GE(large, small - 1.0);
}

TEST(Integration, AlibabaPipelineRuns) {
  auto c = trace::AlibabaLikeGenerator::alibaba_defaults();
  c.min_tasks = 100;
  c.max_tasks = 150;
  trace::AlibabaLikeGenerator gen(c);
  const auto jobs = gen.generate(4);
  const auto cfg = core::alibaba_tuned();
  const auto nurd =
      eval::evaluate_method(core::predictor_by_name("NURD", cfg), jobs);
  EXPECT_GT(nurd.f1, 0.2);
  EXPECT_LE(nurd.f1, 1.0);
}

}  // namespace
}  // namespace nurd
