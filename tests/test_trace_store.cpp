#include "trace/trace_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "trace/checkpoint_view.h"
#include "trace/generator.h"

namespace nurd::trace {
namespace {

std::vector<std::size_t> vec(std::span<const std::size_t> s) {
  return {s.begin(), s.end()};
}

// Hand-built store: 4 tasks with known latencies, 2 features, 3 checkpoints.
// Rows encode (task, horizon) so reconstruction is checkable by eye.
TraceStore tiny_store() {
  TraceStore store({1.0, 5.0, 9.0, 20.0}, 2);
  for (const double tau : {2.0, 6.0, 10.0}) {
    store.append_checkpoint(tau, [tau](std::size_t task,
                                       std::span<double> row) {
      row[0] = static_cast<double>(task);
      row[1] = 100.0 * static_cast<double>(task) + tau;
    });
  }
  store.finalize();
  return store;
}

TEST(TraceStore, PartitionInTaskIdOrder) {
  const auto store = tiny_store();
  ASSERT_EQ(store.checkpoint_count(), 3u);
  EXPECT_EQ(store.finished(0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(store.running(0), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(store.finished(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(store.finished(2), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(store.running(2), (std::vector<std::size_t>{3}));
  EXPECT_EQ(store.finished_count(1), 2u);
}

TEST(TraceStore, PartitionOrderRevealsNoLatencyInformation) {
  // Latencies deliberately NOT aligned with task ids: the latency-sorted
  // order of the running set at checkpoint 0 would be {3, 1, 2} — handing
  // that out would rank still-running tasks by their unrevealed latencies.
  // The public partition must come back in ascending task id regardless.
  TraceStore store({9.0, 12.0, 30.0, 2.0, 7.0}, 1);
  store.append_checkpoint(8.0, [](std::size_t task, std::span<double> row) {
    row[0] = static_cast<double>(task);
  });
  store.append_checkpoint(20.0, [](std::size_t task, std::span<double> row) {
    row[0] = static_cast<double>(task) + 0.5;
  });
  store.finalize();
  EXPECT_EQ(store.finished(0), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(store.running(0), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(store.finished(1), (std::vector<std::size_t>{0, 1, 3, 4}));
  EXPECT_EQ(store.running(1), (std::vector<std::size_t>{2}));

  const CheckpointView view(store, 0);
  EXPECT_EQ(vec(view.finished()), store.finished(0));
  EXPECT_EQ(vec(view.running()), store.running(0));
}

TEST(TraceStore, PartitionReusesCapacityAndSkipsNullSides) {
  const auto store = tiny_store();
  std::vector<std::size_t> fin, run;
  store.partition(1, &fin, &run);
  EXPECT_EQ(fin, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(run, (std::vector<std::size_t>{2, 3}));
  store.partition(2, &fin, nullptr);
  EXPECT_EQ(fin, (std::vector<std::size_t>{0, 1, 2}));
  store.partition(0, nullptr, &run);
  EXPECT_EQ(run, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(TraceStore, FreezeOnFinish) {
  const auto store = tiny_store();
  // Task 0 (latency 1) froze at checkpoint 0 with its completion
  // observation; it is never re-observed.
  EXPECT_EQ(store.freeze_checkpoint(0), 0u);
  EXPECT_EQ(store.freeze_checkpoint(1), 1u);
  EXPECT_EQ(store.freeze_checkpoint(2), 2u);
  EXPECT_EQ(store.freeze_checkpoint(3), kNeverFrozen);
  // Frozen rows are the same stored version at every later checkpoint.
  EXPECT_EQ(store.row(0, 0).data(), store.row(2, 0).data());
  EXPECT_DOUBLE_EQ(store.row(2, 0)[1], 2.0);  // observed at tau = 2
  // A running task's row tracks the horizon.
  EXPECT_DOUBLE_EQ(store.row(0, 3)[1], 302.0);
  EXPECT_DOUBLE_EQ(store.row(2, 3)[1], 310.0);
}

TEST(TraceStore, ChangeDetectionDeduplicatesStaticRows) {
  // Rows independent of the horizon: only the base versions are stored no
  // matter how many checkpoints stream by.
  TraceStore store({1.0, 10.0, 10.0}, 3);
  for (const double tau : {2.0, 4.0, 6.0, 8.0}) {
    store.append_checkpoint(tau, [](std::size_t task, std::span<double> row) {
      for (auto& v : row) v = static_cast<double>(task) + 0.5;
    });
  }
  store.finalize();
  EXPECT_EQ(store.version_count(), 3u);  // one version per task, ever
  EXPECT_EQ(store.row(0, 1).data(), store.row(3, 1).data());
}

TEST(TraceStore, IsFinishedMatchesPartition) {
  const auto store = tiny_store();
  for (std::size_t t = 0; t < store.checkpoint_count(); ++t) {
    for (std::size_t i = 0; i < store.task_count(); ++i) {
      EXPECT_EQ(store.is_finished(t, i), store.latency(i) <= store.tau_run(t));
    }
  }
}

TEST(TraceStore, MaterializeReconstructsEveryRow) {
  const auto store = tiny_store();
  for (std::size_t t = 0; t < store.checkpoint_count(); ++t) {
    const Matrix snap = store.materialize(t);
    ASSERT_EQ(snap.rows(), store.task_count());
    ASSERT_EQ(snap.cols(), store.feature_count());
    for (std::size_t i = 0; i < store.task_count(); ++i) {
      const auto expect = store.row(t, i);
      for (std::size_t f = 0; f < expect.size(); ++f) {
        EXPECT_DOUBLE_EQ(snap(i, f), expect[f]);
      }
    }
  }
}

TEST(TraceStore, TiedLatenciesLandOnOneSideOfTheSplit) {
  TraceStore store({3.0, 3.0, 7.0}, 1);
  store.append_checkpoint(3.0, [](std::size_t, std::span<double> row) {
    row[0] = 0.0;
  });
  store.append_checkpoint(5.0, [](std::size_t, std::span<double> row) {
    row[0] = 1.0;
  });
  store.finalize();
  EXPECT_EQ(store.finished(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(store.running(0), (std::vector<std::size_t>{2}));
}

TEST(TraceStore, BuildProtocolViolationsThrow) {
  TraceStore store({1.0, 2.0}, 1);
  store.append_checkpoint(1.5, [](std::size_t, std::span<double> row) {
    row[0] = 0.0;
  });
  // Non-ascending tau.
  EXPECT_THROW(store.append_checkpoint(
                   1.5, [](std::size_t, std::span<double>) {}),
               std::invalid_argument);
  // Reads before finalize.
  EXPECT_THROW(store.row(0, 0), std::invalid_argument);
  EXPECT_THROW(store.finished(0), std::invalid_argument);
  store.finalize();
  // Appends after finalize.
  EXPECT_THROW(store.append_checkpoint(
                   9.0, [](std::size_t, std::span<double>) {}),
               std::invalid_argument);
  // Out-of-range reads.
  EXPECT_THROW(store.row(5, 0), std::invalid_argument);
  EXPECT_THROW(store.row(0, 9), std::invalid_argument);
  EXPECT_THROW(store.tau_run(7), std::invalid_argument);
}

TEST(TraceStore, RejectsDegenerateConstruction) {
  EXPECT_THROW(TraceStore({}, 3), std::invalid_argument);
  EXPECT_THROW(TraceStore({1.0}, 0), std::invalid_argument);
}

TEST(TraceStore, WriterCalledOncePerNeededRowOnly) {
  TraceStore store({1.0, 5.0, 20.0}, 1);
  std::vector<std::size_t> calls;
  const auto writer = [&calls](std::size_t task, std::span<double> row) {
    calls.push_back(task);
    row[0] = static_cast<double>(task);
  };
  store.append_checkpoint(2.0, writer);   // task 0 freezes; 1, 2 running
  EXPECT_EQ(calls, (std::vector<std::size_t>{0, 1, 2}));
  calls.clear();
  store.append_checkpoint(6.0, writer);   // task 1 freezes; 0 never asked
  EXPECT_EQ(calls, (std::vector<std::size_t>{1, 2}));
  calls.clear();
  store.append_checkpoint(10.0, writer);  // only task 2 still observed
  EXPECT_EQ(calls, (std::vector<std::size_t>{2}));
}

TEST(TraceStore, ColumnarBeatsMaterializedMemoryOnGeneratedJobs) {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 120;
  c.max_tasks = 160;
  GoogleLikeGenerator gen(c);
  for (const auto& job : gen.generate(4)) {
    EXPECT_LT(job.trace.memory_bytes(), job.trace.materialized_bytes() / 2)
        << "columnar store should be far below the dense representation";
    EXPECT_GE(job.trace.version_count(), job.task_count());
  }
}

TEST(CheckpointViewTest, EnforcesOnlineDiscipline) {
  const auto store = tiny_store();
  const CheckpointView view(store, 1);
  for (auto i : view.finished()) {
    EXPECT_DOUBLE_EQ(view.revealed_latency(i), store.latency(i));
  }
  for (auto i : view.running()) {
    EXPECT_THROW(view.revealed_latency(i), std::invalid_argument);
  }
}

TEST(CheckpointViewTest, GatherRowsReusesCapacity) {
  const auto store = tiny_store();
  const CheckpointView view(store, 2);
  Matrix scratch;
  view.gather_rows(view.finished(), &scratch);
  EXPECT_EQ(scratch.rows(), view.finished().size());
  const auto* before = scratch.flat().data();
  // A second gather of no more rows must not reallocate.
  view.gather_rows(view.finished(), &scratch);
  EXPECT_EQ(scratch.flat().data(), before);
  ASSERT_EQ(scratch.cols(), 2u);
  EXPECT_DOUBLE_EQ(scratch(0, 0), 0.0);  // finished order: task 0 first
}

TEST(CheckpointViewTest, DenseBackedViewMatchesColumnar) {
  const auto store = tiny_store();
  for (std::size_t t = 0; t < store.checkpoint_count(); ++t) {
    const Matrix snap = store.materialize(t);
    const CheckpointView columnar(store, t);
    const CheckpointView dense(store, t, snap);
    EXPECT_EQ(vec(columnar.finished()), vec(dense.finished()));
    EXPECT_EQ(vec(columnar.running()), vec(dense.running()));
    for (std::size_t i = 0; i < store.task_count(); ++i) {
      const auto a = columnar.row(i);
      const auto b = dense.row(i);
      for (std::size_t f = 0; f < a.size(); ++f) {
        EXPECT_DOUBLE_EQ(a[f], b[f]);
      }
    }
  }
}

TEST(CheckpointViewTest, RebindAdvancesWithoutLosingThePartition) {
  const auto store = tiny_store();
  CheckpointView view(store, 0);
  EXPECT_EQ(vec(view.running()), store.running(0));
  view.rebind(2);
  EXPECT_EQ(view.index(), 2u);
  EXPECT_EQ(vec(view.finished()), store.finished(2));
  EXPECT_EQ(vec(view.running()), store.running(2));
  // Dense-backed views are snapshot-bound and must not rebind.
  const Matrix snap = store.materialize(1);
  CheckpointView dense(store, 1, snap);
  EXPECT_THROW(dense.rebind(2), std::invalid_argument);
}

TEST(CheckpointViewTest, FinishedLatenciesInFinishedOrder) {
  const auto store = tiny_store();
  const CheckpointView view(store, 2);
  nurd::AlignedVector<double> lat;
  view.finished_latencies(&lat);
  EXPECT_EQ(lat, (nurd::AlignedVector<double>{1.0, 5.0, 9.0}));
}

// ---- the view-delta API ----------------------------------------------------

TEST(TraceStoreDelta, HandBuiltDeltasMatchTheStream) {
  // tiny_store: latencies {1,5,9,20}, taus {2,6,10}; every row drifts with
  // tau, so every still-observed task is a changed row at each checkpoint.
  const auto store = tiny_store();
  std::vector<std::size_t> fin, chg;

  store.delta(kNoCheckpoint, 0, &fin, &chg);
  EXPECT_EQ(fin, (std::vector<std::size_t>{0}));
  EXPECT_EQ(chg, (std::vector<std::size_t>{0, 1, 2, 3}));  // base versions

  store.delta(0, 1, &fin, &chg);
  EXPECT_EQ(fin, (std::vector<std::size_t>{1}));
  // Task 0 froze at cp 0 — never a changed row again; 1 froze at cp 1 with a
  // fresh observation, 2 and 3 drifted.
  EXPECT_EQ(chg, (std::vector<std::size_t>{1, 2, 3}));

  store.delta(1, 2, &fin, &chg);
  EXPECT_EQ(fin, (std::vector<std::size_t>{2}));
  EXPECT_EQ(chg, (std::vector<std::size_t>{2, 3}));

  // Multi-step delta spans (0, 2]: union of the two steps.
  store.delta(0, 2, &fin, &chg);
  EXPECT_EQ(fin, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(chg, (std::vector<std::size_t>{1, 2, 3}));

  // A null side is skipped.
  store.delta(0, 2, nullptr, &chg);
  EXPECT_EQ(chg, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(TraceStoreDelta, RepeatedViewsYieldEmptyDeltas) {
  const auto store = tiny_store();
  for (std::size_t t = 0; t < store.checkpoint_count(); ++t) {
    std::vector<std::size_t> fin{99}, chg{99};
    CheckpointView(store, t).delta_since(t, &fin, &chg);
    EXPECT_TRUE(fin.empty());
    EXPECT_TRUE(chg.empty());
  }
  // The store only streams forward: a backwards delta is a caller bug.
  std::vector<std::size_t> fin;
  EXPECT_THROW(store.delta(2, 1, &fin, nullptr), std::invalid_argument);
}

TEST(TraceStoreDelta, ReplayedDeltasSumToTheFullFinishedSet) {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 120;
  c.max_tasks = 150;
  GoogleLikeGenerator gen(c);
  for (const auto& job : gen.generate(3)) {
    std::vector<std::size_t> accumulated;
    std::size_t prev = kNoCheckpoint;
    for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
      const auto view = job.checkpoint(t);
      std::vector<std::size_t> fin;
      view.delta_since(prev, &fin, nullptr);
      // Steps are disjoint: nothing newly finished twice.
      for (const auto task : fin) {
        EXPECT_EQ(std::find(accumulated.begin(), accumulated.end(), task),
                  accumulated.end());
      }
      accumulated.insert(accumulated.end(), fin.begin(), fin.end());
      prev = t;
    }
    std::sort(accumulated.begin(), accumulated.end());
    EXPECT_EQ(accumulated,
              job.trace.finished(job.checkpoint_count() - 1));
  }
}

TEST(TraceStoreDelta, ChangedRowsMatchChangeDetectedOverlays) {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  GoogleLikeGenerator gen(c);
  for (const auto& job : gen.generate(2)) {
    const auto& store = job.trace;
    for (std::size_t t = 1; t < store.checkpoint_count(); ++t) {
      std::vector<std::size_t> chg;
      store.delta(t - 1, t, nullptr, &chg);
      // The delta must be EXACTLY the rows whose reconstruction differs
      // between the two checkpoints — i.e. the stored overlays.
      std::vector<std::size_t> expect;
      for (std::size_t i = 0; i < store.task_count(); ++i) {
        const auto a = store.row(t - 1, i);
        const auto b = store.row(t, i);
        if (!std::equal(a.begin(), a.end(), b.begin())) expect.push_back(i);
      }
      EXPECT_EQ(chg, expect) << job.id << " checkpoint " << t;
    }
  }
}

}  // namespace
}  // namespace nurd::trace
