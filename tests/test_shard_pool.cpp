// The sharded serving fleet's four contracts (serve/shard_pool.h):
//   * flag-set identity: shards x workers never changes the per-job records
//     (and the serialized 1x1 fleet is bit-identical to the batch harness),
//     including across a mid-stream drain/rebalance;
//   * placement is deterministic, covers only open shards, and each policy
//     honors its own invariant (hash spread, least-loaded balance, tenant
//     affinity);
//   * per-tenant admission quotas defer ONLY the over-quota tenant — the
//     in-quota tenant's modeled decision latency is unaffected within
//     tolerance — and never change anybody's flags;
//   * load-shedding engages under an over-budget spike, sheds only QoS
//     classes below the floor, never a job's final checkpoint, and sheds
//     the same checkpoints on every rerun.
#include "serve/shard_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/registry.h"
#include "eval/harness.h"
#include "serve/placement.h"
#include "trace/generator.h"

namespace nurd::serve {
namespace {

std::vector<trace::Job> generated_jobs(std::size_t count,
                                       std::uint64_t seed = 0) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 80;
  config.max_tasks = 120;
  config.seed += seed;
  trace::GoogleLikeGenerator gen(config);
  return gen.generate(count);
}

// Both tuned configs, GBT rounds reduced to keep the fits fast in tests.
core::RegistryConfig tuned(bool google) {
  auto config = google ? core::google_tuned() : core::alibaba_tuned();
  config.gbt_rounds = 10;
  return config;
}

void expect_runs_identical(const std::vector<eval::JobRunResult>& a,
                           const std::vector<eval::JobRunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].flagged_at, b[j].flagged_at) << "job " << j;
    ASSERT_EQ(a[j].per_checkpoint.size(), b[j].per_checkpoint.size());
    for (std::size_t t = 0; t < a[j].per_checkpoint.size(); ++t) {
      EXPECT_EQ(a[j].per_checkpoint[t].tp, b[j].per_checkpoint[t].tp);
      EXPECT_EQ(a[j].per_checkpoint[t].fp, b[j].per_checkpoint[t].fp);
      EXPECT_EQ(a[j].per_checkpoint[t].fn, b[j].per_checkpoint[t].fn);
      EXPECT_EQ(a[j].per_checkpoint[t].tn, b[j].per_checkpoint[t].tn);
    }
    EXPECT_EQ(a[j].final.tp, b[j].final.tp);
    EXPECT_EQ(a[j].final.fp, b[j].final.fp);
    EXPECT_EQ(a[j].final.fn, b[j].final.fn);
    EXPECT_EQ(a[j].final.tn, b[j].final.tn);
  }
}

// Records decisions concurrently and reduces them to the canonical flag
// SET — (job, task, checkpoint) — plus per-job order checking.
struct RecordingSink {
  std::mutex mutex;
  std::vector<FlagDecision> decisions;
  std::vector<std::size_t> last_checkpoint;

  explicit RecordingSink(std::size_t jobs) : last_checkpoint(jobs, 0) {}

  FlagSink sink() {
    return [this](const FlagDecision& flag) {
      std::lock_guard<std::mutex> lock(mutex);
      EXPECT_GE(flag.checkpoint, last_checkpoint[flag.job]);
      last_checkpoint[flag.job] = flag.checkpoint;
      decisions.push_back(flag);
    };
  }

  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> flag_set() {
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    out.reserve(decisions.size());
    for (const auto& d : decisions) {
      out.emplace_back(d.job, d.task, d.checkpoint);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(ShardedMonitor, SerializedFleetIsBitIdenticalToRunMethod) {
  const auto jobs = generated_jobs(4);
  const auto method = core::predictor_by_name("GBTR", tuned(true));
  const auto reference = eval::run_method(method, jobs);

  ShardedMonitorConfig config;
  config.shards = 1;
  config.threads = 1;
  ShardedMonitor fleet(jobs, method, config);
  const auto served = fleet.run();

  expect_runs_identical(served.runs, reference);
  EXPECT_EQ(served.totals.jobs, jobs.size());
}

// The headline acceptance pin: identical per-job records AND flag set at
// shards in {1, 2, 4} x workers in {1, 4}, for both tuned configs, under
// Poisson arrivals and least-loaded placement (the policy with the most
// plan-state coupling — if determinism broke anywhere it would break here).
TEST(ShardedMonitor, FlagSetIdenticalAcrossShardAndWorkerGrid) {
  const auto jobs = generated_jobs(6);
  for (const bool google : {true, false}) {
    SCOPED_TRACE(google ? "google_tuned" : "alibaba_tuned");
    const auto method = core::predictor_by_name("GBTR", tuned(google));
    const auto reference = eval::run_method(method, jobs);

    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> flags0;
    bool first = true;
    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const std::size_t workers : {1u, 4u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers));
        ShardedMonitorConfig config;
        config.shards = shards;
        config.threads = workers;
        config.arrivals = sched::poisson_arrivals(3.0);
        config.arrival_seed = 7;
        config.placement = least_loaded_placement();
        RecordingSink sink(jobs.size());
        config.sink = sink.sink();
        ShardedMonitor fleet(jobs, method, config);
        const auto served = fleet.run();

        expect_runs_identical(served.runs, reference);
        if (first) {
          flags0 = sink.flag_set();
          first = false;
        } else {
          EXPECT_EQ(sink.flag_set(), flags0);
        }
        EXPECT_EQ(served.totals.lanes, shards * workers);
      }
    }
  }
}

// Kill-style drain: shard 0 drains mid-stream, its jobs re-place and resume
// on open shards, and the final records and flag set are bit-identical to
// the undrained run. The drain time lands inside the event stream so real
// handoffs happen (asserted), and the grid covers serialized and DAG
// execution on the receiving side.
TEST(ShardedMonitor, DrainRebalanceKeepsFlagSetBitIdentical) {
  const auto jobs = generated_jobs(6, 1);
  const auto method = core::predictor_by_name("GBTR", tuned(true));
  const auto reference = eval::run_method(method, jobs);

  auto base_config = [&] {
    ShardedMonitorConfig config;
    config.threads = 1;
    config.arrivals = sched::poisson_arrivals(3.0);
    config.arrival_seed = 11;
    config.placement = least_loaded_placement();
    return config;
  };

  // The drain must interrupt at least one job: pick the midpoint of the
  // planned admission window from an undrained plan.
  double mid = 0.0;
  {
    auto config = base_config();
    config.shards = 2;
    ShardedMonitor probe(jobs, method, config);
    const auto& events = probe.plan().events;
    ASSERT_FALSE(events.empty());
    mid = events[events.size() / 2].admission;
  }

  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t workers : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      auto config = base_config();
      config.shards = shards;
      config.threads = workers;
      config.drains = {{mid, 0}};
      RecordingSink sink(jobs.size());
      config.sink = sink.sink();
      ShardedMonitor fleet(jobs, method, config);
      EXPECT_GT(fleet.plan().handoffs.size(), 0u);
      for (const auto& h : fleet.plan().handoffs) {
        EXPECT_EQ(h.from, 0u);  // only the drained shard loses jobs
        EXPECT_NE(h.to, 0u);    // and it never receives any
      }
      const auto served = fleet.run();
      EXPECT_EQ(served.handoffs, fleet.plan().handoffs.size());
      expect_runs_identical(served.runs, reference);
      // After the drain time, no event runs on the drained shard.
      for (const auto& e : fleet.plan().events) {
        if (e.admission >= mid) {
          EXPECT_NE(e.shard, 0u);
        }
      }
    }
  }
}

TEST(Placement, PoliciesAreDeterministicAndRespectOpenShards) {
  const auto jobs = generated_jobs(8);
  const auto method = core::predictor_by_name("HBOS", tuned(true));
  const std::vector<std::size_t> tenant_of = {0, 1, 0, 1, 0, 1, 0, 1};

  for (const auto* name : {"hash", "least-loaded", "affinity"}) {
    SCOPED_TRACE(name);
    auto make_plan = [&] {
      ShardedMonitorConfig config;
      config.shards = 4;
      config.arrivals = sched::poisson_arrivals(5.0);
      config.arrival_seed = 3;
      config.placement = placement_by_name(name);
      config.placement_seed = 99;
      config.tenants = {TenantSpec{"a", QoS::kStandard, 0.0, 8.0},
                       TenantSpec{"b", QoS::kStandard, 0.0, 8.0}};
      config.tenant_of = tenant_of;
      return ShardedMonitor(jobs, method, config);
    };
    ShardedMonitor fleet1 = make_plan();
    ShardedMonitor fleet2 = make_plan();
    ASSERT_EQ(fleet1.plan().home_shard, fleet2.plan().home_shard);
    for (const std::size_t s : fleet1.plan().home_shard) {
      EXPECT_LT(s, 4u);
    }
    if (std::string(name) == "affinity") {
      // Every job of a tenant lands on that tenant's shard.
      std::vector<std::size_t> tenant_shard(2, SIZE_MAX);
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const std::size_t t = tenant_of[j];
        if (tenant_shard[t] == SIZE_MAX) {
          tenant_shard[t] = fleet1.plan().home_shard[j];
        }
        EXPECT_EQ(fleet1.plan().home_shard[j], tenant_shard[t]);
      }
    }
    if (std::string(name) == "least-loaded") {
      // Eight same-size jobs over four shards balance two per shard.
      std::vector<std::size_t> count(4, 0);
      for (const std::size_t s : fleet1.plan().home_shard) ++count[s];
      EXPECT_EQ(*std::max_element(count.begin(), count.end()), 2u);
    }
  }
}

// The multi-tenant fairness regression test: tenant "spike" floods the
// fleet while tenant "steady" stays in quota. With the quota enforced, the
// spike tenant queues behind its own budget (deferrals > 0) and the steady
// tenant's modeled p99 decision latency stays within tolerance of its
// latency in an unloaded fleet; with the quota removed, the flood drives
// the steady tenant's p99 far past it. Everything asserted lives in the
// plan plane (simulated time), so the numbers are exactly reproducible.
TEST(ShardedMonitor, QuotaShieldsInQuotaTenantFromOverQuotaFlood) {
  const auto steady_jobs = generated_jobs(3, 2);
  const auto flood_jobs = generated_jobs(9, 3);
  std::vector<trace::Job> jobs;
  for (const auto& j : steady_jobs) jobs.push_back(j);
  for (const auto& j : flood_jobs) jobs.push_back(j);
  const auto method = core::predictor_by_name("HBOS", tuned(true));

  auto run_plan = [&](double spike_quota_rate) {
    ShardedMonitorConfig config;
    config.shards = 2;
    config.arrivals = sched::poisson_arrivals(50.0);
    config.arrival_seed = 5;
    config.tenants = {
        TenantSpec{"steady", QoS::kInteractive, 0.0, 8.0},
        TenantSpec{"spike", QoS::kBatch, spike_quota_rate, 4.0}};
    std::vector<std::size_t> tenant_of(jobs.size(), 1);
    for (std::size_t j = 0; j < steady_jobs.size(); ++j) tenant_of[j] = 0;
    config.tenant_of = tenant_of;
    // Trace checkpoints land over tens of thousands of simulated seconds,
    // so the modeled rates live on that scale: capacity 0.05 events/s per
    // shard, and the spike tenant's burst outruns its 0.01 events/s quota.
    config.service_rate = 0.05;
    return ShardedMonitor(jobs, method, config);
  };

  ShardedMonitor with_quota = run_plan(0.01);
  ShardedMonitor without_quota = run_plan(0.0);
  const auto quota_result = with_quota.run();
  const auto flood_result = without_quota.run();
  const auto& quota_stats = quota_result.tenants;
  const auto& flood_stats = flood_result.tenants;

  // The over-quota tenant queues behind its own budget...
  EXPECT_GT(quota_stats[1].deferred, 0u);
  EXPECT_GT(quota_stats[1].max_deferral_s, 0.0);
  // ...the in-quota tenant is never deferred...
  EXPECT_EQ(quota_stats[0].deferred, 0u);
  EXPECT_EQ(quota_stats[0].max_deferral_s, 0.0);
  // ...and its modeled p99 is shielded: within 3x of the clamped-flood
  // fleet is fine, while the unmetered flood blows it out by an order of
  // magnitude.
  EXPECT_GT(flood_stats[0].p99_virtual_ms,
            3.0 * quota_stats[0].p99_virtual_ms);

  // Quotas shift admission times, never decisions: identical records.
  expect_runs_identical(quota_result.runs, flood_result.runs);
}

// Load-shedding under an over-budget Poisson spike: sheds engage, hit only
// QoS classes below the floor, spare every job's final checkpoint, and the
// shed set is identical across reruns. Shed checkpoints still produce a
// confusion record (carried forward), so per-job records stay complete.
TEST(ShardedMonitor, SheddingIsTieredDeterministicAndSparesFinals) {
  const auto batch_jobs = generated_jobs(8, 4);
  const auto inter_jobs = generated_jobs(2, 5);
  std::vector<trace::Job> jobs;
  for (const auto& j : batch_jobs) jobs.push_back(j);
  for (const auto& j : inter_jobs) jobs.push_back(j);
  const auto method = core::predictor_by_name("HBOS", tuned(true));

  auto make = [&] {
    ShardedMonitorConfig config;
    config.shards = 2;
    // The spike compresses every arrival into the first 100 simulated
    // seconds — far over the 0.02 events/s per-shard modeled capacity.
    config.arrivals = sched::poisson_spike_arrivals(0.02, 4.0, 0.0, 100.0);
    config.arrival_seed = 13;
    config.tenants = {TenantSpec{"batch", QoS::kBatch, 0.0, 8.0},
                      TenantSpec{"interactive", QoS::kInteractive, 0.0, 8.0}};
    std::vector<std::size_t> tenant_of(jobs.size(), 0);
    for (std::size_t j = batch_jobs.size(); j < jobs.size(); ++j) {
      tenant_of[j] = 1;
    }
    config.tenant_of = tenant_of;
    config.service_rate = 0.02;
    config.shed_budget = 4;
    config.shed_floor = QoS::kInteractive;
    return ShardedMonitor(jobs, method, config);
  };

  ShardedMonitor fleet = make();
  const auto& plan = fleet.plan();
  EXPECT_GT(plan.shed_events, 0u);
  for (const auto& e : plan.events) {
    if (!e.shed) continue;
    EXPECT_EQ(e.tenant, 0u);  // only the batch tenant sheds
    EXPECT_LT(e.checkpoint + 1, jobs[e.job].checkpoint_count());
  }

  // Deterministic across reruns: the same checkpoints shed.
  ShardedMonitor rerun = make();
  ASSERT_EQ(rerun.plan().events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(rerun.plan().events[i].shed, plan.events[i].shed);
  }

  const auto served = fleet.run();
  std::size_t executed_shed = 0;
  for (const auto& s : served.shards) executed_shed += s.shed;
  EXPECT_EQ(executed_shed, plan.shed_events);
  EXPECT_EQ(served.tenants[1].shed, 0u);
  EXPECT_EQ(served.tenants[0].shed, plan.shed_events);
  // Records stay complete: every checkpoint has a confusion row and the
  // final row is populated.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(served.runs[j].per_checkpoint.size(),
              jobs[j].checkpoint_count());
  }
}

// Fleet stats account for every planned event exactly once, at any shape.
TEST(ShardedMonitor, StatsCoverEveryCheckpoint) {
  const auto jobs = generated_jobs(5, 6);
  const auto method = core::predictor_by_name("HBOS", tuned(true));
  std::size_t total = 0;
  for (const auto& j : jobs) total += j.checkpoint_count();

  ShardedMonitorConfig config;
  config.shards = 3;
  config.threads = 2;
  config.arrivals = sched::poisson_arrivals(4.0);
  ShardedMonitor fleet(jobs, method, config);
  const auto served = fleet.run();

  EXPECT_EQ(served.totals.checkpoints, total);
  std::size_t per_shard = 0;
  std::size_t shard_jobs = 0;
  for (const auto& s : served.shards) {
    per_shard += s.checkpoints;
    shard_jobs += s.jobs;
  }
  EXPECT_EQ(per_shard, total);
  EXPECT_GE(shard_jobs, jobs.size());  // drains could only add re-serves
  std::size_t tenant_ckpts = 0;
  for (const auto& t : served.tenants) tenant_ckpts += t.checkpoints;
  EXPECT_EQ(tenant_ckpts, total);
}

TEST(ShardedMonitor, RunTwiceThrows) {
  const auto jobs = generated_jobs(2, 7);
  const auto method = core::predictor_by_name("HBOS", tuned(true));
  ShardedMonitorConfig config;
  ShardedMonitor fleet(jobs, method, config);
  fleet.run();
  EXPECT_THROW(fleet.run(), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::serve
