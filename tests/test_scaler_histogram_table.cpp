#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/scaler.h"
#include "common/table.h"

namespace nurd {
namespace {

TEST(StandardScaler, TransformsToZeroMeanUnitVariance) {
  Matrix x{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  StandardScaler scaler;
  const auto xs = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < 3; ++r) mean += xs(r, c);
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(xs(0, 0), -1.2247448, 1e-6);
}

TEST(StandardScaler, ZeroVarianceColumnPassesThroughCentered) {
  Matrix x{{5.0}, {5.0}};
  StandardScaler scaler;
  const auto xs = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(xs(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(xs(1, 0), 0.0);
}

TEST(StandardScaler, TransformRowMatchesMatrixTransform) {
  Matrix x{{1.0, 2.0}, {3.0, 6.0}};
  StandardScaler scaler;
  scaler.fit(x);
  std::vector<double> row{1.0, 2.0};
  scaler.transform_row(row);
  const auto xs = scaler.transform(x);
  EXPECT_DOUBLE_EQ(row[0], xs(0, 0));
  EXPECT_DOUBLE_EQ(row[1], xs(0, 1));
}

TEST(StandardScaler, UnfittedThrows) {
  StandardScaler scaler;
  Matrix x(1, 1);
  EXPECT_THROW(scaler.transform(x), std::invalid_argument);
}

TEST(StandardScaler, ColumnMismatchThrows) {
  Matrix x(2, 2, 1.0);
  StandardScaler scaler;
  scaler.fit(x);
  Matrix bad(2, 3, 1.0);
  EXPECT_THROW(scaler.transform(bad), std::invalid_argument);
}

TEST(Histogram, CountsSumToN) {
  const std::vector<double> v{0.0, 0.1, 0.5, 0.9, 1.0};
  const Histogram h(v, 4);
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.count(b);
  EXPECT_EQ(total, v.size());
}

TEST(Histogram, BinOfClampsOutOfRange) {
  const std::vector<double> v{0.0, 1.0};
  const Histogram h(v, 2);
  EXPECT_EQ(h.bin_of(-5.0), 0u);
  EXPECT_EQ(h.bin_of(5.0), h.bin_count() - 1);
}

TEST(Histogram, ConstantDataSingleBin) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  const Histogram h(v, 10);
  EXPECT_EQ(h.bin_count(), 1u);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(Histogram, DensityIntegratesToOne) {
  const std::vector<double> v{0.0, 0.25, 0.5, 0.75, 1.0};
  const Histogram h(v, 5);
  const double width = (h.hi() - h.lo()) / static_cast<double>(h.bin_count());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(h.lo() + (static_cast<double>(b) + 0.5) * width) *
                width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, DensityFloorKeepsLogFinite) {
  const std::vector<double> v{0.0, 1.0};
  const Histogram h(v, 10);
  EXPECT_GT(h.density(0.5), 0.0);  // empty middle bin still positive
}

TEST(Histogram, RejectsEmptyInput) {
  EXPECT_THROW(Histogram({}, 4), std::invalid_argument);
}

TEST(Histogram, AsciiHasOneLinePerBin) {
  const std::vector<double> v{0.0, 0.5, 1.0};
  const Histogram h(v, 3);
  const auto s = h.ascii();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'),
            static_cast<std::ptrdiff_t>(h.bin_count()));
}

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  const auto s = t.render();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("--"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace nurd
