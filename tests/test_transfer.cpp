#include "core/transfer.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "trace/generator.h"

namespace nurd::core {
namespace {

std::vector<trace::Job> source_jobs(std::size_t n, std::uint64_t seed) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 160;
  c.seed = seed;
  trace::GoogleLikeGenerator gen(c);
  return gen.generate(n);
}

std::shared_ptr<TransferModel> fitted_model() {
  static const auto model = [] {
    auto m = std::make_shared<TransferModel>();
    m->fit(source_jobs(6, 555));
    return m;
  }();
  return model;
}

TEST(TransferModel, PoolsAllSourceTasks) {
  const auto jobs = source_jobs(3, 556);
  TransferModel model;
  model.fit(jobs);
  std::size_t total = 0;
  for (const auto& j : jobs) total += j.task_count();
  EXPECT_EQ(model.pooled_samples(), total);
  EXPECT_TRUE(model.fitted());
}

TEST(TransferModel, PredictionScalesWithMedian) {
  const auto model = fitted_model();
  const auto jobs = source_jobs(1, 557);
  const Matrix features =
      jobs[0].trace.materialize(jobs[0].checkpoint_count() - 1);
  const auto mu = features.col_means();
  const auto sd = features.col_stddevs();
  const double p1 = model->predict(features.row(0), mu, sd, 100.0);
  const double p2 = model->predict(features.row(0), mu, sd, 200.0);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-9);
  EXPECT_GT(p1, 0.0);
}

TEST(TransferModel, TransfersSlownessOrdering) {
  // On a fresh target job, the pooled model should rank true stragglers'
  // latencies above the median non-straggler prediction.
  const auto model = fitted_model();
  const auto target = source_jobs(1, 600)[0];
  const Matrix features =
      target.trace.materialize(target.checkpoint_count() - 1);
  const auto mu = features.col_means();
  const auto sd = features.col_stddevs();
  const auto labels = target.straggler_labels();
  double mean_strag = 0.0, mean_non = 0.0;
  std::size_t n_strag = 0, n_non = 0;
  for (std::size_t i = 0; i < target.task_count(); ++i) {
    const double p = model->predict(features.row(i), mu, sd, 1.0);
    if (labels[i] == 1) {
      mean_strag += p;
      ++n_strag;
    } else {
      mean_non += p;
      ++n_non;
    }
  }
  EXPECT_GT(mean_strag / static_cast<double>(n_strag),
            mean_non / static_cast<double>(n_non));
}

TEST(TransferModel, UnfittedPredictThrows) {
  TransferModel model;
  const std::vector<double> row(15, 0.0), mu(15, 0.0), sd(15, 1.0);
  EXPECT_THROW(model.predict(row, mu, sd, 1.0), std::invalid_argument);
}

TEST(TransferNurd, LambdaGrowsWithFinishedSet) {
  TransferNurdPredictor p(fitted_model());
  EXPECT_LT(p.lambda(10), p.lambda(100));
  EXPECT_NEAR(p.lambda(50), 0.5, 1e-12);  // blend_halfway default = 50
  EXPECT_GT(p.lambda(1000), 0.95);
}

TEST(TransferNurd, RunsOverAJob) {
  const auto target = source_jobs(1, 601)[0];
  TransferNurdPredictor p(fitted_model());
  const auto run = eval::run_job(target, p);
  EXPECT_EQ(run.final.tp + run.final.fp + run.final.fn + run.final.tn,
            target.task_count());
  EXPECT_EQ(p.name(), "NURD-TL");
}

TEST(TransferNurd, CompetitiveWithVanillaNurd) {
  // The pooled warm start must not wreck accuracy on full jobs (its value
  // shows at small initial training sets; here we just guard against harm).
  const auto targets = source_jobs(6, 602);
  const auto model = fitted_model();
  double f1_tl = 0.0, f1_base = 0.0;
  for (const auto& job : targets) {
    TransferNurdParams tp;
    tp.nurd.alpha = 0.25;
    TransferNurdPredictor tl(model, tp);
    auto run = eval::run_job(job, tl);
    f1_tl += run.final.f1();
    NurdParams np;
    np.alpha = 0.25;
    NurdPredictor base(np);
    run = eval::run_job(job, base);
    f1_base += run.final.f1();
  }
  EXPECT_GT(f1_tl, 0.6 * f1_base);
}

TEST(TransferNurd, RejectsUnfittedModel) {
  auto unfitted = std::make_shared<TransferModel>();
  EXPECT_THROW(TransferNurdPredictor{unfitted}, std::invalid_argument);
}

}  // namespace
}  // namespace nurd::core
