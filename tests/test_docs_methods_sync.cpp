// Keeps docs/METHODS.md honest: its method table must list exactly the
// registry's Table-3 names, in registry order, and the same inventory that
// predictor_by_name prints when given an unknown name. The CI docs job runs
// this as `ctest -R docs_methods_sync`, so renaming or adding a method
// without updating the docs fails the build rather than silently drifting.
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"

namespace nurd::core {
namespace {

#ifndef NURD_SOURCE_DIR
#error "NURD_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

// First `backticked` token of every table body row in the file (the name
// column of docs/METHODS.md; header and separator rows have none).
std::vector<std::string> documented_methods(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    const auto start = line.find('`') + 1;
    const auto end = line.find('`', start);
    if (end == std::string::npos) continue;
    names.push_back(line.substr(start, end - start));
  }
  return names;
}

std::vector<std::string> registry_methods() {
  std::vector<std::string> names;
  for (const auto& method : all_predictors()) names.push_back(method.name);
  return names;
}

// The valid-name inventory predictor_by_name reports on a typo'd lookup.
std::vector<std::string> error_listing_methods() {
  std::string message;
  try {
    predictor_by_name("__not_a_method__");
  } catch (const std::invalid_argument& error) {
    message = error.what();
  }
  const auto colon = message.rfind(": ");
  EXPECT_NE(colon, std::string::npos) << "unexpected error format";
  std::stringstream list(message.substr(colon + 2));
  std::vector<std::string> names;
  std::string name;
  while (std::getline(list, name, ',')) {
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    names.push_back(name);
  }
  return names;
}

TEST(DocsMethodsSync, TableMatchesRegistryOrderExactly) {
  const auto documented =
      documented_methods(std::string(NURD_SOURCE_DIR) + "/docs/METHODS.md");
  const auto registry = registry_methods();
  EXPECT_EQ(documented, registry)
      << "docs/METHODS.md has drifted from core::all_predictors()";
}

TEST(DocsMethodsSync, TableMatchesTheLookupErrorListing) {
  const auto documented =
      documented_methods(std::string(NURD_SOURCE_DIR) + "/docs/METHODS.md");
  EXPECT_EQ(documented, error_listing_methods())
      << "docs/METHODS.md disagrees with predictor_by_name's inventory";
}

TEST(DocsMethodsSync, RegistryHasAll23Table3Rows) {
  EXPECT_EQ(registry_methods().size(), 23u);
}

}  // namespace
}  // namespace nurd::core
