// Runtime contracts of the annotated primitives in common/sync.h. The
// compile-time half (lock-set verification) runs in the clang
// -Wthread-safety CI leg; these tests pin the behavior the annotations
// wrap: MutexLock scoping with early unlock/relock, exclusion observed from
// another thread (same-thread try_lock on a held std::mutex is UB, so every
// held-ness probe runs on a helper thread), CondVar wakeups with ownership
// staying on the caller's guard, and notify_all releasing every waiter.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nurd {
namespace {

// Probes mu from a fresh thread: true if that thread could acquire it.
bool acquirable_elsewhere(Mutex& mu) {
  bool got = false;
  std::thread prober([&] {
    if (mu.try_lock()) {
      got = true;
      mu.unlock();
    }
  });
  prober.join();
  return got;
}

TEST(Sync, MutexLockExcludesWhileHeldAndReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(acquirable_elsewhere(mu));
  }
  EXPECT_TRUE(acquirable_elsewhere(mu));
}

TEST(Sync, MutexLockEarlyUnlockAndRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(acquirable_elsewhere(mu));  // early unlock really released it
  lock.lock();
  EXPECT_FALSE(acquirable_elsewhere(mu));  // re-acquired; dtor unlocks once
}

TEST(Sync, CondVarWaitKeepsOwnershipWithCallerGuard) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // Ownership stayed with our guard across the wait: the mutex must
    // still be held by this thread after wait() returns.
    EXPECT_FALSE(acquirable_elsewhere(mu));
    EXPECT_TRUE(ready);
  }
  waker.join();
  EXPECT_TRUE(acquirable_elsewhere(mu));  // guard's dtor was the one unlock
}

TEST(Sync, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    cv.notify_all();
  }
  for (auto& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, 4);
}

}  // namespace
}  // namespace nurd
