// Migration golden test: every registry predictor must produce EXACTLY the
// same flag decisions when driven through the columnar TraceStore row
// accessor as when driven through dense materialized snapshots (the seed's
// representation, reconstructed checkpoint by checkpoint). Bit-identical
// flagged_at vectors prove the columnar reconstruction is lossless on the
// entire Table-3 surface, not just on row reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.h"
#include "eval/harness.h"
#include "trace/generator.h"

namespace nurd {
namespace {

// Mirrors eval::run_job's protocol exactly, but hands the predictor
// dense-backed views (rows read from a pre-materialized snapshot) instead
// of columnar-backed ones.
eval::JobRunResult run_job_materialized(const trace::Job& job,
                                        core::StragglerPredictor& predictor,
                                        double pct = 90.0) {
  const double tau_stra = job.straggler_threshold(pct);
  const std::size_t n = job.task_count();
  const std::size_t T = job.checkpoint_count();

  std::vector<Matrix> snapshots;
  snapshots.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    snapshots.push_back(job.trace.materialize(t));
  }

  eval::JobRunResult result;
  result.flagged_at.assign(n, eval::kNeverFlagged);
  result.per_checkpoint.resize(T);

  core::JobContext context = eval::make_job_context(job, tau_stra);
  std::optional<core::OfflineSample> offline;
  if (predictor.privilege() == core::Privilege::kOfflineLabels) {
    offline.emplace(job.straggler_labels(90.0));
    context.offline = &*offline;
  }
  predictor.initialize(context);

  for (std::size_t t = 0; t < T; ++t) {
    const trace::CheckpointView view(job.trace, t, snapshots[t]);
    std::vector<std::size_t> candidates;
    for (auto i : view.running()) {
      if (result.flagged_at[i] == eval::kNeverFlagged) {
        candidates.push_back(i);
      }
    }
    for (auto i : predictor.predict_stragglers(view, candidates)) {
      result.flagged_at[i] = t;
    }
  }
  return result;
}

struct ParityCase {
  std::string dataset;
  std::string method;
};

class GoldenParityTest : public ::testing::TestWithParam<ParityCase> {};

const std::vector<trace::Job>& jobs_for(const std::string& dataset) {
  static const std::vector<trace::Job> google = [] {
    auto c = trace::GoogleLikeGenerator::google_defaults();
    c.min_tasks = 100;
    c.max_tasks = 130;
    return trace::GoogleLikeGenerator(c).generate(2);
  }();
  static const std::vector<trace::Job> alibaba = [] {
    auto c = trace::AlibabaLikeGenerator::alibaba_defaults();
    c.min_tasks = 100;
    c.max_tasks = 130;
    return trace::AlibabaLikeGenerator(c).generate(1);
  }();
  return dataset == "google" ? google : alibaba;
}

TEST_P(GoldenParityTest, FlagsIdenticalThroughBothPaths) {
  const auto& [dataset, name] = GetParam();
  const auto cfg =
      dataset == "google" ? core::google_tuned() : core::alibaba_tuned();
  const auto method = core::predictor_by_name(name, cfg);
  for (const auto& job : jobs_for(dataset)) {
    auto columnar = method.make();
    auto dense = method.make();
    const auto run_columnar = eval::run_job(job, *columnar);
    const auto run_dense = run_job_materialized(job, *dense);
    EXPECT_EQ(run_columnar.flagged_at, run_dense.flagged_at)
        << name << " diverged on " << job.id;
  }
}

std::vector<ParityCase> all_cases() {
  std::vector<ParityCase> cases;
  for (const auto& method : core::all_predictors()) {
    cases.push_back({"google", method.name});
  }
  // The Alibaba schema exercises the d=4 layout on a representative subset
  // spanning every adapter family.
  for (const char* name :
       {"GBTR", "HBOS", "KNN", "XGBOD", "PU-EN", "PU-BG", "Tobit", "Grabit",
        "CoxPH", "Wrangler", "NURD-NC", "NURD"}) {
    cases.push_back({"alibaba", name});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, GoldenParityTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      std::string name = info.param.dataset + "_" + info.param.method;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(GoldenParity, RegistryIsComplete) {
  // The parity sweep above must cover all 23 Table-3 methods.
  EXPECT_EQ(core::all_predictors().size(), 23u);
}

}  // namespace
}  // namespace nurd
