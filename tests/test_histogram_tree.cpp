// Coverage for the histogram split-finding backend, the feature binner, the
// thread pool, and the parallel evaluation harness's determinism contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "ml/gbt.h"
#include "ml/tree.h"
#include "trace/generator.h"

namespace nurd {
namespace {

using ml::FeatureBinner;
using ml::GbtParams;
using ml::GradientBoosting;
using ml::RegressionTree;
using ml::SplitMethod;
using ml::TreeParams;

Matrix random_matrix(std::size_t n, std::size_t d, Rng& rng) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.normal();
  }
  return x;
}

std::vector<std::size_t> iota_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return rows;
}

// (a) With fewer rows than bins every distinct-value boundary gets its own
// bin edge, so the histogram backend's candidate set — and therefore the
// fitted tree — is identical to exact greedy's.
TEST(HistogramTree, MatchesExactOnSmallData) {
  Rng data_rng(21);
  const std::size_t n = 40;  // < max_bins = 64
  const std::size_t d = 3;
  Matrix x = random_matrix(n, d, data_rng);  // continuous ⇒ distinct values
  std::vector<double> grad(n), hess(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) grad[i] = data_rng.normal();
  const auto rows = iota_rows(n);

  TreeParams exact_params;
  exact_params.max_depth = 4;
  exact_params.min_child_weight = 0.0;
  exact_params.split = SplitMethod::kExact;
  TreeParams hist_params = exact_params;
  hist_params.split = SplitMethod::kHistogram;
  hist_params.max_bins = 64;

  Rng rng_a(1), rng_b(1);
  RegressionTree exact_tree, hist_tree;
  exact_tree.fit(x, grad, hess, rows, exact_params, rng_a);
  hist_tree.fit(x, grad, hess, rows, hist_params, rng_b);

  EXPECT_EQ(exact_tree.node_count(), hist_tree.node_count());
  EXPECT_EQ(exact_tree.leaf_count(), hist_tree.leaf_count());
  EXPECT_EQ(exact_tree.depth(), hist_tree.depth());
  // Every training row lands in the same leaf with the same value. (Off-
  // sample points may still route differently at deep nodes: between the
  // same two data points, exact splits at the node-local midpoint while
  // histogram splits at a gain-equivalent global bin edge.)
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(exact_tree.predict(x.row(i)), hist_tree.predict(x.row(i)));
  }
}

TEST(HistogramTree, RecoversPerfectSplit) {
  Matrix x{{-2.0}, {-1.0}, {1.0}, {2.0}};
  const std::vector<double> grad{1.0, 1.0, -1.0, -1.0};
  const std::vector<double> hess{1.0, 1.0, 1.0, 1.0};
  TreeParams params;
  params.lambda = 0.0;
  params.min_child_weight = 0.0;
  params.split = SplitMethod::kHistogram;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, iota_rows(4), params, rng);
  EXPECT_NEAR(tree.predict(x.row(0)), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(x.row(3)), 1.0, 1e-9);
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(HistogramTree, LargeFitApproximatesExactQuality) {
  // At n ≫ max_bins the two backends need not agree split-for-split, but the
  // histogram tree must fit about as well.
  Rng data_rng(5);
  const std::size_t n = 4000;
  Matrix x = random_matrix(n, 4, data_rng);
  std::vector<double> grad(n), hess(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = -(std::sin(x(i, 0)) + 0.5 * x(i, 1));  // grad = −y at score 0
  }
  const auto rows = iota_rows(n);
  const auto sse = [&](const RegressionTree& t) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = t.predict(x.row(i)) - (-grad[i]);
      s += r * r;
    }
    return s;
  };
  TreeParams params;
  params.max_depth = 6;
  params.split = SplitMethod::kExact;
  Rng rng_a(1), rng_b(1);
  RegressionTree exact_tree, hist_tree;
  exact_tree.fit(x, grad, hess, rows, params, rng_a);
  params.split = SplitMethod::kHistogram;
  hist_tree.fit(x, grad, hess, rows, params, rng_b);
  EXPECT_LT(sse(hist_tree), sse(exact_tree) * 1.10);
}

TEST(FeatureBinner, BinsAreConsistentWithEdges) {
  Rng rng(3);
  Matrix x = random_matrix(500, 2, rng);
  const auto rows = iota_rows(500);
  const FeatureBinner binner(x, rows, 16);
  for (std::size_t f = 0; f < 2; ++f) {
    ASSERT_LE(binner.bin_count(f), 16u);
    ASSERT_GE(binner.bin_count(f), 2u);
    for (std::size_t r = 0; r < 500; ++r) {
      const auto b = binner.bin(f, r);
      ASSERT_LT(b, binner.bin_count(f));
      // x ≤ edge(b) ⟺ bin ≤ b, checked at both enclosing edges.
      if (b > 0) {
        EXPECT_GT(x(r, f), binner.edge(f, b - 1));
      }
      if (static_cast<std::size_t>(b) + 1 < binner.bin_count(f)) {
        EXPECT_LE(x(r, f), binner.edge(f, b));
      }
    }
  }
}

TEST(FeatureBinner, ConstantFeatureGetsOneBin) {
  Matrix x(10, 1, 3.5);
  const FeatureBinner binner(x, iota_rows(10), 8);
  EXPECT_EQ(binner.bin_count(0), 1u);
}

// Regression: a rare binary indicator (far fewer minority rows than the
// ~n/max_bins quantile target) must still get its boundary edge — the
// frequency-weighted packing pass must never run when the distinct values
// fit in the bin budget.
TEST(FeatureBinner, RareBinaryFeatureKeepsItsSplit) {
  const std::size_t n = 10000;
  Matrix x(n, 1, 1.0);
  std::vector<double> grad(n, -1.0), hess(n, 1.0);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = 0.0;
    grad[i] = 1.0;  // minority class pulls the other way
  }
  const auto rows = iota_rows(n);
  const FeatureBinner binner(x, rows, 64);
  ASSERT_EQ(binner.bin_count(0), 2u);

  TreeParams params;
  params.lambda = 0.0;
  params.min_child_weight = 0.0;
  params.split = SplitMethod::kHistogram;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_NEAR(tree.predict(x.row(0)), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(x.row(n - 1)), 1.0, 1e-9);
}

// (c) Same seed ⇒ bit-identical ensembles, with subsampling and column
// sampling active and the histogram backend forced on.
TEST(HistogramTree, GbtSameSeedBitIdentical) {
  Rng data_rng(15);
  const std::size_t n = 600;
  Matrix x = random_matrix(n, 4, data_rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) - 2.0 * x(i, 2);

  GbtParams params;
  params.n_rounds = 30;
  params.subsample = 0.7;
  params.tree.colsample = 0.5;
  params.tree.split = SplitMethod::kHistogram;
  auto a = GradientBoosting::regressor(params);
  auto b = GradientBoosting::regressor(params);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
  }
}

// (b) The parallel harness must aggregate in job order: metrics are
// bit-identical whether jobs run on 1 thread or 8.
TEST(ParallelEval, ThreadCountDoesNotChangeMetrics) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.seed = 77;
  trace::GoogleLikeGenerator gen(config);
  const auto jobs = gen.generate(6);

  core::RegistryConfig cfg;
  cfg.nurd_gbt_rounds = 10;
  cfg.gbt_rounds = 10;
  const auto method = core::predictor_by_name("NURD", cfg);

  const auto serial = eval::evaluate_method(method, jobs, 90.0, 1);
  const auto parallel = eval::evaluate_method(method, jobs, 90.0, 8);
  EXPECT_DOUBLE_EQ(serial.f1, parallel.f1);
  EXPECT_DOUBLE_EQ(serial.tpr, parallel.tpr);
  EXPECT_DOUBLE_EQ(serial.fpr, parallel.fpr);
  EXPECT_DOUBLE_EQ(serial.fnr, parallel.fnr);
  ASSERT_EQ(serial.f1_timeline.size(), parallel.f1_timeline.size());
  for (std::size_t t = 0; t < serial.f1_timeline.size(); ++t) {
    EXPECT_DOUBLE_EQ(serial.f1_timeline[t], parallel.f1_timeline[t]);
  }

  const auto runs1 = eval::run_method(method, jobs, 90.0, 1);
  const auto runs8 = eval::run_method(method, jobs, 90.0, 8);
  ASSERT_EQ(runs1.size(), runs8.size());
  for (std::size_t j = 0; j < runs1.size(); ++j) {
    EXPECT_EQ(runs1[j].flagged_at, runs8[j].flagged_at);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](std::size_t i) { hits[i] = 1; });  // no races
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    ThreadPool::global().parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 42) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(MatrixColView, StridedAccessMatchesCopy) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const auto copied = m.col(1);
  const auto view = m.col_view(1);
  ASSERT_EQ(view.size(), copied.size());
  for (std::size_t i = 0; i < copied.size(); ++i) {
    EXPECT_DOUBLE_EQ(view[i], copied[i]);
  }
  // Iterator protocol works with std algorithms.
  EXPECT_DOUBLE_EQ(*std::max_element(view.begin(), view.end()), 6.0);
  EXPECT_THROW(m.col_view(2), std::invalid_argument);
}

TEST(MatrixReserveRows, HintAppliesBeforeAndAfterWidthKnown) {
  Matrix a(0, 0);
  a.reserve_rows(100);  // width unknown: hint deferred
  const std::vector<double> row{1.0, 2.0, 3.0};
  a.push_row(row);
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a.cols(), 3u);

  Matrix b(0, 0);
  b.push_row(row);
  b.reserve_rows(50);  // width known: applies immediately
  b.push_row(row);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(1, 2), 3.0);
}

}  // namespace
}  // namespace nurd
