#include <gtest/gtest.h>

#include "common/rng.h"
#include "pu/pu_bg.h"
#include "pu/pu_en.h"

namespace nurd::pu {
namespace {

// A PU problem with the NU-swapped roles used by the straggler setting:
// the labeled set comes from one Gaussian class; the unlabeled set mixes
// that class with a shifted one.
struct PuProblem {
  Matrix labeled;          // pure "labeled-class" sample
  Matrix unlabeled;        // mixture
  std::vector<int> truth;  // 1 = unlabeled row is from the OTHER class
};

PuProblem make_problem(std::size_t n_lab, std::size_t n_unl_same,
                       std::size_t n_unl_other, double gap,
                       std::uint64_t seed) {
  Rng rng(seed);
  PuProblem p;
  p.labeled = Matrix(n_lab, 2);
  for (std::size_t i = 0; i < n_lab; ++i) {
    p.labeled(i, 0) = rng.normal(0.0, 1.0);
    p.labeled(i, 1) = rng.normal(0.0, 1.0);
  }
  p.unlabeled = Matrix(n_unl_same + n_unl_other, 2);
  for (std::size_t i = 0; i < n_unl_same; ++i) {
    p.unlabeled(i, 0) = rng.normal(0.0, 1.0);
    p.unlabeled(i, 1) = rng.normal(0.0, 1.0);
    p.truth.push_back(0);
  }
  for (std::size_t i = n_unl_same; i < n_unl_same + n_unl_other; ++i) {
    p.unlabeled(i, 0) = rng.normal(gap, 1.0);
    p.unlabeled(i, 1) = rng.normal(gap, 1.0);
    p.truth.push_back(1);
  }
  return p;
}

TEST(PuElkanNoto, CalibrationConstantInRange) {
  const auto p = make_problem(150, 100, 50, 4.0, 41);
  PuElkanNoto model;
  model.fit(p.labeled, p.unlabeled);
  EXPECT_GT(model.c_estimate(), 0.0);
  EXPECT_LE(model.c_estimate(), 1.0);
}

TEST(PuElkanNoto, SameClassRowsScoreHigher) {
  const auto p = make_problem(150, 100, 50, 4.0, 42);
  PuElkanNoto model;
  model.fit(p.labeled, p.unlabeled);
  double mean_same = 0.0, mean_other = 0.0;
  std::size_t n_same = 0, n_other = 0;
  for (std::size_t i = 0; i < p.unlabeled.rows(); ++i) {
    const double pr = model.prob_labeled_class(p.unlabeled.row(i));
    EXPECT_GE(pr, 0.0);
    EXPECT_LE(pr, 1.0);
    if (p.truth[i] == 0) {
      mean_same += pr;
      ++n_same;
    } else {
      mean_other += pr;
      ++n_other;
    }
  }
  mean_same /= static_cast<double>(n_same);
  mean_other /= static_cast<double>(n_other);
  EXPECT_GT(mean_same, mean_other + 0.3);
}

TEST(PuElkanNoto, ThresholdSeparatesMostOtherClass) {
  const auto p = make_problem(200, 120, 60, 5.0, 43);
  PuElkanNoto model;
  model.fit(p.labeled, p.unlabeled);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.unlabeled.rows(); ++i) {
    const int pred =
        model.prob_labeled_class(p.unlabeled.row(i)) < 0.5 ? 1 : 0;
    if (pred == p.truth[i]) ++correct;
  }
  EXPECT_GT(correct, p.unlabeled.rows() * 85 / 100);
}

TEST(PuElkanNoto, RejectsEmptyInput) {
  PuElkanNoto model;
  Matrix empty(0, 0), some(3, 2);
  EXPECT_THROW(model.fit(empty, some), std::invalid_argument);
  EXPECT_THROW(model.fit(some, empty), std::invalid_argument);
}

TEST(PuElkanNoto, RejectsWidthMismatch) {
  PuElkanNoto model;
  Matrix a(3, 2), b(3, 3);
  EXPECT_THROW(model.fit(a, b), std::invalid_argument);
}

TEST(PuBaggingSvm, OtherClassScoresHigher) {
  const auto p = make_problem(150, 100, 50, 4.0, 44);
  PuBaggingSvm model;
  model.fit(p.labeled, p.unlabeled);
  const auto& scores = model.unlabeled_scores();
  ASSERT_EQ(scores.size(), p.unlabeled.rows());
  double mean_same = 0.0, mean_other = 0.0;
  std::size_t n_same = 0, n_other = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (p.truth[i] == 0) {
      mean_same += scores[i];
      ++n_same;
    } else {
      mean_other += scores[i];
      ++n_other;
    }
  }
  EXPECT_GT(mean_other / static_cast<double>(n_other),
            mean_same / static_cast<double>(n_same));
}

TEST(PuBaggingSvm, ScoresAlignedAndFinite) {
  const auto p = make_problem(80, 60, 20, 3.0, 45);
  PuBaggingSvm model;
  model.fit(p.labeled, p.unlabeled);
  for (double s : model.unlabeled_scores()) EXPECT_TRUE(std::isfinite(s));
}

TEST(PuBaggingSvm, DeterministicGivenSeed) {
  const auto p = make_problem(80, 60, 20, 3.0, 46);
  PuBaggingSvm a, b;
  a.fit(p.labeled, p.unlabeled);
  b.fit(p.labeled, p.unlabeled);
  EXPECT_EQ(a.unlabeled_scores(), b.unlabeled_scores());
}

TEST(PuBaggingSvm, RejectsEmptyInput) {
  PuBaggingSvm model;
  Matrix empty(0, 0), some(3, 2);
  EXPECT_THROW(model.fit(empty, some), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::pu
