#include "core/nurd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.h"
#include "eval/harness.h"
#include "trace/generator.h"

namespace nurd::core {
namespace {

trace::GeneratorConfig config_with(trace::TailRegime regime) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 160;
  c.regime = regime;
  return c;
}

// The static per-job context the harness would build (online methods only).
JobContext context_of(const trace::Job& job) {
  return eval::make_job_context(job, job.straggler_threshold());
}

// Initializes and calibrates against the first checkpoint, the way the
// harness's first predict call would.
void prime(NurdPredictor& nurd, const trace::Job& job) {
  nurd.initialize(context_of(job));
  nurd.calibrate(job.checkpoint(0));
}

TEST(NurdWeight, ClipsToEpsilonAndOne) {
  NurdParams params;
  params.alpha = 0.5;
  params.epsilon = 0.05;
  NurdPredictor nurd(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  prime(nurd, job);
  // Weight is max(ε, min(z + δ, 1)) — Eq. 4.
  EXPECT_DOUBLE_EQ(nurd.weight(-5.0), params.epsilon);
  EXPECT_DOUBLE_EQ(nurd.weight(5.0), 1.0);
  const double z = 0.5;
  const double expected =
      std::max(params.epsilon, std::min(z + nurd.delta(), 1.0));
  EXPECT_DOUBLE_EQ(nurd.weight(z), expected);
}

TEST(NurdWeight, NoCalibrationUsesRawPropensity) {
  NurdParams params;
  params.calibrate = false;
  NurdPredictor nc(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  prime(nc, job);
  EXPECT_DOUBLE_EQ(nc.weight(0.4), 0.4);
  EXPECT_DOUBLE_EQ(nc.weight(0.01), params.epsilon);
}

TEST(NurdDelta, MatchesFormula) {
  NurdParams params;
  params.alpha = 0.35;
  NurdPredictor nurd(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kNear));
  const auto job = gen.generate(1)[0];
  prime(nurd, job);
  EXPECT_NEAR(nurd.delta(), 1.0 / (1.0 + nurd.rho()) - params.alpha, 1e-12);
}

TEST(NurdDelta, BoundedByAlpha) {
  // δ = 1/(1+ρ) − α ∈ (−α, 1−α); for any ρ ≥ 0 it cannot exceed 1−α.
  NurdParams params;
  params.alpha = 0.5;
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kMixed));
  for (const auto& job : gen.generate(6)) {
    NurdPredictor nurd(params);
    prime(nurd, job);
    EXPECT_GT(nurd.delta(), -params.alpha);
    EXPECT_LE(nurd.delta(), 1.0 - params.alpha);
  }
}

TEST(NurdCalibration, IsIdempotentAcrossCheckpoints) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  prime(nurd, job);
  const double rho0 = nurd.rho();
  nurd.calibrate(job.checkpoint(3));  // later views must not re-calibrate
  EXPECT_DOUBLE_EQ(nurd.rho(), rho0);
  nurd.initialize(context_of(job));   // a fresh job resets the calibration
  nurd.calibrate(job.checkpoint(3));
  EXPECT_NE(nurd.rho(), rho0);
}

TEST(NurdRho, FarTailJobsHaveSmallerRho) {
  // §4.2's mechanism: far-tail stragglers' cause signatures drag the
  // running-tasks centroid away from the finished centroid, enlarging
  // ‖c_run − c_fin‖ and shrinking ρ; near-tail jobs (small severities)
  // leave the centroids close. The test amplifies the cause-signature
  // strength so the drag clears the body-gradient separation and sampling
  // noise — at the tuned default the two ρ distributions overlap heavily
  // (for BOTH the seed's and the columnar generator), which is exactly why
  // stragglers are not trivially visible to feature-space detectors (§3.2).
  auto far_cfg = config_with(trace::TailRegime::kFar);
  auto near_cfg = config_with(trace::TailRegime::kNear);
  far_cfg.tail_feature_boost = 8.0;
  near_cfg.tail_feature_boost = 8.0;
  trace::GoogleLikeGenerator far_gen(far_cfg), near_gen(near_cfg);
  std::vector<double> far_rho, near_rho;
  for (const auto& job : far_gen.generate(20)) {
    NurdPredictor nurd;
    prime(nurd, job);
    far_rho.push_back(nurd.rho());
  }
  for (const auto& job : near_gen.generate(20)) {
    NurdPredictor nurd;
    prime(nurd, job);
    near_rho.push_back(nurd.rho());
  }
  EXPECT_LT(median(far_rho), median(near_rho));
}

TEST(NurdPredict, ReturnsSubsetOfCandidates) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  nurd.initialize(context_of(job));
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    const auto cand = view.running();
    const auto flagged = nurd.predict_stragglers(view, cand);
    for (auto f : flagged) {
      EXPECT_NE(std::find(cand.begin(), cand.end(), f), cand.end());
    }
  }
}

TEST(NurdPredict, EmptyCandidatesYieldNoFlags) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  nurd.initialize(context_of(job));
  EXPECT_TRUE(nurd.predict_stragglers(job.checkpoint(0), {}).empty());
}

TEST(NurdPredict, OutOfRangeCheckpointThrows) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  // The observation boundary itself rejects horizons beyond the grid.
  EXPECT_THROW(job.checkpoint(99), std::invalid_argument);
}

TEST(NurdParams, Validation) {
  NurdParams bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_THROW(NurdPredictor{bad_alpha}, std::invalid_argument);
  NurdParams bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_THROW(NurdPredictor{bad_eps}, std::invalid_argument);
}

TEST(NurdEndToEnd, BeatsUncalibratedVariantOnFalsePositives) {
  // The paper's core ablation: NURD-NC has high TPR but much higher FPR
  // than NURD (Table 3). Verify the FPR ordering on a small mixed job set.
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kMixed));
  const auto jobs = gen.generate(8);
  double fpr_nurd = 0.0, fpr_nc = 0.0;
  for (const auto& job : jobs) {
    NurdParams p;
    p.alpha = 0.25;
    NurdPredictor nurd(p);
    auto run = eval::run_job(job, nurd);
    fpr_nurd += run.final.fpr();
    NurdParams pnc;
    pnc.calibrate = false;
    NurdPredictor nc(pnc);
    run = eval::run_job(job, nc);
    fpr_nc += run.final.fpr();
  }
  EXPECT_LT(fpr_nurd, fpr_nc);
}

TEST(NurdEndToEnd, Name) {
  NurdParams p;
  EXPECT_EQ(NurdPredictor(p).name(), "NURD");
  p.calibrate = false;
  EXPECT_EQ(NurdPredictor(p).name(), "NURD-NC");
}

}  // namespace
}  // namespace nurd::core
