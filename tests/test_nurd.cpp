#include "core/nurd.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "eval/harness.h"
#include "trace/generator.h"

namespace nurd::core {
namespace {

trace::GeneratorConfig config_with(trace::TailRegime regime) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 160;
  c.regime = regime;
  return c;
}

TEST(NurdWeight, ClipsToEpsilonAndOne) {
  NurdParams params;
  params.alpha = 0.5;
  params.epsilon = 0.05;
  NurdPredictor nurd(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  nurd.initialize(job, job.straggler_threshold());
  // Weight is max(ε, min(z + δ, 1)) — Eq. 4.
  EXPECT_DOUBLE_EQ(nurd.weight(-5.0), params.epsilon);
  EXPECT_DOUBLE_EQ(nurd.weight(5.0), 1.0);
  const double z = 0.5;
  const double expected =
      std::max(params.epsilon, std::min(z + nurd.delta(), 1.0));
  EXPECT_DOUBLE_EQ(nurd.weight(z), expected);
}

TEST(NurdWeight, NoCalibrationUsesRawPropensity) {
  NurdParams params;
  params.calibrate = false;
  NurdPredictor nc(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  nc.initialize(job, job.straggler_threshold());
  EXPECT_DOUBLE_EQ(nc.weight(0.4), 0.4);
  EXPECT_DOUBLE_EQ(nc.weight(0.01), params.epsilon);
}

TEST(NurdDelta, MatchesFormula) {
  NurdParams params;
  params.alpha = 0.35;
  NurdPredictor nurd(params);
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kNear));
  const auto job = gen.generate(1)[0];
  nurd.initialize(job, job.straggler_threshold());
  EXPECT_NEAR(nurd.delta(), 1.0 / (1.0 + nurd.rho()) - params.alpha, 1e-12);
}

TEST(NurdDelta, BoundedByAlpha) {
  // δ = 1/(1+ρ) − α ∈ (−α, 1−α); for any ρ ≥ 0 it cannot exceed 1−α.
  NurdParams params;
  params.alpha = 0.5;
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kMixed));
  for (const auto& job : gen.generate(6)) {
    NurdPredictor nurd(params);
    nurd.initialize(job, job.straggler_threshold());
    EXPECT_GT(nurd.delta(), -params.alpha);
    EXPECT_LE(nurd.delta(), 1.0 - params.alpha);
  }
}

TEST(NurdRho, FarTailJobsHaveSmallerRho) {
  // §4.2: ρ indicates how far potential stragglers are from non-stragglers;
  // far-tail jobs should produce smaller ρ than near-tail jobs on average.
  auto far_cfg = config_with(trace::TailRegime::kFar);
  auto near_cfg = config_with(trace::TailRegime::kNear);
  trace::GoogleLikeGenerator far_gen(far_cfg), near_gen(near_cfg);
  std::vector<double> far_rho, near_rho;
  for (const auto& job : far_gen.generate(15)) {
    NurdPredictor nurd;
    nurd.initialize(job, job.straggler_threshold());
    far_rho.push_back(nurd.rho());
  }
  for (const auto& job : near_gen.generate(15)) {
    NurdPredictor nurd;
    nurd.initialize(job, job.straggler_threshold());
    near_rho.push_back(nurd.rho());
  }
  EXPECT_LT(median(far_rho), median(near_rho));
}

TEST(NurdPredict, ReturnsSubsetOfCandidates) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  nurd.initialize(job, job.straggler_threshold());
  for (std::size_t t = 0; t < job.checkpoints.size(); ++t) {
    const auto& cand = job.checkpoints[t].running;
    const auto flagged = nurd.predict_stragglers(job, t, cand);
    for (auto f : flagged) {
      EXPECT_NE(std::find(cand.begin(), cand.end(), f), cand.end());
    }
  }
}

TEST(NurdPredict, EmptyCandidatesYieldNoFlags) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  nurd.initialize(job, job.straggler_threshold());
  EXPECT_TRUE(nurd.predict_stragglers(job, 0, {}).empty());
}

TEST(NurdPredict, OutOfRangeCheckpointThrows) {
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kFar));
  const auto job = gen.generate(1)[0];
  NurdPredictor nurd;
  nurd.initialize(job, job.straggler_threshold());
  const std::vector<std::size_t> cand{0};
  EXPECT_THROW(nurd.predict_stragglers(job, 99, cand),
               std::invalid_argument);
}

TEST(NurdParams, Validation) {
  NurdParams bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_THROW(NurdPredictor{bad_alpha}, std::invalid_argument);
  NurdParams bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_THROW(NurdPredictor{bad_eps}, std::invalid_argument);
}

TEST(NurdEndToEnd, BeatsUncalibratedVariantOnFalsePositives) {
  // The paper's core ablation: NURD-NC has high TPR but much higher FPR
  // than NURD (Table 3). Verify the FPR ordering on a small mixed job set.
  trace::GoogleLikeGenerator gen(config_with(trace::TailRegime::kMixed));
  const auto jobs = gen.generate(8);
  double fpr_nurd = 0.0, fpr_nc = 0.0;
  for (const auto& job : jobs) {
    NurdParams p;
    p.alpha = 0.25;
    NurdPredictor nurd(p);
    auto run = eval::run_job(job, nurd);
    fpr_nurd += run.final.fpr();
    NurdParams pnc;
    pnc.calibrate = false;
    NurdPredictor nc(pnc);
    run = eval::run_job(job, nc);
    fpr_nc += run.final.fpr();
  }
  EXPECT_LT(fpr_nurd, fpr_nc);
}

TEST(NurdEndToEnd, Name) {
  NurdParams p;
  EXPECT_EQ(NurdPredictor(p).name(), "NURD");
  p.calibrate = false;
  EXPECT_EQ(NurdPredictor(p).name(), "NURD-NC");
}

}  // namespace
}  // namespace nurd::core
