#include "common/knn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nurd {
namespace {

Matrix line_points() {
  // Points on a line at x = 0, 1, 2, 10.
  return Matrix{{0.0}, {1.0}, {2.0}, {10.0}};
}

TEST(KnnIndex, NearestNeighborOnLine) {
  KnnIndex index(line_points());
  const std::vector<double> q{1.2};
  const auto nb = index.query(q, 2);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0].index, 1u);
  EXPECT_NEAR(nb[0].distance, 0.2, 1e-12);
  EXPECT_EQ(nb[1].index, 2u);
}

TEST(KnnIndex, ExcludeSelfSkipsRow) {
  KnnIndex index(line_points());
  const auto nb = index.neighbors_of(0, 3);
  ASSERT_EQ(nb.size(), 3u);
  for (const auto& n : nb) EXPECT_NE(n.index, 0u);
  EXPECT_EQ(nb[0].index, 1u);
}

TEST(KnnIndex, KClampedToAvailable) {
  KnnIndex index(line_points());
  const auto nb = index.neighbors_of(0, 100);
  EXPECT_EQ(nb.size(), 3u);  // 4 points minus self
}

TEST(KnnIndex, DistancesAreAscending) {
  KnnIndex index(line_points());
  const std::vector<double> q{5.0};
  const auto nb = index.query(q, 4);
  for (std::size_t i = 0; i + 1 < nb.size(); ++i) {
    EXPECT_LE(nb[i].distance, nb[i + 1].distance);
  }
}

TEST(KnnIndex, TiesBrokenByIndex) {
  Matrix pts{{0.0}, {2.0}, {-2.0}};
  KnnIndex index(pts);
  const std::vector<double> q{0.0};
  const auto nb = index.query(q, 3);
  EXPECT_EQ(nb[0].index, 0u);
  EXPECT_EQ(nb[1].index, 1u);  // distance tie with row 2; lower index first
  EXPECT_EQ(nb[2].index, 2u);
}

TEST(KnnIndex, QueryDimensionMismatchThrows) {
  KnnIndex index(line_points());
  const std::vector<double> q{1.0, 2.0};
  EXPECT_THROW(index.query(q, 1), std::invalid_argument);
}

TEST(PairwiseDistances, SymmetricZeroDiagonal) {
  Matrix pts{{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  const auto d = pairwise_distances(pts);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 10.0);
}

}  // namespace
}  // namespace nurd
