#include "common/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace nurd {
namespace {

// Two well-separated blobs around (0,0) and (100,100).
Matrix two_blobs(std::size_t per_blob, Rng& rng) {
  Matrix m(0, 0);
  for (std::size_t i = 0; i < per_blob; ++i) {
    const std::vector<double> a{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    m.push_row(a);
  }
  for (std::size_t i = 0; i < per_blob; ++i) {
    const std::vector<double> b{rng.normal(100.0, 1.0),
                                rng.normal(100.0, 1.0)};
    m.push_row(b);
  }
  return m;
}

TEST(KMeans, RecoversTwoSeparatedBlobs) {
  Rng rng(5);
  const auto pts = two_blobs(30, rng);
  KMeansParams params;
  params.k = 2;
  const auto result = kmeans(pts, params, rng);
  ASSERT_EQ(result.centroids.rows(), 2u);
  // All first-blob points share a label, all second-blob points the other.
  const std::size_t l0 = result.labels[0];
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(result.labels[i], l0);
  const std::size_t l1 = result.labels[30];
  EXPECT_NE(l0, l1);
  for (std::size_t i = 30; i < 60; ++i) EXPECT_EQ(result.labels[i], l1);
}

TEST(KMeans, CentroidsNearBlobMeans) {
  Rng rng(6);
  const auto pts = two_blobs(50, rng);
  KMeansParams params;
  params.k = 2;
  const auto result = kmeans(pts, params, rng);
  std::vector<double> c0(result.centroids.row(0).begin(),
                         result.centroids.row(0).end());
  std::vector<double> c1(result.centroids.row(1).begin(),
                         result.centroids.row(1).end());
  if (c0[0] > c1[0]) std::swap(c0, c1);
  EXPECT_NEAR(c0[0], 0.0, 1.0);
  EXPECT_NEAR(c1[0], 100.0, 1.0);
}

TEST(KMeans, SizesSumToN) {
  Rng rng(7);
  const auto pts = two_blobs(20, rng);
  KMeansParams params;
  params.k = 5;
  const auto result = kmeans(pts, params, rng);
  std::size_t total = 0;
  for (auto s : result.sizes) total += s;
  EXPECT_EQ(total, 40u);
}

TEST(KMeans, KClampedToDistinctPoints) {
  Matrix pts{{1.0}, {1.0}, {1.0}};
  Rng rng(8);
  KMeansParams params;
  params.k = 3;
  const auto result = kmeans(pts, params, rng);
  // Only one distinct point: seeding stops early.
  EXPECT_LE(result.centroids.rows(), 3u);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeans, InertiaNonIncreasingWithMoreClusters) {
  Rng rng_data(9);
  const auto pts = two_blobs(40, rng_data);
  double prev = 1e300;
  for (std::size_t k : {1u, 2u, 4u}) {
    Rng rng(10);
    KMeansParams params;
    params.k = k;
    const auto result = kmeans(pts, params, rng);
    EXPECT_LE(result.inertia, prev + 1e-9);
    prev = result.inertia;
  }
}

TEST(KMeans, RejectsEmptyInput) {
  Matrix empty(0, 0);
  Rng rng(1);
  KMeansParams params;
  EXPECT_THROW(kmeans(empty, params, rng), std::invalid_argument);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng d1(11), d2(11);
  const auto p1 = two_blobs(25, d1);
  const auto p2 = two_blobs(25, d2);
  Rng r1(12), r2(12);
  KMeansParams params;
  params.k = 3;
  const auto a = kmeans(p1, params, r1);
  const auto b = kmeans(p2, params, r2);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

}  // namespace
}  // namespace nurd
