#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace nurd {
namespace {

TEST(NurdCheck, PassesOnTrueCondition) {
  EXPECT_NO_THROW(NURD_CHECK(1 + 1 == 2, "math works"));
}

TEST(NurdCheck, ThrowsInvalidArgument) {
  EXPECT_THROW(NURD_CHECK(false, "always fails"), std::invalid_argument);
}

TEST(NurdCheck, MessageContainsConditionAndText) {
  try {
    NURD_CHECK(2 > 3, "two is not greater");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(NurdCheck, EvaluatesConditionOnce) {
  int calls = 0;
  auto increments = [&]() {
    ++calls;
    return true;
  };
  NURD_CHECK(increments(), "side-effect counter");
  EXPECT_EQ(calls, 1);
}

TEST(NurdCheck, AcceptsStdStringMessage) {
  const std::string msg = "dynamic message";
  EXPECT_THROW(NURD_CHECK(false, msg), std::invalid_argument);
}

}  // namespace
}  // namespace nurd
