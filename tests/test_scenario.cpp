// Differential/property suite for the scenario zoo (src/scenario/).
//
// Pins the three contracts the zoo rests on:
//   * DETERMINISM — failure/preemption/drift scenarios are bit-identical at
//     1 vs 4 threads and across reruns (the injection draws live in the
//     canonical setup pass, never in the event loop), and enabling a
//     disabled knob never perturbs the draws of the others;
//   * CONSERVATION — the finite-pool invariant
//       free + in_use + failed == initial machines + released
//     holds after every event, failures included;
//   * the mid-copy machine-failure regression: a machine dying while
//     running a relaunched copy releases EXACTLY its own pool slot
//     (in_use -1, failed +1, free untouched) and the victim task requeues
//     and completes once a donation refills the pool.
#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "eval/harness.h"
#include "sched/cluster.h"
#include "test_jobs.h"
#include "trace/generator.h"

namespace nurd::scenario {
namespace {

using trace::make_test_job;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::vector<trace::Job> generated_jobs(std::size_t count,
                                       std::uint64_t seed_offset = 0,
                                       std::size_t threads = 1) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 60;
  config.max_tasks = 100;
  config.seed += seed_offset;
  trace::GoogleLikeGenerator gen(config);
  return gen.generate(count, threads);
}

// Flags every true straggler still running at checkpoint `cp` — a perfect
// oracle standing in for a predictor, so the cluster-side tests don't pay
// for model fits.
std::vector<eval::JobRunResult> straggler_flags(
    std::span<const trace::Job> jobs, std::size_t cp = 1) {
  std::vector<eval::JobRunResult> runs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto labels = jobs[j].straggler_labels();
    const double tau = jobs[j].trace.tau_run(cp);
    runs[j].flagged_at.assign(jobs[j].task_count(), eval::kNeverFlagged);
    for (std::size_t i = 0; i < jobs[j].task_count(); ++i) {
      if (labels[i] == 1 && tau < jobs[j].latency(i)) {
        runs[j].flagged_at[i] = cp;
      }
    }
  }
  return runs;
}

void expect_results_bitwise_equal(const sched::ClusterResult& a,
                                  const sched::ClusterResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_TRUE(bits_equal(a.jobs[j].completion, b.jobs[j].completion));
    EXPECT_TRUE(bits_equal(a.jobs[j].mitigated_jct, b.jobs[j].mitigated_jct));
    EXPECT_EQ(a.jobs[j].relaunched, b.jobs[j].relaunched);
    EXPECT_EQ(a.jobs[j].preempted, b.jobs[j].preempted);
  }
  EXPECT_TRUE(bits_equal(a.makespan, b.makespan));
  EXPECT_EQ(a.relaunched, b.relaunched);
  EXPECT_EQ(a.waited, b.waited);
  EXPECT_EQ(a.preempted, b.preempted);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.stranded, b.stranded);
  EXPECT_EQ(a.events, b.events);
}

// ---- registry ----------------------------------------------------------------

TEST(ScenarioRegistry, NamesAreUniqueAndBaselineIsFirst) {
  const auto& zoo = scenario_zoo();
  ASSERT_FALSE(zoo.empty());
  EXPECT_EQ(zoo.front().name, "baseline");
  std::set<std::string> names;
  for (const auto& spec : zoo) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate scenario name " << spec.name;
    EXPECT_FALSE(spec.summary.empty());
  }
  // The axes the issue names must all be registered.
  for (const char* required :
       {"baseline", "diurnal", "hetero", "failures", "preempt", "drift"}) {
    EXPECT_EQ(scenario_by_name(required).name, required);
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsListingScenarios) {
  try {
    scenario_by_name("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("baseline"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("drift"), std::string::npos);
  }
}

// ---- arrival schedules -------------------------------------------------------

TEST(ScenarioArrivals, PiecewiseIsDeterministicAndMonotone) {
  const auto make = sched::piecewise_poisson_arrivals(
      {{0.0, 2.0}, {5.0, 10.0}, {9.0, 1.0}});
  Rng a(3), b(3);
  const auto t1 = make(40, a);
  const auto t2 = make(40, b);
  ASSERT_EQ(t1.size(), 40u);
  EXPECT_EQ(t1, t2);
  EXPECT_TRUE(std::is_sorted(t1.begin(), t1.end()));
  EXPECT_GT(t1.front(), 0.0);
}

TEST(ScenarioArrivals, HigherRateArrivesFasterOnTheSameStream) {
  Rng a(7), b(7);
  const auto slow = sched::piecewise_poisson_arrivals({{0.0, 0.5}})(30, a);
  const auto fast = sched::piecewise_poisson_arrivals({{0.0, 50.0}})(30, b);
  // Same uniforms, scaled gaps: every arrival strictly earlier.
  for (std::size_t j = 0; j < slow.size(); ++j) EXPECT_LT(fast[j], slow[j]);
}

TEST(ScenarioArrivals, DiurnalIsDeterministicMonotoneAndRateBounded) {
  const auto make = sched::diurnal_poisson_arrivals(2.0, 0.8, 10.0);
  Rng a(11), b(11);
  const auto t1 = make(60, a);
  EXPECT_EQ(t1, make(60, b));
  EXPECT_TRUE(std::is_sorted(t1.begin(), t1.end()));
  // The modulated rate never exceeds base*(1+amp), so arrivals cannot come
  // faster than a constant-rate process on the same draws.
  Rng c(11);
  const auto cap = sched::poisson_arrivals(2.0 * 1.8)(60, c);
  for (std::size_t j = 0; j < t1.size(); ++j) EXPECT_GE(t1[j], cap[j]);
}

TEST(ScenarioArrivals, FactoryValidationThrows) {
  EXPECT_THROW(sched::piecewise_poisson_arrivals({}), std::invalid_argument);
  EXPECT_THROW(sched::piecewise_poisson_arrivals({{1.0, 2.0}}),
               std::invalid_argument);  // must begin at 0
  EXPECT_THROW(sched::piecewise_poisson_arrivals({{0.0, 2.0}, {0.0, 3.0}}),
               std::invalid_argument);  // strictly ascending begins
  EXPECT_THROW(sched::piecewise_poisson_arrivals({{0.0, -1.0}}),
               std::invalid_argument);  // positive rates
  EXPECT_THROW(sched::diurnal_poisson_arrivals(0.0, 0.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sched::diurnal_poisson_arrivals(1.0, 1.0, 1.0),
               std::invalid_argument);  // amplitude < 1
  EXPECT_THROW(sched::diurnal_poisson_arrivals(1.0, 0.5, 0.0),
               std::invalid_argument);
}

// ---- drift -------------------------------------------------------------------

TEST(ScenarioDrift, PreShiftObservationsAreBitIdenticalToStationary) {
  const auto& drift = scenario_by_name("drift");
  const auto stationary =
      make_jobs(scenario_by_name("baseline"), TraceFamily::kGoogle, 2, 0, 1);
  const auto shifted = make_jobs(drift, TraceFamily::kGoogle, 2, 0, 1);
  ASSERT_EQ(stationary.size(), shifted.size());
  for (std::size_t j = 0; j < stationary.size(); ++j) {
    const auto& a = stationary[j].trace;
    const auto& b = shifted[j].trace;
    ASSERT_EQ(a.task_count(), b.task_count());
    ASSERT_EQ(a.checkpoint_count(), b.checkpoint_count());
    // Latencies are drawn before the shift knobs: bitwise unchanged.
    for (std::size_t i = 0; i < a.task_count(); ++i) {
      EXPECT_TRUE(bits_equal(a.latency(i), b.latency(i)));
    }
    // Early checkpoints identical, at least one late checkpoint rotated.
    std::size_t first_diff = a.checkpoint_count();
    for (std::size_t t = 0; t < a.checkpoint_count(); ++t) {
      bool same = true;
      for (std::size_t i = 0; i < a.task_count() && same; ++i) {
        const auto ra = a.row(t, i);
        const auto rb = b.row(t, i);
        for (std::size_t f = 0; f < ra.size(); ++f) {
          if (!bits_equal(ra[f], rb[f])) {
            same = false;
            break;
          }
        }
      }
      if (!same) {
        first_diff = t;
        break;
      }
    }
    EXPECT_GT(first_diff, 0u) << "job " << j << ": shift leaked backwards";
    EXPECT_LT(first_diff, a.checkpoint_count())
        << "job " << j << ": drift scenario changed nothing";
  }
}

TEST(ScenarioDrift, DisabledShiftKnobsChangeNothing) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 40;
  config.max_tasks = 60;
  trace::GoogleLikeGenerator plain(config);
  auto zero_rotation = config;
  zero_rotation.shift_at = 0.3;  // enabled horizon, zero blend share
  zero_rotation.shift_rotation = 0.0;
  trace::GoogleLikeGenerator zeroed(zero_rotation);
  const auto a = plain.generate(2, 1);
  const auto b = zeroed.generate(2, 1);
  for (std::size_t j = 0; j < a.size(); ++j) {
    for (std::size_t t = 0; t < a[j].checkpoint_count(); ++t) {
      for (std::size_t i = 0; i < a[j].task_count(); ++i) {
        const auto ra = a[j].trace.row(t, i);
        const auto rb = b[j].trace.row(t, i);
        for (std::size_t f = 0; f < ra.size(); ++f) {
          ASSERT_TRUE(bits_equal(ra[f], rb[f]));
        }
      }
    }
  }
}

TEST(ScenarioDrift, GeneratorValidatesShiftKnobs) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.shift_at = 0.0;
  EXPECT_THROW(trace::GoogleLikeGenerator{config}, std::invalid_argument);
  config = trace::GoogleLikeGenerator::google_defaults();
  config.shift_rotation = 1.5;
  EXPECT_THROW(trace::GoogleLikeGenerator{config}, std::invalid_argument);
}

// ---- differential determinism -------------------------------------------------

TEST(ScenarioDeterminism, InjectionScenariosBitIdenticalAcrossThreadCounts) {
  const auto jobs = generated_jobs(3);
  const auto runs = straggler_flags(jobs);
  const double mean_jct = mean_completion(jobs);
  for (const char* name : {"failures", "preempt", "hetero", "chaos"}) {
    const auto config =
        make_cluster_config(scenario_by_name(name), jobs.size(), mean_jct);
    const auto serial = sched::simulate_cluster_replicated(
        jobs, runs, config, /*replications=*/3, /*seed=*/17, /*threads=*/1);
    const auto wide = sched::simulate_cluster_replicated(
        jobs, runs, config, 3, 17, /*threads=*/4);
    const auto rerun = sched::simulate_cluster_replicated(
        jobs, runs, config, 3, 17, /*threads=*/4);
    ASSERT_EQ(serial.size(), wide.size()) << name;
    for (std::size_t r = 0; r < serial.size(); ++r) {
      expect_results_bitwise_equal(serial[r], wide[r]);
      expect_results_bitwise_equal(serial[r], rerun[r]);
    }
  }
}

TEST(ScenarioDeterminism, DriftJobsBitIdenticalAcrossThreadCounts) {
  const auto& drift = scenario_by_name("drift");
  const auto serial = make_jobs(drift, TraceFamily::kGoogle, 4, 0, 1);
  const auto wide = make_jobs(drift, TraceFamily::kGoogle, 4, 0, 4);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t j = 0; j < serial.size(); ++j) {
    ASSERT_EQ(serial[j].task_count(), wide[j].task_count());
    for (std::size_t i = 0; i < serial[j].task_count(); ++i) {
      ASSERT_TRUE(bits_equal(serial[j].latency(i), wide[j].latency(i)));
    }
    for (std::size_t t = 0; t < serial[j].checkpoint_count(); ++t) {
      for (std::size_t i = 0; i < serial[j].task_count(); ++i) {
        const auto ra = serial[j].trace.row(t, i);
        const auto rb = wide[j].trace.row(t, i);
        for (std::size_t f = 0; f < ra.size(); ++f) {
          ASSERT_TRUE(bits_equal(ra[f], rb[f]));
        }
      }
    }
  }
}

TEST(ScenarioDeterminism, EndToEndCellBitIdenticalAcrossThreadCounts) {
  // The full evaluate_scenario path (generator -> predictor -> cluster) at
  // 1 vs 4 threads, on a cheap registry method.
  const auto method = core::predictor_by_name("HBOS");
  const auto& spec = scenario_by_name("failures");
  const auto serial = evaluate_scenario(spec, TraceFamily::kAlibaba, method,
                                        /*job_count=*/2, /*reps=*/2,
                                        /*seed=*/5, /*threads=*/1);
  const auto wide = evaluate_scenario(spec, TraceFamily::kAlibaba, method, 2,
                                      2, 5, /*threads=*/4);
  EXPECT_TRUE(bits_equal(serial.macro_f1, wide.macro_f1));
  EXPECT_TRUE(bits_equal(serial.mean_reduction_pct, wide.mean_reduction_pct));
  EXPECT_TRUE(bits_equal(serial.mean_makespan, wide.mean_makespan));
  EXPECT_EQ(serial.relaunched, wide.relaunched);
  EXPECT_EQ(serial.machine_failures, wide.machine_failures);
  EXPECT_EQ(serial.stranded, wide.stranded);
}

// ---- pool conservation ---------------------------------------------------------

TEST(ScenarioPool, ConservationHoldsUnderFailureInjection) {
  const auto jobs = generated_jobs(3, 1);
  const auto runs = straggler_flags(jobs);
  const double mean_jct = mean_completion(jobs);
  auto config =
      make_cluster_config(scenario_by_name("failures"), jobs.size(), mean_jct);
  const std::size_t initial = config.machines;
  std::size_t events = 0;
  config.observer = [&](const sched::Event&, const sched::PoolState& pool) {
    ++events;
    ASSERT_EQ(pool.free + pool.in_use + pool.failed,
              initial + pool.released);
  };
  Rng rng(23);
  const auto result = sched::simulate_cluster(jobs, runs, config, rng);
  EXPECT_GT(events, 0u);
  EXPECT_GT(result.machine_failures, 0u)
      << "the failure scenario injected no failures — MTBF knob inert";
  EXPECT_EQ(result.stranded, 0u);
}

// ---- the mid-copy failure regression -------------------------------------------

// One slow task flagged early onto a 1-machine pool whose machine has a
// short MTBF. Scanning seeds finds interleavings where the machine dies
// WHILE RUNNING the copy; for each, the failure must move exactly one
// machine from in_use to failed (free untouched — the historical bug
// double-released the slot into free), and the victim task must requeue and
// complete after the fast task's natural completion donates a machine.
TEST(ScenarioPool, MachineDyingMidCopyReleasesExactlyItsSlot) {
  const auto job =
      make_test_job("midfail", {5.0, 400.0}, {1.0, 600.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged, 0};  // flag the straggler at tau=1
  bool saw_mid_copy_recovery = false;
  for (std::uint64_t seed = 0; seed < 60 && !saw_mid_copy_recovery; ++seed) {
    sched::ClusterConfig config;
    config.machines = 1;
    config.machine_mtbf = 30.0;
    bool busy_failure = false;
    bool slot_accounting_ok = true;
    std::size_t in_use_before = 0;
    std::size_t free_before = 0;
    std::size_t failed_before = 0;
    config.observer = [&](const sched::Event& e,
                          const sched::PoolState& pool) {
      ASSERT_EQ(pool.free + pool.in_use + pool.failed, 1 + pool.released);
      if (e.kind == sched::EventKind::kMachineFail) {
        // Exactly one machine moves into `failed`, from exactly one side —
        // the historical bug double-released a busy machine's slot into
        // `free` as well.
        slot_accounting_ok =
            slot_accounting_ok && pool.failed == failed_before + 1 &&
            ((pool.in_use == in_use_before - 1 && pool.free == free_before) ||
             (pool.free == free_before - 1 && pool.in_use == in_use_before));
        if (pool.in_use == in_use_before - 1) busy_failure = true;
      }
      in_use_before = pool.in_use;
      free_before = pool.free;
      failed_before = pool.failed;
    };
    Rng rng(seed);
    const auto result =
        sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng);
    EXPECT_TRUE(slot_accounting_ok) << "seed " << seed;
    // Accept the first seed where a machine died mid-copy AND the pool
    // recovered (task 0's natural completion at t=5 donates a machine that
    // itself survives long enough to finish the second copy).
    if (!busy_failure || result.stranded != 0) continue;
    saw_mid_copy_recovery = true;
    EXPECT_GE(result.machine_failures, 1u);
    EXPECT_LT(result.jobs[0].completion, kInf);
    EXPECT_EQ(result.jobs[0].relaunched, 1u);
  }
  EXPECT_TRUE(saw_mid_copy_recovery)
      << "no seed produced a recovered mid-copy machine failure";
}

// With reclaimed releases there is no donation to recover with: once the
// only machine dies mid-copy, the victim is stranded and its job honestly
// reports no completion (infinite mitigated JCT, never a bogus reduction).
TEST(ScenarioPool, StrandedTasksReportInfiniteCompletion) {
  const auto job = make_test_job("strand", {5.0, 400.0}, {1.0, 600.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged, 0};
  bool saw_stranding = false;
  for (std::uint64_t seed = 0; seed < 60 && !saw_stranding; ++seed) {
    sched::ClusterConfig config;
    config.machines = 1;
    config.machine_mtbf = 30.0;
    config.reclaim_releases = true;
    Rng rng(seed);
    const auto result =
        sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng);
    if (result.stranded == 0) continue;
    saw_stranding = true;
    EXPECT_EQ(result.stranded, 1u);
    EXPECT_EQ(result.jobs[0].completion, kInf);
    EXPECT_EQ(result.jobs[0].mitigated_jct, kInf);
    EXPECT_LT(result.jobs[0].reduction_pct(), 0.0);
  }
  EXPECT_TRUE(saw_stranding) << "no seed stranded the victim task";
}

// ---- heterogeneity -------------------------------------------------------------

TEST(ScenarioHetero, FasterClassShortensCopiesOnTheSameDraws) {
  const auto job = make_test_job("speed", {5.0, 400.0}, {1.0, 600.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged, 0};
  const auto jct_with_speed = [&](double speed) {
    sched::ClusterConfig config;
    config.machines = 1;
    config.machine_classes = {{.name = "only",
                               .weight = 1.0,
                               .speed = speed,
                               .straggler_propensity = 0.0}};
    Rng rng(9);  // same seed: identical arrival/resample/class draws
    return sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng)
        .jobs[0]
        .mitigated_jct;
  };
  const double slow = jct_with_speed(1.0);
  const double fast = jct_with_speed(2.0);
  EXPECT_LT(fast, slow);
}

TEST(ScenarioHetero, StragglerProneClassStretchesCopies) {
  const auto job = make_test_job("prone", {5.0, 400.0}, {1.0, 600.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged, 0};
  const auto jct_with_propensity = [&](double propensity) {
    sched::ClusterConfig config;
    config.machines = 1;
    config.machine_classes = {{.name = "only",
                               .weight = 1.0,
                               .speed = 1.0,
                               .straggler_propensity = propensity,
                               .straggler_factor = 4.0}};
    Rng rng(9);
    return sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng)
        .jobs[0]
        .mitigated_jct;
  };
  EXPECT_GT(jct_with_propensity(1.0), jct_with_propensity(0.0));
}

TEST(ScenarioHetero, ClassValidationThrows) {
  const auto job = make_test_job("bad", {5.0}, {1.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged};
  sched::ClusterConfig config;
  config.machines = 1;
  config.machine_classes = {{.name = "x", .weight = -1.0, .speed = 1.0}};
  Rng rng(1);
  EXPECT_THROW(sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng),
               std::invalid_argument);
  config.machine_classes = {{.name = "x", .weight = 1.0, .speed = 1.0,
                             .straggler_propensity = 2.0}};
  EXPECT_THROW(sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng),
               std::invalid_argument);
}

TEST(ScenarioInjection, ConfigValidationThrows) {
  const auto job = make_test_job("bad2", {5.0}, {1.0});
  eval::JobRunResult run;
  run.flagged_at = {eval::kNeverFlagged};
  Rng rng(1);
  sched::ClusterConfig config;  // unlimited requires no failure injection
  config.machines = sched::kUnlimitedMachines;
  config.machine_mtbf = 1.0;
  EXPECT_THROW(sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng),
               std::invalid_argument);
  config = {};
  config.preemption_rate = 1.5;
  EXPECT_THROW(sched::simulate_cluster({&job, 1}, {&run, 1}, config, rng),
               std::invalid_argument);
}

// ---- preemption ----------------------------------------------------------------

TEST(ScenarioPreempt, EveryTaskPreemptedOnceAtRateOne) {
  const auto jobs = generated_jobs(2, 2);
  std::vector<eval::JobRunResult> runs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    runs[j].flagged_at.assign(jobs[j].task_count(), eval::kNeverFlagged);
  }
  sched::ClusterConfig config;
  config.machines = jobs[0].task_count() + jobs[1].task_count();
  config.preemption_rate = 1.0;
  Rng rng(31);
  const auto result = sched::simulate_cluster(jobs, runs, config, rng);
  // Every original is preempted mid-run (no flags beat the injection).
  EXPECT_EQ(result.preempted, jobs[0].task_count() + jobs[1].task_count());
  EXPECT_EQ(result.stranded, 0u);
  // Preempted work relaunches, so jobs still complete.
  for (const auto& stats : result.jobs) {
    EXPECT_LT(stats.completion, kInf);
  }
}

TEST(ScenarioPreempt, ZeroRateConsumesNoDrawsAndMatchesLegacyBitwise) {
  const auto jobs = generated_jobs(2, 3);
  const auto runs = straggler_flags(jobs);
  sched::ClusterConfig legacy;
  legacy.machines = 4;
  sched::ClusterConfig zeroed = legacy;
  zeroed.preemption_rate = 0.0;
  zeroed.machine_mtbf = 0.0;
  Rng a(77), b(77);
  expect_results_bitwise_equal(
      sched::simulate_cluster(jobs, runs, legacy, a),
      sched::simulate_cluster(jobs, runs, zeroed, b));
}

// ---- cluster-config materialization ---------------------------------------------

TEST(ScenarioConfig, NormalizedUnitsDenormalizeAgainstMeanJct) {
  const auto& failures = scenario_by_name("failures");
  const auto config = make_cluster_config(failures, 10, 100.0);
  EXPECT_DOUBLE_EQ(config.machine_mtbf, failures.mtbf_jct * 100.0);
  EXPECT_EQ(config.machines, static_cast<std::size_t>(std::ceil(
                                 failures.spares_per_job * 10)));
  const auto& baseline = scenario_by_name("baseline");
  const auto base_config = make_cluster_config(baseline, 10, 100.0);
  EXPECT_EQ(base_config.machine_mtbf, 0.0);
  EXPECT_EQ(base_config.preemption_rate, 0.0);
  EXPECT_TRUE(base_config.machine_classes.empty());
  EXPECT_THROW(make_cluster_config(baseline, 0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_cluster_config(baseline, 10, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::scenario
