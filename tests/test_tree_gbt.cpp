#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/gbt.h"
#include "ml/tree.h"

namespace nurd::ml {
namespace {

TEST(RegressionTree, PerfectSplitRecovered) {
  // y = −1 for x < 0, +1 for x > 0; squared-loss grads at score 0 are
  // (0 − y) with unit hessians.
  Matrix x{{-2.0}, {-1.0}, {1.0}, {2.0}};
  const std::vector<double> grad{1.0, 1.0, -1.0, -1.0};
  const std::vector<double> hess{1.0, 1.0, 1.0, 1.0};
  std::vector<std::size_t> rows{0, 1, 2, 3};
  TreeParams params;
  params.lambda = 0.0;
  params.min_child_weight = 0.0;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_NEAR(tree.predict(x.row(0)), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(x.row(3)), 1.0, 1e-9);
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(RegressionTree, DepthZeroIsStump) {
  Matrix x{{-1.0}, {1.0}};
  const std::vector<double> grad{1.0, -1.0};
  const std::vector<double> hess{1.0, 1.0};
  std::vector<std::size_t> rows{0, 1};
  TreeParams params;
  params.max_depth = 0;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(RegressionTree, LeafValueIsNewtonStep) {
  Matrix x{{0.0}, {0.0}};
  const std::vector<double> grad{2.0, 2.0};
  const std::vector<double> hess{1.0, 1.0};
  std::vector<std::size_t> rows{0, 1};
  TreeParams params;
  params.lambda = 2.0;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  // w* = −G/(H+λ) = −4/4 = −1.
  EXPECT_NEAR(tree.predict(x.row(0)), -1.0, 1e-12);
}

TEST(RegressionTree, MinChildWeightBlocksSplit) {
  Matrix x{{-1.0}, {1.0}};
  const std::vector<double> grad{1.0, -1.0};
  const std::vector<double> hess{0.4, 0.4};
  std::vector<std::size_t> rows{0, 1};
  TreeParams params;
  params.min_child_weight = 0.5;  // each child would have H = 0.4 < 0.5
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, GammaBlocksLowGainSplit) {
  Matrix x{{-1.0}, {1.0}};
  const std::vector<double> grad{0.01, -0.01};
  const std::vector<double> hess{1.0, 1.0};
  std::vector<std::size_t> rows{0, 1};
  TreeParams params;
  params.gamma = 10.0;
  params.min_child_weight = 0.0;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng data_rng(3);
  const std::size_t n = 200;
  Matrix x(n, 3);
  std::vector<double> grad(n), hess(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = data_rng.normal();
    grad[i] = data_rng.normal();
  }
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  TreeParams params;
  params.max_depth = 2;
  params.min_child_weight = 0.0;
  Rng rng(4);
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, params, rng);
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(GradientBoosting, FitsLinearFunction) {
  Rng rng(7);
  const std::size_t n = 500;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1);
  }
  GbtParams params;
  params.n_rounds = 200;
  params.learning_rate = 0.2;
  params.tree.max_depth = 4;
  auto model = GradientBoosting::regressor(params);
  model.fit(x, y);
  double sse = 0.0, sst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = model.predict(x.row(i));
    sse += (p - y[i]) * (p - y[i]);
    sst += y[i] * y[i];
  }
  EXPECT_LT(sse / sst, 0.05);  // R² > 0.95
}

TEST(GradientBoosting, ConstantTargetPerfect) {
  Matrix x{{1.0}, {2.0}, {3.0}};
  const std::vector<double> y{5.0, 5.0, 5.0};
  auto model = GradientBoosting::regressor();
  model.fit(x, y);
  EXPECT_NEAR(model.predict(x.row(0)), 5.0, 1e-9);
}

TEST(GradientBoosting, ClassifierSeparatesClasses) {
  Rng rng(9);
  const std::size_t n = 400;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    x(i, 0) = rng.normal(pos ? 2.0 : -2.0, 0.5);
    x(i, 1) = rng.normal();
    y[i] = pos ? 1.0 : 0.0;
  }
  auto model = GradientBoosting::classifier();
  model.fit(x, y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = model.predict(x.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    if ((p > 0.5) == (y[i] > 0.5)) ++correct;
  }
  EXPECT_GT(correct, n * 95 / 100);
}

TEST(GradientBoosting, GrabitPullsCensoredAboveHorizon) {
  // Group A (x=0): uncensored around 1. Group B (x=1): all right-censored
  // at 5 — the latent prediction for B must exceed 5.
  Rng rng(11);
  const std::size_t n = 200;
  Matrix x(n, 1);
  std::vector<Target> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      x(i, 0) = 0.0;
      t[i] = {1.0 + rng.normal(0.0, 0.1), false};
    } else {
      x(i, 0) = 1.0;
      t[i] = {5.0, true};
    }
  }
  auto model = GradientBoosting::grabit(1.0);
  model.fit(x, t);
  const std::vector<double> xa{0.0}, xb{1.0};
  EXPECT_NEAR(model.predict(xa), 1.0, 0.3);
  EXPECT_GT(model.predict(xb), 5.0);
}

TEST(GradientBoosting, MoreRoundsNotWorseInSample) {
  Rng rng(13);
  const std::size_t n = 300;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
    y[i] = std::sin(x(i, 0)) + 0.5 * x(i, 1) * x(i, 2);
  }
  double prev_sse = 1e300;
  for (int rounds : {5, 20, 80}) {
    GbtParams params;
    params.n_rounds = rounds;
    auto model = GradientBoosting::regressor(params);
    model.fit(x, y);
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = model.predict(x.row(i));
      sse += (p - y[i]) * (p - y[i]);
    }
    EXPECT_LE(sse, prev_sse * 1.001);
    prev_sse = sse;
  }
}

TEST(GradientBoosting, DeterministicGivenSeed) {
  Rng rng(15);
  Matrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = x(i, 0);
  }
  GbtParams params;
  params.subsample = 0.7;
  params.tree.colsample = 0.5;
  auto a = GradientBoosting::regressor(params);
  auto b = GradientBoosting::regressor(params);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
  }
}

TEST(GradientBoosting, PredictBeforeFitThrows) {
  auto model = GradientBoosting::regressor();
  const std::vector<double> row{1.0};
  EXPECT_THROW(model.predict(row), std::invalid_argument);
}

TEST(GradientBoosting, RejectsEmptyFit) {
  auto model = GradientBoosting::regressor();
  Matrix x(0, 0);
  EXPECT_THROW(model.fit(x, std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::ml
