// The serving layer's three contracts (stream_monitor.h):
//   * serialized serving is bit-identical to the batch harness;
//   * any worker count and either executor (task-DAG pipeline or the serial
//     lanes baseline) produce the same per-job records and flag set;
//   * the live cluster feed is a deterministic function of the flag set,
//     identical to posting the same flags up front.
#include "serve/stream_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/registry.h"
#include "core/task_dag.h"
#include "eval/harness.h"
#include "serve/cluster_sink.h"
#include "trace/generator.h"

namespace nurd::serve {
namespace {

std::vector<trace::Job> generated_jobs(std::size_t count,
                                       std::uint64_t seed = 0) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 80;
  config.max_tasks = 120;
  config.seed += seed;
  trace::GoogleLikeGenerator gen(config);
  return gen.generate(count);
}

core::NamedPredictor method_by_name(const std::string& name) {
  auto config = core::google_tuned();
  config.gbt_rounds = 10;  // keep the GBT-backed methods fast in tests
  return core::predictor_by_name(name, config);
}

void expect_runs_identical(const std::vector<eval::JobRunResult>& a,
                           const std::vector<eval::JobRunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].flagged_at, b[j].flagged_at) << "job " << j;
    ASSERT_EQ(a[j].per_checkpoint.size(), b[j].per_checkpoint.size());
    for (std::size_t t = 0; t < a[j].per_checkpoint.size(); ++t) {
      EXPECT_EQ(a[j].per_checkpoint[t].tp, b[j].per_checkpoint[t].tp);
      EXPECT_EQ(a[j].per_checkpoint[t].fp, b[j].per_checkpoint[t].fp);
      EXPECT_EQ(a[j].per_checkpoint[t].fn, b[j].per_checkpoint[t].fn);
      EXPECT_EQ(a[j].per_checkpoint[t].tn, b[j].per_checkpoint[t].tn);
    }
    EXPECT_EQ(a[j].final.tp, b[j].final.tp);
    EXPECT_EQ(a[j].final.fp, b[j].final.fp);
    EXPECT_EQ(a[j].final.fn, b[j].final.fn);
    EXPECT_EQ(a[j].final.tn, b[j].final.tn);
  }
}

// A sink that records every decision and checks the per-job ordering
// guarantee (a job's flags arrive in nondecreasing checkpoint order).
struct RecordingSink {
  std::mutex mutex;
  std::vector<FlagDecision> decisions;
  std::vector<std::size_t> last_checkpoint;

  explicit RecordingSink(std::size_t jobs) : last_checkpoint(jobs, 0) {}

  FlagSink sink() {
    return [this](const FlagDecision& flag) {
      std::lock_guard<std::mutex> lock(mutex);
      EXPECT_GE(flag.checkpoint, last_checkpoint[flag.job]);
      last_checkpoint[flag.job] = flag.checkpoint;
      decisions.push_back(flag);
    };
  }

  // (job, task, checkpoint) triples in canonical order — the flag SET.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> flag_set() {
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    out.reserve(decisions.size());
    for (const auto& d : decisions) {
      out.emplace_back(d.job, d.task, d.checkpoint);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(StreamMonitor, SerializedIsBitIdenticalToRunMethod) {
  const auto jobs = generated_jobs(4);
  // An outlier detector, the privileged method, and a warm-started learner —
  // three very different predictor lifecycles through the same lane code.
  for (const auto* name : {"HBOS", "Wrangler", "GBTR"}) {
    const auto method = method_by_name(name);
    const auto reference = eval::run_method(method, jobs);

    StreamMonitorConfig config;
    config.threads = 1;
    StreamMonitor monitor(jobs, method, config);
    const auto served = monitor.run();

    SCOPED_TRACE(name);
    expect_runs_identical(served.runs, reference);
    EXPECT_EQ(served.stats.jobs, jobs.size());
  }
}

// The acceptance pin: ordering (RecordingSink asserts per-job checkpoint
// order on every delivery) and determinism (records + flag set) at 1, 4 and
// 16 workers, on the DAG executor that serves by default.
TEST(StreamMonitor, WorkerCountDoesNotChangeRunsOrFlagSet) {
  const auto jobs = generated_jobs(6, /*seed=*/3);
  const auto method = method_by_name("HBOS");

  StreamMonitorConfig serial;
  serial.threads = 1;
  RecordingSink serial_sink(jobs.size());
  serial.sink = serial_sink.sink();
  const auto reference = StreamMonitor(jobs, method, serial).run();

  for (std::size_t threads : {4u, 16u}) {
    StreamMonitorConfig config;
    config.threads = threads;
    ASSERT_EQ(config.executor, ExecutorMode::kDag);  // the default
    RecordingSink sink(jobs.size());
    config.sink = sink.sink();
    StreamMonitor monitor(jobs, method, config);
    const auto served = monitor.run();

    expect_runs_identical(served.runs, reference.runs);
    EXPECT_EQ(sink.flag_set(), serial_sink.flag_set())
        << "flag set drifted at " << threads << " workers";
    EXPECT_EQ(served.stats.checkpoints, reference.stats.checkpoints);
    EXPECT_EQ(served.stats.flags, reference.stats.flags);
  }
}

// Same pin for the serial-lanes baseline executor, and cross-executor: DAG
// and lanes must agree bit-for-bit with each other and with serialized.
TEST(StreamMonitor, ExecutorModeDoesNotChangeRunsOrFlagSet) {
  const auto jobs = generated_jobs(5, /*seed=*/21);
  const auto method = method_by_name("GBTR");  // a staged, warm-started method

  StreamMonitorConfig serial;
  serial.threads = 1;
  RecordingSink serial_sink(jobs.size());
  serial.sink = serial_sink.sink();
  const auto reference = StreamMonitor(jobs, method, serial).run();

  for (ExecutorMode executor : {ExecutorMode::kDag, ExecutorMode::kSerialLanes}) {
    StreamMonitorConfig config;
    config.threads = 4;
    config.executor = executor;
    RecordingSink sink(jobs.size());
    config.sink = sink.sink();
    StreamMonitor monitor(jobs, method, config);
    const auto served = monitor.run();

    SCOPED_TRACE(executor == ExecutorMode::kDag ? "kDag" : "kSerialLanes");
    expect_runs_identical(served.runs, reference.runs);
    EXPECT_EQ(sink.flag_set(), serial_sink.flag_set());
  }
}

// The window bounds how far the pipeline runs ahead, never what it computes:
// the minimum overlapping window (2) and a fully serializing window (1)
// both reproduce the reference records.
TEST(StreamMonitor, WindowSizeDoesNotChangeRuns) {
  const auto jobs = generated_jobs(4, /*seed=*/27);
  const auto method = method_by_name("HBOS");

  StreamMonitorConfig serial;
  serial.threads = 1;
  const auto reference = StreamMonitor(jobs, method, serial).run();

  for (std::size_t window : {1u, 2u, 8u}) {
    StreamMonitorConfig config;
    config.threads = 4;
    config.window = window;
    StreamMonitor monitor(jobs, method, config);
    const auto served = monitor.run();
    SCOPED_TRACE(window);
    expect_runs_identical(served.runs, reference.runs);
  }
}

TEST(StreamMonitor, ArrivalProcessChangesTimingNotDecisions) {
  const auto jobs = generated_jobs(4, /*seed=*/11);
  const auto method = method_by_name("HBOS");
  const auto reference = eval::run_method(method, jobs);

  StreamMonitorConfig config;
  config.threads = 4;
  config.arrivals = sched::poisson_arrivals(0.05);
  config.arrival_seed = 17;
  StreamMonitor monitor(jobs, method, config);
  const auto served = monitor.run();

  // Arrival offsets interleave the streams differently but each job's
  // session sees exactly the same checkpoints, so decisions cannot move.
  expect_runs_identical(served.runs, reference);
  EXPECT_EQ(monitor.arrivals().size(), jobs.size());
}

TEST(StreamMonitor, StatsCoverEveryCheckpoint) {
  const auto jobs = generated_jobs(3, /*seed=*/5);
  const auto method = method_by_name("HBOS");

  StreamMonitorConfig config;
  config.threads = 2;
  StreamMonitor monitor(jobs, method, config);
  const auto served = monitor.run();

  std::size_t expected = 0;
  std::size_t flagged = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    expected += jobs[j].checkpoint_count();
    for (auto at : served.runs[j].flagged_at) {
      if (at != eval::kNeverFlagged) ++flagged;
    }
  }
  EXPECT_EQ(served.stats.checkpoints, expected);
  EXPECT_EQ(served.stats.flags, flagged);
  EXPECT_EQ(served.stats.lanes, 2u);
  EXPECT_GT(served.stats.checkpoints_per_sec, 0.0);
  EXPECT_GE(served.stats.p99_latency_ms, served.stats.p50_latency_ms);
  EXPECT_GE(served.stats.peak_backlog, 1u);
  // Every stage body ran at least once, so every stage accumulated time.
  for (std::size_t i = 0; i < core::kStageCount; ++i) {
    EXPECT_GT(served.stats.stage_seconds[i], 0.0) << core::stage_name(
        static_cast<core::Stage>(i));
  }
}

TEST(StreamMonitor, RunTwiceThrows) {
  const auto jobs = generated_jobs(1);
  StreamMonitorConfig config;
  config.threads = 1;
  StreamMonitor monitor(jobs, method_by_name("HBOS"), config);
  monitor.run();
  EXPECT_THROW(monitor.run(), std::invalid_argument);
}

// ---- live cluster feed -----------------------------------------------------

sched::ClusterConfig small_pool_config() {
  sched::ClusterConfig config;
  config.machines = 4;
  config.reclaim_releases = true;  // the regime where the pool binds
  return config;
}

void expect_cluster_identical(const sched::ClusterResult& a,
                              const sched::ClusterResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.jobs[j].mitigated_jct, b.jobs[j].mitigated_jct);
    EXPECT_DOUBLE_EQ(a.jobs[j].completion, b.jobs[j].completion);
    EXPECT_EQ(a.jobs[j].relaunched, b.jobs[j].relaunched);
    EXPECT_EQ(a.jobs[j].waited, b.jobs[j].waited);
    EXPECT_EQ(a.jobs[j].noop_flags, b.jobs[j].noop_flags);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.relaunched, b.relaunched);
  EXPECT_EQ(a.waited, b.waited);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.peak_waiting, b.peak_waiting);
}

// Reference for the live path: a live-mode engine fed every flag up front
// (watermark never advanced until finish), which by the engine's
// determinism contract must equal any interleaved advance schedule.
sched::ClusterResult posted_upfront(std::span<const trace::Job> jobs,
                                    const StreamMonitor& monitor,
                                    std::span<const eval::JobRunResult> runs,
                                    std::uint64_t seed) {
  auto config = small_pool_config();
  const auto times = monitor.arrivals();
  config.arrivals =
      sched::fixed_arrivals(std::vector<double>(times.begin(), times.end()));
  Rng rng(seed);
  sched::ClusterEngine engine(jobs, config, rng);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::size_t i = 0; i < runs[j].flagged_at.size(); ++i) {
      if (runs[j].flagged_at[i] != eval::kNeverFlagged) {
        engine.post_flag(j, i, runs[j].flagged_at[i]);
      }
    }
  }
  return engine.finish();
}

TEST(LiveClusterFeed, MatchesFlagsPostedUpfront) {
  const auto jobs = generated_jobs(5, /*seed=*/7);
  const auto method = method_by_name("HBOS");
  const std::uint64_t seed = 29;

  StreamMonitorConfig config;
  config.threads = 1;
  config.arrivals = sched::poisson_arrivals(0.02);
  config.arrival_seed = 13;
  StreamMonitor monitor(jobs, method, config);
  LiveClusterFeed feed(jobs, small_pool_config(), monitor, seed);
  monitor.set_sink(feed.sink());
  const auto served = monitor.run();
  const auto live = feed.finish();

  const auto reference = posted_upfront(jobs, monitor, served.runs, seed);
  expect_cluster_identical(live, reference);
  EXPECT_GT(live.relaunched, 0u);  // the scenario actually exercises flags
}

TEST(LiveClusterFeed, ThreadCountDoesNotChangeTheCluster) {
  const auto jobs = generated_jobs(5, /*seed=*/9);
  const auto method = method_by_name("HBOS");
  const std::uint64_t seed = 31;

  auto run_at = [&](std::size_t threads) {
    StreamMonitorConfig config;
    config.threads = threads;
    config.arrivals = sched::poisson_arrivals(0.02);
    config.arrival_seed = 19;
    StreamMonitor monitor(jobs, method, config);
    LiveClusterFeed feed(jobs, small_pool_config(), monitor, seed);
    monitor.set_sink(feed.sink());
    monitor.run();
    return feed.finish();
  };

  const auto serial = run_at(1);
  const auto concurrent = run_at(4);
  expect_cluster_identical(serial, concurrent);
}

}  // namespace
}  // namespace nurd::serve
