// The shared featurization layer and the incremental refit path.
//
//   * kFull blocks must equal the hand-rolled assembly they replaced
//     (gather-by-finished, [finished; running] membership, dense snapshot);
//   * kIncremental blocks must hold the same CONTENT while being maintained
//     by delta (snapshot bitwise identical, finished block append-stable);
//   * warm-start model continuation must be exact where exactness is
//     provable (same data: fit(a)+continue(r) ≡ fit(a+r); logistic warm
//     start converges to the cold optimum);
//   * end-to-end, snapshot-backed methods must flag BIT-IDENTICALLY under
//     both policies, and the warm-started learners must land within
//     tolerance of the full-refit reference.
#include "core/fit_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/registry.h"
#include "eval/harness.h"
#include "ml/gbt.h"
#include "ml/logistic.h"
#include "trace/generator.h"
#include "trace/replay.h"

namespace nurd {
namespace {

using core::FitSession;
using core::RefitPolicy;

std::vector<trace::Job> small_jobs(std::size_t count = 2) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 110;
  c.max_tasks = 140;
  return trace::GoogleLikeGenerator(c).generate(count);
}

TEST(FitSession, FullPolicyMatchesHandRolledAssembly) {
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  FitSession session(RefitPolicy::kFull);
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    session.observe(view);

    Matrix x_fin_ref;
    nurd::AlignedVector<double> y_fin_ref;
    view.gather_rows(view.finished(), &x_fin_ref);
    view.finished_latencies(&y_fin_ref);
    const Matrix& x_fin = session.x_fin();
    ASSERT_EQ(x_fin.rows(), x_fin_ref.rows());
    EXPECT_TRUE(std::equal(x_fin.flat().begin(), x_fin.flat().end(),
                           x_fin_ref.flat().begin()));
    EXPECT_TRUE(std::equal(session.y_fin().begin(), session.y_fin().end(),
                           y_fin_ref.begin()));

    // Membership: finished rows (1.0) then running rows (0.0).
    const Matrix& x_mem = session.x_member();
    const auto y_mem = session.y_member();
    ASSERT_EQ(x_mem.rows(), view.task_count());
    std::size_t r = 0;
    for (const auto i : view.finished()) {
      EXPECT_DOUBLE_EQ(y_mem[r], 1.0);
      EXPECT_TRUE(std::equal(x_mem.row(r).begin(), x_mem.row(r).end(),
                             view.row(i).begin()));
      ++r;
    }
    for ([[maybe_unused]] const auto i : view.running()) {
      EXPECT_DOUBLE_EQ(y_mem[r], 0.0);
      ++r;
    }

    Matrix snap_ref;
    view.snapshot(&snap_ref);
    const Matrix& snap = session.snapshot();
    EXPECT_TRUE(std::equal(snap.flat().begin(), snap.flat().end(),
                           snap_ref.flat().begin()));
  }
}

TEST(FitSession, IncrementalSnapshotIsBitwiseIdenticalToRebuild) {
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  FitSession session(RefitPolicy::kIncremental);
  trace::Replay replay(job);
  while (replay.has_next()) {
    replay.advance();
    session.observe(replay.view());
    Matrix ref;
    replay.view().snapshot(&ref);
    const Matrix& snap = session.snapshot();
    ASSERT_EQ(snap.rows(), ref.rows());
    EXPECT_TRUE(std::equal(snap.flat().begin(), snap.flat().end(),
                           ref.flat().begin()))
        << "checkpoint " << replay.current_index();
  }
}

TEST(FitSession, IncrementalFinishedBlockIsBitwiseTheFullBlock) {
  // The finished block must be bitwise identical under both policies —
  // boosted-tree fits are chaotic in their inputs, so an incremental refresh
  // can only land on the reference ensemble if it fits the exact same bytes.
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  FitSession inc(RefitPolicy::kIncremental);
  FitSession full(RefitPolicy::kFull);
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    inc.observe(view);
    full.observe(view);
    const Matrix& a = inc.x_fin();
    const Matrix& b = full.x_fin();
    ASSERT_EQ(a.rows(), b.rows());
    EXPECT_TRUE(
        std::equal(a.flat().begin(), a.flat().end(), b.flat().begin()));
    EXPECT_TRUE(std::equal(inc.y_fin().begin(), inc.y_fin().end(),
                           full.y_fin().begin()));
    EXPECT_TRUE(std::equal(inc.fin_ids().begin(), inc.fin_ids().end(),
                           view.finished().begin()));

    // The membership block is likewise the seed's exact [finished; running]
    // assembly under both policies — same bytes, same propensity model.
    const Matrix& mem_a = inc.x_member();
    const Matrix& mem_b = full.x_member();
    ASSERT_EQ(mem_a.rows(), mem_b.rows());
    EXPECT_TRUE(std::equal(mem_a.flat().begin(), mem_a.flat().end(),
                           mem_b.flat().begin()));
    EXPECT_TRUE(std::equal(inc.y_member().begin(), inc.y_member().end(),
                           full.y_member().begin()));
  }
}

// The staged (task-DAG) path: stage() assembles blocks ahead in the double
// buffer, promote() adopts them. Every block and every delta marker must be
// bitwise/exactly what the monolithic observe() chain produces, in the
// executor's real interleaving — Featurize runs up to two checkpoints ahead
// of the Refit that promotes (the F(t) ◄─ R(t-2) edge).
TEST(FitSession, StagedPipelineMatchesObserveBitwise) {
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  for (const auto policy : {RefitPolicy::kFull, RefitPolicy::kIncremental}) {
    FitSession staged(policy);
    FitSession mono(policy);
    const std::size_t T = job.checkpoint_count();
    std::vector<trace::CheckpointView> views;
    views.reserve(T);
    for (std::size_t t = 0; t < T; ++t) views.push_back(job.checkpoint(t));

    constexpr unsigned kAll =
        core::kFinishedBlock | core::kMemberBlock | core::kSnapshotBlock;
    // The executor's overlap order: F(0) and F(1) both precede R(0); F(t+2)
    // follows R(t).
    staged.stage(views[0], kAll);
    if (T > 1) staged.stage(views[1], kAll);
    for (std::size_t t = 0; t < T; ++t) {
      staged.promote(views[t]);
      mono.observe(views[t]);
      if (t + 2 < T) staged.stage(views[t + 2], kAll);

      EXPECT_EQ(staged.checkpoint(), mono.checkpoint());
      EXPECT_EQ(staged.advanced(), mono.advanced());
      ASSERT_TRUE(std::equal(staged.newly_finished().begin(),
                             staged.newly_finished().end(),
                             mono.newly_finished().begin(),
                             mono.newly_finished().end()));
      ASSERT_TRUE(std::equal(staged.changed_rows().begin(),
                             staged.changed_rows().end(),
                             mono.changed_rows().begin(),
                             mono.changed_rows().end()));

      const Matrix& fin_a = staged.x_fin();
      const Matrix& fin_b = mono.x_fin();
      ASSERT_EQ(fin_a.rows(), fin_b.rows());
      EXPECT_TRUE(std::equal(fin_a.flat().begin(), fin_a.flat().end(),
                             fin_b.flat().begin()));
      EXPECT_TRUE(std::equal(staged.y_fin().begin(), staged.y_fin().end(),
                             mono.y_fin().begin()));
      const Matrix& mem_a = staged.x_member();
      const Matrix& mem_b = mono.x_member();
      ASSERT_EQ(mem_a.rows(), mem_b.rows());
      EXPECT_TRUE(std::equal(mem_a.flat().begin(), mem_a.flat().end(),
                             mem_b.flat().begin()));
      const Matrix& snap_a = staged.snapshot();
      const Matrix& snap_b = mono.snapshot();
      ASSERT_EQ(snap_a.rows(), snap_b.rows());
      EXPECT_TRUE(std::equal(snap_a.flat().begin(), snap_a.flat().end(),
                             snap_b.flat().begin()))
          << "checkpoint " << t;
    }
  }
}

// Skipped refits never promote (the predictors' empty-finished /
// empty-candidate guards), so the delta a later promote reports must span
// ALL the checkpoints since the last one actually adopted — exactly like
// the monolithic observe chain with the same gaps.
TEST(FitSession, PromoteAfterSkippedCheckpointsMatchesSparseObserve) {
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  FitSession staged(RefitPolicy::kIncremental);
  FitSession mono(RefitPolicy::kIncremental);
  const std::size_t T = job.checkpoint_count();
  std::vector<trace::CheckpointView> views;
  views.reserve(T);
  for (std::size_t t = 0; t < T; ++t) views.push_back(job.checkpoint(t));

  for (std::size_t t = 0; t < T; ++t) {
    staged.stage(views[t], core::kFinishedBlock | core::kSnapshotBlock);
    if (t % 3 != 0) continue;  // the guard "skipped" the other checkpoints
    staged.promote(views[t]);
    mono.observe(views[t]);
    EXPECT_EQ(staged.advanced(), mono.advanced());
    ASSERT_TRUE(std::equal(staged.newly_finished().begin(),
                           staged.newly_finished().end(),
                           mono.newly_finished().begin(),
                           mono.newly_finished().end()))
        << "checkpoint " << t;
    const Matrix& snap_a = staged.snapshot();
    const Matrix& snap_b = mono.snapshot();
    EXPECT_TRUE(std::equal(snap_a.flat().begin(), snap_a.flat().end(),
                           snap_b.flat().begin()));
  }
}

// promote() without a matching stage() degrades to observe(): the blocks
// still come out right, just assembled on the refit chain.
TEST(FitSession, PromoteWithoutStageFallsBackToObserve) {
  const auto jobs = small_jobs(1);
  const auto& job = jobs.front();
  FitSession a(RefitPolicy::kFull);
  FitSession b(RefitPolicy::kFull);
  for (std::size_t t = 0; t < job.checkpoint_count(); t += 2) {
    const auto view = job.checkpoint(t);
    a.promote(view);  // nothing staged
    b.observe(view);
    EXPECT_EQ(a.advanced(), b.advanced());
    const Matrix& fin_a = a.x_fin();
    const Matrix& fin_b = b.x_fin();
    ASSERT_EQ(fin_a.rows(), fin_b.rows());
    EXPECT_TRUE(std::equal(fin_a.flat().begin(), fin_a.flat().end(),
                           fin_b.flat().begin()));
  }
}

TEST(WarmStartGbt, FitPlusContinueEqualsOneLongFit) {
  // On unchanged data, a warm-started continuation consumes the exact same
  // gradient/tree/RNG sequence a single longer fit would — bit-identical
  // ensembles, for both the exact and histogram backends.
  Rng rng(123);
  for (const std::size_t n : {60u, 400u}) {  // exact (<256) and histogram
    Matrix x(n, 5);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 5; ++j) x(i, j) = rng.normal();
      y[i] = x(i, 0) * 2.0 - x(i, 3) + 0.1 * rng.normal();
    }
    ml::GbtParams warm;
    warm.n_rounds = 12;
    warm.warm_start = true;
    warm.warm_rate_factor = 1.0;  // the exact-equivalence configuration
    auto a = ml::GradientBoosting::regressor(warm);
    a.fit(x, y);
    a.continue_fit(x, y, 8);

    ml::GbtParams full;
    full.n_rounds = 20;
    auto b = ml::GradientBoosting::regressor(full);
    b.fit(x, y);

    ASSERT_EQ(a.tree_count(), b.tree_count());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
    }
  }
}

TEST(WarmStartGbt, ContinueAbsorbsAppendedAndChangedRows) {
  Rng rng(7);
  const std::size_t n0 = 300, n1 = 360;
  Matrix x(n1, 4);
  std::vector<double> y(n1);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.normal();
    y[i] = 3.0 * x(i, 1) + rng.normal() * 0.05;
  }
  Matrix x0(n0, 4);
  for (std::size_t i = 0; i < n0; ++i) {
    std::copy(x.row(i).begin(), x.row(i).end(), x0.row(i).begin());
  }
  ml::GbtParams params;
  params.n_rounds = 20;
  params.warm_start = true;
  auto model = ml::GradientBoosting::regressor(params);
  model.fit(x0, std::span<const double>(y.data(), n0));
  EXPECT_EQ(model.trained_rows(), n0);

  // Mutate a prefix row and report it changed; append the rest.
  x(5, 1) += 2.5;
  y[5] = 3.0 * x(5, 1);
  const std::vector<std::size_t> changed{5};
  model.continue_fit(x, y, 6, changed);
  EXPECT_EQ(model.trained_rows(), n1);
  EXPECT_EQ(model.tree_count(), 26u);

  // The continued model must have actually learned from the new tail: its
  // fit there should beat the stale 20-round model's by construction of the
  // extra rounds. Cheap sanity rather than a statistical claim: predictions
  // stay finite and track the strong linear signal's sign.
  double cor = 0.0;
  for (std::size_t i = n0; i < n1; ++i) {
    const double p = model.predict(x.row(i));
    ASSERT_TRUE(std::isfinite(p));
    cor += p * y[i];
  }
  EXPECT_GT(cor, 0.0);
}

TEST(WarmStartGbt, ContinueRequiresWarmStartParams) {
  Matrix x(4, 1);
  std::vector<double> y{0.0, 1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  auto cold = ml::GradientBoosting::regressor({});
  cold.fit(x, y);
  EXPECT_THROW(cold.continue_fit(x, y, 1), std::invalid_argument);

  ml::GbtParams warm;
  warm.warm_start = true;
  auto unfitted = ml::GradientBoosting::regressor(warm);
  EXPECT_THROW(unfitted.continue_fit(x, y, 1), std::invalid_argument);
}

TEST(WarmStartGbt, RejectsMalformedSpliceMapBeforeTouchingCaches) {
  // An unsorted, duplicated, or out-of-range insertion map must be rejected
  // up front — the score/bin remap walks the carried-over prefix assuming a
  // strictly ascending map and would otherwise overrun it.
  Matrix x0(3, 1);
  std::vector<double> y0{0.0, 1.0, 2.0};
  for (std::size_t i = 0; i < 3; ++i) x0(i, 0) = static_cast<double>(i);
  ml::GbtParams warm;
  warm.warm_start = true;
  auto model = ml::GradientBoosting::regressor(warm);
  model.fit(x0, y0);

  Matrix x1(5, 1);
  std::vector<double> y1{0.0, 1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < 5; ++i) x1(i, 0) = static_cast<double>(i);
  const std::vector<std::size_t> unsorted{3, 1};
  const std::vector<std::size_t> duplicated{2, 2};
  const std::vector<std::size_t> out_of_range{1, 9};
  EXPECT_THROW(model.continue_fit(x1, y1, 1, {}, unsorted),
               std::invalid_argument);
  EXPECT_THROW(model.continue_fit(x1, y1, 1, {}, duplicated),
               std::invalid_argument);
  EXPECT_THROW(model.continue_fit(x1, y1, 1, {}, out_of_range),
               std::invalid_argument);
  // A well-formed map still works after the rejected attempts.
  const std::vector<std::size_t> ok{1, 3};
  model.continue_fit(x1, y1, 1, {}, ok);
  EXPECT_EQ(model.trained_rows(), 5u);
}

TEST(WarmStartLogistic, WarmRefitConvergesToTheColdOptimum) {
  Rng rng(11);
  const std::size_t n = 250, d = 4;
  Matrix x(n, d);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.normal();
    y[i] = x(i, 0) - 0.5 * x(i, 2) + 0.3 * rng.normal() > 0.0 ? 1.0 : 0.0;
  }
  ml::LogisticParams cold_params;
  ml::LogisticRegression cold(cold_params);
  cold.fit(x, y);

  ml::LogisticParams warm_params;
  warm_params.warm_start = true;
  ml::LogisticRegression warm(warm_params);
  warm.fit(x, y);  // first fit: cold path (nothing to warm-start from)
  // Perturb the data slightly (a checkpoint step) and refit warm: the
  // optimum is what matters, not the path to it.
  for (std::size_t i = 0; i < n; ++i) x(i, 3) += 0.01;
  warm.fit(x, y);
  cold.fit(x, y);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(warm.predict_proba(x.row(i)), cold.predict_proba(x.row(i)),
                1e-6);
  }
}

// ---- end-to-end policy comparison -----------------------------------------

std::vector<std::string> full_refit_methods() {
  // Methods whose models refit whole every checkpoint under either policy:
  // the session feeds them bitwise-identical blocks (delta-patched snapshot,
  // seed-ordered finished block), so their flags must match bit for bit.
  return {"HBOS", "IFOREST", "KNN",   "PCA",      "XGBOD", "Tobit",
          "CoxPH", "Wrangler", "PU-EN", "PU-BG"};
}

TEST(RefitPolicyEndToEnd, FullRefitMethodsAreBitIdentical) {
  const auto jobs = small_jobs(2);
  auto full_cfg = core::google_tuned();
  auto inc_cfg = full_cfg;
  inc_cfg.refit = RefitPolicy::kIncremental;
  for (const auto& name : full_refit_methods()) {
    const auto full = core::predictor_by_name(name, full_cfg);
    const auto inc = core::predictor_by_name(name, inc_cfg);
    for (const auto& job : jobs) {
      auto a = full.make();
      auto b = inc.make();
      const auto run_a = eval::run_job(job, *a);
      const auto run_b = eval::run_job(job, *b);
      EXPECT_EQ(run_a.flagged_at, run_b.flagged_at)
          << name << " diverged on " << job.id;
    }
  }
}

TEST(RefitPolicyEndToEnd, WarmStartedLearnersStayWithinTolerance) {
  const auto jobs = small_jobs(3);
  auto full_cfg = core::google_tuned();
  auto inc_cfg = full_cfg;
  inc_cfg.refit = RefitPolicy::kIncremental;
  for (const char* name : {"NURD", "NURD-NC", "GBTR", "Grabit"}) {
    const auto full =
        eval::evaluate_method(core::predictor_by_name(name, full_cfg), jobs);
    const auto inc =
        eval::evaluate_method(core::predictor_by_name(name, inc_cfg), jobs);
    EXPECT_NEAR(inc.f1, full.f1, 0.1) << name;
    EXPECT_NEAR(inc.tpr, full.tpr, 0.15) << name;
  }
}

}  // namespace
}  // namespace nurd
