#include <gtest/gtest.h>

#include "core/predictor.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "trace/generator.h"

namespace nurd::eval {
namespace {

TEST(Confusion, RatesAndF1) {
  Confusion c{8, 2, 2, 88};
  EXPECT_DOUBLE_EQ(c.tpr(), 0.8);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.2);
  EXPECT_NEAR(c.fpr(), 2.0 / 90.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.f1(), 16.0 / 20.0);
}

TEST(Confusion, EmptyDenominators) {
  Confusion none{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(none.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(none.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(none.f1(), 1.0);  // nothing to find, nothing flagged
}

TEST(Confusion, Accumulation) {
  Confusion a{1, 2, 3, 4};
  const Confusion b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.fn, 33u);
}

// Scripted predictor: flags a fixed set of tasks at a fixed checkpoint.
class ScriptedPredictor final : public core::StragglerPredictor {
 public:
  ScriptedPredictor(std::size_t when, std::vector<std::size_t> which)
      : when_(when), which_(std::move(which)) {}
  std::string name() const override { return "scripted"; }
  void initialize(const core::JobContext&) override {}
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override {
    std::vector<std::size_t> out;
    if (view.index() != when_) return out;
    for (auto i : which_) {
      for (auto c : candidates) {
        if (c == i) out.push_back(i);
      }
    }
    return out;
  }

 private:
  std::size_t when_;
  std::vector<std::size_t> which_;
};

trace::Job test_job() {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 100;
  trace::GoogleLikeGenerator gen(c);
  return gen.generate(1)[0];
}

TEST(RunJob, NeverFlaggingCountsAllStragglersAsMisses) {
  const auto job = test_job();
  ScriptedPredictor p(999, {});
  const auto run = run_job(job, p);
  const auto labels = job.straggler_labels();
  const auto positives = static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), 1));
  EXPECT_EQ(run.final.tp, 0u);
  EXPECT_EQ(run.final.fp, 0u);
  EXPECT_EQ(run.final.fn, positives);
  EXPECT_EQ(run.final.tn, job.task_count() - positives);
  EXPECT_DOUBLE_EQ(run.final.f1(), 0.0);
}

TEST(RunJob, FlaggingTrueStragglerCountsOnce) {
  const auto job = test_job();
  const auto labels = job.straggler_labels();
  // Pick a straggler that is still running at checkpoint 0.
  std::size_t straggler = job.task_count();
  for (auto i : job.trace.running(0)) {
    if (labels[i] == 1) {
      straggler = i;
      break;
    }
  }
  ASSERT_LT(straggler, job.task_count());
  ScriptedPredictor p(0, {straggler});
  const auto run = run_job(job, p);
  EXPECT_EQ(run.final.tp, 1u);
  EXPECT_EQ(run.final.fp, 0u);
  EXPECT_EQ(run.flagged_at[straggler], 0u);
}

TEST(RunJob, FlaggingNonStragglerIsFalsePositive) {
  const auto job = test_job();
  const auto labels = job.straggler_labels();
  std::size_t non = job.task_count();
  for (auto i : job.trace.running(0)) {
    if (labels[i] == 0) {
      non = i;
      break;
    }
  }
  ASSERT_LT(non, job.task_count());
  ScriptedPredictor p(0, {non});
  const auto run = run_job(job, p);
  EXPECT_EQ(run.final.fp, 1u);
  EXPECT_EQ(run.final.tp, 0u);
}

TEST(RunJob, PerCheckpointConfusionIsCumulative) {
  const auto job = test_job();
  ScriptedPredictor p(2, job.trace.running(2));
  const auto run = run_job(job, p);
  // Before checkpoint 2: no flags ⇒ zero TP and FP.
  EXPECT_EQ(run.per_checkpoint[0].tp + run.per_checkpoint[0].fp, 0u);
  EXPECT_EQ(run.per_checkpoint[1].tp + run.per_checkpoint[1].fp, 0u);
  // From checkpoint 2 on, the flags persist.
  EXPECT_GT(run.per_checkpoint[2].tp + run.per_checkpoint[2].fp, 0u);
  EXPECT_EQ(run.per_checkpoint[9].tp, run.per_checkpoint[2].tp);
}

TEST(RunJob, FlaggedTaskNotReofferedAsCandidate) {
  // A predictor that flags everything at t=0 must see zero candidates later.
  class GreedyThenCount final : public core::StragglerPredictor {
   public:
    std::string name() const override { return "greedy"; }
    void initialize(const core::JobContext&) override {}
    std::vector<std::size_t> predict_stragglers(
        const trace::CheckpointView& view,
        std::span<const std::size_t> candidates) override {
      if (view.index() == 0) {
        return {candidates.begin(), candidates.end()};
      }
      later_candidates += candidates.size();
      return {};
    }
    std::size_t later_candidates = 0;
  };
  const auto job = test_job();
  GreedyThenCount p;
  run_job(job, p);
  EXPECT_EQ(p.later_candidates, 0u);
}

TEST(EvaluateMethod, AveragesOverJobs) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  trace::GoogleLikeGenerator gen(c);
  const auto jobs = gen.generate(3);
  core::NamedPredictor method{
      "never", [] { return std::make_unique<ScriptedPredictor>(999,
                        std::vector<std::size_t>{}); }};
  const auto res = evaluate_method(method, jobs);
  EXPECT_DOUBLE_EQ(res.f1, 0.0);
  EXPECT_DOUBLE_EQ(res.tpr, 0.0);
  EXPECT_DOUBLE_EQ(res.fnr, 1.0);
  EXPECT_EQ(res.f1_timeline.size(), jobs[0].checkpoint_count());
}

TEST(AggregateMethod, ExcludesPositiveFreeJobsFromMacroF1) {
  // A job with no true stragglers scores the degenerate F1 = 1.0 whatever
  // the predictor does; pre-fix it inflated the macro-average (here from
  // the honest 0.0 to 0.5).
  JobRunResult missed_all;
  missed_all.final = Confusion{0, 0, 5, 95};
  missed_all.per_checkpoint = {Confusion{0, 0, 5, 95},
                               Confusion{0, 0, 5, 95}};
  JobRunResult positive_free;
  positive_free.final = Confusion{0, 0, 0, 100};
  positive_free.per_checkpoint = {Confusion{0, 0, 0, 100},
                                  Confusion{0, 0, 0, 100}};
  const std::vector<JobRunResult> runs{missed_all, positive_free};
  const auto res = aggregate_method("m", runs);
  EXPECT_DOUBLE_EQ(res.f1, 0.0);
  ASSERT_EQ(res.f1_timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(res.f1_timeline[0], 0.0);
  EXPECT_DOUBLE_EQ(res.f1_timeline[1], 0.0);
  // TPR/FNR keep the all-jobs mean with the documented zero conventions.
  EXPECT_DOUBLE_EQ(res.fnr, 0.5);
}

TEST(AggregateMethod, AllPositiveFreeFallsBackToEveryJob) {
  JobRunResult clean;
  clean.final = Confusion{0, 0, 0, 50};
  clean.per_checkpoint = {Confusion{0, 0, 0, 50}};
  JobRunResult false_flagged;
  false_flagged.final = Confusion{0, 2, 0, 48};
  false_flagged.per_checkpoint = {Confusion{0, 2, 0, 48}};
  const std::vector<JobRunResult> runs{clean, false_flagged};
  const auto res = aggregate_method("m", runs);
  // Nothing to find anywhere: 1.0 for the clean job, 0.0 for the job with
  // false flags.
  EXPECT_DOUBLE_EQ(res.f1, 0.5);
}

TEST(AggregateMethod, MatchesEvaluateMethodOnRealRuns) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  trace::GoogleLikeGenerator gen(c);
  const auto jobs = gen.generate(3);
  core::NamedPredictor method{
      "never", [] { return std::make_unique<ScriptedPredictor>(999,
                        std::vector<std::size_t>{}); }};
  const auto direct = evaluate_method(method, jobs);
  const auto rebuilt = aggregate_method("never", run_method(method, jobs));
  EXPECT_DOUBLE_EQ(direct.f1, rebuilt.f1);
  EXPECT_DOUBLE_EQ(direct.tpr, rebuilt.tpr);
  EXPECT_EQ(direct.f1_timeline, rebuilt.f1_timeline);
}

TEST(RunMethod, OneRunPerJob) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  trace::GoogleLikeGenerator gen(c);
  const auto jobs = gen.generate(4);
  core::NamedPredictor method{
      "never", [] { return std::make_unique<ScriptedPredictor>(999,
                        std::vector<std::size_t>{}); }};
  const auto runs = run_method(method, jobs);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(runs[j].flagged_at.size(), jobs[j].task_count());
  }
}

}  // namespace
}  // namespace nurd::eval
