#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nurd {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructorFills) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, FromFlatRoundTrip) {
  auto m = Matrix::from_flat(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
}

TEST(Matrix, FromFlatRejectsSizeMismatch) {
  EXPECT_THROW(Matrix::from_flat(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(2, 2, 0.0);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, ColExtraction) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto c1 = m.col(1);
  ASSERT_EQ(c1.size(), 3u);
  EXPECT_DOUBLE_EQ(c1[0], 2.0);
  EXPECT_DOUBLE_EQ(c1[2], 6.0);
}

TEST(Matrix, ColOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.col(2), std::invalid_argument);
}

TEST(Matrix, PushRowSetsWidthFromFirstRow) {
  Matrix m;
  const std::vector<double> row{1.0, 2.0, 3.0};
  m.push_row(row);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.rows(), 1u);
}

TEST(Matrix, PushRowRejectsWidthMismatch) {
  Matrix m(1, 2);
  const std::vector<double> bad{1.0, 2.0, 3.0};
  EXPECT_THROW(m.push_row(bad), std::invalid_argument);
}

TEST(Matrix, SelectRowsPreservesOrder) {
  Matrix m{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const std::vector<std::size_t> idx{3, 1};
  const auto s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
}

TEST(Matrix, SelectRowsRejectsOutOfRange) {
  Matrix m(2, 2);
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW(m.select_rows(idx), std::invalid_argument);
}

TEST(Matrix, ResetKeepsCapacityForScratchReuse) {
  Matrix m;
  m.reserve_rows(4);
  m.push_row(std::vector<double>{1.0, 2.0});
  m.push_row(std::vector<double>{3.0, 4.0});
  const auto* data = m.flat().data();
  m.reset(2);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.cols(), 2u);
  m.push_row(std::vector<double>{5.0, 6.0});
  // Refilling within the old capacity reuses the same allocation.
  EXPECT_EQ(m.flat().data(), data);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
}

TEST(Matrix, ResetCanChangeWidth) {
  Matrix m(3, 2, 1.0);
  m.reset(5);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 5u);
  m.push_row(std::vector<double>(5, 2.0));
  EXPECT_EQ(m.rows(), 1u);
}

TEST(Matrix, ColMeansAndStddevs) {
  Matrix m{{1, 10}, {3, 10}};
  const auto mu = m.col_means();
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  EXPECT_DOUBLE_EQ(mu[1], 10.0);
  const auto sd = m.col_stddevs();
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(Matrix, ColMeansOfEmptyMatrixAreZero) {
  Matrix m(0, 0);
  EXPECT_TRUE(m.col_means().empty());
}

TEST(VectorOps, SquaredAndEuclideanDistance) {
  const std::vector<double> a{0.0, 3.0};
  const std::vector<double> b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
}

TEST(VectorOps, DistanceToSelfIsZero) {
  const std::vector<double> a{1.5, -2.5, 0.25};
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

}  // namespace
}  // namespace nurd
