// Shared test fixture: hand-built jobs with known latencies and a simple
// checkpoint grid (features all zero — scheduler and metrics tests don't
// read them).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/job.h"

namespace nurd::trace {

inline Job make_test_job(std::string id, std::vector<double> latencies,
                         const std::vector<double>& taus) {
  Job job;
  job.id = std::move(id);
  job.trace = TraceStore(std::move(latencies), 1);
  for (double tau : taus) {
    job.trace.append_checkpoint(
        tau, [](std::size_t, std::span<double> row) { row[0] = 0.0; });
  }
  job.trace.finalize();
  return job;
}

}  // namespace nurd::trace
