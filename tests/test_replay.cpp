#include "trace/replay.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/matrix.h"
#include "trace/generator.h"

namespace nurd::trace {
namespace {

Job test_job() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 100;
  GoogleLikeGenerator gen(c);
  return gen.generate(1)[0];
}

TEST(Replay, WalksAllCheckpointsInOrder) {
  const auto job = test_job();
  Replay replay(job);
  std::size_t count = 0;
  double prev_tau = 0.0;
  while (replay.has_next()) {
    EXPECT_EQ(replay.advance(), count);
    EXPECT_GT(replay.tau_run(), prev_tau);
    prev_tau = replay.tau_run();
    ++count;
  }
  EXPECT_EQ(count, job.checkpoint_count());
}

TEST(Replay, QueriesBeforeFirstAdvanceThrow) {
  const auto job = test_job();
  Replay replay(job);
  EXPECT_THROW(replay.current_index(), std::invalid_argument);
}

TEST(Replay, ExhaustedAdvanceThrows) {
  const auto job = test_job();
  Replay replay(job);
  while (replay.has_next()) replay.advance();
  EXPECT_THROW(replay.advance(), std::invalid_argument);
}

TEST(Replay, RevealsOnlyFinishedLatencies) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  for (auto i : replay.finished()) {
    EXPECT_LE(replay.revealed_latency(i), replay.tau_run());
  }
  for (auto i : replay.running()) {
    EXPECT_THROW(replay.revealed_latency(i), std::invalid_argument);
  }
}

TEST(Replay, LateCheckpointRevealsEarlierRunner) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  // Pick a task running at the first checkpoint that finishes mid-job.
  std::size_t task = job.task_count();
  for (auto i : replay.running()) {
    if (job.latency(i) <= job.trace.tau_run(5)) {
      task = i;
      break;
    }
  }
  ASSERT_LT(task, job.task_count());
  while (replay.current_index() < 5) replay.advance();
  EXPECT_DOUBLE_EQ(replay.revealed_latency(task), job.latency(task));
}

TEST(Replay, FinishedFractionIsMonotone) {
  const auto job = test_job();
  Replay replay(job);
  double prev = -1.0;
  while (replay.has_next()) {
    replay.advance();
    EXPECT_GE(replay.finished_fraction(), prev);
    prev = replay.finished_fraction();
  }
}

TEST(Replay, ResetRestarts) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  replay.advance();
  replay.reset();
  EXPECT_TRUE(replay.has_next());
  EXPECT_EQ(replay.advance(), 0u);
}

// The serving layer's ingestion pattern: many jobs' cursors advanced in an
// interleaved order, sharing scratch buffers between them. Each replay's
// view must stay a pure function of (its job, its checkpoint) — no state may
// bleed across cursors through the shared scratch or the rebind path.
TEST(Replay, InterleavedCursorsStayIndependent) {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 60;
  c.max_tasks = 90;
  GoogleLikeGenerator gen(c);
  const auto jobs = gen.generate(2);
  ASSERT_NE(jobs[0].task_count(), jobs[1].task_count());

  Replay a(jobs[0]);
  Replay b(jobs[1]);
  Matrix scratch;  // shared gather target, reused across both cursors
  nurd::AlignedVector<double> lat_scratch;

  // Round-robin at different rates: a advances every turn, b every second
  // turn — the lanes of a StreamMonitor never advance in lockstep.
  std::size_t turn = 0;
  while (a.has_next() || b.has_next()) {
    Replay* cursor = nullptr;
    const trace::Job* job = nullptr;
    if (a.has_next() && (turn % 2 == 0 || !b.has_next())) {
      cursor = &a;
      job = &jobs[0];
    } else if (b.has_next()) {
      cursor = &b;
      job = &jobs[1];
    }
    ++turn;
    if (cursor == nullptr) break;

    const std::size_t t = cursor->advance();
    const CheckpointView& view = cursor->view();
    EXPECT_EQ(view.task_count(), job->task_count());
    EXPECT_DOUBLE_EQ(view.tau_run(), job->trace.tau_run(t));

    // Ground truth straight from the job, bypassing the cursor.
    const auto expected = job->checkpoint(t);
    const auto fin = view.finished();
    const auto exp_fin = expected.finished();
    ASSERT_EQ(std::vector<std::size_t>(fin.begin(), fin.end()),
              std::vector<std::size_t>(exp_fin.begin(), exp_fin.end()));

    // The shared scratch is overwritten by whichever cursor ran last; the
    // content must be THIS view's rows, not a stale gather from the other.
    view.gather_rows(view.finished(), &scratch);
    for (std::size_t r = 0; r < fin.size(); ++r) {
      const auto row = expected.row(fin[r]);
      for (std::size_t d = 0; d < view.feature_count(); ++d) {
        ASSERT_EQ(scratch(r, d), row[d]) << "row bled across cursors";
      }
    }
    view.finished_latencies(&lat_scratch);
    for (std::size_t r = 0; r < fin.size(); ++r) {
      ASSERT_EQ(lat_scratch[r], job->latency(fin[r]));
    }
  }
  EXPECT_FALSE(a.has_next());
  EXPECT_FALSE(b.has_next());
}

TEST(Replay, NextIndexTracksTheCursor) {
  const auto job = test_job();
  Replay replay(job);
  EXPECT_EQ(replay.next_index(), 0u);
  replay.advance();
  EXPECT_EQ(replay.next_index(), 1u);
  while (replay.has_next()) replay.advance();
  EXPECT_EQ(replay.next_index(), job.checkpoint_count());
}

TEST(Replay, ViewIsBackedByTheColumnarStore) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  const auto view = replay.view();
  EXPECT_EQ(view.index(), 0u);
  // Rows come straight from the store's version data — no copies.
  EXPECT_EQ(view.row(0).data(), job.trace.row(0, 0).data());
  const auto fin = view.finished();
  EXPECT_EQ(std::vector<std::size_t>(fin.begin(), fin.end()),
            job.trace.finished(0));
}

}  // namespace
}  // namespace nurd::trace
