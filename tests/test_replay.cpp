#include "trace/replay.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace nurd::trace {
namespace {

Job test_job() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 100;
  GoogleLikeGenerator gen(c);
  return gen.generate(1)[0];
}

TEST(Replay, WalksAllCheckpointsInOrder) {
  const auto job = test_job();
  Replay replay(job);
  std::size_t count = 0;
  double prev_tau = 0.0;
  while (replay.has_next()) {
    EXPECT_EQ(replay.advance(), count);
    EXPECT_GT(replay.tau_run(), prev_tau);
    prev_tau = replay.tau_run();
    ++count;
  }
  EXPECT_EQ(count, job.checkpoint_count());
}

TEST(Replay, QueriesBeforeFirstAdvanceThrow) {
  const auto job = test_job();
  Replay replay(job);
  EXPECT_THROW(replay.current_index(), std::invalid_argument);
}

TEST(Replay, ExhaustedAdvanceThrows) {
  const auto job = test_job();
  Replay replay(job);
  while (replay.has_next()) replay.advance();
  EXPECT_THROW(replay.advance(), std::invalid_argument);
}

TEST(Replay, RevealsOnlyFinishedLatencies) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  for (auto i : replay.finished()) {
    EXPECT_LE(replay.revealed_latency(i), replay.tau_run());
  }
  for (auto i : replay.running()) {
    EXPECT_THROW(replay.revealed_latency(i), std::invalid_argument);
  }
}

TEST(Replay, LateCheckpointRevealsEarlierRunner) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  // Pick a task running at the first checkpoint that finishes mid-job.
  std::size_t task = job.task_count();
  for (auto i : replay.running()) {
    if (job.latency(i) <= job.trace.tau_run(5)) {
      task = i;
      break;
    }
  }
  ASSERT_LT(task, job.task_count());
  while (replay.current_index() < 5) replay.advance();
  EXPECT_DOUBLE_EQ(replay.revealed_latency(task), job.latency(task));
}

TEST(Replay, FinishedFractionIsMonotone) {
  const auto job = test_job();
  Replay replay(job);
  double prev = -1.0;
  while (replay.has_next()) {
    replay.advance();
    EXPECT_GE(replay.finished_fraction(), prev);
    prev = replay.finished_fraction();
  }
}

TEST(Replay, ResetRestarts) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  replay.advance();
  replay.reset();
  EXPECT_TRUE(replay.has_next());
  EXPECT_EQ(replay.advance(), 0u);
}

TEST(Replay, ViewIsBackedByTheColumnarStore) {
  const auto job = test_job();
  Replay replay(job);
  replay.advance();
  const auto view = replay.view();
  EXPECT_EQ(view.index(), 0u);
  // Rows come straight from the store's version data — no copies.
  EXPECT_EQ(view.row(0).data(), job.trace.row(0, 0).data());
  const auto fin = view.finished();
  EXPECT_EQ(std::vector<std::size_t>(fin.begin(), fin.end()),
            job.trace.finished(0));
}

}  // namespace
}  // namespace nurd::trace
