// ThreadPool contracts the serving executors lean on:
//   * parallel_for determinism and nested-degradation basics;
//   * detached submit() hardening — an exception escaping a detached task
//     poisons the pool instead of terminating the process, and the next
//     enqueue (submit or parallel_for) rethrows it on the caller;
//   * shutdown drains detached tasks: every task enqueued before the
//     destructor runs to completion before the workers join.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nurd {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Regression for the unlocked error read the thread-safety annotations
// surfaced: parallel_for used to read LoopState::error after the completion
// wait without re-taking the state mutex, racing the writer's store. The
// read now happens under the lock; a worker-share throw must surface exactly
// once on the caller, every iteration, and the pool must stay usable after.
TEST(ThreadPool, ParallelForRethrowsWorkerShareThrowExactlyOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> caught{0};
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i == 13) throw std::runtime_error("share boom");
      });
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "share boom");
      caught.fetch_add(1);
    }
    EXPECT_EQ(caught.load(), 1) << "round " << round;
  }
  // A failed loop must not poison the pool: the next loop runs clean.
  std::atomic<int> total{0};
  pool.parallel_for(32, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSubmitInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // inline on the caller, complete before submit returns
}

TEST(ThreadPool, DetachedExceptionPoisonsAndNextSubmitRethrows) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("detached boom"); });
  // Poisoning is asynchronous: wait for the task to actually run.
  for (int spin = 0; spin < 2000 && !pool.poisoned(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pool.poisoned());
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  // Surfacing clears the poison: the pool is usable again.
  EXPECT_FALSE(pool.poisoned());
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  for (int spin = 0; spin < 2000 && !ran.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DetachedExceptionSurfacesThroughParallelFor) {
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("poison via loop"); });
  for (int spin = 0; spin < 2000 && !pool.poisoned(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pool.poisoned());
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
               std::invalid_argument);
  // After surfacing, loops run normally.
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, OnlyTheFirstDetachedExceptionIsKept) {
  ThreadPool pool(1);  // one worker serializes the detached tasks
  // A gate holds the worker so every enqueue below happens before either
  // thrower runs — submit() itself surfaces pending poison, so enqueueing
  // after a throw had already landed would rethrow it right here.
  std::atomic<bool> release{false};
  std::atomic<bool> drained{false};
  pool.submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  pool.submit([&] { drained.store(true); });
  release.store(true);
  for (int spin = 0; spin < 2000 && !drained.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Both throwers have run; the poison must be "first", "second" dropped.
  ASSERT_TRUE(pool.poisoned());
  try {
    pool.submit([] {});
    FAIL() << "poison did not surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_FALSE(pool.poisoned());
}

// The regression pinned here: destroying a pool with detached tasks still
// queued must run them all before joining (shutdown DRAINS, it does not
// drop). The serving layer counts in-flight work itself and relies on every
// submitted drain eventually executing.
TEST(ThreadPool, ShutdownDrainsQueuedDetachedTasks) {
  std::atomic<int> completed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPool, ShutdownDrainEvenWithPoisonPending) {
  std::atomic<int> completed{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(1);
    // Gate the worker so no enqueue below can observe (and surface) the
    // poison — the point is that the DESTRUCTOR meets it, not submit().
    pool.submit([&] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    pool.submit([] { throw std::runtime_error("never surfaced"); });
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] { completed.fetch_add(1); });
    }
    release.store(true);
  }  // destructor must neither throw nor drop the queue
  EXPECT_EQ(completed.load(), 8);
}

}  // namespace
}  // namespace nurd
