#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "outlier/density_detectors.h"
#include "outlier/detector.h"
#include "outlier/ensemble_detectors.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"
#include "outlier/ocsvm.h"
#include "outlier/statistical_detectors.h"
#include "outlier/subspace_detectors.h"

namespace nurd::outlier {
namespace {

// Dense inlier blob plus a handful of far-away outliers (last rows).
struct Planted {
  Matrix x;
  std::size_t n_inliers;
  std::size_t n_outliers;
};

Planted planted_outliers(std::size_t n_in, std::size_t n_out,
                         std::uint64_t seed) {
  Rng rng(seed);
  Planted p;
  p.n_inliers = n_in;
  p.n_outliers = n_out;
  p.x = Matrix(n_in + n_out, 4);
  for (std::size_t i = 0; i < n_in; ++i) {
    for (std::size_t j = 0; j < 4; ++j) p.x(i, j) = rng.normal(0.0, 1.0);
  }
  // Each outlier sits far out in its own random direction: a single far
  // CLUSTER would legitimately evade the local/affinity detectors (SOS,
  // COF) whose whole point is that clustered anomalies look mutually
  // normal.
  for (std::size_t i = n_in; i < n_in + n_out; ++i) {
    std::vector<double> dir(4);
    for (auto& d : dir) d = rng.normal();
    const double scale = 8.0 / norm2(dir);
    for (std::size_t j = 0; j < 4; ++j) {
      p.x(i, j) = dir[j] * scale + rng.normal(0.0, 0.3);
    }
  }
  return p;
}

// Fraction of the planted outliers ranked within the top (n_out) scores.
double recall_at_k(const std::vector<double>& scores, std::size_t n_in,
                   std::size_t n_out) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_out),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return scores[a] > scores[b];
                    });
  std::size_t hit = 0;
  for (std::size_t k = 0; k < n_out; ++k) {
    if (idx[k] >= n_in) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(n_out);
}

using DetectorFactory = std::function<std::unique_ptr<Detector>()>;

struct DetectorCase {
  const char* name;
  DetectorFactory make;
  // Minimum planted-outlier recall@k. Most detectors nail scattered far
  // outliers; SOS (the paper's weakest detector, F1 0.12 in Table 3) and
  // the approximate-RFF OCSVM get a looser bar.
  double min_recall = 0.75;
};

class DetectorSuite : public ::testing::TestWithParam<DetectorCase> {};

TEST_P(DetectorSuite, RanksPlantedOutliersOnTop) {
  const auto planted = planted_outliers(120, 8, 77);
  auto det = GetParam().make();
  det->fit(planted.x);
  const auto& scores = det->scores();
  ASSERT_EQ(scores.size(), planted.x.rows());
  EXPECT_GE(recall_at_k(scores, planted.n_inliers, planted.n_outliers),
            GetParam().min_recall)
      << GetParam().name;
}

TEST_P(DetectorSuite, ScoresAreFinite) {
  const auto planted = planted_outliers(60, 4, 78);
  auto det = GetParam().make();
  det->fit(planted.x);
  for (double s : det->scores()) EXPECT_TRUE(std::isfinite(s));
}

TEST_P(DetectorSuite, DeterministicAcrossRuns) {
  const auto planted = planted_outliers(60, 4, 79);
  auto a = GetParam().make();
  auto b = GetParam().make();
  a->fit(planted.x);
  b->fit(planted.x);
  EXPECT_EQ(a->scores(), b->scores()) << GetParam().name;
}

TEST_P(DetectorSuite, NameMatches) {
  EXPECT_EQ(GetParam().make()->name(), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorSuite,
    ::testing::Values(
        DetectorCase{"KNN", [] { return std::make_unique<KnnDetector>(); }},
        DetectorCase{"LOF", [] { return std::make_unique<LofDetector>(); }},
        DetectorCase{"COF", [] { return std::make_unique<CofDetector>(); }},
        DetectorCase{"ABOD", [] { return std::make_unique<AbodDetector>(); }},
        DetectorCase{"HBOS", [] { return std::make_unique<HbosDetector>(); }},
        DetectorCase{"SOS", [] { return std::make_unique<SosDetector>(); },
                     0.4},
        DetectorCase{"IFOREST",
                     [] { return std::make_unique<IForestDetector>(); }},
        DetectorCase{"MCD", [] { return std::make_unique<McdDetector>(); }},
        DetectorCase{"PCA", [] { return std::make_unique<PcaDetector>(); }},
        DetectorCase{"CBLOF",
                     [] { return std::make_unique<CblofDetector>(); }},
        DetectorCase{"OCSVM",
                     [] { return std::make_unique<OcsvmDetector>(); }, 0.5},
        DetectorCase{"SOD", [] { return std::make_unique<SodDetector>(); }},
        DetectorCase{"LSCP",
                     [] { return std::make_unique<LscpDetector>(); }}),
    [](const ::testing::TestParamInfo<DetectorCase>& info) {
      return info.param.name;
    });

TEST(ContaminationThreshold, FlagsExpectedFraction) {
  std::vector<double> scores(100);
  std::iota(scores.begin(), scores.end(), 0.0);
  const auto labels = labels_from_scores(scores, 0.1);
  const auto flagged = std::count(labels.begin(), labels.end(), 1);
  EXPECT_GE(flagged, 9);
  EXPECT_LE(flagged, 11);
  // The highest scores are the flagged ones.
  EXPECT_EQ(labels[99], 1);
  EXPECT_EQ(labels[0], 0);
}

TEST(ContaminationThreshold, RejectsBadInput) {
  EXPECT_THROW(contamination_threshold({}, 0.1), std::invalid_argument);
  std::vector<double> s{1.0};
  EXPECT_THROW(contamination_threshold(s, 0.0), std::invalid_argument);
  EXPECT_THROW(contamination_threshold(s, 1.0), std::invalid_argument);
}

TEST(IForest, AveragePathLengthKnownValues) {
  EXPECT_DOUBLE_EQ(IForestDetector::average_path_length(0), 0.0);
  EXPECT_DOUBLE_EQ(IForestDetector::average_path_length(1), 0.0);
  EXPECT_DOUBLE_EQ(IForestDetector::average_path_length(2), 1.0);
  // c(256) ≈ 10.24 (from the isolation-forest paper's normalizer).
  EXPECT_NEAR(IForestDetector::average_path_length(256), 10.24, 0.1);
}

TEST(IForest, ScoresInUnitInterval) {
  const auto planted = planted_outliers(100, 5, 80);
  IForestDetector det;
  det.fit(planted.x);
  for (double s : det.scores()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Lof, UniformDataScoresNearOne) {
  Rng rng(81);
  Matrix x(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  LofDetector det(20);
  det.fit(x);
  double mean_score = 0.0;
  for (double s : det.scores()) mean_score += s;
  EXPECT_NEAR(mean_score / 200.0, 1.0, 0.1);
}

TEST(Sos, ScoresAreProbabilities) {
  const auto planted = planted_outliers(50, 3, 82);
  SosDetector det;
  det.fit(planted.x);
  for (double s : det.scores()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Xgbod, SupervisedScoresSeparate) {
  const auto planted = planted_outliers(120, 8, 83);
  std::vector<double> y(planted.x.rows(), 0.0);
  for (std::size_t i = planted.n_inliers; i < planted.x.rows(); ++i) {
    y[i] = 1.0;
  }
  XgbodDetector det;
  det.fit(planted.x, y);
  EXPECT_GE(recall_at_k(det.scores(), planted.n_inliers,
                        planted.n_outliers), 0.8);
}

TEST(Xgbod, RejectsLabelMismatch) {
  Matrix x(5, 2);
  XgbodDetector det;
  EXPECT_THROW(det.fit(x, std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace nurd::outlier
