#include "common/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nurd {
namespace {

// Random SPD matrix A = B·Bᵀ + d·I.
Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a(i, j) += b(i, k) * b(j, k);
    }
    a(i, i) += 0.5;
  }
  return a;
}

TEST(Cholesky, KnownFactorization) {
  Matrix a{{4.0, 2.0}, {2.0, 5.0}};
  auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), 2.0, 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), std::invalid_argument);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Matrix a{{4.0, 2.0}, {2.0, 5.0}};
  auto l = cholesky(a);
  ASSERT_TRUE(l);
  // x = (1, 2) ⇒ b = A·x = (8, 12).
  const std::vector<double> b{8.0, 12.0};
  const auto x = cholesky_solve(*l, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Cholesky, LogDetMatchesKnown) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};  // det = 36
  auto l = cholesky(a);
  ASSERT_TRUE(l);
  EXPECT_NEAR(cholesky_logdet(*l), std::log(36.0), 1e-12);
}

class SpdPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdPropertyTest, FactorReconstructsMatrix) {
  Rng rng(100 + GetParam());
  const auto a = random_spd(GetParam(), rng);
  auto l = cholesky(a);
  ASSERT_TRUE(l);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double llt = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) {
        llt += (*l)(i, k) * (*l)(j, k);
      }
      EXPECT_NEAR(llt, a(i, j), 1e-8);
    }
  }
}

TEST_P(SpdPropertyTest, InverseTimesMatrixIsIdentity) {
  Rng rng(200 + GetParam());
  const auto a = random_spd(GetParam(), rng);
  auto inv = spd_inverse(a);
  ASSERT_TRUE(inv);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double prod = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) {
        prod += a(i, k) * (*inv)(k, j);
      }
      EXPECT_NEAR(prod, i == j ? 1.0 : 0.0, 1e-7);
    }
  }
}

TEST_P(SpdPropertyTest, EigenReconstruction) {
  Rng rng(300 + GetParam());
  const auto a = random_spd(GetParam(), rng);
  const auto eig = jacobi_eigen(a);
  // A = Σ λ_i v_i v_iᵀ.
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eig.values[k] * eig.vectors(k, i) * eig.vectors(k, j);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-7);
    }
  }
  // Eigenvalues descending and positive for SPD.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    EXPECT_GE(eig.values[k], eig.values[k + 1]);
  }
  EXPECT_GT(eig.values[n - 1], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 15));

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(Covariance, KnownTwoPoint) {
  Matrix x{{0.0, 0.0}, {2.0, 4.0}};
  const auto c = covariance(x);
  EXPECT_NEAR(c(0, 0), 2.0, 1e-12);  // var of {0,2} with n-1 = 2
  EXPECT_NEAR(c(1, 1), 8.0, 1e-12);
  EXPECT_NEAR(c(0, 1), 4.0, 1e-12);
  EXPECT_NEAR(c(1, 0), 4.0, 1e-12);
}

TEST(Covariance, SingleRowIsZero) {
  Matrix x{{1.0, 2.0}};
  const auto c = covariance(x);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 0.0);
}

TEST(Mahalanobis, IdentityPrecisionIsEuclidean) {
  Matrix p{{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> v{3.0, 4.0};
  const std::vector<double> mu{0.0, 0.0};
  EXPECT_NEAR(mahalanobis_squared(v, mu, p), 25.0, 1e-12);
}

TEST(Mahalanobis, ScalesWithPrecision) {
  Matrix p{{4.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> v{1.0, 0.0};
  const std::vector<double> mu{0.0, 0.0};
  EXPECT_NEAR(mahalanobis_squared(v, mu, p), 4.0, 1e-12);
}

}  // namespace
}  // namespace nurd
