#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.h"
#include "trace/generator.h"
#include "trace/job.h"

namespace nurd::trace {
namespace {

GeneratorConfig small_config() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 150;
  return c;
}

TEST(Schemas, FeatureCountsMatchPaperTables) {
  EXPECT_EQ(google_schema().size(), 15u);   // Table 1
  EXPECT_EQ(alibaba_schema().size(), 4u);   // Table 2
  EXPECT_EQ(google_schema().names[11], "CPI");
  EXPECT_EQ(alibaba_schema().names[0], "cpu_avg");
}

TEST(Generator, TaskCountWithinRange) {
  GoogleLikeGenerator gen(small_config());
  for (const auto& job : gen.generate(5)) {
    EXPECT_GE(job.task_count(), 100u);
    EXPECT_LE(job.task_count(), 150u);
  }
}

TEST(Generator, DeterministicGivenSeed) {
  GoogleLikeGenerator a(small_config()), b(small_config());
  const auto ja = a.generate(3);
  const auto jb = b.generate(3);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(std::vector<double>(ja[j].latencies().begin(),
                                  ja[j].latencies().end()),
              std::vector<double>(jb[j].latencies().begin(),
                                  jb[j].latencies().end()));
    EXPECT_EQ(ja[j].trace.version_count(), jb[j].trace.version_count());
    EXPECT_DOUBLE_EQ(ja[j].trace.row(2, 0)[0], jb[j].trace.row(2, 0)[0]);
  }
}

TEST(Generator, ParallelGenerationBitIdentical) {
  // Per-job RNG streams are forked in a serial prefix pass, so any thread
  // count produces the same jobs.
  GoogleLikeGenerator serial(small_config());
  GoogleLikeGenerator threaded(small_config());
  const auto ja = serial.generate(6, /*threads=*/1);
  const auto jb = threaded.generate(6, /*threads=*/4);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t j = 0; j < ja.size(); ++j) {
    EXPECT_EQ(ja[j].id, jb[j].id);
    ASSERT_EQ(ja[j].task_count(), jb[j].task_count());
    for (std::size_t i = 0; i < ja[j].task_count(); ++i) {
      EXPECT_DOUBLE_EQ(ja[j].latency(i), jb[j].latency(i));
    }
    ASSERT_EQ(ja[j].checkpoint_count(), jb[j].checkpoint_count());
    for (std::size_t t = 0; t < ja[j].checkpoint_count(); ++t) {
      EXPECT_DOUBLE_EQ(ja[j].trace.tau_run(t), jb[j].trace.tau_run(t));
      for (std::size_t i = 0; i < ja[j].task_count(); ++i) {
        const auto ra = ja[j].trace.row(t, i);
        const auto rb = jb[j].trace.row(t, i);
        for (std::size_t f = 0; f < ra.size(); ++f) {
          EXPECT_DOUBLE_EQ(ra[f], rb[f]);
        }
      }
    }
  }
}

TEST(Generator, DifferentSeedsDifferentJobs) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed += 1;
  GoogleLikeGenerator a(c1), b(c2);
  const auto ja = a.generate(1);
  const auto jb = b.generate(1);
  const auto la = ja[0].latencies();
  const auto lb = jb[0].latencies();
  EXPECT_NE(std::vector<double>(la.begin(), la.end()),
            std::vector<double>(lb.begin(), lb.end()));
}

TEST(Generator, StragglerLabelsAreTenPercentAtP90) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  const auto labels = job.straggler_labels(90.0);
  const auto positives =
      static_cast<double>(std::count(labels.begin(), labels.end(), 1));
  const double frac = positives / static_cast<double>(labels.size());
  EXPECT_GE(frac, 0.05);
  EXPECT_LE(frac, 0.20);
}

TEST(Generator, CheckpointsAscendingAndBelowCompletion) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  double prev = 0.0;
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    EXPECT_GT(job.trace.tau_run(t), prev);
    prev = job.trace.tau_run(t);
  }
  EXPECT_LT(prev, job.completion_time());
}

TEST(Generator, FinishedRunningPartitionConsistent) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    EXPECT_EQ(view.finished().size() + view.running().size(),
              job.task_count());
    for (auto i : view.finished()) {
      EXPECT_LE(job.latency(i), view.tau_run());
    }
    for (auto i : view.running()) EXPECT_GT(job.latency(i), view.tau_run());
    std::set<std::size_t> all(view.finished().begin(), view.finished().end());
    all.insert(view.running().begin(), view.running().end());
    EXPECT_EQ(all.size(), job.task_count());
  }
}

TEST(Generator, FinishedSetGrowsMonotonically) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (std::size_t t = 1; t < job.checkpoint_count(); ++t) {
    EXPECT_GE(job.trace.finished_count(t), job.trace.finished_count(t - 1));
  }
}

TEST(Generator, LastCheckpointStillHasRunningTasks) {
  GoogleLikeGenerator gen(small_config());
  for (const auto& job : gen.generate(5)) {
    const std::size_t last = job.checkpoint_count() - 1;
    EXPECT_LT(job.trace.finished_count(last), job.task_count());
  }
}

TEST(Generator, FeatureRowShape) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  EXPECT_EQ(job.feature_count(), google_schema().size());
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      EXPECT_EQ(job.trace.row(t, i).size(), google_schema().size());
    }
  }
}

TEST(Generator, FarRegimeThresholdBelowHalfMax) {
  auto c = small_config();
  c.regime = TailRegime::kFar;
  GoogleLikeGenerator gen(c);
  std::size_t consistent = 0;
  const auto jobs = gen.generate(20);
  for (const auto& job : jobs) {
    if (job.straggler_threshold() < 0.5 * job.completion_time()) ++consistent;
  }
  EXPECT_GE(consistent, 18u);  // far tail: p90 < max/2 almost always
}

TEST(Generator, NearRegimeThresholdAboveHalfMax) {
  auto c = small_config();
  c.regime = TailRegime::kNear;
  GoogleLikeGenerator gen(c);
  std::size_t consistent = 0;
  const auto jobs = gen.generate(20);
  for (const auto& job : jobs) {
    if (job.straggler_threshold() > 0.5 * job.completion_time()) ++consistent;
  }
  EXPECT_GE(consistent, 18u);
}

TEST(Generator, InitialCheckpointRespectsWarmup) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  // At the first checkpoint at least the initial 4% of tasks have finished.
  const auto warm = static_cast<std::size_t>(
      0.04 * static_cast<double>(job.task_count()));
  EXPECT_GE(job.trace.finished_count(0), warm);
}

TEST(Generator, FeaturesFreezeAfterCompletion) {
  // A finished task's observable metrics stop moving: its row at every
  // checkpoint after its freeze horizon is EXACTLY its frozen observation
  // (the columnar store stores that row-version once).
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    const auto freeze = job.trace.freeze_checkpoint(i);
    if (freeze == kNeverFrozen) continue;
    const auto frozen = job.trace.row(freeze, i);
    for (std::size_t t = freeze + 1; t < job.checkpoint_count(); ++t) {
      EXPECT_EQ(job.trace.row(t, i).data(), frozen.data())
          << "task " << i << " drifted after freezing";
    }
  }
  // Snapshots stay finite everywhere.
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      for (double v : job.trace.row(t, i)) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Generator, RunningStragglersDriftBetweenCheckpoints) {
  // The cause signature builds with elapsed time, so a straggler running at
  // two consecutive checkpoints must show different rows (the NU bias the
  // propensity model exploits).
  auto c = small_config();
  c.regime = TailRegime::kFar;
  GoogleLikeGenerator gen(c);
  const auto job = gen.generate(1)[0];
  const auto labels = job.straggler_labels();
  std::size_t drifting = 0;
  for (auto i : job.trace.running(1)) {
    if (labels[i] != 1) continue;
    const auto r0 = job.trace.row(0, i);
    const auto r1 = job.trace.row(1, i);
    for (std::size_t f = 0; f < r0.size(); ++f) {
      if (r0[f] != r1[f]) {
        ++drifting;
        break;
      }
    }
  }
  EXPECT_GT(drifting, 0u);
}

TEST(Job, StragglerThresholdMatchesPercentile) {
  TraceStore store({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1);
  Job job;
  job.trace = std::move(store);
  const std::vector<double> lat(job.latencies().begin(),
                                job.latencies().end());
  EXPECT_DOUBLE_EQ(job.straggler_threshold(90.0), percentile(lat, 90.0));
}

TEST(Job, NormalizedLatenciesInUnitInterval) {
  Job job;
  job.trace = TraceStore({2.0, 4.0, 8.0}, 1);
  const auto norm = job.normalized_latencies();
  EXPECT_DOUBLE_EQ(norm[2], 1.0);
  EXPECT_DOUBLE_EQ(norm[0], 0.25);
}

TEST(Job, EmptyJobThrows) {
  Job job;
  EXPECT_THROW(job.straggler_threshold(), std::invalid_argument);
  EXPECT_THROW(job.completion_time(), std::invalid_argument);
}

TEST(Generator, AlibabaJobsUseFourFeatures) {
  auto c = AlibabaLikeGenerator::alibaba_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  AlibabaLikeGenerator gen(c);
  const auto job = gen.generate(1)[0];
  EXPECT_EQ(job.feature_count(), 4u);
  EXPECT_EQ(job.trace.row(0, 0).size(), 4u);
}

TEST(Generator, RejectsBadConfig) {
  auto c = small_config();
  c.min_tasks = 5;  // below the 10-task floor
  EXPECT_THROW(GoogleLikeGenerator{c}, std::invalid_argument);
  auto c2 = small_config();
  c2.min_tasks = 200;
  c2.max_tasks = 100;
  EXPECT_THROW(GoogleLikeGenerator{c2}, std::invalid_argument);
}

}  // namespace
}  // namespace nurd::trace
