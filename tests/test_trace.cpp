#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/stats.h"
#include "trace/generator.h"
#include "trace/job.h"

namespace nurd::trace {
namespace {

GeneratorConfig small_config() {
  auto c = GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 150;
  return c;
}

TEST(Schemas, FeatureCountsMatchPaperTables) {
  EXPECT_EQ(google_schema().size(), 15u);   // Table 1
  EXPECT_EQ(alibaba_schema().size(), 4u);   // Table 2
  EXPECT_EQ(google_schema().names[11], "CPI");
  EXPECT_EQ(alibaba_schema().names[0], "cpu_avg");
}

TEST(Generator, TaskCountWithinRange) {
  GoogleLikeGenerator gen(small_config());
  for (const auto& job : gen.generate(5)) {
    EXPECT_GE(job.task_count(), 100u);
    EXPECT_LE(job.task_count(), 150u);
  }
}

TEST(Generator, DeterministicGivenSeed) {
  GoogleLikeGenerator a(small_config()), b(small_config());
  const auto ja = a.generate(3);
  const auto jb = b.generate(3);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(ja[j].latencies, jb[j].latencies);
    EXPECT_EQ(ja[j].checkpoints[0].features.flat().size(),
              jb[j].checkpoints[0].features.flat().size());
    EXPECT_DOUBLE_EQ(ja[j].checkpoints[2].features(0, 0),
                     jb[j].checkpoints[2].features(0, 0));
  }
}

TEST(Generator, DifferentSeedsDifferentJobs) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed += 1;
  GoogleLikeGenerator a(c1), b(c2);
  EXPECT_NE(a.generate(1)[0].latencies, b.generate(1)[0].latencies);
}

TEST(Generator, StragglerLabelsAreTenPercentAtP90) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  const auto labels = job.straggler_labels(90.0);
  const auto positives =
      static_cast<double>(std::count(labels.begin(), labels.end(), 1));
  const double frac = positives / static_cast<double>(labels.size());
  EXPECT_GE(frac, 0.05);
  EXPECT_LE(frac, 0.20);
}

TEST(Generator, CheckpointsAscendingAndBelowCompletion) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  double prev = 0.0;
  for (const auto& cp : job.checkpoints) {
    EXPECT_GT(cp.tau_run, prev);
    prev = cp.tau_run;
  }
  EXPECT_LT(prev, job.completion_time());
}

TEST(Generator, FinishedRunningPartitionConsistent) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (const auto& cp : job.checkpoints) {
    EXPECT_EQ(cp.finished.size() + cp.running.size(), job.task_count());
    for (auto i : cp.finished) EXPECT_LE(job.latencies[i], cp.tau_run);
    for (auto i : cp.running) EXPECT_GT(job.latencies[i], cp.tau_run);
    std::set<std::size_t> all(cp.finished.begin(), cp.finished.end());
    all.insert(cp.running.begin(), cp.running.end());
    EXPECT_EQ(all.size(), job.task_count());
  }
}

TEST(Generator, FinishedSetGrowsMonotonically) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (std::size_t t = 1; t < job.checkpoints.size(); ++t) {
    EXPECT_GE(job.checkpoints[t].finished.size(),
              job.checkpoints[t - 1].finished.size());
  }
}

TEST(Generator, LastCheckpointStillHasRunningTasks) {
  GoogleLikeGenerator gen(small_config());
  for (const auto& job : gen.generate(5)) {
    EXPECT_FALSE(job.checkpoints.back().running.empty());
  }
}

TEST(Generator, FeatureMatrixShape) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  for (const auto& cp : job.checkpoints) {
    EXPECT_EQ(cp.features.rows(), job.task_count());
    EXPECT_EQ(cp.features.cols(), google_schema().size());
  }
}

TEST(Generator, FarRegimeThresholdBelowHalfMax) {
  auto c = small_config();
  c.regime = TailRegime::kFar;
  GoogleLikeGenerator gen(c);
  std::size_t consistent = 0;
  const auto jobs = gen.generate(20);
  for (const auto& job : jobs) {
    if (job.straggler_threshold() < 0.5 * job.completion_time()) ++consistent;
  }
  EXPECT_GE(consistent, 18u);  // far tail: p90 < max/2 almost always
}

TEST(Generator, NearRegimeThresholdAboveHalfMax) {
  auto c = small_config();
  c.regime = TailRegime::kNear;
  GoogleLikeGenerator gen(c);
  std::size_t consistent = 0;
  const auto jobs = gen.generate(20);
  for (const auto& job : jobs) {
    if (job.straggler_threshold() > 0.5 * job.completion_time()) ++consistent;
  }
  EXPECT_GE(consistent, 18u);
}

TEST(Generator, InitialCheckpointRespectsWarmup) {
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  // At the first checkpoint at least the initial 4% of tasks have finished.
  const auto warm = static_cast<std::size_t>(
      0.04 * static_cast<double>(job.task_count()));
  EXPECT_GE(job.checkpoints.front().finished.size(), warm);
}

TEST(Generator, FeaturesFreezeAfterCompletion) {
  // A task that finished long ago keeps (statistically) stable features:
  // its cause-signature ramp stops at its completion progress. Verify the
  // expected component is identical across late checkpoints by comparing a
  // fast task's feature drift between consecutive snapshots against a
  // still-running straggler's.
  GoogleLikeGenerator gen(small_config());
  const auto job = gen.generate(1)[0];
  const auto& first = job.checkpoints.front();
  ASSERT_FALSE(first.finished.empty());
  // Smoke property: snapshots exist and are finite everywhere.
  for (const auto& cp : job.checkpoints) {
    for (double v : cp.features.flat()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Job, StragglerThresholdMatchesPercentile) {
  Job job;
  job.latencies = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(job.straggler_threshold(90.0),
                   percentile(job.latencies, 90.0));
}

TEST(Job, NormalizedLatenciesInUnitInterval) {
  Job job;
  job.latencies = {2.0, 4.0, 8.0};
  const auto norm = job.normalized_latencies();
  EXPECT_DOUBLE_EQ(norm[2], 1.0);
  EXPECT_DOUBLE_EQ(norm[0], 0.25);
}

TEST(Job, EmptyJobThrows) {
  Job job;
  EXPECT_THROW(job.straggler_threshold(), std::invalid_argument);
  EXPECT_THROW(job.completion_time(), std::invalid_argument);
}

TEST(Generator, AlibabaJobsUseFourFeatures) {
  auto c = AlibabaLikeGenerator::alibaba_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  AlibabaLikeGenerator gen(c);
  const auto job = gen.generate(1)[0];
  EXPECT_EQ(job.feature_count, 4u);
  EXPECT_EQ(job.checkpoints[0].features.cols(), 4u);
}

TEST(Generator, RejectsBadConfig) {
  auto c = small_config();
  c.min_tasks = 5;  // below the 10-task floor
  EXPECT_THROW(GoogleLikeGenerator{c}, std::invalid_argument);
  auto c2 = small_config();
  c2.min_tasks = 200;
  c2.max_tasks = 100;
  EXPECT_THROW(GoogleLikeGenerator{c2}, std::invalid_argument);
}

}  // namespace
}  // namespace nurd::trace
