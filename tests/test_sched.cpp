#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "sched/cluster.h"
#include "test_jobs.h"
#include "trace/generator.h"

namespace nurd::sched {
namespace {

using trace::make_test_job;

// One dominant straggler (latency 100) and nine fast tasks.
trace::Job toy_job() {
  return make_test_job("toy", {10, 11, 12, 13, 14, 15, 16, 17, 18, 100},
                       {12.5, 20.0, 50.0, 99.0});
}

TEST(ScheduleUnlimited, NoFlagsNoChange) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  Rng rng(1);
  const auto r = schedule_unlimited(job, flags, rng);
  EXPECT_DOUBLE_EQ(r.original_jct, 100.0);
  EXPECT_DOUBLE_EQ(r.mitigated_jct, 100.0);
  EXPECT_EQ(r.relaunched, 0u);
  EXPECT_DOUBLE_EQ(r.reduction_pct(), 0.0);
}

TEST(ScheduleUnlimited, EarlyFlagOnStragglerReducesJct) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[9] = 0;  // flag the straggler at τ = 12.5
  // A single resample can unluckily redraw the straggler latency (10%
  // chance), so check the average over seeds: expected new completion is
  // 12.5 + E[latency] ≈ 12.5 + 22.6, well below 100.
  double total_reduction = 0.0;
  std::size_t relaunched = 0;
  const int trials = 50;
  for (int seed = 0; seed < trials; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto r = schedule_unlimited(job, flags, rng);
    total_reduction += r.reduction_pct();
    relaunched += r.relaunched;
  }
  EXPECT_EQ(relaunched, static_cast<std::size_t>(trials));
  EXPECT_GT(total_reduction / trials, 30.0);
}

TEST(ScheduleUnlimited, LateFlagHelpsLess) {
  const auto job = toy_job();
  std::vector<std::size_t> early(job.task_count(), eval::kNeverFlagged);
  std::vector<std::size_t> late(job.task_count(), eval::kNeverFlagged);
  early[9] = 0;  // τ = 12.5
  late[9] = 3;   // τ = 99 — right before the straggler finishes anyway
  double early_total = 0.0, late_total = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng ra(seed), rb(seed);
    early_total += schedule_unlimited(job, early, ra).mitigated_jct;
    late_total += schedule_unlimited(job, late, rb).mitigated_jct;
  }
  EXPECT_LT(early_total, late_total);
}

TEST(ScheduleUnlimited, FalsePositiveCanHurt) {
  // Flagging a fast task wastes a relaunch: its new completion is flag time
  // + resample, which can exceed its natural latency. With the straggler
  // untreated the JCT cannot improve.
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[0] = 0;
  Rng rng(3);
  const auto r = schedule_unlimited(job, flags, rng);
  EXPECT_DOUBLE_EQ(r.original_jct, 100.0);
  EXPECT_GE(r.mitigated_jct, 100.0);  // straggler still finishes at 100
}

TEST(ScheduleUnlimited, RejectsLengthMismatch) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(3, eval::kNeverFlagged);
  Rng rng(1);
  EXPECT_THROW(schedule_unlimited(job, flags, rng), std::invalid_argument);
}

TEST(ScheduleLimited, ZeroSparesStillFreesFinishedMachines) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[9] = 1;  // flagged at τ = 20 with zero initial spares
  Rng rng(4);
  const auto r = schedule_limited(job, flags, 0, rng);
  // Machines freed by the nine fast tasks (all done by τ = 20 except some)
  // let the straggler relaunch at a later checkpoint.
  EXPECT_EQ(r.relaunched, 1u);
}

TEST(ScheduleLimited, PlentyOfSparesMatchesImmediateRelaunch) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[9] = 0;
  Rng ra(5), rb(5);
  const auto unlimited = schedule_unlimited(job, flags, ra);
  const auto limited = schedule_limited(job, flags, 100, rb);
  EXPECT_DOUBLE_EQ(unlimited.mitigated_jct, limited.mitigated_jct);
}

TEST(ScheduleLimited, QueueDrainsFifo) {
  // Two flagged tasks, one spare machine: the first flagged gets it; the
  // second waits for a freed machine at a later checkpoint.
  trace::Job job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[8] = 0;  // still running at τ=12.5 (latency 18)
  flags[9] = 0;  // straggler
  Rng rng(6);
  const auto r = schedule_limited(job, flags, 1, rng);
  EXPECT_EQ(r.relaunched + r.waited, 2u + r.waited);  // both relaunch or wait
  EXPECT_GE(r.waited, 0u);
}

TEST(ScheduleLimited, FlaggedTaskThatFinishesLeavesQueue) {
  trace::Job job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  // Task 0 (latency 10) is already finished by τ = 12.5; a flag on it must
  // not consume a machine.
  flags[0] = 0;
  Rng rng(7);
  const auto r = schedule_limited(job, flags, 5, rng);
  EXPECT_EQ(r.relaunched, 0u);
  EXPECT_DOUBLE_EQ(r.mitigated_jct, r.original_jct);
}

TEST(ScheduleUnlimited, FlagAtOrAfterCompletionIsNoop) {
  // Task 0 (latency 10) has long finished by checkpoint 3 (τ = 99). The
  // pre-fix code unconditionally relaunched it, fabricating a completion of
  // 99 + resample ≥ 109 — negative "mitigation" out of thin air.
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[0] = 3;
  Rng rng(9);
  const auto r = schedule_unlimited(job, flags, rng);
  EXPECT_EQ(r.relaunched, 0u);
  EXPECT_EQ(r.noop_flags, 1u);
  EXPECT_DOUBLE_EQ(r.mitigated_jct, r.original_jct);
  EXPECT_DOUBLE_EQ(r.reduction_pct(), 0.0);
}

TEST(ScheduleUnlimited, NoopFlagConsumesNoRandomness) {
  // A no-op flag must leave the RNG stream untouched so that mixed flag
  // vectors stay reproducible: the straggler's resample below is the first
  // draw either way.
  const auto job = toy_job();
  std::vector<std::size_t> noop_then_real(job.task_count(),
                                          eval::kNeverFlagged);
  noop_then_real[0] = 3;  // finished task: no-op
  noop_then_real[9] = 0;  // straggler: real relaunch
  std::vector<std::size_t> real_only(job.task_count(), eval::kNeverFlagged);
  real_only[9] = 0;
  Rng a(13), b(13);
  const auto mixed = schedule_unlimited(job, noop_then_real, a);
  const auto clean = schedule_unlimited(job, real_only, b);
  EXPECT_DOUBLE_EQ(mixed.mitigated_jct, clean.mitigated_jct);
  EXPECT_EQ(mixed.relaunched, 1u);
  EXPECT_EQ(mixed.noop_flags, 1u);
}

TEST(ScheduleLimited, PostHorizonReleasesDrainQueue) {
  // Task 0 (latency 60) releases its machine after the final checkpoint
  // (τ = 50). Pre-fix, the checkpoint loop ended first, so the flagged
  // straggler waited forever: never relaunched, never counted in `waited`.
  const auto job =
      make_test_job("horizon", {60.0, 100.0}, {12.5, 20.0, 50.0});
  std::vector<std::size_t> flags{eval::kNeverFlagged, 1};  // flag @ τ = 20
  Rng rng(2);
  const auto r = schedule_limited(job, flags, 0, rng);
  EXPECT_EQ(r.relaunched, 1u);
  EXPECT_EQ(r.waited, 1u);
  // The relaunch fires at the actual release instant t = 60, not at a
  // checkpoint: completion = 60 + resample ∈ {120, 160}.
  EXPECT_GE(r.mitigated_jct, 120.0);
}

TEST(ScheduleLimited, DrainReleasesEachMachineOnce) {
  // All scheduling activity lands past the two-checkpoint horizon, so the
  // drain must reproduce the event-driven core exactly. The trap: when a
  // relaunched copy's completion collides with the task's original latency
  // (here task 1 relaunches at t=30 and a resample of 30 completes it at
  // exactly its natural 60), the task's stranded heap entry matches the
  // timestamp test too — pre-fix the drain released TWO machines at t=60
  // and relaunched both stragglers on one real machine, beating the event
  // simulator with phantom capacity.
  const auto job = make_test_job("collide", {30.0, 60.0, 1000.0, 1000.0},
                                 {10.0, 25.0});
  std::vector<std::size_t> flags{eval::kNeverFlagged, 0, 0, 0};
  const auto run = [&] {
    eval::JobRunResult r;
    r.flagged_at = flags;
    return r;
  }();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng a(seed), b(seed);
    ClusterConfig config;  // machines = 0
    const auto evt = simulate_cluster({&job, 1}, {&run, 1}, config, a);
    const auto lim = schedule_limited(job, flags, 0, b);
    EXPECT_DOUBLE_EQ(lim.mitigated_jct, evt.jobs[0].mitigated_jct)
        << "seed " << seed;
    EXPECT_EQ(lim.relaunched, evt.jobs[0].relaunched) << "seed " << seed;
  }
}

TEST(ScheduleLimited, NoopFlagCountedNotQueued) {
  const auto job = toy_job();
  std::vector<std::size_t> flags(job.task_count(), eval::kNeverFlagged);
  flags[0] = 2;  // task 0 (latency 10) finished long before τ = 50
  Rng rng(8);
  const auto r = schedule_limited(job, flags, 5, rng);
  EXPECT_EQ(r.relaunched, 0u);
  EXPECT_EQ(r.noop_flags, 1u);
  EXPECT_DOUBLE_EQ(r.mitigated_jct, r.original_jct);
}

TEST(ScheduleLimited, MoreMachinesNeverWorseOnAverage) {
  auto c = trace::GoogleLikeGenerator::google_defaults();
  c.min_tasks = 100;
  c.max_tasks = 120;
  trace::GoogleLikeGenerator gen(c);
  const auto jobs = gen.generate(4);
  // Flag all true stragglers at their first running checkpoint.
  std::vector<eval::JobRunResult> runs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto labels = jobs[j].straggler_labels();
    runs[j].flagged_at.assign(jobs[j].task_count(), eval::kNeverFlagged);
    for (std::size_t i = 0; i < jobs[j].task_count(); ++i) {
      if (labels[i] == 1) runs[j].flagged_at[i] = 1;
    }
  }
  const double few = mean_reduction_limited(jobs, runs, 2, 17);
  const double many = mean_reduction_limited(jobs, runs, 200, 17);
  EXPECT_GE(many, few - 1.0);  // allow resampling noise of ~1 point
}

TEST(MeanReduction, RejectsMismatchedInputs) {
  const auto job = toy_job();
  std::vector<trace::Job> jobs{job};
  std::vector<eval::JobRunResult> runs;
  EXPECT_THROW(mean_reduction_unlimited(jobs, runs, 1),
               std::invalid_argument);
}

TEST(ScheduleResult, ReductionPctSign) {
  ScheduleResult r;
  r.original_jct = 100.0;
  r.mitigated_jct = 80.0;
  EXPECT_DOUBLE_EQ(r.reduction_pct(), 20.0);
  r.mitigated_jct = 120.0;
  EXPECT_DOUBLE_EQ(r.reduction_pct(), -20.0);
}

}  // namespace
}  // namespace nurd::sched
