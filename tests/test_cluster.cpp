#include "sched/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "sched/scheduler.h"
#include "test_jobs.h"
#include "trace/generator.h"

namespace nurd::sched {
namespace {

using trace::make_test_job;

eval::JobRunResult run_with_flags(std::vector<std::size_t> flagged_at) {
  eval::JobRunResult run;
  run.flagged_at = std::move(flagged_at);
  return run;
}

std::vector<trace::Job> generated_jobs(std::size_t count,
                                       std::uint64_t seed = 0) {
  auto config = trace::GoogleLikeGenerator::google_defaults();
  config.min_tasks = 100;
  config.max_tasks = 140;
  config.seed += seed;
  trace::GoogleLikeGenerator gen(config);
  return gen.generate(count);
}

// Flags every true straggler still running at checkpoint `cp`.
std::vector<eval::JobRunResult> straggler_flags(
    std::span<const trace::Job> jobs, std::size_t cp = 1) {
  std::vector<eval::JobRunResult> runs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto labels = jobs[j].straggler_labels();
    const double tau = jobs[j].trace.tau_run(cp);
    runs[j].flagged_at.assign(jobs[j].task_count(), eval::kNeverFlagged);
    for (std::size_t i = 0; i < jobs[j].task_count(); ++i) {
      if (labels[i] == 1 && tau < jobs[j].latency(i)) {
        runs[j].flagged_at[i] = cp;
      }
    }
  }
  return runs;
}

TEST(ClusterSim, SingleJobUnlimitedMatchesAlgorithm2Bitwise) {
  const auto jobs = generated_jobs(1);
  const auto runs = straggler_flags(jobs);
  Rng a(7), b(7);
  const auto alg2 = schedule_unlimited(jobs[0], runs[0].flagged_at, a);

  ClusterConfig config;
  config.machines = kUnlimitedMachines;
  const auto cluster = simulate_cluster(jobs, runs, config, b);

  ASSERT_EQ(cluster.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(cluster.jobs[0].original_jct, alg2.original_jct);
  EXPECT_DOUBLE_EQ(cluster.jobs[0].mitigated_jct, alg2.mitigated_jct);
  EXPECT_EQ(cluster.jobs[0].relaunched, alg2.relaunched);
  EXPECT_EQ(cluster.waited, 0u);
  EXPECT_EQ(cluster.peak_waiting, 0u);
}

TEST(ClusterSim, BatchUnlimitedMatchesMeanReductionUnlimitedBitwise) {
  const auto jobs = generated_jobs(4);
  const auto runs = straggler_flags(jobs);
  const std::uint64_t seed = 99;

  ClusterConfig config;
  config.machines = kUnlimitedMachines;
  Rng rng(seed);
  const auto cluster = simulate_cluster(jobs, runs, config, rng);

  // Algorithm 2 job-by-job on one sequential stream consumes the RNG in the
  // same canonical order as the cluster's setup pass.
  EXPECT_DOUBLE_EQ(cluster.mean_reduction_pct(),
                   mean_reduction_unlimited(jobs, runs, seed));

  Rng sequential(seed);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto alg2 = schedule_unlimited(jobs[j], runs[j].flagged_at,
                                         sequential);
    EXPECT_DOUBLE_EQ(cluster.jobs[j].mitigated_jct, alg2.mitigated_jct);
    EXPECT_EQ(cluster.jobs[j].relaunched, alg2.relaunched);
  }
}

// Single extreme straggler, zero spares: the first natural release serves it
// at the release instant in the event core, but only at a checkpoint (or the
// post-horizon drain) in Algorithm 3. With one flag both simulations consume
// exactly one resample draw, so JCTs are comparable per seed.
TEST(ClusterSim, EventDrivenDominatesCheckpointQuantizedSingleFlag) {
  const auto job =
      make_test_job("dom1", {30.0, 100.0}, {12.5, 20.0, 50.0});
  const auto run = run_with_flags({eval::kNeverFlagged, 1});  // flag @ τ=20
  bool strictly_better = false;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng a(seed), b(seed);
    ClusterConfig config;  // machines = 0
    const auto evt = simulate_cluster({&job, 1}, {&run, 1}, config, a);
    const auto lim = schedule_limited(job, run.flagged_at, 0, b);
    EXPECT_EQ(evt.jobs[0].relaunched, 1u);
    EXPECT_EQ(lim.relaunched, 1u);
    EXPECT_LE(evt.jobs[0].mitigated_jct, lim.mitigated_jct);
    if (evt.jobs[0].mitigated_jct < lim.mitigated_jct) strictly_better = true;
  }
  // The release fires at t=30, mid-gap of the (20, 50] checkpoint window.
  EXPECT_TRUE(strictly_better);
}

// Three extreme stragglers flagged in task order behind seven fast tasks:
// both simulations relaunch all three with per-task identical draws (FIFO
// order equals task order), so the event-driven JCT dominates per seed.
TEST(ClusterSim, EventDrivenDominatesCheckpointQuantizedMultiFlag) {
  const auto job = make_test_job(
      "dom3", {20, 25, 30, 35, 40, 45, 50, 1000, 1000, 1000},
      {10.0, 60.0, 90.0});
  std::vector<std::size_t> flags(10, eval::kNeverFlagged);
  flags[7] = flags[8] = flags[9] = 0;  // flagged at τ = 10
  const auto run = run_with_flags(std::move(flags));
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng a(seed), b(seed);
    ClusterConfig config;  // machines = 0
    const auto evt = simulate_cluster({&job, 1}, {&run, 1}, config, a);
    const auto lim = schedule_limited(job, run.flagged_at, 0, b);
    EXPECT_EQ(evt.jobs[0].relaunched, 3u);
    EXPECT_EQ(lim.relaunched, 3u);
    EXPECT_LT(evt.jobs[0].mitigated_jct, lim.mitigated_jct);
  }
}

TEST(ClusterSim, PoolConservationInvariantHoldsAtEveryEvent) {
  const auto jobs = generated_jobs(6);
  const auto runs = straggler_flags(jobs);
  const std::size_t machines = 2;

  std::size_t violations = 0;
  std::size_t observed = 0;
  ClusterConfig config;
  config.machines = machines;
  config.arrivals = poisson_arrivals(0.05);
  config.observer = [&](const Event&, const PoolState& pool) {
    ++observed;
    if (pool.unlimited) ++violations;
    if (pool.free + pool.in_use != machines + pool.released) ++violations;
  };
  Rng rng(11);
  const auto result = simulate_cluster(jobs, runs, config, rng);
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(observed, result.events);
  EXPECT_GT(result.relaunched, 0u);
}

TEST(ClusterSim, FifoFairnessUnderContention) {
  const std::vector<double> taus{10.0, 20.0, 50.0};
  const auto job_a = make_test_job("A", {30.0, 200.0}, taus);
  const auto job_b = make_test_job("B", {40.0, 200.0}, taus);
  const std::vector<trace::Job> jobs{job_a, job_b};

  // A flags at τ=10, B at τ=20: the first released machine (A's fast task at
  // t=30) must serve A's straggler; B's waits for the release at t=40.
  std::vector<eval::JobRunResult> runs;
  runs.push_back(run_with_flags({eval::kNeverFlagged, 0}));
  runs.push_back(run_with_flags({eval::kNeverFlagged, 1}));

  std::vector<std::pair<std::uint32_t, double>> relaunches;
  ClusterConfig config;  // machines = 0
  config.observer = [&](const Event& e, const PoolState&) {
    if (e.kind == EventKind::kRelaunch) relaunches.emplace_back(e.job, e.time);
  };
  Rng rng(3);
  const auto result = simulate_cluster(jobs, runs, config, rng);
  ASSERT_EQ(relaunches.size(), 2u);
  EXPECT_EQ(relaunches[0].first, 0u);
  EXPECT_DOUBLE_EQ(relaunches[0].second, 30.0);
  EXPECT_EQ(relaunches[1].first, 1u);
  EXPECT_DOUBLE_EQ(relaunches[1].second, 40.0);
  EXPECT_EQ(result.waited, 2u);
  EXPECT_EQ(result.peak_waiting, 2u);

  // Swap the flag order: B flags first (τ=10) and takes the t=30 release
  // even though it belongs to job A — cluster-wide FIFO, not per-job.
  runs.clear();
  runs.push_back(run_with_flags({eval::kNeverFlagged, 1}));
  runs.push_back(run_with_flags({eval::kNeverFlagged, 0}));
  relaunches.clear();
  Rng rng2(3);
  simulate_cluster(jobs, runs, config, rng2);
  ASSERT_EQ(relaunches.size(), 2u);
  EXPECT_EQ(relaunches[0].first, 1u);
  EXPECT_DOUBLE_EQ(relaunches[0].second, 30.0);
  EXPECT_EQ(relaunches[1].first, 0u);
  EXPECT_DOUBLE_EQ(relaunches[1].second, 40.0);
}

TEST(ClusterSim, ReclaimedReleasesLeaveOnlyTheDedicatedPool) {
  // Nine fast tasks plus three extreme stragglers flagged together, one
  // dedicated spare, reclaim_releases on: natural completions do NOT refill
  // the pool, so the single machine recycles through the queue — the first
  // grant is instant, every later relaunch waited for a copy return.
  std::vector<double> latencies(9, 100.0);
  latencies.insert(latencies.end(), 3, 10000.0);
  const auto job = make_test_job("reclaim", std::move(latencies),
                            {10.0, 60.0, 90.0});
  std::vector<std::size_t> flags(12, eval::kNeverFlagged);
  flags[9] = flags[10] = flags[11] = 0;
  const auto run = run_with_flags(std::move(flags));

  const std::size_t machines = 1;
  std::size_t violations = 0;
  ClusterConfig config;
  config.machines = machines;
  config.reclaim_releases = true;
  config.observer = [&](const Event&, const PoolState& pool) {
    // Donations never happen in reclaim mode, so the invariant pins the
    // pool to its initial size.
    if (pool.released != 0) ++violations;
    if (pool.free + pool.in_use != machines) ++violations;
  };
  Rng rng(4);
  const auto result = simulate_cluster({&job, 1}, {&run, 1}, config, rng);
  EXPECT_EQ(violations, 0u);
  EXPECT_GE(result.relaunched, 1u);
  EXPECT_EQ(result.waited, result.relaunched - 1);
}

TEST(ClusterSim, NoopFlagsAreCountedNotRelaunched) {
  const auto job = make_test_job("noop", {10.0, 100.0}, {12.5, 50.0, 99.0});
  // Task 0 finished at t=10, before its flag's checkpoint time τ=50.
  const auto run = run_with_flags({1, eval::kNeverFlagged});
  ClusterConfig config;
  config.machines = kUnlimitedMachines;
  Rng rng(5);
  const auto result = simulate_cluster({&job, 1}, {&run, 1}, config, rng);
  EXPECT_EQ(result.noop_flags, 1u);
  EXPECT_EQ(result.relaunched, 0u);
  EXPECT_DOUBLE_EQ(result.jobs[0].mitigated_jct,
                   result.jobs[0].original_jct);
}

TEST(ClusterSim, UnlimitedPoolNeverWaits) {
  const auto jobs = generated_jobs(3);
  const auto runs = straggler_flags(jobs);
  ClusterConfig config;
  config.machines = kUnlimitedMachines;
  config.arrivals = poisson_arrivals(0.1);
  Rng rng(21);
  const auto result = simulate_cluster(jobs, runs, config, rng);
  EXPECT_EQ(result.waited, 0u);
  EXPECT_EQ(result.peak_waiting, 0u);
  EXPECT_GT(result.relaunched, 0u);
}

TEST(ClusterSim, ReplicationsBitIdenticalAcrossThreadCounts) {
  const auto jobs = generated_jobs(4);
  const auto runs = straggler_flags(jobs);
  ClusterConfig config;
  config.machines = 3;
  config.arrivals = poisson_arrivals(0.02);

  const auto serial =
      simulate_cluster_replicated(jobs, runs, config, 6, 42, /*threads=*/1);
  const auto parallel =
      simulate_cluster_replicated(jobs, runs, config, 6, 42, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial[r].makespan, parallel[r].makespan);
    EXPECT_EQ(serial[r].relaunched, parallel[r].relaunched);
    EXPECT_EQ(serial[r].waited, parallel[r].waited);
    ASSERT_EQ(serial[r].jobs.size(), parallel[r].jobs.size());
    for (std::size_t j = 0; j < serial[r].jobs.size(); ++j) {
      EXPECT_DOUBLE_EQ(serial[r].jobs[j].mitigated_jct,
                       parallel[r].jobs[j].mitigated_jct);
    }
  }
  // Replications differ from each other (independent forked streams).
  EXPECT_NE(serial[0].makespan, serial[1].makespan);
}

TEST(ClusterSim, ArrivalProcesses) {
  Rng rng(1);
  const auto batch = batch_arrivals()(4, rng);
  EXPECT_EQ(batch, std::vector<double>(4, 0.0));

  const auto poisson = poisson_arrivals(0.5)(6, rng);
  ASSERT_EQ(poisson.size(), 6u);
  double prev = 0.0;
  for (double t : poisson) {
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_THROW(poisson_arrivals(0.0), std::invalid_argument);
}

TEST(ClusterSim, RejectsMismatchedInputs) {
  const auto jobs = generated_jobs(1);
  std::vector<eval::JobRunResult> runs;
  Rng rng(1);
  ClusterConfig config;
  EXPECT_THROW(simulate_cluster(jobs, runs, config, rng),
               std::invalid_argument);
  runs.push_back(run_with_flags({0, 1}));  // wrong length
  EXPECT_THROW(simulate_cluster(jobs, runs, config, rng),
               std::invalid_argument);
}

// Long scenario sweeps, registered under the `slow` ctest label (enable with
// -DNURD_SLOW_TESTS=ON); excluded from the default test command.
TEST(ClusterSweepSlow, MachineSweepIsConservedAndHelpsOnAverage) {
  const auto jobs = generated_jobs(12, /*seed=*/5);
  const auto runs = straggler_flags(jobs);
  const std::vector<std::size_t> machine_counts{0, 2, 4, 8, 16, 32};

  std::vector<double> reductions;
  for (const std::size_t machines : machine_counts) {
    std::mutex mu;
    std::size_t violations = 0;
    ClusterConfig config;
    config.machines = machines;
    config.arrivals = poisson_arrivals(0.03);
    config.observer = [&](const Event&, const PoolState& pool) {
      if (pool.free + pool.in_use != machines + pool.released) {
        const std::lock_guard<std::mutex> lock(mu);
        ++violations;
      }
    };
    const auto reps =
        simulate_cluster_replicated(jobs, runs, config, 16, 1234);
    EXPECT_EQ(violations, 0u);
    reductions.push_back(summarize_replications(reps).mean_reduction_pct);
  }
  // More shared spares never hurt much on average (resampling noise only).
  EXPECT_GE(reductions.back(), reductions.front() - 1.0);

  // Slower arrivals stretch the makespan: offered load spreads out in time.
  ClusterConfig config;
  config.machines = 8;
  config.arrivals = poisson_arrivals(0.002);
  const auto sparse = summarize_replications(
      simulate_cluster_replicated(jobs, runs, config, 16, 77));
  config.arrivals = poisson_arrivals(0.2);
  const auto dense = summarize_replications(
      simulate_cluster_replicated(jobs, runs, config, 16, 77));
  EXPECT_GT(sparse.mean_makespan, dense.mean_makespan);
}

}  // namespace
}  // namespace nurd::sched
