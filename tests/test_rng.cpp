#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace nurd {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3}));
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(19);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithReplacementInRange) {
  Rng rng(29);
  const auto s = rng.sample_with_replacement(10, 100);
  ASSERT_EQ(s.size(), 100u);
  for (auto i : s) EXPECT_LT(i, 10u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(31);
  b.fork();
  bool any_diff = false;
  Rng fresh(31);
  for (int i = 0; i < 10; ++i) {
    if (child.uniform() != fresh.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, LognormalPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace nurd
