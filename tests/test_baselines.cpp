#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/registry.h"
#include "eval/harness.h"
#include "trace/generator.h"

namespace nurd::core {
namespace {

const trace::Job& shared_job() {
  static const trace::Job job = [] {
    auto c = trace::GoogleLikeGenerator::google_defaults();
    c.min_tasks = 100;
    c.max_tasks = 100;
    trace::GoogleLikeGenerator gen(c);
    return gen.generate(1)[0];
  }();
  return job;
}

class RegistryMethodTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryMethodTest, RunsCleanlyOverAJob) {
  const auto& job = shared_job();
  const auto method = predictor_by_name(GetParam());
  auto predictor = method.make();
  ASSERT_NE(predictor, nullptr);
  EXPECT_EQ(predictor->name(), GetParam());
  const auto run = eval::run_job(job, *predictor);
  // Confusion counts partition the job's tasks.
  EXPECT_EQ(run.final.tp + run.final.fp + run.final.fn + run.final.tn,
            job.task_count());
  EXPECT_EQ(run.flagged_at.size(), job.task_count());
  // Flags are consistent with confusion totals.
  const auto flagged = static_cast<std::size_t>(std::count_if(
      run.flagged_at.begin(), run.flagged_at.end(),
      [](std::size_t t) { return t != eval::kNeverFlagged; }));
  EXPECT_EQ(flagged, run.final.tp + run.final.fp);
}

TEST_P(RegistryMethodTest, FreshInstancesAreIndependent) {
  const auto& job = shared_job();
  const auto method = predictor_by_name(GetParam());
  auto a = method.make();
  auto b = method.make();
  const auto ra = eval::run_job(job, *a);
  const auto rb = eval::run_job(job, *b);
  EXPECT_EQ(ra.final.tp, rb.final.tp) << "non-deterministic method";
  EXPECT_EQ(ra.final.fp, rb.final.fp);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RegistryMethodTest,
    ::testing::Values("GBTR", "ABOD", "CBLOF", "HBOS", "IFOREST", "KNN",
                      "LOF", "MCD", "OCSVM", "PCA", "SOS", "LSCP", "COF",
                      "SOD", "XGBOD", "PU-EN", "PU-BG", "Tobit", "Grabit",
                      "CoxPH", "Wrangler", "NURD-NC", "NURD"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Registry, HasAll23Methods) {
  const auto all = all_predictors();
  EXPECT_EQ(all.size(), 23u);
  std::set<std::string> names;
  for (const auto& m : all) names.insert(m.name);
  EXPECT_EQ(names.size(), 23u);  // unique
  EXPECT_TRUE(names.contains("NURD"));
  EXPECT_TRUE(names.contains("Wrangler"));
}

TEST(Registry, TableOrderMatchesPaper) {
  const auto all = all_predictors();
  EXPECT_EQ(all.front().name, "GBTR");
  EXPECT_EQ(all.back().name, "NURD");
  EXPECT_EQ(all[all.size() - 2].name, "NURD-NC");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(predictor_by_name("NOPE"), std::invalid_argument);
}

TEST(Registry, TunedConfigsDiffer) {
  EXPECT_NE(google_tuned().nurd_alpha, alibaba_tuned().nurd_alpha);
}

TEST(Wrangler, UsesPrivilegedLabels) {
  // Wrangler should achieve clearly better-than-chance TPR because it sees
  // true labels for 2/3 of the job.
  const auto& job = shared_job();
  auto predictor = predictor_by_name("Wrangler").make();
  const auto run = eval::run_job(job, *predictor);
  EXPECT_GT(run.final.tpr(), 0.5);
}

TEST(Gbtr, ConservativeWithoutPositives) {
  // The supervised baseline trained only on finished tasks should have a
  // very low false-positive rate (its predictions are biased low).
  const auto& job = shared_job();
  auto predictor = predictor_by_name("GBTR").make();
  const auto run = eval::run_job(job, *predictor);
  EXPECT_LT(run.final.fpr(), 0.10);
}

}  // namespace
}  // namespace nurd::core
