// Serving-layer walkthrough: many jobs stream checkpoints concurrently
// through one StreamMonitor, flags are delivered to a sink as they happen,
// and a live cluster simulation consumes them for relaunch decisions.
//
//   $ ./stream_service
//   $ ./stream_service --method=NURD --jobs=8 --threads=4
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/registry.h"
#include "eval/harness.h"
#include "serve/cluster_sink.h"
#include "serve/stream_monitor.h"
#include "trace/generator.h"

namespace {

std::string flag_value(int argc, char** argv, const std::string& name,
                       std::string fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const std::string method = flag_value(argc, argv, "method", "GBTR");
  const auto n_jobs = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "jobs", "6").c_str(), nullptr, 10));
  const auto threads = static_cast<std::size_t>(std::strtoul(
      flag_value(argc, argv, "threads", "4").c_str(), nullptr, 10));

  auto gen_config = trace::GoogleLikeGenerator::google_defaults();
  gen_config.min_tasks = 120;
  gen_config.max_tasks = 200;
  trace::GoogleLikeGenerator gen(gen_config);
  const auto jobs = gen.generate(n_jobs);

  // 1. A StreamMonitor serves every job's checkpoint stream over a shared
  //    pool; jobs arrive over continuous time (Poisson), and each job's
  //    managed session maintains its models incrementally between
  //    checkpoints (RefitPolicy::kIncremental by default).
  serve::StreamMonitorConfig config;
  config.threads = threads;
  config.arrivals = sched::poisson_arrivals(0.01);
  config.arrival_seed = 7;
  serve::StreamMonitor monitor(jobs, method, core::google_tuned(), config);

  // 2. Flags stream into a sink the moment a predictor emits them. Here:
  //    count them, and feed every one into a LIVE cluster simulation that
  //    relaunches flagged tasks against a shared 8-machine spare pool.
  std::atomic<std::size_t> streamed{0};
  sched::ClusterConfig cluster;
  cluster.machines = 8;
  cluster.reclaim_releases = true;
  serve::LiveClusterFeed feed(jobs, cluster, monitor, /*seed=*/99);
  auto cluster_sink = feed.sink();
  monitor.set_sink([&](const serve::FlagDecision& flag) {
    streamed.fetch_add(1, std::memory_order_relaxed);
    cluster_sink(flag);
  });

  const auto served = monitor.run();
  const auto live = feed.finish();

  std::printf("served %zu jobs (%zu checkpoints) over %zu workers: "
              "%.0f ckpt/s, p50 %.2f ms, p99 %.2f ms, peak backlog %zu\n",
              served.stats.jobs, served.stats.checkpoints,
              served.stats.lanes, served.stats.checkpoints_per_sec,
              served.stats.p50_latency_ms, served.stats.p99_latency_ms,
              served.stats.peak_backlog);
  std::printf("flags streamed to the sink: %zu\n", streamed.load());
  std::printf("live cluster: %zu relaunches (%zu waited for a machine), "
              "mean JCT reduction %.1f%%\n",
              live.relaunched, live.waited, live.mean_reduction_pct());

  // 3. The determinism contract: the served per-job records are
  //    bit-identical to the batch harness over the same jobs.
  const auto tuned = [] {
    auto c = core::google_tuned();
    c.refit = core::RefitPolicy::kIncremental;
    return c;
  }();
  const auto reference =
      eval::run_method(core::predictor_by_name(method, tuned), jobs);
  bool identical = true;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    identical = identical &&
                served.runs[j].flagged_at == reference[j].flagged_at;
  }
  std::printf("parity with eval::run_method at %zu workers: %s\n", threads,
              identical ? "bit-identical" : "DIVERGED (bug!)");
  return identical ? 0 : 1;
}
