// Ingest a foreign cluster-trace CSV into a TraceStore and run a predictor
// over it — the smallest end-to-end use of the trace-adapter layer.
//
//   $ ./ingest_trace examples/data/sample_google_tasks.csv google
//   $ ./ingest_trace examples/data/sample_alibaba_tasks.csv alibaba
//
// Any task-event table works once a ColumnMap describes it; the two bundled
// maps cover Google task_events-style and Alibaba batch_instance-style
// schemas. Malformed rows are dropped and counted, never fatal.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "scenario/trace_adapter.h"

int main(int argc, char** argv) {
  using namespace nurd;

  if (argc < 3) {
    std::cerr << "usage: " << argv[0] << " <csv path> google|alibaba"
              << " [feature_count=2]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string schema = argv[2];
  const std::size_t features =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;

  scenario::ColumnMap map;
  if (schema == "google") {
    map = scenario::google_task_events_columns(features);
  } else if (schema == "alibaba") {
    map = scenario::alibaba_instance_columns(features);
  } else {
    std::cerr << "unknown schema '" << schema << "' (google|alibaba)\n";
    return 2;
  }

  const auto in = scenario::load_foreign_csv(path, map);
  if (!in.ok) {
    std::cerr << "ingestion failed: " << in.error << "\n";
    return 1;
  }

  const auto& stats = in.stats;
  std::cout << "ingested " << path << " under map '" << map.name << "'\n"
            << "  rows read      " << stats.rows_read << "\n"
            << "  rows ingested  " << stats.rows_ingested << "\n"
            << "  rows dropped   " << stats.dropped() << " (bad cells "
            << stats.bad_cell_count << ", unparsable "
            << stats.unparsable_number << ", non-finite " << stats.non_finite
            << ", bad time " << stats.bad_time << ", unknown event "
            << stats.unknown_event << ", duplicate " << stats.duplicate_row
            << ", post-freeze " << stats.post_freeze_rows << ", orphan "
            << stats.orphan_rows << ")\n"
            << "  tasks dropped  " << stats.tasks_dropped
            << ", grid cells carried forward " << stats.carried_forward
            << "\n\n";

  const auto& job = in.job;
  std::cout << "job '" << job.id << "': " << job.task_count() << " tasks, "
            << job.checkpoint_count() << " checkpoints, "
            << job.feature_count() << " features, completion "
            << TextTable::num(job.completion_time(), 1) << "s\n";

  TextTable table({"task", "original id", "latency"});
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    table.add_row({std::to_string(i),
                   std::to_string(in.original_task_ids[i]),
                   TextTable::num(job.latency(i), 1)});
  }
  std::cout << table.render() << "\n";

  // The ingested job drives the evaluation harness like any generated one.
  const auto method = core::predictor_by_name("NURD");
  const auto run = eval::run_job(job, *method.make());
  std::cout << "NURD final confusion: TP=" << run.final.tp
            << " FP=" << run.final.fp << " FN=" << run.final.fn
            << " F1=" << TextTable::num(run.final.f1(), 3) << "\n";
  return 0;
}
