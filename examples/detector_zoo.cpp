// Detector-zoo example: runs all fourteen unsupervised outlier detectors on
// one checkpoint's feature snapshot and shows why feature-space outlierness
// is a poor proxy for straggling (paper §3.2): the top-scored tasks overlap
// only partially with the true stragglers, and latency-independent feature
// anomalies ("noisy machines") soak up detector attention.
//
//   $ ./detector_zoo [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "outlier/density_detectors.h"
#include "outlier/detector.h"
#include "outlier/ensemble_detectors.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"
#include "outlier/ocsvm.h"
#include "outlier/statistical_detectors.h"
#include "outlier/subspace_detectors.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace nurd;
  auto config = trace::GoogleLikeGenerator::google_defaults();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  config.min_tasks = 300;
  config.max_tasks = 300;
  trace::GoogleLikeGenerator generator(config);
  const auto job = generator.generate_job(3, /*far_tail=*/true);
  const auto labels = job.straggler_labels();
  const auto view = job.checkpoint(4);  // mid-execution snapshot
  const Matrix features = job.trace.materialize(4);

  std::size_t n_stragglers = 0;
  for (int l : labels) n_stragglers += static_cast<std::size_t>(l);
  std::cout << "job " << job.id << ", checkpoint 5/10: "
            << view.finished().size() << " finished / "
            << view.running().size() << " running, " << n_stragglers
            << " true stragglers\n\n";

  std::vector<std::unique_ptr<outlier::Detector>> zoo;
  zoo.push_back(std::make_unique<outlier::AbodDetector>());
  zoo.push_back(std::make_unique<outlier::CblofDetector>());
  zoo.push_back(std::make_unique<outlier::HbosDetector>());
  zoo.push_back(std::make_unique<outlier::IForestDetector>());
  zoo.push_back(std::make_unique<outlier::KnnDetector>());
  zoo.push_back(std::make_unique<outlier::LofDetector>());
  zoo.push_back(std::make_unique<outlier::McdDetector>());
  zoo.push_back(std::make_unique<outlier::OcsvmDetector>());
  zoo.push_back(std::make_unique<outlier::PcaDetector>());
  zoo.push_back(std::make_unique<outlier::SosDetector>());
  zoo.push_back(std::make_unique<outlier::LscpDetector>());
  zoo.push_back(std::make_unique<outlier::CofDetector>());
  zoo.push_back(std::make_unique<outlier::SodDetector>());

  TextTable table({"Detector", "flagged", "true stragglers among flagged",
                   "precision"});
  for (auto& det : zoo) {
    det->fit(features);
    const auto flags = outlier::labels_from_scores(det->scores(), 0.1);
    std::size_t flagged = 0, hits = 0;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (flags[i] == 1) {
        ++flagged;
        hits += static_cast<std::size_t>(labels[i]);
      }
    }
    table.add_row({det->name(), std::to_string(flagged),
                   std::to_string(hits),
                   flagged > 0 ? TextTable::num(
                                     static_cast<double>(hits) /
                                         static_cast<double>(flagged))
                               : "-"});
  }
  std::cout << table.render();
  std::cout << "\n(The paper's point: stragglers are outliers in LATENCY, "
               "not necessarily in feature space, so even a perfect "
               "feature-space outlier ranking cannot isolate them.)\n";
  return 0;
}
