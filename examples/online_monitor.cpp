// Online monitoring example: simulates a datacenter operator watching a
// running job. At every checkpoint NURD reports which tasks it would flag,
// together with the calibrated weighting quantities (ρ, δ) and the growing
// training-set state — the view a deployment dashboard would show.
//
//   $ ./online_monitor [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/nurd.h"
#include "eval/harness.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace nurd;

  auto config = trace::GoogleLikeGenerator::google_defaults();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  config.min_tasks = 200;
  config.max_tasks = 200;
  trace::GoogleLikeGenerator generator(config);
  const auto job = generator.generate_job(7, /*far_tail=*/true);

  const double tau = job.straggler_threshold();
  const auto labels = job.straggler_labels();

  std::cout << "monitoring " << job.id << ": " << job.task_count()
            << " tasks, p90 threshold " << TextTable::num(tau, 1) << "s\n";

  core::NurdParams params;
  params.alpha = 0.25;
  core::NurdPredictor nurd(params);
  nurd.initialize(eval::make_job_context(job, tau));
  // The dashboard's calibration readout appears once the first checkpoint
  // has been observed.
  nurd.calibrate(job.checkpoint(0));
  std::cout << "calibration: rho=" << TextTable::num(nurd.rho(), 3)
            << " (" << (nurd.rho() <= 1.0 ? "far-tail regime" : "near-tail regime")
            << "), delta=" << TextTable::num(nurd.delta(), 3) << "\n\n";

  std::vector<bool> flagged(job.task_count(), false);
  std::size_t tp = 0, fp = 0;
  TextTable table({"checkpoint", "elapsed(s)", "finished", "running",
                   "new flags", "correct", "cum TP", "cum FP"});
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const auto view = job.checkpoint(t);
    std::vector<std::size_t> candidates;
    for (auto i : view.running()) {
      if (!flagged[i]) candidates.push_back(i);
    }
    const auto flags = nurd.predict_stragglers(view, candidates);
    std::size_t correct = 0;
    for (auto i : flags) {
      flagged[i] = true;
      if (labels[i] == 1) {
        ++tp;
        ++correct;
      } else {
        ++fp;
      }
    }
    table.add_row({std::to_string(t + 1), TextTable::num(view.tau_run(), 0),
                   std::to_string(view.finished().size()),
                   std::to_string(view.running().size()),
                   std::to_string(flags.size()), std::to_string(correct),
                   std::to_string(tp), std::to_string(fp)});
  }
  std::cout << table.render();

  std::size_t total_stragglers = 0;
  for (int l : labels) total_stragglers += static_cast<std::size_t>(l);
  std::cout << "\nend of job: " << tp << "/" << total_stragglers
            << " stragglers caught, " << fp << " false alarms\n";
  return 0;
}
