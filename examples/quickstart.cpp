// Quickstart: generate a synthetic Google-like job, run NURD online, and
// print what it predicted at each checkpoint.
//
//   $ ./quickstart [seed]
//
// This is the smallest end-to-end use of the public API: a trace generator,
// a predictor, and the evaluation harness.
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/nurd.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace nurd;

  auto config = trace::GoogleLikeGenerator::google_defaults();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  trace::GoogleLikeGenerator generator(config);
  const auto jobs = generator.generate(4);

  std::cout << "NURD quickstart — seed " << config.seed << "\n\n";

  for (const auto& job : jobs) {
    const double tau = job.straggler_threshold();
    core::NurdPredictor nurd;
    const auto run = eval::run_job(job, nurd);

    std::cout << "job " << job.id << ": " << job.task_count() << " tasks, "
              << "p90 threshold " << TextTable::num(tau, 1) << "s, max "
              << TextTable::num(job.completion_time(), 1) << "s, rho "
              << TextTable::num(nurd.rho(), 2) << ", delta "
              << TextTable::num(nurd.delta(), 2) << "\n";

    TextTable table({"checkpoint", "tau_run", "TP", "FP", "FN", "F1"});
    for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
      const auto& c = run.per_checkpoint[t];
      table.add_row({std::to_string(t + 1),
                     TextTable::num(job.trace.tau_run(t), 1),
                     std::to_string(c.tp), std::to_string(c.fp),
                     std::to_string(c.fn), TextTable::num(c.f1(), 3)});
    }
    std::cout << table.render() << "\n";
  }

  // Side-by-side with the unweighted supervised baseline, to show what the
  // reweighting buys.
  const auto more_jobs = generator.generate(10);
  for (const char* name : {"GBTR", "NURD-NC", "NURD"}) {
    const auto method = core::predictor_by_name(name);
    const auto res = eval::evaluate_method(method, more_jobs);
    std::cout << name << " over " << more_jobs.size()
              << " jobs: F1=" << TextTable::num(res.f1, 3)
              << " TPR=" << TextTable::num(res.tpr, 2)
              << " FPR=" << TextTable::num(res.fpr, 2) << "\n";
  }
  return 0;
}
