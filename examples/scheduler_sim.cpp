// Scheduler integration example: the paper's §5 end-to-end story. Runs NURD
// over a batch of jobs, feeds the flags into both schedulers (Algorithm 2:
// unlimited machines; Algorithm 3: finite pool), and reports the
// job-completion-time reductions an operator would see. Then scales the same
// flags up to the cluster level: all jobs sharing ONE spare pool under the
// event-driven simulator, with batch and Poisson arrivals.
//
//   $ ./scheduler_sim [--jobs=10] [--machines=40]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/cluster.h"
#include "sched/scheduler.h"
#include "trace/generator.h"

namespace {

long flag_value(int argc, char** argv, const std::string& name,
                long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtol(arg.substr(prefix.size()).c_str(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  const auto n_jobs = static_cast<std::size_t>(flag_value(argc, argv, "jobs", 10));
  const auto machines =
      static_cast<std::size_t>(flag_value(argc, argv, "machines", 40));

  auto config = trace::GoogleLikeGenerator::google_defaults();
  trace::GoogleLikeGenerator generator(config);
  const auto jobs = generator.generate(n_jobs);

  const auto tuned = core::google_tuned();
  const auto method = core::predictor_by_name("NURD", tuned);
  const auto runs = eval::run_method(method, jobs);

  std::cout << "NURD + schedulers over " << jobs.size() << " Google-like jobs\n\n";
  TextTable table({"job", "tasks", "orig JCT(s)", "Alg2 JCT(s)", "Alg2 red%",
                   "Alg3 JCT(s)", "Alg3 red%", "relaunches", "waited"});
  Rng rng_a(99), rng_b(99);
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto unlimited =
        sched::schedule_unlimited(jobs[j], runs[j].flagged_at, rng_a);
    const auto limited = sched::schedule_limited(
        jobs[j], runs[j].flagged_at, machines, rng_b);
    sum_a += unlimited.reduction_pct();
    sum_b += limited.reduction_pct();
    table.add_row({jobs[j].id, std::to_string(jobs[j].task_count()),
                   TextTable::num(unlimited.original_jct, 0),
                   TextTable::num(unlimited.mitigated_jct, 0),
                   TextTable::num(unlimited.reduction_pct(), 1),
                   TextTable::num(limited.mitigated_jct, 0),
                   TextTable::num(limited.reduction_pct(), 1),
                   std::to_string(limited.relaunched),
                   std::to_string(limited.waited)});
  }
  std::cout << table.render();
  std::cout << "\nmean reduction: Algorithm 2 (unlimited) "
            << TextTable::num(sum_a / static_cast<double>(jobs.size()), 1)
            << "%, Algorithm 3 (" << machines << " spare machines) "
            << TextTable::num(sum_b / static_cast<double>(jobs.size()), 1)
            << "%\n";

  // Cluster view: the same jobs and flags, but one shared pool and the
  // whole cluster advanced event by event. With Poisson arrivals the jobs
  // overlap only partially, so the same pool covers the load with less
  // queueing than the all-at-once batch.
  double mean_jct = 0.0;
  for (const auto& job : jobs) mean_jct += job.completion_time();
  mean_jct /= static_cast<double>(jobs.size());

  std::cout << "\nshared cluster (dedicated pool of " << machines
            << " spare machines, " << jobs.size()
            << " concurrent jobs, 8 replications):\n";
  TextTable cluster({"arrivals", "mean red%", "makespan(s)", "relaunches",
                     "waited", "peak queue"});
  for (const bool poisson : {false, true}) {
    sched::ClusterConfig config;
    config.machines = machines;
    config.reclaim_releases = true;
    if (poisson) config.arrivals = sched::poisson_arrivals(1.0 / mean_jct);
    const auto summary = sched::summarize_replications(
        sched::simulate_cluster_replicated(jobs, runs, config, 8, 99));
    cluster.add_row({poisson ? "poisson(1/mean JCT)" : "batch",
                     TextTable::num(summary.mean_reduction_pct, 1),
                     TextTable::num(summary.mean_makespan, 0),
                     TextTable::num(summary.mean_relaunched, 1),
                     TextTable::num(summary.mean_waited, 1),
                     std::to_string(summary.max_peak_waiting)});
  }
  std::cout << cluster.render();
  return 0;
}
