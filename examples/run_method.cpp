// Method-runner example: evaluate any Table-3 method by name over a freshly
// generated dataset — the quickest way to poke at a single baseline.
//
//   $ ./run_method NURD
//   $ ./run_method Grabit --dataset=alibaba --jobs=8 --seed=7
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "trace/generator.h"

namespace {

std::string flag_value(int argc, char** argv, const std::string& name,
                       std::string fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nurd;
  if (argc < 2 || argv[1][0] == '-') {
    std::cerr << "usage: run_method <METHOD> [--dataset=google|alibaba] "
                 "[--jobs=N] [--seed=S]\nmethods:";
    for (const auto& m : core::all_predictors()) std::cerr << " " << m.name;
    std::cerr << "\n";
    return 2;
  }
  const std::string name = argv[1];
  const std::string dataset = flag_value(argc, argv, "dataset", "google");
  const auto n_jobs = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "jobs", "12").c_str(), nullptr, 10));
  const auto seed = std::strtoull(
      flag_value(argc, argv, "seed", "0").c_str(), nullptr, 10);

  std::vector<trace::Job> jobs;
  core::RegistryConfig tuned;
  if (dataset == "alibaba") {
    auto c = trace::AlibabaLikeGenerator::alibaba_defaults();
    c.seed += seed;
    trace::AlibabaLikeGenerator gen(c);
    jobs = gen.generate(n_jobs);
    tuned = core::alibaba_tuned();
  } else {
    auto c = trace::GoogleLikeGenerator::google_defaults();
    c.seed += seed;
    trace::GoogleLikeGenerator gen(c);
    jobs = gen.generate(n_jobs);
    tuned = core::google_tuned();
  }

  const auto method = core::predictor_by_name(name, tuned);
  const auto res = eval::evaluate_method(method, jobs);

  std::cout << name << " on " << jobs.size() << " " << dataset
            << "-like jobs (seed offset " << seed << ")\n";
  TextTable table({"metric", "value"});
  table.add_row({"TPR", TextTable::num(res.tpr, 3)});
  table.add_row({"FPR", TextTable::num(res.fpr, 3)});
  table.add_row({"FNR", TextTable::num(res.fnr, 3)});
  table.add_row({"F1", TextTable::num(res.f1, 3)});
  std::cout << table.render();

  std::cout << "\ncumulative F1 by normalized time:\n";
  for (std::size_t t = 0; t < res.f1_timeline.size(); ++t) {
    const auto bar = static_cast<std::size_t>(res.f1_timeline[t] * 50);
    std::cout << "t=" << TextTable::num(
                     static_cast<double>(t + 1) /
                         static_cast<double>(res.f1_timeline.size()), 1)
              << " " << std::string(bar, '#') << " "
              << TextTable::num(res.f1_timeline[t], 3) << "\n";
  }
  return 0;
}
