#include "sched/cluster.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sched/scheduler.h"

namespace nurd::sched {

namespace {

// Min-heap order: (time, kind, job, task, seq).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.kind, a.job, a.task, a.seq) >
           std::tie(b.time, b.kind, b.job, b.task, b.seq);
  }
};

// Per-task simulation state. `completion` is the task's effective finish
// time; a pending kTaskFinish event is live iff its timestamp still equals
// it (relaunching a task strands the original's finish event, which is then
// skipped as stale).
struct TaskState {
  double completion = 0.0;
  double flag_time = 0.0;  ///< absolute; meaningful iff `flagged`
  double resample = 0.0;   ///< pre-drawn relaunch latency: drawn iff
                           ///< `flagged` in precomputed mode, for EVERY task
                           ///< in live mode (flags are unknown up front)
  bool flagged = false;    ///< has a valid (pre-completion) flag
  bool relaunched = false;
  bool done = false;
};

}  // namespace

// The event loop. One Impl serves both ClusterEngine modes and
// simulate_cluster (which constructs a precomputed engine and finishes it
// immediately); `live_` only changes where flags and their draws come from.
struct ClusterEngine::Impl {
  Impl(std::span<const trace::Job> jobs,
       std::span<const eval::JobRunResult> runs, const ClusterConfig& config,
       Rng& rng, bool live)
      : jobs_(jobs), config_(config), live_(live) {
    const std::size_t J = jobs.size();
    NURD_CHECK(!jobs.empty(), "no jobs");
    result_.jobs.resize(J);
    tasks_.resize(J);
    remaining_.resize(J);

    // --- Canonical-order randomness: arrivals first (job input order), then
    // relaunch-latency draws (job input order, task-id order) — one per
    // VALIDLY flagged task in precomputed mode, one per task in live mode
    // (flags are unknown up front, and the stream must not depend on them).
    // Nothing after this touches the RNG, so the stream is independent of
    // pool sizes, event dynamics, and — live — flag arrival order.
    arrivals_ =
        config.arrivals ? config.arrivals(J, rng) : batch_arrivals()(J, rng);
    NURD_CHECK(arrivals_.size() == J, "arrival process returned wrong count");

    for (std::size_t j = 0; j < J; ++j) {
      const trace::Job& job = jobs[j];
      NURD_CHECK(arrivals_[j] >= 0.0, "negative arrival time");

      ClusterJobStats& stats = result_.jobs[j];
      stats.arrival = arrivals_[j];
      stats.original_jct = job.completion_time();
      remaining_[j] = job.task_count();

      if (!live_) {
        NURD_CHECK(runs[j].flagged_at.size() == job.task_count(),
                   "flag vector length mismatch");
      }
      auto& tasks = tasks_[j];
      tasks.resize(job.task_count());
      for (std::size_t i = 0; i < job.task_count(); ++i) {
        TaskState& task = tasks[i];
        task.completion = arrivals_[j] + job.latency(i);
        if (live_) {
          task.resample = resample_latency(job, rng);
          continue;
        }
        const auto& flagged_at = runs[j].flagged_at;
        if (flagged_at[i] == eval::kNeverFlagged) continue;
        NURD_CHECK(flagged_at[i] < job.checkpoint_count(),
                   "flag checkpoint out of range");
        const double tau = job.trace.tau_run(flagged_at[i]);
        if (tau >= job.latency(i)) {
          // The flag lands at or after the task's completion: relaunching
          // would be a phantom intervention on a finished task.
          ++stats.noop_flags;
          continue;
        }
        task.flagged = true;
        task.flag_time = arrivals_[j] + tau;
        task.resample = resample_latency(job, rng);
      }
    }

    unlimited_ = config.machines == kUnlimitedMachines;
    pool_.unlimited = unlimited_;
    pool_.free = unlimited_ ? 0 : config.machines;

    for (std::size_t j = 0; j < J; ++j) {
      push(arrivals_[j], EventKind::kJobArrival, j, 0);
    }
  }

  void post_flag(std::size_t job, std::size_t task_id, std::size_t cp) {
    NURD_CHECK(live_, "post_flag requires a live-mode ClusterEngine");
    NURD_CHECK(!finished_, "engine already finished");
    NURD_CHECK(job < jobs_.size(), "flag job out of range");
    const trace::Job& j = jobs_[job];
    NURD_CHECK(task_id < j.task_count(), "flag task out of range");
    NURD_CHECK(cp < j.checkpoint_count(), "flag checkpoint out of range");
    TaskState& task = tasks_[job][task_id];
    NURD_CHECK(!task.flagged, "task flagged twice");
    const double tau = j.trace.tau_run(cp);
    if (tau >= j.latency(task_id)) {
      ++result_.jobs[job].noop_flags;
      return;
    }
    const double when = arrivals_[job] + tau;
    NURD_CHECK(when >= watermark_,
               "flag posted behind the advanced watermark");
    task.flagged = true;
    task.flag_time = when;
    push(when, EventKind::kFlag, job, task_id);
  }

  void advance_to(double watermark) {
    NURD_CHECK(!finished_, "engine already finished");
    watermark_ = std::max(watermark_, watermark);
    while (!queue_.empty() && queue_.top().time < watermark_) {
      const Event event = queue_.top();
      queue_.pop();
      if (!process(event)) continue;  // stale
      ++result_.events;
      if (config_.observer) config_.observer(event, pool_);
    }
  }

  ClusterResult finish() {
    NURD_CHECK(!finished_, "engine already finished");
    advance_to(std::numeric_limits<double>::infinity());
    finished_ = true;
    for (const auto& stats : result_.jobs) {
      result_.makespan = std::max(result_.makespan, stats.completion);
      result_.relaunched += stats.relaunched;
      result_.waited += stats.waited;
      result_.noop_flags += stats.noop_flags;
    }
    return std::move(result_);
  }

  void push(double time, EventKind kind, std::size_t job, std::size_t task) {
    queue_.push(Event{time, kind, static_cast<std::uint32_t>(job),
                      static_cast<std::uint32_t>(task), seq_++});
  }

  bool machine_free() const { return unlimited_ || pool_.free > 0; }

  // Reserves a machine for (job, task) and schedules its relaunch at `time`.
  void grant(double time, std::size_t job, std::size_t task) {
    if (!unlimited_) --pool_.free;
    ++pool_.in_use;
    push(time, EventKind::kRelaunch, job, task);
  }

  // A machine became free at `time`: hand it to the first queued task that
  // is still running. Tasks that finished (or were relaunched) while queued
  // are dropped on the way.
  void dispatch(double time) {
    while (machine_free() && !waiting_.empty()) {
      const auto [job, task] = waiting_.front();
      waiting_.pop_front();
      pool_.waiting = waiting_.size();
      if (tasks_[job][task].done) continue;
      grant(time, job, task);
    }
  }

  bool process(const Event& e) {
    switch (e.kind) {
      case EventKind::kJobArrival: {
        const trace::Job& job = jobs_[e.job];
        const auto& tasks = tasks_[e.job];
        for (std::size_t i = 0; i < job.task_count(); ++i) {
          push(tasks[i].completion, EventKind::kTaskFinish, e.job, i);
          // Live mode: post_flag enqueues each kFlag itself (a flag may be
          // posted before OR after its job's arrival is processed, so the
          // arrival handler re-pushing flagged tasks would duplicate them).
          if (!live_ && tasks[i].flagged) {
            push(tasks[i].flag_time, EventKind::kFlag, e.job, i);
          }
        }
        return true;
      }
      case EventKind::kTaskFinish: {
        TaskState& task = tasks_[e.job][e.task];
        // Stale: the original of a relaunched task, or (FP-tie paranoia) a
        // duplicate timestamp match after the task already finished.
        if (task.done || e.time != task.completion) return false;
        task.done = true;
        if (--remaining_[e.job] == 0) {
          ClusterJobStats& stats = result_.jobs[e.job];
          stats.completion = e.time;
          stats.mitigated_jct = e.time - stats.arrival;
        }
        push(e.time, EventKind::kMachineRelease, e.job, e.task);
        return true;
      }
      case EventKind::kMachineRelease: {
        const TaskState& task = tasks_[e.job][e.task];
        if (task.relaunched) {
          // A finished copy returns the pool machine it borrowed.
          --pool_.in_use;
          if (!unlimited_) ++pool_.free;
        } else if (config_.reclaim_releases) {
          // Dedicated-pool policy: the cluster takes the machine back.
          ++pool_.reclaimed;
        } else {
          // A natural completion donates its own machine to the pool.
          ++pool_.released;
          if (!unlimited_) ++pool_.free;
        }
        dispatch(e.time);
        return true;
      }
      case EventKind::kRelaunch: {
        TaskState& task = tasks_[e.job][e.task];
        if (task.done) {
          // Defensive: the grant instant coincided with the task's finish.
          --pool_.in_use;
          if (!unlimited_) ++pool_.free;
          dispatch(e.time);
          return false;
        }
        task.relaunched = true;
        task.completion = e.time + task.resample;
        push(task.completion, EventKind::kTaskFinish, e.job, e.task);
        ClusterJobStats& stats = result_.jobs[e.job];
        ++stats.relaunched;
        if (e.time > task.flag_time) ++stats.waited;
        return true;
      }
      case EventKind::kFlag: {
        TaskState& task = tasks_[e.job][e.task];
        if (task.done) {
          // Only reachable through floating-point timestamp collisions
          // (flag and finish at the same instant): treat as a no-op flag.
          ++result_.jobs[e.job].noop_flags;
          return false;
        }
        if (machine_free()) {
          grant(e.time, e.job, e.task);
        } else {
          waiting_.emplace_back(e.job, e.task);
          pool_.waiting = waiting_.size();
          result_.peak_waiting =
              std::max(result_.peak_waiting, waiting_.size());
        }
        return true;
      }
    }
    return false;  // unreachable
  }

  std::span<const trace::Job> jobs_;
  const ClusterConfig& config_;
  bool live_ = false;
  bool unlimited_ = false;
  bool finished_ = false;
  double watermark_ = 0.0;  ///< highest advance_to() bound reached
  std::vector<double> arrivals_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t seq_ = 0;
  std::vector<std::vector<TaskState>> tasks_;
  std::vector<std::size_t> remaining_;
  std::deque<std::pair<std::size_t, std::size_t>> waiting_;
  PoolState pool_;
  ClusterResult result_;
};

ClusterEngine::ClusterEngine(std::span<const trace::Job> jobs,
                             std::span<const eval::JobRunResult> runs,
                             const ClusterConfig& config, Rng& rng) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  impl_ = std::make_unique<Impl>(jobs, runs, config, rng, /*live=*/false);
}

ClusterEngine::ClusterEngine(std::span<const trace::Job> jobs,
                             const ClusterConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(jobs, std::span<const eval::JobRunResult>{},
                                   config, rng, /*live=*/true)) {}

ClusterEngine::~ClusterEngine() = default;

std::span<const double> ClusterEngine::arrivals() const {
  return impl_->arrivals_;
}

void ClusterEngine::post_flag(std::size_t job, std::size_t task,
                              std::size_t cp) {
  impl_->post_flag(job, task, cp);
}

void ClusterEngine::advance_to(double watermark) {
  impl_->advance_to(watermark);
}

ClusterResult ClusterEngine::finish() { return impl_->finish(); }

ArrivalProcess batch_arrivals() {
  return [](std::size_t job_count, Rng&) {
    return std::vector<double>(job_count, 0.0);
  };
}

ArrivalProcess fixed_arrivals(std::vector<double> times) {
  return [times = std::move(times)](std::size_t job_count, Rng&) {
    NURD_CHECK(times.size() == job_count,
               "fixed_arrivals size does not match the job count");
    return times;
  };
}

ArrivalProcess poisson_arrivals(double rate) {
  NURD_CHECK(rate > 0.0, "Poisson arrival rate must be positive");
  return [rate](std::size_t job_count, Rng& rng) {
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += rng.exponential(rate);
      a = t;
    }
    return arrivals;
  };
}

ArrivalProcess poisson_spike_arrivals(double rate, double spike_rate,
                                      double spike_begin, double spike_end) {
  NURD_CHECK(rate > 0.0 && spike_rate > 0.0,
             "Poisson arrival rates must be positive");
  NURD_CHECK(spike_begin >= 0.0 && spike_end > spike_begin,
             "spike window must be a non-empty forward interval");
  return [=](std::size_t job_count, Rng& rng) {
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      const bool in_spike = t >= spike_begin && t < spike_end;
      t += rng.exponential(in_spike ? spike_rate : rate);
      a = t;
    }
    return arrivals;
  };
}

double ClusterResult::mean_reduction_pct() const {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& stats : jobs) total += stats.reduction_pct();
  return total / static_cast<double>(jobs.size());
}

ClusterResult simulate_cluster(std::span<const trace::Job> jobs,
                               std::span<const eval::JobRunResult> runs,
                               const ClusterConfig& config, Rng& rng) {
  return ClusterEngine(jobs, runs, config, rng).finish();
}

std::vector<ClusterResult> simulate_cluster_replicated(
    std::span<const trace::Job> jobs, std::span<const eval::JobRunResult> runs,
    const ClusterConfig& config, std::size_t replications, std::uint64_t seed,
    std::size_t threads) {
  NURD_CHECK(replications > 0, "need at least one replication");
  // Serial fork prefix: replication r's stream depends only on (seed, r), so
  // results are bit-identical at any thread count and prefix-stable when
  // `replications` grows.
  Rng master(seed);
  std::vector<Rng> rngs;
  rngs.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r) rngs.push_back(master.fork());

  std::vector<ClusterResult> out(replications);
  ThreadPool::run_indexed(replications, threads, [&](std::size_t r) {
    out[r] = simulate_cluster(jobs, runs, config, rngs[r]);
  });
  return out;
}

ClusterSummary summarize_replications(std::span<const ClusterResult> results) {
  ClusterSummary summary;
  if (results.empty()) return summary;
  for (const auto& r : results) {
    summary.mean_reduction_pct += r.mean_reduction_pct();
    summary.mean_makespan += r.makespan;
    summary.mean_relaunched += static_cast<double>(r.relaunched);
    summary.mean_waited += static_cast<double>(r.waited);
    summary.max_peak_waiting =
        std::max(summary.max_peak_waiting, r.peak_waiting);
  }
  const double n = static_cast<double>(results.size());
  summary.mean_reduction_pct /= n;
  summary.mean_makespan /= n;
  summary.mean_relaunched /= n;
  summary.mean_waited /= n;
  return summary;
}

}  // namespace nurd::sched
