#include "sched/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sched/scheduler.h"

namespace nurd::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sentinel for "this task's copy is not bound to a tracked pool machine"
/// (homogeneous pools, unlimited pools, or no copy granted yet).
constexpr std::uint32_t kNoMachine = 0xffffffffu;

// Min-heap order: (time, kind, job, task, seq).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.kind, a.job, a.task, a.seq) >
           std::tie(b.time, b.kind, b.job, b.task, b.seq);
  }
};

// Per-task simulation state. `completion` is the task's effective finish
// time; a pending kTaskFinish event is live iff its timestamp still equals
// it (relaunching a task strands the original's finish event, which is then
// skipped as stale; injected preemptions and machine failures strand the
// killed execution the same way by setting completion to infinity).
struct TaskState {
  double completion = 0.0;
  double flag_time = 0.0;  ///< absolute; meaningful iff `flagged`
  double pending_since = 0.0;  ///< when the task last entered the relaunch
                               ///< path (flag, preemption, or failure requeue)
  double resample = 0.0;   ///< pre-drawn relaunch latency: drawn iff
                           ///< `flagged` in precomputed mode, for EVERY task
                           ///< in live mode (flags are unknown up front)
  double straggler_u = 1.0;  ///< heterogeneity luck, drawn iff classes set
  double fail_offset = kInf;  ///< failure offset of the machine this task
                              ///< donates, drawn iff machine_mtbf > 0
  std::uint32_t own_class = 0;  ///< class of the machine this task donates
                                ///< (finite pools) or its relaunch lands on
                                ///< (unlimited pools), iff classes set
  std::uint32_t machine = kNoMachine;  ///< pool machine running its copy
  bool flagged = false;    ///< has a valid (pre-completion) flag
  bool pending = false;    ///< in the relaunch path (queued or copy granted)
  bool relaunched = false;
  bool done = false;
};

// One tracked pool machine (heterogeneous or failure-injected pools only;
// homogeneous, failure-free pools keep the counter-only fast path).
struct MachineRec {
  enum State : std::uint8_t { kFree, kBusy, kGone };
  State state = kFree;
  std::uint32_t cls = 0;   ///< index into ClusterConfig::machine_classes
  std::uint32_t job = 0;   ///< copy owner, valid iff kBusy
  std::uint32_t task = 0;
  double fail_at = kInf;   ///< absolute injected death time
};

}  // namespace

// The event loop. One Impl serves both ClusterEngine modes and
// simulate_cluster (which constructs a precomputed engine and finishes it
// immediately); `live_` only changes where flags and their draws come from.
struct ClusterEngine::Impl {
  Impl(std::span<const trace::Job> jobs,
       std::span<const eval::JobRunResult> runs, const ClusterConfig& config,
       Rng& rng, bool live)
      : jobs_(jobs), config_(config), live_(live) {
    const std::size_t J = jobs.size();
    NURD_CHECK(!jobs.empty(), "no jobs");
    unlimited_ = config.machines == kUnlimitedMachines;
    hetero_ = !config.machine_classes.empty();
    granular_ = !unlimited_ && (hetero_ || config.machine_mtbf > 0.0);
    NURD_CHECK(config.machine_mtbf >= 0.0, "machine_mtbf must be >= 0");
    NURD_CHECK(!(config.machine_mtbf > 0.0 && unlimited_),
               "machine-failure injection requires a finite pool");
    NURD_CHECK(
        config.preemption_rate >= 0.0 && config.preemption_rate <= 1.0,
        "preemption_rate must lie in [0, 1]");
    if (hetero_) {
      for (const auto& cls : config.machine_classes) {
        NURD_CHECK(cls.weight > 0.0, "machine-class weight must be positive");
        NURD_CHECK(cls.speed > 0.0, "machine-class speed must be positive");
        NURD_CHECK(cls.straggler_propensity >= 0.0 &&
                       cls.straggler_propensity <= 1.0,
                   "straggler propensity must lie in [0, 1]");
        NURD_CHECK(cls.straggler_factor >= 1.0,
                   "straggler factor must be >= 1");
        class_weight_total_ += cls.weight;
      }
    }

    result_.jobs.resize(J);
    tasks_.resize(J);
    remaining_.resize(J);

    // --- Canonical-order randomness (see the header contract): arrivals
    // first (job input order); then initial pool machines in machine-id
    // order (class, failure offset — tracked pools only); then per task in
    // job input order and task-id order: relaunch-latency draw (per VALIDLY
    // flagged task in precomputed mode, per task in live mode — flags are
    // unknown up front and the stream must not depend on them), then the
    // heterogeneity, failure-offset, and preemption draws, each consumed
    // ONLY when its knob is enabled. Nothing after this touches the RNG, so
    // the stream is independent of pool sizes, event dynamics, and — live —
    // flag arrival order.
    arrivals_ =
        config.arrivals ? config.arrivals(J, rng) : batch_arrivals()(J, rng);
    NURD_CHECK(arrivals_.size() == J, "arrival process returned wrong count");

    if (granular_) {
      machines_.resize(config.machines);
      for (std::size_t m = 0; m < config.machines; ++m) {
        MachineRec& rec = machines_[m];
        if (hetero_) rec.cls = draw_class(rng);
        if (config.machine_mtbf > 0.0) {
          rec.fail_at = rng.exponential(1.0 / config.machine_mtbf);
          push(rec.fail_at, EventKind::kMachineFail, 0, m);
        }
        free_heap_.push(static_cast<std::uint32_t>(m));
      }
    }

    for (std::size_t j = 0; j < J; ++j) {
      const trace::Job& job = jobs[j];
      NURD_CHECK(arrivals_[j] >= 0.0, "negative arrival time");

      ClusterJobStats& stats = result_.jobs[j];
      stats.arrival = arrivals_[j];
      stats.original_jct = job.completion_time();
      remaining_[j] = job.task_count();

      if (!live_) {
        NURD_CHECK(runs[j].flagged_at.size() == job.task_count(),
                   "flag vector length mismatch");
      }
      auto& tasks = tasks_[j];
      tasks.resize(job.task_count());
      for (std::size_t i = 0; i < job.task_count(); ++i) {
        TaskState& task = tasks[i];
        task.completion = arrivals_[j] + job.latency(i);
        if (live_) {
          task.resample = resample_latency(job, rng);
        } else if (const auto& flagged_at = runs[j].flagged_at;
                   flagged_at[i] != eval::kNeverFlagged) {
          NURD_CHECK(flagged_at[i] < job.checkpoint_count(),
                     "flag checkpoint out of range");
          const double tau = job.trace.tau_run(flagged_at[i]);
          if (tau >= job.latency(i)) {
            // The flag lands at or after the task's completion: relaunching
            // would be a phantom intervention on a finished task.
            ++stats.noop_flags;
          } else {
            task.flagged = true;
            task.flag_time = arrivals_[j] + tau;
            task.resample = resample_latency(job, rng);
          }
        }
        if (hetero_) {
          task.own_class = draw_class(rng);
          task.straggler_u = rng.uniform();
        }
        if (config.machine_mtbf > 0.0) {
          task.fail_offset = rng.exponential(1.0 / config.machine_mtbf);
        }
        if (config.preemption_rate > 0.0) {
          const double hit = rng.uniform();
          const double frac = rng.uniform();
          if (hit < config.preemption_rate) {
            push(arrivals_[j] + frac * job.latency(i), EventKind::kPreempt, j,
                 i);
          }
        }
      }
    }

    pool_.unlimited = unlimited_;
    pool_.free = unlimited_ ? 0 : config.machines;

    for (std::size_t j = 0; j < J; ++j) {
      push(arrivals_[j], EventKind::kJobArrival, j, 0);
    }
  }

  // Weighted machine-class pick; consumes exactly one uniform.
  std::uint32_t draw_class(Rng& rng) const {
    double u = rng.uniform(0.0, class_weight_total_);
    const auto& classes = config_.machine_classes;
    for (std::size_t c = 0; c + 1 < classes.size(); ++c) {
      u -= classes[c].weight;
      if (u < 0.0) return static_cast<std::uint32_t>(c);
    }
    return static_cast<std::uint32_t>(classes.size() - 1);
  }

  void post_flag(std::size_t job, std::size_t task_id, std::size_t cp) {
    NURD_CHECK(live_, "post_flag requires a live-mode ClusterEngine");
    NURD_CHECK(!finished_, "engine already finished");
    NURD_CHECK(job < jobs_.size(), "flag job out of range");
    const trace::Job& j = jobs_[job];
    NURD_CHECK(task_id < j.task_count(), "flag task out of range");
    NURD_CHECK(cp < j.checkpoint_count(), "flag checkpoint out of range");
    TaskState& task = tasks_[job][task_id];
    NURD_CHECK(!task.flagged, "task flagged twice");
    const double tau = j.trace.tau_run(cp);
    if (tau >= j.latency(task_id)) {
      ++result_.jobs[job].noop_flags;
      return;
    }
    const double when = arrivals_[job] + tau;
    NURD_CHECK(when >= watermark_,
               "flag posted behind the advanced watermark");
    task.flagged = true;
    task.flag_time = when;
    push(when, EventKind::kFlag, job, task_id);
  }

  void advance_to(double watermark) {
    NURD_CHECK(!finished_, "engine already finished");
    watermark_ = std::max(watermark_, watermark);
    while (!queue_.empty() && queue_.top().time < watermark_) {
      const Event event = queue_.top();
      queue_.pop();
      if (!process(event)) continue;  // stale
      ++result_.events;
      if (config_.observer) config_.observer(event, pool_);
    }
  }

  ClusterResult finish() {
    NURD_CHECK(!finished_, "engine already finished");
    advance_to(std::numeric_limits<double>::infinity());
    finished_ = true;
    for (std::size_t j = 0; j < result_.jobs.size(); ++j) {
      if (remaining_[j] > 0) {
        // Stranded: injection killed executions the pool could never
        // replace (every machine died). Report the honest infinity rather
        // than a bogus 100% reduction.
        result_.stranded += remaining_[j];
        result_.jobs[j].completion = kInf;
        result_.jobs[j].mitigated_jct = kInf;
      }
    }
    for (const auto& stats : result_.jobs) {
      result_.makespan = std::max(result_.makespan, stats.completion);
      result_.relaunched += stats.relaunched;
      result_.waited += stats.waited;
      result_.noop_flags += stats.noop_flags;
      result_.preempted += stats.preempted;
    }
    return std::move(result_);
  }

  void push(double time, EventKind kind, std::size_t job, std::size_t task) {
    queue_.push(Event{time, kind, static_cast<std::uint32_t>(job),
                      static_cast<std::uint32_t>(task), seq_++});
  }

  bool machine_free() const { return unlimited_ || pool_.free > 0; }

  // Reserves a machine for (job, task) and schedules its relaunch at `time`.
  void grant(double time, std::size_t job, std::size_t task) {
    if (!unlimited_) {
      if (granular_) {
        const std::uint32_t id = pop_free_machine();
        MachineRec& m = machines_[id];
        m.state = MachineRec::kBusy;
        m.job = static_cast<std::uint32_t>(job);
        m.task = static_cast<std::uint32_t>(task);
        tasks_[job][task].machine = id;
      }
      --pool_.free;
    }
    ++pool_.in_use;
    push(time, EventKind::kRelaunch, job, task);
  }

  // Lowest-id free machine (recycled machines keep their identity and
  // class). Lazy invalidation: entries of machines that died while free are
  // skipped on the way out.
  std::uint32_t pop_free_machine() {
    while (true) {
      NURD_CHECK(!free_heap_.empty(), "pool accounting out of sync");
      const std::uint32_t id = free_heap_.top();
      free_heap_.pop();
      if (machines_[id].state == MachineRec::kFree) return id;
    }
  }

  // A copy no longer occupies its machine (finished, or its grant raced the
  // task's natural finish): the machine rejoins the free side.
  void return_machine(TaskState& task) {
    --pool_.in_use;
    if (unlimited_) return;
    if (granular_ && task.machine != kNoMachine) {
      MachineRec& m = machines_[task.machine];
      m.state = MachineRec::kFree;
      free_heap_.push(task.machine);
      task.machine = kNoMachine;
    }
    ++pool_.free;
  }

  // A natural completion donates the finishing task's own machine to the
  // pool (tracked pools mint a new machine record carrying the class and
  // failure clock drawn for that task).
  void donate_machine(double time, const TaskState& task) {
    if (granular_) {
      const auto id = static_cast<std::uint32_t>(machines_.size());
      MachineRec rec;
      rec.cls = task.own_class;
      if (task.fail_offset < kInf) {
        rec.fail_at = time + task.fail_offset;
        push(rec.fail_at, EventKind::kMachineFail, 0, id);
      }
      machines_.push_back(rec);
      free_heap_.push(id);
    }
    ++pool_.free;
  }

  // (Re-)enters the relaunch path at `time`: granted now if a machine is
  // free, queued FIFO otherwise.
  void requeue(double time, std::size_t job, std::size_t task) {
    TaskState& t = tasks_[job][task];
    t.pending = true;
    t.pending_since = time;
    if (machine_free()) {
      grant(time, job, task);
    } else {
      waiting_.emplace_back(job, task);
      pool_.waiting = waiting_.size();
      result_.peak_waiting = std::max(result_.peak_waiting, waiting_.size());
    }
  }

  // A machine became free at `time`: hand it to the first queued task that
  // is still running. Tasks that finished (or were relaunched) while queued
  // are dropped on the way.
  void dispatch(double time) {
    while (machine_free() && !waiting_.empty()) {
      const auto [job, task] = waiting_.front();
      waiting_.pop_front();
      pool_.waiting = waiting_.size();
      if (tasks_[job][task].done) continue;
      grant(time, job, task);
    }
  }

  // Effective latency of a copy granted to `task`, on the machine it landed
  // on (tracked pools) or on a fresh machine of the task's own class
  // (unlimited heterogeneous pools).
  double copy_latency(const TaskState& task) const {
    double lat = task.resample;
    if (hetero_) {
      const std::uint32_t cls = task.machine != kNoMachine
                                    ? machines_[task.machine].cls
                                    : task.own_class;
      const MachineClass& spec = config_.machine_classes[cls];
      lat /= spec.speed;
      if (task.straggler_u < spec.straggler_propensity) {
        lat *= spec.straggler_factor;
      }
    }
    return lat;
  }

  bool process(const Event& e) {
    switch (e.kind) {
      case EventKind::kJobArrival: {
        const trace::Job& job = jobs_[e.job];
        const auto& tasks = tasks_[e.job];
        for (std::size_t i = 0; i < job.task_count(); ++i) {
          push(tasks[i].completion, EventKind::kTaskFinish, e.job, i);
          // Live mode: post_flag enqueues each kFlag itself (a flag may be
          // posted before OR after its job's arrival is processed, so the
          // arrival handler re-pushing flagged tasks would duplicate them).
          if (!live_ && tasks[i].flagged) {
            push(tasks[i].flag_time, EventKind::kFlag, e.job, i);
          }
        }
        return true;
      }
      case EventKind::kTaskFinish: {
        TaskState& task = tasks_[e.job][e.task];
        // Stale: the original of a relaunched task, or (FP-tie paranoia) a
        // duplicate timestamp match after the task already finished.
        if (task.done || e.time != task.completion) return false;
        task.done = true;
        if (--remaining_[e.job] == 0) {
          ClusterJobStats& stats = result_.jobs[e.job];
          stats.completion = e.time;
          stats.mitigated_jct = e.time - stats.arrival;
        }
        push(e.time, EventKind::kMachineRelease, e.job, e.task);
        return true;
      }
      case EventKind::kMachineRelease: {
        TaskState& task = tasks_[e.job][e.task];
        if (task.relaunched) {
          // A finished copy returns the pool machine it borrowed.
          return_machine(task);
        } else if (config_.reclaim_releases) {
          // Dedicated-pool policy: the cluster takes the machine back.
          ++pool_.reclaimed;
        } else {
          // A natural completion donates its own machine to the pool.
          ++pool_.released;
          if (!unlimited_) donate_machine(e.time, task);
        }
        dispatch(e.time);
        return true;
      }
      case EventKind::kRelaunch: {
        TaskState& task = tasks_[e.job][e.task];
        if (task.done) {
          // Defensive: the grant instant coincided with the task's finish.
          return_machine(task);
          dispatch(e.time);
          return false;
        }
        const bool first = !task.relaunched;
        task.relaunched = true;
        task.completion = e.time + copy_latency(task);
        push(task.completion, EventKind::kTaskFinish, e.job, e.task);
        ClusterJobStats& stats = result_.jobs[e.job];
        if (first) ++stats.relaunched;
        if (e.time > task.pending_since) ++stats.waited;
        return true;
      }
      case EventKind::kFlag: {
        TaskState& task = tasks_[e.job][e.task];
        if (task.done) {
          // Only reachable through floating-point timestamp collisions
          // (flag and finish at the same instant): treat as a no-op flag.
          ++result_.jobs[e.job].noop_flags;
          return false;
        }
        if (task.pending) {
          // Injection beat the predictor to it: the task is already in the
          // relaunch path (preempted, or its copy's machine died).
          ++result_.jobs[e.job].noop_flags;
          return false;
        }
        requeue(e.time, e.job, e.task);
        return true;
      }
      case EventKind::kMachineFail: {
        MachineRec& m = machines_[e.task];
        if (m.state == MachineRec::kGone) return false;  // defensive
        ++result_.machine_failures;
        ++pool_.failed;
        if (m.state == MachineRec::kFree) {
          m.state = MachineRec::kGone;
          --pool_.free;  // its heap entry is skipped lazily
          return true;
        }
        // Busy: the copy it was running dies with it; the task re-enters
        // the relaunch path immediately. Exactly one in_use slot is lost —
        // the machine is gone, not freed.
        m.state = MachineRec::kGone;
        --pool_.in_use;
        TaskState& task = tasks_[m.job][m.task];
        task.machine = kNoMachine;
        if (!task.done) {
          task.completion = kInf;  // strand the dead copy's finish event
          requeue(e.time, m.job, m.task);
        }
        return true;
      }
      case EventKind::kPreempt: {
        TaskState& task = tasks_[e.job][e.task];
        // Nothing left to preempt: the draw targeted the ORIGINAL
        // execution, which already finished or was already terminated by a
        // relaunch grant.
        if (task.done || task.relaunched) return false;
        ++result_.jobs[e.job].preempted;
        task.completion = kInf;  // strand the original's finish event
        // If the task is already queued (flagged, waiting for a machine) the
        // preemption just killed the original it was racing; it keeps its
        // queue position.
        if (!task.pending) requeue(e.time, e.job, e.task);
        return true;
      }
    }
    return false;  // unreachable
  }

  std::span<const trace::Job> jobs_;
  const ClusterConfig& config_;
  bool live_ = false;
  bool unlimited_ = false;
  bool hetero_ = false;    ///< machine classes configured
  bool granular_ = false;  ///< per-machine records tracked (finite pools
                           ///< with classes or failure injection)
  bool finished_ = false;
  double watermark_ = 0.0;  ///< highest advance_to() bound reached
  double class_weight_total_ = 0.0;
  std::vector<double> arrivals_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t seq_ = 0;
  std::vector<std::vector<TaskState>> tasks_;
  std::vector<std::size_t> remaining_;
  std::deque<std::pair<std::size_t, std::size_t>> waiting_;
  std::vector<MachineRec> machines_;  ///< granular mode only
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      free_heap_;  ///< free machine ids, lowest first (granular mode only)
  PoolState pool_;
  ClusterResult result_;
};

ClusterEngine::ClusterEngine(std::span<const trace::Job> jobs,
                             std::span<const eval::JobRunResult> runs,
                             const ClusterConfig& config, Rng& rng) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  impl_ = std::make_unique<Impl>(jobs, runs, config, rng, /*live=*/false);
}

ClusterEngine::ClusterEngine(std::span<const trace::Job> jobs,
                             const ClusterConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(jobs, std::span<const eval::JobRunResult>{},
                                   config, rng, /*live=*/true)) {}

ClusterEngine::~ClusterEngine() = default;

std::span<const double> ClusterEngine::arrivals() const {
  return impl_->arrivals_;
}

void ClusterEngine::post_flag(std::size_t job, std::size_t task,
                              std::size_t cp) {
  impl_->post_flag(job, task, cp);
}

void ClusterEngine::advance_to(double watermark) {
  impl_->advance_to(watermark);
}

ClusterResult ClusterEngine::finish() { return impl_->finish(); }

ArrivalProcess batch_arrivals() {
  return [](std::size_t job_count, Rng&) {
    return std::vector<double>(job_count, 0.0);
  };
}

ArrivalProcess fixed_arrivals(std::vector<double> times) {
  return [times = std::move(times)](std::size_t job_count, Rng&) {
    NURD_CHECK(times.size() == job_count,
               "fixed_arrivals size does not match the job count");
    return times;
  };
}

ArrivalProcess poisson_arrivals(double rate) {
  NURD_CHECK(rate > 0.0, "Poisson arrival rate must be positive");
  return [rate](std::size_t job_count, Rng& rng) {
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += rng.exponential(rate);
      a = t;
    }
    return arrivals;
  };
}

ArrivalProcess poisson_spike_arrivals(double rate, double spike_rate,
                                      double spike_begin, double spike_end) {
  NURD_CHECK(rate > 0.0 && spike_rate > 0.0,
             "Poisson arrival rates must be positive");
  NURD_CHECK(spike_begin >= 0.0 && spike_end > spike_begin,
             "spike window must be a non-empty forward interval");
  return [=](std::size_t job_count, Rng& rng) {
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      const bool in_spike = t >= spike_begin && t < spike_end;
      t += rng.exponential(in_spike ? spike_rate : rate);
      a = t;
    }
    return arrivals;
  };
}

ArrivalProcess piecewise_poisson_arrivals(std::vector<RateSegment> schedule) {
  NURD_CHECK(!schedule.empty(), "piecewise schedule needs >= 1 segment");
  NURD_CHECK(schedule.front().begin == 0.0,
             "the first rate segment must begin at 0");
  for (std::size_t s = 0; s < schedule.size(); ++s) {
    NURD_CHECK(schedule[s].rate > 0.0, "piecewise rates must be positive");
    NURD_CHECK(s == 0 || schedule[s].begin > schedule[s - 1].begin,
               "rate segments must begin in strictly ascending order");
  }
  return [schedule = std::move(schedule)](std::size_t job_count, Rng& rng) {
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      double rate = schedule.front().rate;
      for (const auto& seg : schedule) {
        if (t < seg.begin) break;
        rate = seg.rate;
      }
      t += rng.exponential(rate);
      a = t;
    }
    return arrivals;
  };
}

ArrivalProcess diurnal_poisson_arrivals(double base_rate, double amplitude,
                                        double period) {
  NURD_CHECK(base_rate > 0.0, "diurnal base rate must be positive");
  NURD_CHECK(amplitude >= 0.0 && amplitude < 1.0,
             "diurnal amplitude must lie in [0, 1)");
  NURD_CHECK(period > 0.0, "diurnal period must be positive");
  return [=](std::size_t job_count, Rng& rng) {
    constexpr double kTwoPi = 6.283185307179586476925287;
    std::vector<double> arrivals(job_count);
    double t = 0.0;
    for (auto& a : arrivals) {
      const double rate =
          base_rate * (1.0 + amplitude * std::sin(kTwoPi * t / period));
      t += rng.exponential(rate);
      a = t;
    }
    return arrivals;
  };
}

double ClusterResult::mean_reduction_pct() const {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& stats : jobs) total += stats.reduction_pct();
  return total / static_cast<double>(jobs.size());
}

ClusterResult simulate_cluster(std::span<const trace::Job> jobs,
                               std::span<const eval::JobRunResult> runs,
                               const ClusterConfig& config, Rng& rng) {
  return ClusterEngine(jobs, runs, config, rng).finish();
}

std::vector<ClusterResult> simulate_cluster_replicated(
    std::span<const trace::Job> jobs, std::span<const eval::JobRunResult> runs,
    const ClusterConfig& config, std::size_t replications, std::uint64_t seed,
    std::size_t threads) {
  NURD_CHECK(replications > 0, "need at least one replication");
  // Serial fork prefix: replication r's stream depends only on (seed, r), so
  // results are bit-identical at any thread count and prefix-stable when
  // `replications` grows.
  Rng master(seed);
  std::vector<Rng> rngs;
  rngs.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r) rngs.push_back(master.fork());

  std::vector<ClusterResult> out(replications);
  ThreadPool::run_indexed(replications, threads, [&](std::size_t r) {
    out[r] = simulate_cluster(jobs, runs, config, rngs[r]);
  });
  return out;
}

ClusterSummary summarize_replications(std::span<const ClusterResult> results) {
  ClusterSummary summary;
  if (results.empty()) return summary;
  for (const auto& r : results) {
    summary.mean_reduction_pct += r.mean_reduction_pct();
    summary.mean_makespan += r.makespan;
    summary.mean_relaunched += static_cast<double>(r.relaunched);
    summary.mean_waited += static_cast<double>(r.waited);
    summary.max_peak_waiting =
        std::max(summary.max_peak_waiting, r.peak_waiting);
  }
  const double n = static_cast<double>(results.size());
  summary.mean_reduction_pct /= n;
  summary.mean_makespan /= n;
  summary.mean_relaunched /= n;
  summary.mean_waited /= n;
  return summary;
}

}  // namespace nurd::sched
