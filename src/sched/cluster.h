// Event-driven cluster scheduler simulation.
//
// The per-job schedulers in scheduler.h evaluate mitigation one job at a
// time on a checkpoint-quantized clock. This module generalizes them to a
// shared cluster: many jobs run concurrently against ONE spare-machine pool,
// jobs arrive over continuous time under a pluggable arrival process, and
// every state change is an event on a global priority queue:
//
//   kJobArrival     a job's tasks start on their own machines; its
//                   task-finish and flag events enter the queue
//   kTaskFinish     a task (original or relaunched copy) completes; emits a
//                   machine-release at the same instant
//   kMachineRelease a machine is freed (a natural completion donates its
//                   machine to the pool — or the cluster reclaims it under
//                   ClusterConfig::reclaim_releases; a finished relaunch
//                   copy returns the pool machine it borrowed) and a pooled
//                   machine immediately serves the FIFO queue head — no
//                   waiting for a checkpoint boundary
//   kRelaunch       a flagged task's original is terminated and its copy
//                   starts on the granted machine
//   kFlag           the predictor flags a task (at the flagging checkpoint's
//                   absolute time); the task relaunches now if a machine is
//                   free, otherwise joins the cluster-wide FIFO queue
//   kMachineFail    a pool machine dies (scenario injection): a free machine
//                   leaves the pool, a busy one kills the copy it was running
//                   and the task re-enters the relaunch path immediately
//   kPreempt        the cluster preempts a task's ORIGINAL execution
//                   (scenario injection): the original is terminated and the
//                   task re-enters the relaunch path, exactly as if flagged —
//                   but without a predictor decision behind it
//
// Algorithms 2 and 3 are the single-job special cases: with
// machines = kUnlimitedMachines and batch arrivals the simulation reproduces
// schedule_unlimited bit-identically, and with a finite pool it is the
// continuous-time refinement of schedule_limited (relaunches fire at release
// instants instead of the next checkpoint, and releases after the last
// checkpoint still drain the queue — the artifacts the checkpoint-quantized
// loop used to exhibit by construction).
//
// Determinism contract: ALL randomness is consumed in a canonical setup
// order — arrival times in job input order; then (heterogeneous pools only)
// one machine-class draw per initial pool machine in machine-id order; then
// per task, in job input order and task-id order: the relaunch-latency draw
// (per validly flagged task in precomputed mode, per task in live mode),
// the heterogeneity draws (machine class + straggler luck, iff
// machine_classes is non-empty), the machine-failure offset (iff
// machine_mtbf > 0), and the preemption draws (iff preemption_rate > 0).
// The event loop itself draws nothing, so the RNG stream consumed is a
// function of (jobs, flags, arrival process, injection config) only:
// sweeping machine counts or observing events never perturbs the draws, and
// every injection knob consumes ZERO draws when disabled — legacy streams
// are bit-identical. simulate_cluster_replicated fans replications out over
// the ThreadPool with per-replication Rng::fork streams and is bit-identical
// at any thread count, matching the evaluate_method contract.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/harness.h"
#include "trace/job.h"

namespace nurd::sched {

/// Pool size meaning "a machine is always free" (Algorithm 2 semantics).
inline constexpr std::size_t kUnlimitedMachines =
    std::numeric_limits<std::size_t>::max();

/// Event kinds, in processing order at equal timestamps. Finishes (and the
/// releases they emit) precede flags at the same instant, so a machine freed
/// exactly when a task is flagged can serve that task — the same tie rule as
/// the checkpoint-quantized schedule_limited.
enum class EventKind : int {
  kJobArrival = 0,
  kTaskFinish = 1,
  kMachineRelease = 2,
  kRelaunch = 3,
  kFlag = 4,
  // Scenario-injection events sort AFTER flags at the same instant: a task
  // finishing (or being granted a machine) exactly when disaster strikes
  // still counts as having made it.
  kMachineFail = 5,  ///< `task` field carries the pool machine id
  kPreempt = 6,
};

/// One entry of the global event queue. Events order by (time, kind, job,
/// task, seq) — a deterministic total order.
struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kJobArrival;
  std::uint32_t job = 0;
  std::uint32_t task = 0;  ///< 0 for kJobArrival
  std::uint64_t seq = 0;   ///< queue insertion order (final tiebreak)
};

/// Shared-pool accounting, exposed to the event observer. For a finite pool
/// the conservation invariant
///     free + in_use + failed == initial machines + released
/// holds after every event (relaunch grants move free -> in_use, copy
/// returns move in_use -> free, natural-completion donations grow both sides
/// by one, a machine failure moves exactly one machine from free or in_use
/// into failed; reclaimed releases touch neither side).
struct PoolState {
  std::size_t free = 0;       ///< spare machines available (finite pools)
  std::size_t in_use = 0;     ///< pool machines running relaunched copies
  std::size_t released = 0;   ///< natural completions donated to the pool
  std::size_t reclaimed = 0;  ///< natural completions taken back by the
                              ///< cluster (reclaim_releases mode)
  std::size_t failed = 0;     ///< pool machines lost to injected failures
  std::size_t waiting = 0;   ///< queued FIFO entries (tasks that finish
                             ///< while queued are pruned lazily at dispatch)
  bool unlimited = false;    ///< free is meaningless when set
};

/// Job arrival process: absolute arrival times, one per job in input order.
using ArrivalProcess =
    std::function<std::vector<double>(std::size_t job_count, Rng& rng)>;

/// All jobs arrive at t = 0 (consumes no randomness).
ArrivalProcess batch_arrivals();

/// Replays the given absolute arrival times verbatim (consumes no
/// randomness; `times.size()` must equal the simulated job count). This is
/// how the serving layer hands the SAME draws to both sides of a live run:
/// the StreamMonitor draws its arrival offsets once, and the cluster engine
/// replays them instead of re-drawing.
ArrivalProcess fixed_arrivals(std::vector<double> times);

/// Poisson process with the given rate (jobs per unit time): arrival times
/// are cumulative sums of Exponential(rate) inter-arrival gaps.
ArrivalProcess poisson_arrivals(double rate);

/// Poisson process whose rate jumps to `spike_rate` while the running time
/// is inside [spike_begin, spike_end) — the over-budget arrival burst the
/// serving fleet's load-shedding path is exercised under. Each gap is drawn
/// at the rate in force when it starts (a gap straddling a boundary is not
/// re-split — adequate for driving a backlog spike, and it keeps the RNG
/// consumption order trivially deterministic: one exponential per job).
ArrivalProcess poisson_spike_arrivals(double rate, double spike_rate,
                                      double spike_begin, double spike_end);

/// One segment of a piecewise-constant arrival-rate schedule: `rate` applies
/// from `begin` until the next segment's begin (the last segment extends
/// forever). Segments must be in strictly ascending `begin` order and the
/// first must begin at 0.
struct RateSegment {
  double begin = 0.0;
  double rate = 1.0;
};

/// Piecewise-constant Poisson schedule. Like poisson_spike_arrivals, each
/// inter-arrival gap is drawn at the rate in force when it starts — one
/// exponential per job, so the RNG consumption order never depends on where
/// the boundaries fall.
ArrivalProcess piecewise_poisson_arrivals(std::vector<RateSegment> schedule);

/// Diurnal Poisson schedule: rate(t) = base * (1 + amplitude * sin(2*pi *
/// t / period)), evaluated at the start of each inter-arrival gap (one
/// exponential per job). `amplitude` must lie in [0, 1) so the rate stays
/// positive through the trough.
ArrivalProcess diurnal_poisson_arrivals(double base_rate, double amplitude,
                                        double period);

/// One class of a heterogeneous machine pool. A relaunched copy inherits the
/// class of the machine it lands on: its resampled execution time is divided
/// by `speed`, and with probability `straggler_propensity` the copy itself
/// straggles (multiplied by `straggler_factor`). Slow classes carrying high
/// propensity is what makes heterogeneity a scenario axis instead of a
/// constant rescaling — a relaunch can land somewhere worse than the
/// machine it fled.
struct MachineClass {
  std::string name = "standard";
  double weight = 1.0;  ///< sampling weight for class assignment
  double speed = 1.0;   ///< copies run resample / speed on this class
  double straggler_propensity = 0.0;  ///< P(copy straggles on this class)
  double straggler_factor = 3.0;      ///< latency multiplier when it does
};

/// Called after every processed event with the post-event pool state.
/// Stale queue entries (e.g. the natural finish of a task whose original was
/// already terminated) are skipped without observation.
using EventObserver = std::function<void(const Event&, const PoolState&)>;

struct ClusterConfig {
  /// Spare machines shared by all jobs at t = 0 (kUnlimitedMachines for
  /// Algorithm 2 semantics).
  std::size_t machines = 0;
  /// Pool policy for machines freed by natural completions. False (default,
  /// Algorithm 3 semantics): every finishing task donates its machine to the
  /// relaunch pool — with whole batches finishing, donations quickly dwarf
  /// the initial spares. True (dedicated-pool semantics): the cluster
  /// reclaims naturally freed machines for other work, so only the
  /// `machines` reserved spares (recycled as copies finish) serve
  /// relaunches — the regime where spare-count sweeps actually bind.
  bool reclaim_releases = false;
  /// Null means batch_arrivals().
  ArrivalProcess arrivals;
  /// Heterogeneous pool: classes machines are drawn from (by `weight`).
  /// Empty (default) means a homogeneous speed-1 pool and consumes no
  /// randomness. When set, every pool machine — initial spares in machine-id
  /// order, then donated machines through the per-task draws — gets a class,
  /// and relaunch copies run at the speed (and straggler risk) of the
  /// machine they are granted. With kUnlimitedMachines, the per-task class
  /// draw is the class of the fresh machine that task's relaunch lands on.
  std::vector<MachineClass> machine_classes;
  /// Mean time between failures per POOL machine (exponential; absolute for
  /// initial spares, from the donation instant for donated machines).
  /// 0 (default) disables failure injection and consumes no randomness.
  /// Failures are scoped to the relaunch pool — a free machine leaves the
  /// pool, a busy one kills its copy and the task is requeued; originals
  /// running outside the pool are disrupted via `preemption_rate` instead.
  /// Requires a finite pool.
  double machine_mtbf = 0.0;
  /// Per-task probability that the cluster preempts the task's ORIGINAL
  /// execution once, at a uniform point of its lifetime. A preempted task
  /// re-enters the relaunch path (FIFO queue if no machine is free) exactly
  /// as if flagged. 0 (default) disables and consumes no randomness.
  double preemption_rate = 0.0;
  /// Optional event hook (tests, tracing). Must be thread-safe when the
  /// config is shared by simulate_cluster_replicated lanes.
  EventObserver observer;
};

/// Per-job outcome, mirroring ScheduleResult plus cluster timing.
struct ClusterJobStats {
  double arrival = 0.0;         ///< absolute arrival time
  double completion = 0.0;      ///< absolute time the last task finished
  double original_jct = 0.0;    ///< completion time without intervention
  double mitigated_jct = 0.0;   ///< completion - arrival
  std::size_t relaunched = 0;   ///< tasks actually relaunched
  std::size_t waited = 0;       ///< relaunches granted after the flag instant
  std::size_t noop_flags = 0;   ///< flags at/after the task's completion
  std::size_t preempted = 0;    ///< originals killed by injected preemption

  double reduction_pct() const {
    return original_jct > 0.0
               ? 100.0 * (original_jct - mitigated_jct) / original_jct
               : 0.0;
  }
};

/// Outcome of one cluster simulation.
struct ClusterResult {
  std::vector<ClusterJobStats> jobs;  ///< input job order
  double makespan = 0.0;              ///< last completion across the cluster
  std::size_t relaunched = 0;
  std::size_t waited = 0;
  std::size_t noop_flags = 0;
  std::size_t preempted = 0;         ///< injected preemptions that fired
  std::size_t machine_failures = 0;  ///< injected pool-machine deaths
  std::size_t stranded = 0;     ///< tasks still queued when the event queue
                                ///< drained (every pool machine died) —
                                ///< their jobs report no completion
  std::size_t peak_waiting = 0;  ///< FIFO backlog high-water mark
  std::size_t events = 0;        ///< processed (non-stale) events

  /// Mean per-job JCT reduction, percent.
  double mean_reduction_pct() const;
};

/// The event loop behind simulate_cluster, exposed incrementally so callers
/// can interleave simulation with flag PRODUCTION — the serving layer
/// (serve::StreamMonitor) posts each flag the moment its predictor emits it
/// and advances the cluster behind the stream's low watermark, so relaunch
/// decisions are driven live instead of from a precomputed flag table.
///
/// Two modes, differing only in when flags (and therefore relaunch-latency
/// draws) are known:
///   * Precomputed (jobs + runs): exactly simulate_cluster's semantics and
///     RNG stream — one pre-drawn relaunch latency per VALIDLY flagged task.
///     post_flag is forbidden.
///   * Live (jobs only): flags arrive later through post_flag, so the
///     canonical draw order cannot depend on them; the engine pre-draws one
///     relaunch latency per task (job input order, task-id order). The
///     stream is a function of (jobs, arrivals) alone — identical whatever
///     order flags arrive in, which is what makes a concurrent serving run
///     deterministic. Note the live stream therefore differs from the
///     precomputed one (it draws for never-flagged tasks too); the two modes
///     agree event-for-event when fed the same flags AND the same per-task
///     draws, which is what the live parity test pins.
///
/// Ordering contract: advance_to(w) processes every queued event with
/// time < w. A flag must be posted before the watermark passes its
/// checkpoint time (the engine checks); the serving layer guarantees this by
/// advancing only behind its ingestion low watermark. finish() drains
/// everything and returns the result. Not thread-safe — callers serialize
/// (serve::LiveClusterFeed wraps the engine in a mutex).
class ClusterEngine {
 public:
  /// Precomputed mode (the simulate_cluster path). `jobs` and `config` must
  /// outlive the engine; `rng` is consumed during construction only.
  ClusterEngine(std::span<const trace::Job> jobs,
                std::span<const eval::JobRunResult> runs,
                const ClusterConfig& config, Rng& rng);

  /// Live mode: flags arrive via post_flag (see above for the draw order).
  ClusterEngine(std::span<const trace::Job> jobs, const ClusterConfig& config,
                Rng& rng);

  ~ClusterEngine();
  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Absolute arrival time per job (input order), as drawn at construction.
  std::span<const double> arrivals() const;

  /// Live mode only: the predictor flagged `task` of `job` at checkpoint
  /// `cp`. Flags at/after the task's completion count as no-ops (exactly the
  /// precomputed filter); valid flags enqueue a kFlag event at the
  /// checkpoint's absolute time, which must not lie below the watermark
  /// already advanced past.
  void post_flag(std::size_t job, std::size_t task, std::size_t cp);

  /// Processes every queued event with time strictly below `watermark`
  /// (monotone; a lower watermark than already reached is a no-op).
  void advance_to(double watermark);

  /// Drains the remaining events and returns the result. Call once.
  ClusterResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Simulates `jobs` sharing one cluster. `runs[j].flagged_at` supplies each
/// job's predictor flags (checkpoint indices relative to the job's arrival).
/// Flags whose checkpoint time is at or after the task's completion are
/// counted as no-ops, not relaunched.
ClusterResult simulate_cluster(std::span<const trace::Job> jobs,
                               std::span<const eval::JobRunResult> runs,
                               const ClusterConfig& config, Rng& rng);

/// `replications` independent simulations, each on its own Rng forked
/// deterministically from `seed` in replication order, fanned out over
/// `threads` pool lanes (0 = hardware concurrency, 1 = serial). Results are
/// in replication order and bit-identical for every thread count.
std::vector<ClusterResult> simulate_cluster_replicated(
    std::span<const trace::Job> jobs, std::span<const eval::JobRunResult> runs,
    const ClusterConfig& config, std::size_t replications, std::uint64_t seed,
    std::size_t threads = 0);

/// Replication-averaged headline numbers for the scenario sweeps.
struct ClusterSummary {
  double mean_reduction_pct = 0.0;
  double mean_makespan = 0.0;
  double mean_relaunched = 0.0;
  double mean_waited = 0.0;
  std::size_t max_peak_waiting = 0;
};

ClusterSummary summarize_replications(std::span<const ClusterResult> results);

}  // namespace nurd::sched
