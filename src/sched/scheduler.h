// Straggler-mitigation schedulers (paper §5) and the job-completion-time
// simulation behind Figures 4–9.
//
// Both schedulers terminate a predicted straggler and relaunch it on a new
// machine; the relaunched copy's execution time is resampled from the job's
// empirical task latencies (§7.3: "the new completion time for a rescheduled
// task is randomly sampled from the existing execution times").
//
//  * Algorithm 2 (more machines than tasks): a flagged task relaunches
//    immediately at the flagging checkpoint's time.
//  * Algorithm 3 (fewer machines than tasks): relaunches draw from a finite
//    machine pool that starts with `machines` spares and grows as tasks
//    finish and release their machines. Flagged tasks that cannot get a
//    machine wait in FIFO order and keep running in the meantime; a
//    terminated task's own machine is not reused (it is the suspected
//    slow/faulty one — the premise of relaunch-based mitigation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "eval/harness.h"
#include "trace/job.h"

namespace nurd::sched {

/// Outcome of simulating one job under a scheduler.
struct ScheduleResult {
  double original_jct = 0.0;   ///< completion time without intervention
  double mitigated_jct = 0.0;  ///< completion time with relaunches
  std::size_t relaunched = 0;  ///< tasks actually relaunched
  std::size_t waited = 0;      ///< flagged tasks that had to wait ≥1 checkpoint
  std::size_t noop_flags = 0;  ///< flags at/after the task's completion,
                               ///< ignored rather than phantom-relaunched

  /// Reduction in job completion time, percent (positive = improvement).
  double reduction_pct() const {
    return original_jct > 0.0
               ? 100.0 * (original_jct - mitigated_jct) / original_jct
               : 0.0;
  }
};

/// A relaunched copy's execution time: one draw from the job's empirical
/// latency distribution (§7.3). Shared by the per-job schedulers and the
/// event-driven cluster simulator so their draws are interchangeable.
double resample_latency(const trace::Job& job, Rng& rng);

/// Algorithm 2: unlimited machines; flagged tasks relaunch immediately.
/// `flagged_at` maps each task to the checkpoint where the predictor flagged
/// it (eval::kNeverFlagged = never); `rng` drives the latency resampling.
/// A flag whose checkpoint time is at or after the task's completion is a
/// no-op (counted in `noop_flags`, consuming no randomness): the harness
/// never produces such flags, but synthetic flag vectors do, and relaunching
/// an already-finished task would fabricate negative "mitigation".
ScheduleResult schedule_unlimited(const trace::Job& job,
                                  std::span<const std::size_t> flagged_at,
                                  Rng& rng);

/// Algorithm 3: a finite machine pool of `machines` spares (plus machines
/// released by finishing tasks). Queued tasks relaunch at checkpoint times
/// within the horizon; after the final checkpoint the remaining releases and
/// relaunches drain in event order at their actual (continuous) times, so a
/// machine freed past the horizon still serves the FIFO queue.
ScheduleResult schedule_limited(const trace::Job& job,
                                std::span<const std::size_t> flagged_at,
                                std::size_t machines, Rng& rng);

/// Mean JCT reduction of a method over a job set under Algorithm 2.
double mean_reduction_unlimited(std::span<const trace::Job> jobs,
                                std::span<const eval::JobRunResult> runs,
                                std::uint64_t seed);

/// Mean JCT reduction over a job set under Algorithm 3 with `machines`
/// spare machines per job.
double mean_reduction_limited(std::span<const trace::Job> jobs,
                              std::span<const eval::JobRunResult> runs,
                              std::size_t machines, std::uint64_t seed);

}  // namespace nurd::sched
