#include "sched/scheduler.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"

namespace nurd::sched {

double resample_latency(const trace::Job& job, Rng& rng) {
  const auto n = static_cast<std::int64_t>(job.task_count());
  const auto idx = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
  return job.latency(idx);
}

ScheduleResult schedule_unlimited(const trace::Job& job,
                                  std::span<const std::size_t> flagged_at,
                                  Rng& rng) {
  NURD_CHECK(flagged_at.size() == job.task_count(),
             "flag vector length mismatch");
  ScheduleResult result;
  result.original_jct = job.completion_time();

  double jct = 0.0;
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    double completion = job.latency(i);
    if (flagged_at[i] != eval::kNeverFlagged) {
      const double t_flag = job.trace.tau_run(flagged_at[i]);
      if (t_flag < job.latency(i)) {
        // The relaunched copy starts immediately on a fresh machine.
        completion = t_flag + resample_latency(job, rng);
        ++result.relaunched;
      } else {
        // The flag lands at or after the task's completion (synthetic flag
        // vectors only — the harness flags running tasks): ignore it without
        // consuming a draw rather than phantom-relaunch a finished task.
        ++result.noop_flags;
      }
    }
    jct = std::max(jct, completion);
  }
  result.mitigated_jct = jct;
  return result;
}

ScheduleResult schedule_limited(const trace::Job& job,
                                std::span<const std::size_t> flagged_at,
                                std::size_t machines, Rng& rng) {
  NURD_CHECK(flagged_at.size() == job.task_count(),
             "flag vector length mismatch");
  ScheduleResult result;
  result.original_jct = job.completion_time();

  const std::size_t n = job.task_count();
  const std::size_t T = job.checkpoint_count();

  // completion[i] starts at the uninterfered latency and is overwritten when
  // the task is actually relaunched.
  std::vector<double> completion(job.latencies().begin(),
                                 job.latencies().end());

  std::size_t pool = machines;
  std::deque<std::size_t> waiting;  // FIFO queue of flagged, unlaunched tasks
  double prev_tau = 0.0;

  for (std::size_t t = 0; t < T; ++t) {
    const double tau = job.trace.tau_run(t);

    // Machines released by tasks that finished in (prev_tau, tau]. Tasks that
    // were relaunched release the pool machine they took when their copy
    // finishes; unflagged and still-waiting tasks release their original
    // machine at their natural completion.
    for (std::size_t i = 0; i < n; ++i) {
      const double done = completion[i];
      if (done > prev_tau && done <= tau) ++pool;
    }

    // Tasks flagged at this checkpoint join the queue. A flag on a task that
    // already finished by the flag's checkpoint time (synthetic flag vectors
    // only) is a no-op, matching schedule_unlimited.
    for (std::size_t i = 0; i < n; ++i) {
      if (flagged_at[i] != t) continue;
      if (job.latency(i) > tau) {
        waiting.push_back(i);
      } else {
        ++result.noop_flags;
      }
    }

    // Drop waiting tasks that finished on their own before this checkpoint.
    std::deque<std::size_t> still_waiting;
    for (auto i : waiting) {
      if (job.latency(i) <= tau) continue;  // finished while queued
      still_waiting.push_back(i);
    }
    waiting.swap(still_waiting);

    // Relaunch in FIFO order while machines remain.
    while (!waiting.empty() && pool > 0) {
      const std::size_t i = waiting.front();
      waiting.pop_front();
      --pool;
      completion[i] = tau + resample_latency(job, rng);
      ++result.relaunched;
      if (flagged_at[i] != eval::kNeverFlagged &&
          job.trace.tau_run(flagged_at[i]) < tau) {
        ++result.waited;
      }
    }
    prev_tau = tau;
  }

  // Drain past the horizon: machines released after the final checkpoint
  // still serve the FIFO queue. There is no checkpoint grid left to quantize
  // to, so releases and relaunches proceed in event order at their actual
  // completion times — the event-driven core in miniature. Without this,
  // tasks still waiting when the checkpoint loop ends are silently never
  // relaunched (and never counted in `waited`).
  if (!waiting.empty()) {
    using Release = std::pair<double, std::size_t>;
    std::priority_queue<Release, std::vector<Release>, std::greater<Release>>
        pending;
    for (std::size_t i = 0; i < n; ++i) {
      if (completion[i] > prev_tau) pending.emplace(completion[i], i);
    }
    // A relaunched task leaves a stranded heap entry at its original
    // latency. The timestamp test alone cannot reject it when the copy's
    // completion collides with that latency exactly (resamples come from
    // the job's own latency set, so exact collisions are routine), so each
    // task is additionally capped at one release.
    std::vector<bool> released(n, false);
    while (!waiting.empty() && !pending.empty()) {
      const auto [now, who] = pending.top();
      pending.pop();
      if (completion[who] != now || released[who]) continue;
      released[who] = true;
      ++pool;
      while (!waiting.empty() && pool > 0) {
        const std::size_t i = waiting.front();
        waiting.pop_front();
        if (job.latency(i) <= now) continue;  // finished while queued
        --pool;
        completion[i] = now + resample_latency(job, rng);
        ++result.relaunched;
        // Every flag checkpoint lies within the horizon, so a post-horizon
        // relaunch waited by definition.
        ++result.waited;
        pending.emplace(completion[i], i);
      }
    }
  }

  double jct = 0.0;
  for (std::size_t i = 0; i < n; ++i) jct = std::max(jct, completion[i]);
  result.mitigated_jct = jct;
  return result;
}

double mean_reduction_unlimited(std::span<const trace::Job> jobs,
                                std::span<const eval::JobRunResult> runs,
                                std::uint64_t seed) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  NURD_CHECK(!jobs.empty(), "no jobs");
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    total +=
        schedule_unlimited(jobs[j], runs[j].flagged_at, rng).reduction_pct();
  }
  return total / static_cast<double>(jobs.size());
}

double mean_reduction_limited(std::span<const trace::Job> jobs,
                              std::span<const eval::JobRunResult> runs,
                              std::size_t machines, std::uint64_t seed) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  NURD_CHECK(!jobs.empty(), "no jobs");
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    total += schedule_limited(jobs[j], runs[j].flagged_at, machines, rng)
                 .reduction_pct();
  }
  return total / static_cast<double>(jobs.size());
}

}  // namespace nurd::sched
