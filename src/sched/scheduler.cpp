#include "sched/scheduler.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace nurd::sched {

namespace {

// A relaunched copy's execution time: one draw from the job's empirical
// latency distribution.
double resample_latency(const trace::Job& job, Rng& rng) {
  const auto n = static_cast<std::int64_t>(job.task_count());
  const auto idx = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
  return job.latency(idx);
}

}  // namespace

ScheduleResult schedule_unlimited(const trace::Job& job,
                                  std::span<const std::size_t> flagged_at,
                                  Rng& rng) {
  NURD_CHECK(flagged_at.size() == job.task_count(),
             "flag vector length mismatch");
  ScheduleResult result;
  result.original_jct = job.completion_time();

  double jct = 0.0;
  for (std::size_t i = 0; i < job.task_count(); ++i) {
    double completion = job.latency(i);
    if (flagged_at[i] != eval::kNeverFlagged) {
      const double t_flag = job.trace.tau_run(flagged_at[i]);
      // The harness only flags running tasks, so t_flag < latency holds; the
      // relaunched copy starts immediately on a fresh machine.
      completion = t_flag + resample_latency(job, rng);
      ++result.relaunched;
    }
    jct = std::max(jct, completion);
  }
  result.mitigated_jct = jct;
  return result;
}

ScheduleResult schedule_limited(const trace::Job& job,
                                std::span<const std::size_t> flagged_at,
                                std::size_t machines, Rng& rng) {
  NURD_CHECK(flagged_at.size() == job.task_count(),
             "flag vector length mismatch");
  ScheduleResult result;
  result.original_jct = job.completion_time();

  const std::size_t n = job.task_count();
  const std::size_t T = job.checkpoint_count();

  // completion[i] starts at the uninterfered latency and is overwritten when
  // the task is actually relaunched.
  std::vector<double> completion(job.latencies().begin(),
                                 job.latencies().end());
  std::vector<bool> relaunched(n, false);

  std::size_t pool = machines;
  std::deque<std::size_t> waiting;  // FIFO queue of flagged, unlaunched tasks
  double prev_tau = 0.0;

  for (std::size_t t = 0; t < T; ++t) {
    const double tau = job.trace.tau_run(t);

    // Machines released by tasks that finished in (prev_tau, tau]. Tasks that
    // were relaunched release the pool machine they took when their copy
    // finishes; unflagged and still-waiting tasks release their original
    // machine at their natural completion.
    for (std::size_t i = 0; i < n; ++i) {
      const double done = completion[i];
      if (done > prev_tau && done <= tau) ++pool;
    }

    // Tasks flagged at this checkpoint join the queue (drop any that
    // happened to finish while the prediction was made).
    for (std::size_t i = 0; i < n; ++i) {
      if (flagged_at[i] == t && job.latency(i) > tau) waiting.push_back(i);
    }

    // Drop waiting tasks that finished on their own before this checkpoint.
    std::deque<std::size_t> still_waiting;
    for (auto i : waiting) {
      if (job.latency(i) <= tau) continue;  // finished while queued
      still_waiting.push_back(i);
    }
    waiting.swap(still_waiting);

    // Relaunch in FIFO order while machines remain.
    while (!waiting.empty() && pool > 0) {
      const std::size_t i = waiting.front();
      waiting.pop_front();
      --pool;
      completion[i] = tau + resample_latency(job, rng);
      relaunched[i] = true;
      ++result.relaunched;
      if (flagged_at[i] != eval::kNeverFlagged &&
          job.trace.tau_run(flagged_at[i]) < tau) {
        ++result.waited;
      }
    }
    prev_tau = tau;
  }

  double jct = 0.0;
  for (std::size_t i = 0; i < n; ++i) jct = std::max(jct, completion[i]);
  result.mitigated_jct = jct;
  return result;
}

double mean_reduction_unlimited(std::span<const trace::Job> jobs,
                                std::span<const eval::JobRunResult> runs,
                                std::uint64_t seed) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  NURD_CHECK(!jobs.empty(), "no jobs");
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    total +=
        schedule_unlimited(jobs[j], runs[j].flagged_at, rng).reduction_pct();
  }
  return total / static_cast<double>(jobs.size());
}

double mean_reduction_limited(std::span<const trace::Job> jobs,
                              std::span<const eval::JobRunResult> runs,
                              std::size_t machines, std::uint64_t seed) {
  NURD_CHECK(jobs.size() == runs.size(), "jobs/runs length mismatch");
  NURD_CHECK(!jobs.empty(), "no jobs");
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    total += schedule_limited(jobs[j], runs[j].flagged_at, machines, rng)
                 .reduction_pct();
  }
  return total / static_cast<double>(jobs.size());
}

}  // namespace nurd::sched
