// The per-shard serving engine: the execution core StreamMonitor (one shard,
// the whole fleet) and ShardedMonitor (N shards) share.
//
// A ShardEngine owns NO policy. It is handed a finished plan — the job
// sessions to drive, the admission-ordered event list (each event optionally
// marked shed or handoff-gated) — and executes it: admits events under a
// bounded in-flight window, runs the four pipeline stages per checkpoint on
// its private ThreadPool (task-DAG pipelined by default, serial lanes or the
// fully serialized inline loop otherwise), emits flags through the hook
// sink, and reports wall-clock stats. Everything that DECIDES — arrival
// draws, placement, tenant quotas, shed selection, drain boundaries — lives
// in the frontends, computed in simulated time before execution starts, so
// engine scheduling can never feed back into the decision plane. That
// one-way split is what makes the serving layer's determinism contract
// (flag-set identity at any shard count x thread count) hold by
// construction rather than by testing alone.
//
// Sessions are owned by the caller and handed in by span: in the sharded
// fleet a job's session outlives the engine that started it — a drained
// shard's jobs migrate, sessions intact, to another engine, which resumes
// the per-checkpoint protocol exactly where the source stopped (the
// wait_boundary handshake below orders the two engines).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/predictor.h"
#include "eval/harness.h"
#include "trace/job.h"

namespace nurd::serve {

/// One flag decision, as handed to the sink at emission time.
struct FlagDecision {
  std::size_t job = 0;         ///< job input index
  std::size_t task = 0;        ///< task id within the job
  std::size_t checkpoint = 0;  ///< checkpoint the predictor flagged at
  double time = 0.0;           ///< simulated event time: arrival + τrun(cp)
  std::size_t shard = 0;       ///< serving shard (0 outside ShardedMonitor)
  std::size_t tenant = 0;      ///< tenant id (0 outside ShardedMonitor)
};

/// Flag sink. Invoked from pool workers (inside the Flag stage) while run()
/// is in progress: calls for one job arrive in checkpoint order; calls for
/// different jobs may be concurrent — implementations synchronize (see
/// serve::LiveClusterFeed).
using FlagSink = std::function<void(const FlagDecision&)>;

/// Which concurrent executor run() schedules stage work on. Irrelevant at
/// threads == 1 (always the inline serialized loop).
enum class ExecutorMode {
  /// The task-DAG pipeline (core/task_dag.h): per-checkpoint stages with
  /// explicit edges; stages of different checkpoints of one job overlap.
  kDag,
  /// The per-job serial lanes the DAG replaced — one monolithic step per
  /// checkpoint, one drain task per job at a time. Kept as the baseline
  /// bench_serve compares DAG tail latency against.
  kSerialLanes,
};

/// A job's managed serving session: predictor + harness stepper + the
/// per-checkpoint scratch ring the DAG stages hand off through (cell
/// t % ring.size(); reuse is safe under the executor's window edge). Owned
/// by the frontend so it survives engine handoffs.
struct JobSession {
  std::unique_ptr<core::StragglerPredictor> predictor;
  std::optional<eval::OnlineJobRun> run;
  std::vector<eval::CheckpointScratch> ring;
};

/// "This event waits for no handoff."
inline constexpr std::size_t kNoHandoff = std::numeric_limits<std::size_t>::max();

/// One admission-plan entry: checkpoint `checkpoint` of job `job` becomes
/// observable at simulated time `time`. The list handed to an engine is the
/// shard's slice of the global plan, ascending in plan admission order
/// (which preserves each job's checkpoint order).
struct EngineEvent {
  double time = 0.0;
  std::uint32_t job = 0;
  std::uint32_t checkpoint = 0;
  /// Load-shed: the checkpoint's model work is skipped (cursors advance,
  /// confusion carries forward, no new flags). Decided by the plan, never
  /// by the engine.
  bool shed = false;
  /// != kNoHandoff: the job migrated here from another engine, and this is
  /// its first event on this one. Admission blocks in hooks.wait_handoff
  /// until the source engine retired every checkpoint below the boundary.
  std::size_t wait_boundary = kNoHandoff;
};

struct EngineConfig {
  /// Stage workers: 1 (default) = fully serialized on the calling thread in
  /// event order — the bit-parity reference; 0 = hardware concurrency;
  /// N = a private pool of N workers.
  std::size_t threads = 1;
  /// Admission bound: at most this many checkpoint events in flight
  /// (admitted, not yet retired). 0 = 4 workers' worth.
  std::size_t max_inflight = 0;
  /// Concurrent executor (see ExecutorMode).
  ExecutorMode executor = ExecutorMode::kDag;
  /// Per-job in-flight window of the DAG executor (>= 2 to overlap).
  std::size_t window = 4;
};

/// Frontend callbacks. Only `sink` is optional; the handoff hooks are
/// needed (and installed) only by the sharded fleet.
struct EngineHooks {
  /// Flag delivery (outside every engine lock, before the event retires).
  FlagSink sink;
  /// Blocks until the event's job may start here: its previous engine has
  /// retired every checkpoint below `boundary`. Returns false to abandon
  /// (fleet abort) — the engine then drops the job's remaining events.
  /// Called on the admission thread, outside engine locks.
  std::function<bool(std::size_t job, std::size_t boundary)> wait_handoff;
  /// Checkpoint (job, checkpoint) fully retired: stages done, flags
  /// delivered. Called outside engine locks; per job, calls arrive in
  /// checkpoint order for COMPLETED checkpoints (error-path abandonment may
  /// skip). The fleet uses this to release handoff waiters.
  std::function<void(std::size_t job, std::size_t checkpoint)> retired;
};

/// Wall-clock execution stats of one engine run. Latencies stay raw (and
/// job-attributed) so frontends can aggregate per-fleet and per-tenant.
struct EngineStats {
  std::size_t processed = 0;  ///< checkpoint events completed
  std::size_t flags = 0;      ///< decisions emitted
  std::size_t shed = 0;       ///< shed events executed (skipped model work)
  std::size_t workers = 0;    ///< stage workers used
  std::size_t peak_backlog = 0;
  double wall_seconds = 0.0;
  struct Latency {
    std::uint32_t job = 0;
    double seconds = 0.0;  ///< admission -> checkpoint retired
  };
  std::vector<Latency> latencies;
  /// Cumulative busy seconds per pipeline stage (indexed by core::Stage).
  std::array<double, 4> stage_seconds{};
};

/// Executes one shard's slice of a serving plan. Single-use: construct,
/// run() once (from any one thread — the fleet runs one driver thread per
/// engine), read stats. `jobs` and `sessions` are fleet-wide and indexed by
/// EngineEvent::job; sessions of jobs never appearing in `events` are
/// untouched.
class ShardEngine {
 public:
  ShardEngine(std::span<const trace::Job> jobs, std::span<JobSession> sessions,
              std::vector<EngineEvent> events, EngineConfig config,
              EngineHooks hooks);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Stream low watermark: every event with time strictly below it has been
  /// fully processed (flags emitted). Safe from any thread mid-run.
  double low_watermark() const;

  /// Runs the plan slice to completion. Call once. Throws the first stage
  /// error after draining.
  void run();

  const EngineStats& stats() const;  ///< valid after run()

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nurd::serve
