// The concurrent serving layer: many jobs' checkpoint streams multiplexed
// over one shared ThreadPool.
//
// The batch harness (eval::run_method) owns whole jobs end-to-end — fine for
// reproducing Table 3, but nothing like the regime the paper's Algorithm 1
// is written for, where a monitor watches MANY jobs stream checkpoints
// concurrently against shared compute. StreamMonitor is that serving loop:
//
//   * every job gets a managed predictor session — a fresh registry
//     predictor plus an eval::OnlineJobRun stepper (the exact per-checkpoint
//     protocol run_job uses, shared code, not a copy) — created with
//     RefitPolicy::kIncremental by default, because a serving session
//     maintains its models between checkpoints rather than rebuilding them;
//   * checkpoint events arrive interleaved across jobs through a
//     Replay-backed ingestion queue: each job's arrival offset comes from a
//     pluggable sched::ArrivalProcess (batch or Poisson, exactly the cluster
//     simulator's processes), each checkpoint's event time is
//     arrival + τrun, and the merged queue is admitted in ascending event
//     time under a bounded in-flight window;
//   * admitted checkpoints execute on the task-DAG executor
//     (core/task_dag.h): each checkpoint is four stage tasks — featurize →
//     refit → predict → flag — and the executor's edges give the PER-JOB
//     ORDERING GUARANTEE the models need: checkpoint t+1's refit never
//     observes state newer than checkpoint t's model (the refit chain), and
//     flag emission order within a job follows checkpoint order. Unlike the
//     serial lanes this replaced, stages of DIFFERENT checkpoints of the
//     same job overlap — checkpoint t+1 featurizes while t refits — which
//     is where the tail-latency win at high concurrency comes from;
//   * every flag decision is pushed to a caller-provided FlagSink the moment
//     the predictor emits it — serve::LiveClusterFeed forwards them into the
//     event-driven cluster simulator so predictions drive relaunch decisions
//     live.
//
// Determinism contract (tests/test_stream_monitor.cpp pins all three):
//   * threads == 1 serializes the whole loop on the calling thread in global
//     event-time order; the emitted flags and per-job records are
//     BIT-IDENTICAL to eval::run_method over the same jobs — serving is the
//     batch harness re-scheduled, never a second implementation;
//   * any thread count and either executor produce bit-identical per-job
//     records: the executor decides only WHEN stage tasks run, never what
//     they compute (its edges are the data dependencies; every parallel
//     loop below a stage honors the ThreadPool determinism contract), so
//     the flag SET is identical at 1, 4, or 16 workers — only sink emission
//     ORDER across jobs varies;
//   * the wall-clock stats (latency percentiles, backlog, throughput) are of
//     course run-dependent; everything else is reproducible from the seeds.
//
// Implementation note: the execution core — admission window, stage
// dispatch, executors, stats — lives in serve/shard_engine.h. StreamMonitor
// is the single-shard frontend over one ShardEngine; serve/shard_pool.h
// (ShardedMonitor) runs N of them as a fleet. StreamMonitor owns the plan
// for its engine: draw arrivals, build the merged event queue, done.
//
// Thread-safety: a StreamMonitor instance is driven by one caller thread
// (construct, run(), collect). The FlagSink is the one callback that crosses
// lanes: calls for a single job arrive in checkpoint order, calls for
// different jobs arrive concurrently — the sink synchronizes internally.
// low_watermark() is safe from any thread (sinks query it mid-run).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/registry.h"
#include "eval/harness.h"
#include "sched/cluster.h"
#include "serve/shard_engine.h"  // FlagDecision, FlagSink, ExecutorMode
#include "trace/job.h"

namespace nurd::serve {

struct StreamMonitorConfig {
  /// Straggler percentile (the harness's pct parameter).
  double pct = 90.0;
  /// Serving workers: 1 (default) = fully serialized on the calling thread
  /// in global event order — the bit-parity reference; 0 = hardware
  /// concurrency; N = a pool of N workers.
  std::size_t threads = 1;
  /// Admission bound: at most this many checkpoint events in flight
  /// (admitted, not yet retired). 0 = 4 workers' worth. Backlog and
  /// decision latency are measured against this window.
  std::size_t max_inflight = 0;
  /// Concurrent executor (see ExecutorMode).
  ExecutorMode executor = ExecutorMode::kDag;
  /// Per-job in-flight window of the DAG executor: at most this many
  /// checkpoints of ONE job have stages in flight at once (the scratch-cell
  /// ring bound; core/task_dag.h). At least 2 to overlap at all.
  std::size_t window = 4;
  /// Per-job arrival offsets (null = sched::batch_arrivals(), everything at
  /// t = 0). Drawn once at construction from `arrival_seed`.
  sched::ArrivalProcess arrivals;
  std::uint64_t arrival_seed = 0;
  /// Flag sink (may be null). Sinks that need the monitor itself — like
  /// LiveClusterFeed, which queries low_watermark() — are installed after
  /// construction via StreamMonitor::set_sink instead.
  FlagSink sink;
  /// Refit policy applied by the name-based constructor (serving default:
  /// incremental — a session maintains its models, it does not rebuild them).
  core::RefitPolicy refit = core::RefitPolicy::kIncremental;
};

/// Wall-clock serving statistics for one run().
struct ServeStats {
  std::size_t jobs = 0;
  std::size_t checkpoints = 0;  ///< events processed
  std::size_t flags = 0;        ///< decisions emitted
  std::size_t lanes = 0;        ///< executor workers used
  std::size_t peak_backlog = 0;  ///< max events in flight at once
  double wall_seconds = 0.0;
  double checkpoints_per_sec = 0.0;
  /// Decision latency: admission of a checkpoint event to its checkpoint
  /// retiring (queue wait + all four stages, flags emitted), per event.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Cumulative busy time per pipeline stage (featurize, refit, predict,
  /// flag — indexed by core::Stage), summed across workers. Together with
  /// wall_seconds this is the stage share of the run: with S workers,
  /// sum(stage_seconds) / (S * wall_seconds) is executor utilization.
  std::array<double, 4> stage_seconds{};
};

/// Outcome of one serving run.
struct ServeResult {
  /// Per-job records in job input order — bit-identical to
  /// eval::run_method(method, jobs, pct) at any thread count.
  std::vector<eval::JobRunResult> runs;
  ServeStats stats;
};

class StreamMonitor {
 public:
  /// Serves `jobs` with one fresh `method` predictor per job. The jobs (and
  /// any sink state) must outlive the monitor.
  StreamMonitor(std::span<const trace::Job> jobs,
                core::NamedPredictor method, StreamMonitorConfig config = {});

  /// Registry convenience: looks up `method` with `registry.refit` forced to
  /// `config.refit` (kIncremental unless overridden — the serving default).
  StreamMonitor(std::span<const trace::Job> jobs, const std::string& method,
                core::RegistryConfig registry,
                StreamMonitorConfig config = {});

  ~StreamMonitor();
  StreamMonitor(const StreamMonitor&) = delete;
  StreamMonitor& operator=(const StreamMonitor&) = delete;

  /// Absolute arrival offset per job, as drawn at construction — hand these
  /// to sched::fixed_arrivals so a live cluster replays the same times.
  std::span<const double> arrivals() const;

  /// Installs (or replaces) the flag sink. Must be called before run();
  /// exists because a sink like LiveClusterFeed is constructed FROM the
  /// monitor (it replays the monitor's arrival schedule), so it cannot be in
  /// the config yet.
  void set_sink(FlagSink sink);

  /// Stream low watermark: every checkpoint event with time strictly below
  /// it has been fully processed (its flags emitted). Callable from sinks
  /// mid-run; this is the bound LiveClusterFeed advances the cluster engine
  /// to.
  double low_watermark() const;

  /// Serves every checkpoint of every job. Call once.
  ServeResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nurd::serve
