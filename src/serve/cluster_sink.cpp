#include "serve/cluster_sink.h"

#include <utility>
#include <vector>

namespace nurd::serve {

namespace {

sched::ClusterConfig with_monitor_arrivals(sched::ClusterConfig config,
                                           const StreamMonitor& monitor) {
  const auto times = monitor.arrivals();
  config.arrivals =
      sched::fixed_arrivals(std::vector<double>(times.begin(), times.end()));
  return config;
}

}  // namespace

LiveClusterFeed::LiveClusterFeed(std::span<const trace::Job> jobs,
                                 sched::ClusterConfig config,
                                 const StreamMonitor& monitor,
                                 std::uint64_t seed)
    : monitor_(&monitor),
      config_(with_monitor_arrivals(std::move(config), monitor)),
      rng_(seed),
      engine_(jobs, config_, rng_) {}

FlagSink LiveClusterFeed::sink() {
  return [this](const FlagDecision& flag) {
    MutexLock lock(mutex_);
    engine_.post_flag(flag.job, flag.task, flag.checkpoint);
    // Safe to advance: the monitor's watermark still covers this flag's
    // event (its time leaves the in-flight set only after the sink returns),
    // and the engine stops strictly below the bound. low_watermark() takes
    // the monitor's lock while we hold ours — the codebase's single nested
    // acquisition, feed → monitor (documented in common/sync.h); the monitor
    // never calls the sink with its lock held, so the order cannot invert.
    engine_.advance_to(monitor_->low_watermark());
  };
}

sched::ClusterResult LiveClusterFeed::finish() {
  MutexLock lock(mutex_);
  return engine_.finish();
}

}  // namespace nurd::serve
