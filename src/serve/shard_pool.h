// The sharded multi-tenant serving fleet: N StreamMonitor-class shards —
// each a ShardEngine with its own ThreadPool and task-DAG executor — behind
// a job-placement policy, per-tenant admission quotas, QoS-tiered
// load-shedding, and graceful shard drain/rebalance.
//
// Two planes, strictly one-way:
//
//   PLAN (simulated time, deterministic)        EXECUTE (wall clock)
//   ─────────────────────────────────────       ─────────────────────────
//   arrival draws → per-tenant GCRA quota   →   one driver thread + engine
//   deferral → placement (+ drain           →   per shard; handoff
//   re-placement) → modeled per-shard       →   handshakes order migrated
//   backlog → QoS-tiered shed marks         →   jobs across engines
//
// Every DECISION — which shard a job serves on, when a tenant's event is
// admitted, which checkpoints are shed, where a drained shard's jobs go —
// is computed in the plan plane as a pure function of (jobs, arrival
// process, seeds, config) before any worker exists. Execution timing can
// reorder WHEN stage work runs, never WHAT it computes. Consequences,
// pinned by tests/test_shard_pool.cpp:
//
//   * flag-set identity across shard count × thread count: with shedding
//     off, the per-job records (and therefore the flag set) are
//     bit-identical at shards ∈ {1, 2, 4} × workers ∈ {1, 4} — and equal to
//     eval::run_method — because each job's session runs the same
//     per-checkpoint protocol wherever it is placed;
//   * quotas never change decisions: GCRA deferral shifts an event's
//     ADMISSION time, and per-tenant token times are monotone, so each
//     job's checkpoint order is preserved — an over-quota tenant queues
//     behind its own budget, it does not starve others, and nobody's flags
//     change;
//   * shedding is deterministic at a fixed config: shed marks come from the
//     modeled backlog (per-shard FCFS at `service_rate` in simulated time),
//     so reruns shed the same checkpoints. Only events of QoS classes below
//     `shed_floor` are ever shed, never a job's final checkpoint, and never
//     an already-admitted event (marks are planned pre-admission);
//   * drain/rebalance preserves the per-job checkpoint serial lane: a
//     drained shard finishes its admitted work, its jobs re-place onto open
//     shards, and the receiving engine blocks the job's first event until
//     the source retired everything below the boundary — the flag set is
//     bit-identical to the undrained run. Handoffs only ever leave drained
//     shards and drained shards never reopen, so handoff waits cannot form
//     a cycle.
//
// Lock ordering (see common/sync.h): ShardedMonitor::mutex_ is taken by
// engine callbacks (retired / wait_handoff) that hold no engine lock, and
// never calls into engines while held — it nests with nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/registry.h"
#include "sched/cluster.h"
#include "serve/placement.h"
#include "serve/stream_monitor.h"
#include "trace/job.h"

namespace nurd::serve {

/// QoS class of a tenant's traffic, lowest first. Shedding consumes classes
/// strictly below the configured floor; admission quotas are orthogonal.
enum class QoS : std::uint8_t {
  kBatch = 0,        ///< throughput traffic; first to shed
  kStandard = 1,     ///< default
  kInteractive = 2,  ///< latency-sensitive; sheds only if the floor says so
};

/// One tenant of the fleet. Jobs map to tenants via
/// ShardedMonitorConfig::tenant_of.
struct TenantSpec {
  std::string name = "default";
  QoS qos = QoS::kStandard;
  /// Admission quota: sustained checkpoint events per simulated second a
  /// tenant may admit (GCRA token bucket). 0 = unmetered.
  double quota_rate = 0.0;
  /// Burst allowance in events at quota_rate (GCRA limit = burst /
  /// quota_rate seconds). Meaningful only with quota_rate > 0.
  double quota_burst = 8.0;
};

/// Scheduled drain: shard `shard` stops accepting placements at simulated
/// time `time`; its jobs re-place at their next planned event. Drained
/// shards never reopen.
struct DrainEvent {
  double time = 0.0;
  std::size_t shard = 0;
};

struct ShardedMonitorConfig {
  /// Straggler percentile (the harness's pct parameter).
  double pct = 90.0;
  /// Shard count (engines). 1 with threads == 1 is the serialized
  /// bit-parity reference.
  std::size_t shards = 1;
  /// Stage workers PER SHARD (ShardEngine threads; 1 = that shard runs
  /// serialized on its driver thread).
  std::size_t threads = 1;
  /// Per-shard admission bound (0 = 4 workers' worth).
  std::size_t max_inflight = 0;
  /// Concurrent executor per shard.
  ExecutorMode executor = ExecutorMode::kDag;
  /// Per-job DAG window per shard.
  std::size_t window = 4;
  /// Per-job arrival offsets (null = batch). Drawn once from arrival_seed.
  sched::ArrivalProcess arrivals;
  std::uint64_t arrival_seed = 0;
  /// Placement policy (null = hash_placement()) and its seed.
  PlacementPolicy placement;
  std::uint64_t placement_seed = 0;
  /// Fleet tenants (empty = one unmetered kStandard "default" tenant).
  std::vector<TenantSpec> tenants;
  /// Tenant index per job (empty = every job tenant 0). Values index
  /// `tenants`.
  std::vector<std::size_t> tenant_of;
  /// Modeled per-shard service rate, checkpoint events per simulated
  /// second, for the backlog model that drives shedding and the virtual
  /// latency metrics. 0 = model off (no shedding, no virtual latencies).
  double service_rate = 0.0;
  /// Backlog budget (modeled events queued on one shard) above which
  /// shedding engages. 0 = shedding off. A class q event is shed when the
  /// modeled backlog exceeds budget * (1 + q) — lower classes shed earlier.
  std::size_t shed_budget = 0;
  /// Only QoS classes strictly BELOW this floor are ever shed.
  QoS shed_floor = QoS::kInteractive;
  /// Scheduled shard drains (simulated time).
  std::vector<DrainEvent> drains;
  /// Flag sink; decisions carry shard + tenant. May be null.
  FlagSink sink;
  /// Refit policy applied by the name-based constructor.
  core::RefitPolicy refit = core::RefitPolicy::kIncremental;
};

/// The deterministic admission plan — inspectable before run() (tests and
/// the bench assert against it directly).
struct ShardPlan {
  struct Event {
    double eligible = 0.0;   ///< arrival + τrun: when the event exists
    double admission = 0.0;  ///< eligible + quota deferral
    double virtual_latency = 0.0;  ///< modeled finish - eligible (model on)
    std::uint32_t job = 0;
    std::uint32_t checkpoint = 0;
    std::uint32_t shard = 0;
    std::uint32_t tenant = 0;
    bool shed = false;
    bool deferred = false;  ///< admission > eligible (quota held it)
  };
  /// Every checkpoint event, ascending (admission, job, checkpoint).
  std::vector<Event> events;
  /// Absolute arrival offset per job (the draw fixed_arrivals can replay).
  std::vector<double> arrivals;
  /// Tenant index per job (resolved).
  std::vector<std::size_t> tenant_of;
  /// First-placement shard per job.
  std::vector<std::size_t> home_shard;
  struct Handoff {
    std::uint32_t job = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    /// First checkpoint served by `to`; `from` retired everything below.
    std::uint32_t boundary = 0;
  };
  std::vector<Handoff> handoffs;
  std::size_t shed_events = 0;
  std::size_t deferred_events = 0;
};

/// Per-shard wall-clock stats of one fleet run.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t jobs = 0;  ///< jobs that served ≥ 1 event here
  std::size_t checkpoints = 0;
  std::size_t flags = 0;
  std::size_t shed = 0;
  std::size_t peak_backlog = 0;
  double wall_seconds = 0.0;
  double checkpoints_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Per-tenant stats: wall-clock latency plus the plan-plane (virtual)
/// metrics the fairness contract is asserted on — virtual numbers are
/// exactly reproducible, wall numbers are not.
struct TenantStats {
  std::string name;
  QoS qos = QoS::kStandard;
  std::size_t jobs = 0;
  std::size_t checkpoints = 0;
  std::size_t deferred = 0;  ///< events the quota held back
  std::size_t shed = 0;
  double max_deferral_s = 0.0;  ///< simulated seconds
  /// Modeled admission→finish latency percentiles (simulated ms; 0 when
  /// the service model is off).
  double p50_virtual_ms = 0.0;
  double p99_virtual_ms = 0.0;
  double p50_latency_ms = 0.0;  ///< wall clock
  double p99_latency_ms = 0.0;
};

/// Outcome of one fleet run.
struct FleetResult {
  /// Per-job records in job input order — with shedding off, bit-identical
  /// to eval::run_method at any shard × thread count.
  std::vector<eval::JobRunResult> runs;
  /// Fleet-wide totals (peak_backlog sums the per-shard peaks; lanes is
  /// shards × threads).
  ServeStats totals;
  std::vector<ShardStats> shards;
  std::vector<TenantStats> tenants;
  std::size_t handoffs = 0;  ///< drain migrations executed
};

/// The fleet frontend. Lifecycle: construct (plan is computed here) →
/// inspect plan() → set_sink() → run() once → FleetResult.
class ShardedMonitor {
 public:
  ShardedMonitor(std::span<const trace::Job> jobs,
                 core::NamedPredictor method, ShardedMonitorConfig config);

  /// Registry convenience: looks up `method` with `registry.refit` forced
  /// to `config.refit`.
  ShardedMonitor(std::span<const trace::Job> jobs, const std::string& method,
                 core::RegistryConfig registry, ShardedMonitorConfig config);

  ~ShardedMonitor();
  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  /// The deterministic admission plan (valid from construction).
  const ShardPlan& plan() const;

  /// Arrival offsets as drawn (== plan().arrivals).
  std::span<const double> arrivals() const;

  /// Installs (or replaces) the flag sink before run().
  void set_sink(FlagSink sink);

  /// Serves the whole plan. Call once.
  FleetResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nurd::serve
