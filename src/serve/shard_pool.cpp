#include "serve/shard_pool.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/sync.h"
#include "serve/shard_engine.h"

namespace nurd::serve {

namespace {

constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

/// A shed event still flows through the pipeline (cursor advances, confusion
/// carries forward), so it is not free — model it at a quarter of a full
/// service.
constexpr double kShedCostFactor = 0.25;

double percentile_ms(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto n = sorted_seconds.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1e3;
}

}  // namespace

struct ShardedMonitor::Impl {
  Impl(std::span<const trace::Job> jobs, core::NamedPredictor method,
       ShardedMonitorConfig config)
      : jobs_(jobs), method_(std::move(method)), config_(std::move(config)) {
    NURD_CHECK(!jobs.empty(), "no jobs to serve");
    NURD_CHECK(method_.make != nullptr, "method has no factory");
    NURD_CHECK(config_.shards >= 1, "need at least one shard");
    NURD_CHECK(config_.window >= 1, "window must be at least 1");
    if (config_.tenants.empty()) config_.tenants.push_back(TenantSpec{});
    for (const TenantSpec& t : config_.tenants) {
      NURD_CHECK(t.quota_rate >= 0.0 && t.quota_burst > 0.0,
                 "tenant quota must be non-negative with a positive burst");
    }
    if (config_.tenant_of.empty()) {
      config_.tenant_of.assign(jobs.size(), 0);
    }
    NURD_CHECK(config_.tenant_of.size() == jobs.size(),
               "tenant_of must map every job");
    for (const std::size_t t : config_.tenant_of) {
      NURD_CHECK(t < config_.tenants.size(), "tenant_of index out of range");
    }
    NURD_CHECK(config_.drains.size() < config_.shards,
               "cannot drain every shard");
    {
      std::vector<std::uint8_t> seen(config_.shards, 0);
      for (const DrainEvent& d : config_.drains) {
        NURD_CHECK(d.shard < config_.shards, "drain shard out of range");
        NURD_CHECK(!seen[d.shard], "shard drained twice");
        seen[d.shard] = 1;
      }
    }
    if (!config_.placement) config_.placement = hash_placement();
    NURD_CHECK(config_.shed_budget == 0 || config_.service_rate > 0.0,
               "load-shedding needs the service model (service_rate > 0)");
    build_plan();
  }

  // ---- the plan plane ------------------------------------------------------
  // Everything here runs in simulated time at construction, single-threaded:
  // the plan is a pure function of (jobs, arrival process, seeds, config).
  void build_plan() {
    // 1. Arrival draw — same protocol as StreamMonitor: one draw, own seed.
    Rng rng(config_.arrival_seed);
    plan_.arrivals = config_.arrivals
                         ? config_.arrivals(jobs_.size(), rng)
                         : sched::batch_arrivals()(jobs_.size(), rng);
    NURD_CHECK(plan_.arrivals.size() == jobs_.size(),
               "arrival process returned wrong count");
    plan_.tenant_of = config_.tenant_of;

    // 2. Eligible events, ascending (eligible, job, checkpoint).
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      NURD_CHECK(plan_.arrivals[j] >= 0.0, "negative arrival time");
      for (std::size_t t = 0; t < jobs_[j].checkpoint_count(); ++t) {
        ShardPlan::Event e;
        e.eligible = plan_.arrivals[j] + jobs_[j].trace.tau_run(t);
        e.admission = e.eligible;
        e.job = static_cast<std::uint32_t>(j);
        e.checkpoint = static_cast<std::uint32_t>(t);
        e.tenant = static_cast<std::uint32_t>(config_.tenant_of[j]);
        plan_.events.push_back(e);
      }
    }
    auto by_eligible = [](const ShardPlan::Event& a,
                          const ShardPlan::Event& b) {
      return std::tie(a.eligible, a.job, a.checkpoint) <
             std::tie(b.eligible, b.job, b.checkpoint);
    };
    std::sort(plan_.events.begin(), plan_.events.end(), by_eligible);

    // 3. Per-tenant admission quotas: the GCRA token bucket in simulated
    // time. Emission interval I = 1/rate, limit L = burst * I; an event
    // conforming at its eligible time admits immediately, otherwise it
    // queues behind ITS OWN tenant's budget until the bucket conforms.
    // Other tenants' admissions are untouched — that is the whole fairness
    // mechanism. Per-tenant theoretical-arrival times are monotone, so a
    // job's admission order equals its checkpoint order and flags cannot
    // change.
    {
      std::vector<double> tat(config_.tenants.size(), 0.0);
      for (ShardPlan::Event& e : plan_.events) {
        const TenantSpec& spec = config_.tenants[e.tenant];
        if (spec.quota_rate <= 0.0) continue;
        const double interval = 1.0 / spec.quota_rate;
        const double limit = spec.quota_burst * interval;
        double& t = tat[e.tenant];
        const double earliest = t - limit;
        e.admission = std::max(e.eligible, earliest);
        e.deferred = e.admission > e.eligible;
        if (e.deferred) ++plan_.deferred_events;
        t = std::max(t, e.admission) + interval;
      }
    }
    auto by_admission = [](const ShardPlan::Event& a,
                           const ShardPlan::Event& b) {
      return std::tie(a.admission, a.job, a.checkpoint) <
             std::tie(b.admission, b.job, b.checkpoint);
    };
    std::sort(plan_.events.begin(), plan_.events.end(), by_admission);

    // 4. One admission-ordered sweep: drains open/close shards, placement
    // picks a home at each job's first event (and again when its shard has
    // drained — the rebalance), the per-shard FCFS service model tracks a
    // modeled backlog, and shedding marks over-budget events of QoS classes
    // below the floor. Marks are planned strictly pre-admission: an event
    // already admitted is never shed retroactively, and a job's final
    // checkpoint is never shed (the final confusion record must see the
    // full stream).
    auto drains = config_.drains;
    std::sort(drains.begin(), drains.end(),
              [](const DrainEvent& a, const DrainEvent& b) {
                return std::tie(a.time, a.shard) < std::tie(b.time, b.shard);
              });
    std::size_t next_drain = 0;
    std::vector<std::uint8_t> open(config_.shards, 1);
    std::vector<std::uint64_t> load(config_.shards, 0);
    std::vector<std::size_t> job_shard(jobs_.size(), kUnplaced);
    plan_.home_shard.assign(jobs_.size(), kUnplaced);
    std::vector<double> last_finish(config_.shards, 0.0);
    std::vector<std::deque<double>> queue(config_.shards);
    const bool model = config_.service_rate > 0.0;

    for (ShardPlan::Event& e : plan_.events) {
      while (next_drain < drains.size() &&
             drains[next_drain].time <= e.admission) {
        open[drains[next_drain].shard] = 0;
        ++next_drain;
      }
      const std::size_t remaining =
          jobs_[e.job].checkpoint_count() - e.checkpoint;
      auto place = [&]() {
        PlacementContext ctx;
        ctx.job = e.job;
        ctx.tenant = e.tenant;
        ctx.time = e.admission;
        ctx.checkpoints = remaining;
        ctx.seed = config_.placement_seed;
        ctx.shard_load = load;
        ctx.shard_open = open;
        const std::size_t s = config_.placement(ctx);
        NURD_CHECK(s < config_.shards && open[s],
                   "placement chose a closed or out-of-range shard");
        return s;
      };
      if (job_shard[e.job] == kUnplaced) {
        const std::size_t s = place();
        job_shard[e.job] = s;
        plan_.home_shard[e.job] = s;
        load[s] += remaining;
      } else if (!open[job_shard[e.job]]) {
        // The job's shard drained: re-place at this checkpoint boundary.
        const auto from = static_cast<std::uint32_t>(job_shard[e.job]);
        load[from] -= remaining;
        const std::size_t to = place();
        load[to] += remaining;
        job_shard[e.job] = to;
        plan_.handoffs.push_back({e.job, from, static_cast<std::uint32_t>(to),
                                  e.checkpoint});
      }
      e.shard = static_cast<std::uint32_t>(job_shard[e.job]);

      if (model) {
        auto& q = queue[e.shard];
        while (!q.empty() && q.front() <= e.admission) q.pop_front();
        const std::size_t backlog = q.size();
        if (config_.shed_budget > 0) {
          const auto qos = static_cast<std::size_t>(
              config_.tenants[e.tenant].qos);
          const bool sheddable =
              qos < static_cast<std::size_t>(config_.shed_floor) &&
              e.checkpoint + 1 != jobs_[e.job].checkpoint_count();
          if (sheddable && backlog > config_.shed_budget * (1 + qos)) {
            e.shed = true;
            ++plan_.shed_events;
          }
        }
        const double cost =
            (e.shed ? kShedCostFactor : 1.0) / config_.service_rate;
        const double begin = std::max(e.admission, last_finish[e.shard]);
        const double finish = begin + cost;
        last_finish[e.shard] = finish;
        q.push_back(finish);
        e.virtual_latency = finish - e.eligible;
      }
    }
  }

  // ---- the execution plane -------------------------------------------------

  // Handoff handshake state. ShardedMonitor::mutex_ is a leaf: taken by
  // engine callbacks that hold no engine lock, and nothing is called while
  // it is held (see common/sync.h).
  bool wait_handoff(std::size_t job, std::size_t boundary)
      NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (retired_through_[job] < boundary && !abort_) cv_.wait(mutex_);
    return !abort_;
  }

  void note_retired(std::size_t job, std::size_t ckpt)
      NURD_EXCLUDES(mutex_) {
    if (!handoff_job_[job]) return;  // nobody will ever wait on this job
    MutexLock lock(mutex_);
    retired_through_[job] = std::max(retired_through_[job], ckpt + 1);
    cv_.notify_all();
  }

  FleetResult run() NURD_EXCLUDES(mutex_) {
    NURD_CHECK(!ran_, "ShardedMonitor::run() called twice");
    ran_ = true;

    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t workers =
        config_.threads == 0 ? std::max(1u, hw) : config_.threads;
    const bool use_dag =
        config_.executor == ExecutorMode::kDag && workers > 1;

    // Fleet-wide sessions: a job's session survives handoffs — the
    // receiving engine resumes the same OnlineJobRun where the source
    // stopped.
    sessions_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      sessions_[j].predictor = method_.make();
      sessions_[j].run.emplace(jobs_[j], *sessions_[j].predictor,
                               config_.pct);
      sessions_[j].ring.resize(use_dag ? config_.window : 1);
    }

    // Slice the plan per shard, in plan (admission) order. A job whose
    // shard changes mid-list carries a wait boundary on its first event at
    // the new shard — the receiving engine blocks there until the source
    // retired everything below. Deadlock-freedom: handoffs only originate
    // from DRAINED shards, drained shards never reopen (so never receive),
    // and two shards cannot both have drained before handing to each other
    // — the wait graph follows drain times and is acyclic.
    handoff_job_.assign(jobs_.size(), 0);
    for (const ShardPlan::Handoff& h : plan_.handoffs) {
      handoff_job_[h.job] = 1;
    }
    {
      MutexLock lock(mutex_);  // preamble, but the field is lock-annotated
      retired_through_.assign(jobs_.size(), 0);
    }
    std::vector<std::vector<EngineEvent>> slices(config_.shards);
    {
      std::vector<std::size_t> prev_shard(jobs_.size(), kUnplaced);
      for (const ShardPlan::Event& e : plan_.events) {
        EngineEvent ev;
        ev.time = e.admission;
        ev.job = e.job;
        ev.checkpoint = e.checkpoint;
        ev.shed = e.shed;
        ev.wait_boundary =
            (prev_shard[e.job] != kUnplaced && prev_shard[e.job] != e.shard)
                ? e.checkpoint
                : kNoHandoff;
        prev_shard[e.job] = e.shard;
        slices[e.shard].push_back(ev);
      }
    }

    EngineConfig engine_config;
    engine_config.threads = workers;
    engine_config.max_inflight = config_.max_inflight;
    engine_config.executor = config_.executor;
    engine_config.window = config_.window;

    std::vector<std::unique_ptr<ShardEngine>> engines;
    engines.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      EngineHooks hooks;
      if (config_.sink) {
        hooks.sink = [this, s](const FlagDecision& d) {
          FlagDecision out = d;
          out.shard = s;
          out.tenant = plan_.tenant_of[d.job];
          config_.sink(out);
        };
      }
      hooks.wait_handoff = [this](std::size_t job, std::size_t boundary) {
        return wait_handoff(job, boundary);
      };
      hooks.retired = [this](std::size_t job, std::size_t ckpt) {
        note_retired(job, ckpt);
      };
      engines.push_back(std::make_unique<ShardEngine>(
          jobs_, std::span<JobSession>(sessions_), std::move(slices[s]),
          engine_config, std::move(hooks)));
    }

    // One driver thread per shard. A failing engine records the first error
    // and aborts every pending handoff wait; surviving engines finish their
    // own slices, then run() rethrows.
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      drivers.emplace_back([this, &engines, s] {
        try {
          engines[s]->run();
        } catch (...) {
          MutexLock lock(mutex_);
          if (!error_) error_ = std::current_exception();
          abort_ = true;
          cv_.notify_all();
        }
      });
    }
    for (auto& d : drivers) d.join();
    {
      MutexLock lock(mutex_);
      if (error_) std::rethrow_exception(error_);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    return assemble(engines, workers, wall);
  }

  FleetResult assemble(
      const std::vector<std::unique_ptr<ShardEngine>>& engines,
      std::size_t workers, double wall) {
    FleetResult result;
    result.runs.reserve(jobs_.size());
    for (auto& session : sessions_) {
      result.runs.push_back(session.run->take_result());
    }
    result.handoffs = plan_.handoffs.size();

    // Per-shard jobs-served counts come from the plan (distinct jobs with
    // ≥ 1 event on the shard).
    std::vector<std::vector<std::uint8_t>> served(
        config_.shards, std::vector<std::uint8_t>(jobs_.size(), 0));
    for (const ShardPlan::Event& e : plan_.events) {
      served[e.shard][e.job] = 1;
    }

    std::vector<double> all_latencies;
    std::vector<std::vector<double>> tenant_latencies(
        config_.tenants.size());
    for (std::size_t s = 0; s < config_.shards; ++s) {
      const EngineStats& es = engines[s]->stats();
      ShardStats stats;
      stats.shard = s;
      stats.jobs = static_cast<std::size_t>(
          std::count(served[s].begin(), served[s].end(), 1));
      stats.checkpoints = es.processed;
      stats.flags = es.flags;
      stats.shed = es.shed;
      stats.peak_backlog = es.peak_backlog;
      stats.wall_seconds = es.wall_seconds;
      stats.checkpoints_per_sec =
          es.wall_seconds > 0.0
              ? static_cast<double>(es.processed) / es.wall_seconds
              : 0.0;
      std::vector<double> shard_lat;
      shard_lat.reserve(es.latencies.size());
      for (const auto& l : es.latencies) {
        shard_lat.push_back(l.seconds);
        all_latencies.push_back(l.seconds);
        tenant_latencies[plan_.tenant_of[l.job]].push_back(l.seconds);
      }
      std::sort(shard_lat.begin(), shard_lat.end());
      stats.p50_latency_ms = percentile_ms(shard_lat, 0.50);
      stats.p99_latency_ms = percentile_ms(shard_lat, 0.99);
      result.shards.push_back(stats);

      result.totals.checkpoints += es.processed;
      result.totals.flags += es.flags;
      result.totals.peak_backlog += es.peak_backlog;
      for (std::size_t i = 0; i < es.stage_seconds.size(); ++i) {
        result.totals.stage_seconds[i] += es.stage_seconds[i];
      }
    }
    result.totals.jobs = jobs_.size();
    result.totals.lanes = config_.shards * workers;
    result.totals.wall_seconds = wall;
    result.totals.checkpoints_per_sec =
        wall > 0.0 ? static_cast<double>(result.totals.checkpoints) / wall
                   : 0.0;
    std::sort(all_latencies.begin(), all_latencies.end());
    result.totals.p50_latency_ms = percentile_ms(all_latencies, 0.50);
    result.totals.p99_latency_ms = percentile_ms(all_latencies, 0.99);

    // Tenant stats: plan-plane metrics (deferrals, sheds, virtual
    // latencies) are exactly reproducible; wall percentiles are not.
    std::vector<std::vector<double>> tenant_virtual(config_.tenants.size());
    std::vector<std::vector<std::uint8_t>> tenant_jobs(
        config_.tenants.size(),
        std::vector<std::uint8_t>(jobs_.size(), 0));
    result.tenants.resize(config_.tenants.size());
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      result.tenants[t].name = config_.tenants[t].name;
      result.tenants[t].qos = config_.tenants[t].qos;
    }
    for (const ShardPlan::Event& e : plan_.events) {
      TenantStats& ts = result.tenants[e.tenant];
      ++ts.checkpoints;
      tenant_jobs[e.tenant][e.job] = 1;
      if (e.deferred) {
        ++ts.deferred;
        ts.max_deferral_s =
            std::max(ts.max_deferral_s, e.admission - e.eligible);
      }
      if (e.shed) ++ts.shed;
      if (config_.service_rate > 0.0) {
        tenant_virtual[e.tenant].push_back(e.virtual_latency);
      }
    }
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      TenantStats& ts = result.tenants[t];
      ts.jobs = static_cast<std::size_t>(std::count(
          tenant_jobs[t].begin(), tenant_jobs[t].end(), 1));
      auto& virt = tenant_virtual[t];
      std::sort(virt.begin(), virt.end());
      ts.p50_virtual_ms = percentile_ms(virt, 0.50);
      ts.p99_virtual_ms = percentile_ms(virt, 0.99);
      auto& lat = tenant_latencies[t];
      std::sort(lat.begin(), lat.end());
      ts.p50_latency_ms = percentile_ms(lat, 0.50);
      ts.p99_latency_ms = percentile_ms(lat, 0.99);
    }
    return result;
  }

  // ---- owner state (plan plane + construction): written before any driver
  // thread exists.
  std::span<const trace::Job> jobs_;
  core::NamedPredictor method_;
  ShardedMonitorConfig config_;
  ShardPlan plan_;
  std::vector<JobSession> sessions_;
  /// 1 where the job appears in some handoff (only those need cv wakeups).
  std::vector<std::uint8_t> handoff_job_;
  bool ran_ = false;

  // ---- handoff handshake (the only cross-engine synchronization).
  mutable Mutex mutex_;
  CondVar cv_;
  /// Per job: every checkpoint below this retired on its serving engine.
  std::vector<std::size_t> retired_through_ NURD_GUARDED_BY(mutex_);
  bool abort_ NURD_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ NURD_GUARDED_BY(mutex_);
};

ShardedMonitor::ShardedMonitor(std::span<const trace::Job> jobs,
                               core::NamedPredictor method,
                               ShardedMonitorConfig config)
    : impl_(std::make_unique<Impl>(jobs, std::move(method),
                                   std::move(config))) {}

ShardedMonitor::ShardedMonitor(std::span<const trace::Job> jobs,
                               const std::string& method,
                               core::RegistryConfig registry,
                               ShardedMonitorConfig config) {
  registry.refit = config.refit;
  impl_ = std::make_unique<Impl>(
      jobs, core::predictor_by_name(method, registry), std::move(config));
}

ShardedMonitor::~ShardedMonitor() = default;

const ShardPlan& ShardedMonitor::plan() const { return impl_->plan_; }

std::span<const double> ShardedMonitor::arrivals() const {
  return impl_->plan_.arrivals;
}

void ShardedMonitor::set_sink(FlagSink sink) {
  NURD_CHECK(!impl_->ran_, "set_sink after run()");
  impl_->config_.sink = std::move(sink);
}

FleetResult ShardedMonitor::run() { return impl_->run(); }

}  // namespace nurd::serve
