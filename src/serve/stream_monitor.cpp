#include "serve/stream_monitor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <limits>
#include <optional>
#include <set>
#include <tuple>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/task_dag.h"

namespace nurd::serve {

namespace {

using Clock = std::chrono::steady_clock;

double percentile_ms(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto n = sorted_seconds.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1e3;
}

}  // namespace

struct StreamMonitor::Impl {
  // One ingestion-queue entry: checkpoint `checkpoint` of job `job` becomes
  // observable at absolute time `time` (= arrival + τrun).
  struct IngestEvent {
    double time = 0.0;
    std::uint32_t job = 0;
    std::uint32_t checkpoint = 0;
  };

  // A job's managed serving session: predictor + harness stepper + the
  // per-checkpoint scratch ring the DAG stages hand off through (cell
  // t % window; reuse is safe under the executor's window edge). The
  // pending/scheduled pair only serves ExecutorMode::kSerialLanes, where a
  // job is a serial lane drained by at most one pool task at a time.
  struct Admitted {
    double time = 0.0;
    std::uint32_t checkpoint = 0;
    Clock::time_point admitted_at;
  };
  struct Lane {
    std::unique_ptr<core::StragglerPredictor> predictor;
    std::optional<eval::OnlineJobRun> run;
    std::vector<eval::CheckpointScratch> ring;  ///< window cells
    std::deque<Admitted> pending;               ///< kSerialLanes only
    bool scheduled = false;                     ///< kSerialLanes only
  };

  Impl(std::span<const trace::Job> jobs, core::NamedPredictor method,
       StreamMonitorConfig config)
      : jobs_(jobs), method_(std::move(method)), config_(std::move(config)) {
    NURD_CHECK(!jobs.empty(), "no jobs to serve");
    NURD_CHECK(method_.make != nullptr, "method has no factory");

    // Arrival offsets are drawn once, up front, from their own seed — the
    // ingestion schedule is a function of (jobs, arrival process, seed)
    // only, never of serving dynamics.
    Rng rng(config_.arrival_seed);
    const auto arrivals = config_.arrivals
                              ? config_.arrivals(jobs.size(), rng)
                              : sched::batch_arrivals()(jobs.size(), rng);
    NURD_CHECK(arrivals.size() == jobs.size(),
               "arrival process returned wrong count");
    arrivals_ = arrivals;

    // The merged ingestion queue: every (job, checkpoint) event, ascending
    // (time, job, checkpoint). Within one job τrun is strictly increasing,
    // so the global order preserves each job's checkpoint order.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      NURD_CHECK(arrivals_[j] >= 0.0, "negative arrival time");
      for (std::size_t t = 0; t < jobs[j].checkpoint_count(); ++t) {
        events_.push_back({arrivals_[j] + jobs[j].trace.tau_run(t),
                           static_cast<std::uint32_t>(j),
                           static_cast<std::uint32_t>(t)});
      }
    }
    std::sort(events_.begin(), events_.end(),
              [](const IngestEvent& a, const IngestEvent& b) {
                return std::tie(a.time, a.job, a.checkpoint) <
                       std::tie(b.time, b.job, b.checkpoint);
              });
    next_ingest_time_ =
        events_.empty() ? std::numeric_limits<double>::infinity()
                        : events_.front().time;
  }

  double low_watermark() const NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return inflight_times_.empty() ? next_ingest_time_
                                   : *inflight_times_.begin();
  }

  // Admits `ev` into its lane (caller holds no locks) and, when the lane is
  // idle, starts a drain: submitted to `pool`, or run inline right here when
  // serialized (pool == nullptr).
  void admit(const IngestEvent& ev, ThreadPool* pool) NURD_EXCLUDES(mutex_) {
    bool schedule = false;
    {
      MutexLock lock(mutex_);
      while (!(inflight_ < cap_ || error_ != nullptr)) cv_.wait(mutex_);
      if (error_) return;  // stop admitting; run() rethrows after the drain
      Lane& lane = lanes_[ev.job];
      lane.pending.push_back({ev.time, ev.checkpoint, Clock::now()});
      ++inflight_;
      inflight_times_.insert(ev.time);
      peak_backlog_ = std::max(peak_backlog_, inflight_);
      ++next_event_;
      next_ingest_time_ = next_event_ < events_.size()
                              ? events_[next_event_].time
                              : std::numeric_limits<double>::infinity();
      if (!lane.scheduled) {
        lane.scheduled = true;
        schedule = true;
      }
    }
    if (!schedule) return;
    if (pool) {
      pool->submit([this, job = ev.job] { drain_lane(job); });
    } else {
      drain_lane(ev.job);
    }
  }

  double event_time(std::size_t job, std::size_t t) const {
    return arrivals_[job] + jobs_[job].trace.tau_run(t);
  }

  // Executes ONE pipeline stage of checkpoint `t` of `job`, timing its body
  // into the per-stage busy counters. Every execution mode funnels through
  // here — the serialized loop and the serial lanes run the four stages back
  // to back, the DAG runs them as separate tasks — so the stage breakdown is
  // populated identically everywhere. The Flag stage is where decisions
  // leave the monitor: the sink runs here, OUTSIDE the monitor mutex and
  // BEFORE the event's time leaves the in-flight set, so low_watermark()
  // cannot pass a flag that is still being delivered.
  void run_stage(std::size_t job, std::size_t t, core::Stage stage)
      NURD_EXCLUDES(mutex_) {
    Lane& lane = lanes_[job];
    eval::CheckpointScratch& cell = lane.ring[t % lane.ring.size()];
    const auto began = Clock::now();
    switch (stage) {
      case core::Stage::kFeaturize:
        lane.run->featurize(t, &cell);
        break;
      case core::Stage::kRefit:
        lane.run->refit(t, &cell);
        break;
      case core::Stage::kPredict:
        lane.run->predict(t, &cell);
        break;
      case core::Stage::kFlag: {
        const auto flagged = lane.run->flag(t, &cell);
        if (!flagged.empty()) {
          if (config_.sink) {
            const double time = event_time(job, t);
            for (auto task : flagged) config_.sink({job, task, t, time});
          }
          MutexLock lock(mutex_);
          flags_ += flagged.size();
        }
        break;
      }
    }
    stage_nanos_[static_cast<std::size_t>(stage)].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - began)
                .count()),
        std::memory_order_relaxed);
  }

  // Drains one job's lane (serialized and kSerialLanes modes): processes
  // admitted checkpoints strictly in order — all four stages back to back —
  // until the lane empties.
  void drain_lane(std::size_t job) NURD_EXCLUDES(mutex_) {
    Lane& lane = lanes_[job];
    for (;;) {
      Admitted ev;
      {
        MutexLock lock(mutex_);
        if (lane.pending.empty() || error_) {
          lane.scheduled = false;
          if (error_) abandon_lane_locked(lane);
          return;
        }
        ev = lane.pending.front();
        lane.pending.pop_front();
      }

      try {
        NURD_CHECK(lane.run->next_checkpoint() == ev.checkpoint,
                   "lane processed a checkpoint out of order");
        for (std::size_t s = 0; s < core::kStageCount; ++s) {
          run_stage(job, ev.checkpoint, static_cast<core::Stage>(s));
        }
      } catch (...) {
        MutexLock lock(mutex_);
        if (!error_) error_ = std::current_exception();
        retire_locked(ev.time);
        lane.scheduled = false;
        abandon_lane_locked(lane);
        return;
      }

      const double latency =
          std::chrono::duration<double>(Clock::now() - ev.admitted_at)
              .count();
      {
        MutexLock lock(mutex_);
        latencies_.push_back(latency);
        ++processed_;
        retire_locked(ev.time);
      }
    }
  }

  // DAG-mode admission: the event accounting runs under the mutex, the
  // executor admit OUTSIDE it (the executor's callbacks take mutex_
  // themselves). A refused admit — the job was cancelled by an earlier stage
  // error — retires the event immediately so the in-flight count still
  // drains to zero.
  void admit_dag(const IngestEvent& ev, core::TaskDag& dag)
      NURD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!(inflight_ < cap_ || error_ != nullptr)) cv_.wait(mutex_);
      if (error_) return;  // stop admitting; run() rethrows after the drain
      ++inflight_;
      inflight_times_.insert(ev.time);
      peak_backlog_ = std::max(peak_backlog_, inflight_);
      ++next_event_;
      next_ingest_time_ = next_event_ < events_.size()
                              ? events_[next_event_].time
                              : std::numeric_limits<double>::infinity();
      admitted_at_[ev.job][ev.checkpoint] = Clock::now();
    }
    if (!dag.admit(ev.job, ev.checkpoint)) {
      MutexLock lock(mutex_);
      retire_locked(ev.time);
    }
  }

  // Both _locked helpers require mutex_ held (compiler-enforced).
  void retire_locked(double time) NURD_REQUIRES(mutex_) {
    --inflight_;
    inflight_times_.erase(inflight_times_.find(time));
    cv_.notify_all();
  }

  // A failed lane abandons its backlog so run()'s in-flight count can still
  // drain to zero (the first error is what gets rethrown).
  void abandon_lane_locked(Lane& lane) NURD_REQUIRES(mutex_) {
    for (const auto& dropped : lane.pending) retire_locked(dropped.time);
    lane.pending.clear();
  }

  ServeResult run() NURD_EXCLUDES(mutex_) {
    NURD_CHECK(!ran_, "StreamMonitor::run() called twice");
    ran_ = true;

    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t lanes =
        config_.threads == 0 ? std::max(1u, hw) : config_.threads;
    cap_ = config_.max_inflight == 0 ? 4 * lanes : config_.max_inflight;

    // Managed sessions: one fresh predictor + one OnlineJobRun per job. The
    // stepper is the run_job protocol itself, so serialized serving is
    // bit-identical to the batch harness by construction. The DAG path needs
    // one scratch cell per in-flight checkpoint of a job (the executor's
    // window edge makes cell t % window reuse-safe); the serialized paths
    // run one checkpoint at a time and reuse a single cell.
    NURD_CHECK(config_.window >= 1, "window must be at least 1");
    const bool use_dag =
        config_.executor == ExecutorMode::kDag && lanes > 1;
    lanes_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      lanes_[j].predictor = method_.make();
      lanes_[j].run.emplace(jobs_[j], *lanes_[j].predictor, config_.pct);
      lanes_[j].ring.resize(use_dag ? config_.window : 1);
    }
    if (use_dag) {
      MutexLock lock(mutex_);  // preamble, but the field is lock-annotated
      admitted_at_.resize(jobs_.size());
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        admitted_at_[j].resize(jobs_[j].checkpoint_count());
      }
    }

    // Serialized (threads == 1): no pool — each event is admitted and its
    // lane drained inline, in global event-time order. Concurrent: a private
    // pool of `lanes` workers runs the stage work — as pipelined DAG tasks
    // (default) or as monolithic per-lane drains (kSerialLanes, the
    // baseline) — and this thread only admits. The dag is declared after the
    // pool so it is destroyed FIRST (its pumps run on the pool).
    std::optional<ThreadPool> pool;
    std::optional<core::TaskDag> dag;
    if (lanes > 1) pool.emplace(lanes);
    if (use_dag) {
      core::TaskDagConfig dag_config;
      dag_config.workers = lanes;
      dag_config.window = config_.window;
      dag_config.featurize_ahead = std::min<std::size_t>(2, config_.window);
      dag.emplace(
          jobs_.size(), dag_config,
          [this](const core::TaskKey& k) {
            run_stage(k.job, k.checkpoint, k.stage);
          },
          [this](std::size_t job, std::size_t ckpt, bool completed) {
            MutexLock lock(mutex_);
            if (completed) {
              latencies_.push_back(
                  std::chrono::duration<double>(Clock::now() -
                                                admitted_at_[job][ckpt])
                      .count());
              ++processed_;
            }
            retire_locked(event_time(job, ckpt));
          },
          [this](std::size_t, std::exception_ptr e) {
            MutexLock lock(mutex_);
            if (!error_) error_ = e;
            cv_.notify_all();
          });
      dag->start(*pool);
    }

    const auto start = Clock::now();
    for (const IngestEvent& ev : events_) {
      if (dag) {
        admit_dag(ev, *dag);
      } else {
        admit(ev, pool ? &*pool : nullptr);
      }
      {
        MutexLock lock(mutex_);
        if (error_) break;
      }
    }
    if (dag) dag->close();
    {
      MutexLock lock(mutex_);
      while (inflight_ != 0) cv_.wait(mutex_);
    }
    if (dag) dag->wait();
    {
      MutexLock lock(mutex_);
      if (error_) std::rethrow_exception(error_);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    ServeResult result;
    result.runs.reserve(jobs_.size());
    for (auto& lane : lanes_) result.runs.push_back(lane.run->take_result());

    // Stats assembly holds mutex_: the drain above already guarantees every
    // writer is done (in-flight count zero, DAG pumps exited), but reading
    // the guarded counters through the same lock they were written under
    // makes the happens-before a compiler-checked fact instead of an
    // argument about pool teardown order.
    ServeStats& s = result.stats;
    {
      MutexLock lock(mutex_);
      s.jobs = jobs_.size();
      s.checkpoints = processed_;
      s.flags = flags_;
      s.lanes = lanes;
      s.peak_backlog = peak_backlog_;
      s.wall_seconds = wall;
      s.checkpoints_per_sec =
          wall > 0.0 ? static_cast<double>(processed_) / wall : 0.0;
      std::sort(latencies_.begin(), latencies_.end());
      s.p50_latency_ms = percentile_ms(latencies_, 0.50);
      s.p99_latency_ms = percentile_ms(latencies_, 0.99);
    }
    for (std::size_t i = 0; i < core::kStageCount; ++i) {
      s.stage_seconds[i] =
          static_cast<double>(
              stage_nanos_[i].load(std::memory_order_relaxed)) *
          1e-9;
    }
    return result;
  }

  // ---- owner state: written at construction or in run()'s preamble, before
  // any worker exists; read-only once stage tasks are in flight. Lane::run /
  // ::predictor / ::ring are lane-private — exactly one stage task of a job
  // runs at a time (the DAG's refit chain / the serial lane), so they need
  // no lock; Lane::pending / ::scheduled are the exception and are only
  // touched under mutex_ (see drain_lane).
  std::span<const trace::Job> jobs_;
  core::NamedPredictor method_;
  StreamMonitorConfig config_;
  std::vector<double> arrivals_;
  std::vector<IngestEvent> events_;  ///< ascending (time, job, checkpoint)
  std::vector<Lane> lanes_;
  bool ran_ = false;
  std::size_t cap_ = 1;

  mutable Mutex mutex_;
  CondVar cv_;
  std::size_t inflight_ NURD_GUARDED_BY(mutex_) = 0;
  /// Admitted, not yet processed.
  std::multiset<double> inflight_times_ NURD_GUARDED_BY(mutex_);
  /// Next events_ index to admit.
  std::size_t next_event_ NURD_GUARDED_BY(mutex_) = 0;
  double next_ingest_time_ NURD_GUARDED_BY(mutex_) = 0.0;
  std::size_t peak_backlog_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t processed_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t flags_ NURD_GUARDED_BY(mutex_) = 0;
  /// Seconds, unsorted until run() ends.
  std::vector<double> latencies_ NURD_GUARDED_BY(mutex_);
  std::exception_ptr error_ NURD_GUARDED_BY(mutex_);

  /// DAG mode: admission wall-clock per (job, checkpoint), stamped under
  /// mutex_ at admit and read under mutex_ at retire.
  std::vector<std::vector<Clock::time_point>> admitted_at_
      NURD_GUARDED_BY(mutex_);
  /// Cumulative busy nanoseconds per pipeline stage, across all workers.
  std::array<std::atomic<std::uint64_t>, core::kStageCount> stage_nanos_{};
};

StreamMonitor::StreamMonitor(std::span<const trace::Job> jobs,
                             core::NamedPredictor method,
                             StreamMonitorConfig config)
    : impl_(std::make_unique<Impl>(jobs, std::move(method),
                                   std::move(config))) {}

StreamMonitor::StreamMonitor(std::span<const trace::Job> jobs,
                             const std::string& method,
                             core::RegistryConfig registry,
                             StreamMonitorConfig config) {
  registry.refit = config.refit;
  impl_ = std::make_unique<Impl>(
      jobs, core::predictor_by_name(method, registry), std::move(config));
}

StreamMonitor::~StreamMonitor() = default;

std::span<const double> StreamMonitor::arrivals() const {
  return impl_->arrivals_;
}

void StreamMonitor::set_sink(FlagSink sink) {
  NURD_CHECK(!impl_->ran_, "set_sink after run()");
  impl_->config_.sink = std::move(sink);
}

double StreamMonitor::low_watermark() const { return impl_->low_watermark(); }

ServeResult StreamMonitor::run() { return impl_->run(); }

}  // namespace nurd::serve
