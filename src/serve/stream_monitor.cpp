#include "serve/stream_monitor.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "serve/shard_engine.h"

namespace nurd::serve {

namespace {

double percentile_ms(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto n = sorted_seconds.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1e3;
}

}  // namespace

// The single-shard frontend: StreamMonitor plans (arrival draw + merged
// event queue + session construction) and one ShardEngine executes. The
// engine is built in the constructor — not run() — so low_watermark() is
// answerable from the moment the monitor exists.
struct StreamMonitor::Impl {
  Impl(std::span<const trace::Job> jobs, core::NamedPredictor method,
       StreamMonitorConfig config)
      : jobs_(jobs), method_(std::move(method)), config_(std::move(config)) {
    NURD_CHECK(!jobs.empty(), "no jobs to serve");
    NURD_CHECK(method_.make != nullptr, "method has no factory");
    NURD_CHECK(config_.window >= 1, "window must be at least 1");

    // Arrival offsets are drawn once, up front, from their own seed — the
    // ingestion schedule is a function of (jobs, arrival process, seed)
    // only, never of serving dynamics.
    Rng rng(config_.arrival_seed);
    arrivals_ = config_.arrivals
                    ? config_.arrivals(jobs.size(), rng)
                    : sched::batch_arrivals()(jobs.size(), rng);
    NURD_CHECK(arrivals_.size() == jobs.size(),
               "arrival process returned wrong count");

    // The merged ingestion queue: every (job, checkpoint) event, ascending
    // (time, job, checkpoint). Within one job τrun is strictly increasing,
    // so the global order preserves each job's checkpoint order.
    std::vector<EngineEvent> events;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      NURD_CHECK(arrivals_[j] >= 0.0, "negative arrival time");
      for (std::size_t t = 0; t < jobs[j].checkpoint_count(); ++t) {
        events.push_back({arrivals_[j] + jobs[j].trace.tau_run(t),
                          static_cast<std::uint32_t>(j),
                          static_cast<std::uint32_t>(t), false, kNoHandoff});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const EngineEvent& a, const EngineEvent& b) {
                return std::tie(a.time, a.job, a.checkpoint) <
                       std::tie(b.time, b.job, b.checkpoint);
              });
    events_ = std::move(events);
  }

  // Deferred to first need (set_sink may still replace the sink): builds the
  // sessions and the engine over the final configuration.
  void ensure_engine() {
    if (engine_) return;
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t workers =
        config_.threads == 0 ? std::max(1u, hw) : config_.threads;
    // Managed sessions: one fresh predictor + one OnlineJobRun per job. The
    // stepper is the run_job protocol itself, so serialized serving is
    // bit-identical to the batch harness by construction. The DAG path needs
    // one scratch cell per in-flight checkpoint of a job (the executor's
    // window edge makes cell t % window reuse-safe); the serialized paths
    // run one checkpoint at a time and reuse a single cell.
    const bool use_dag =
        config_.executor == ExecutorMode::kDag && workers > 1;
    sessions_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      sessions_[j].predictor = method_.make();
      sessions_[j].run.emplace(jobs_[j], *sessions_[j].predictor,
                               config_.pct);
      sessions_[j].ring.resize(use_dag ? config_.window : 1);
    }
    EngineConfig engine_config;
    engine_config.threads = workers;
    engine_config.max_inflight = config_.max_inflight;
    engine_config.executor = config_.executor;
    engine_config.window = config_.window;
    EngineHooks hooks;
    hooks.sink = config_.sink;
    engine_.emplace(jobs_, std::span<JobSession>(sessions_),
                    std::move(events_), engine_config, std::move(hooks));
  }

  double low_watermark() {
    // Pre-run (and pre-engine) the watermark is the first event time; the
    // engine owns the moving value once it exists.
    if (!engine_) {
      return events_.empty() ? std::numeric_limits<double>::infinity()
                             : events_.front().time;
    }
    return engine_->low_watermark();
  }

  ServeResult run() {
    NURD_CHECK(!ran_, "StreamMonitor::run() called twice");
    ran_ = true;
    ensure_engine();
    engine_->run();

    ServeResult result;
    result.runs.reserve(jobs_.size());
    for (auto& session : sessions_) {
      result.runs.push_back(session.run->take_result());
    }

    const EngineStats& es = engine_->stats();
    ServeStats& s = result.stats;
    s.jobs = jobs_.size();
    s.checkpoints = es.processed;
    s.flags = es.flags;
    s.lanes = es.workers;
    s.peak_backlog = es.peak_backlog;
    s.wall_seconds = es.wall_seconds;
    s.checkpoints_per_sec =
        es.wall_seconds > 0.0
            ? static_cast<double>(es.processed) / es.wall_seconds
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(es.latencies.size());
    for (const auto& l : es.latencies) latencies.push_back(l.seconds);
    std::sort(latencies.begin(), latencies.end());
    s.p50_latency_ms = percentile_ms(latencies, 0.50);
    s.p99_latency_ms = percentile_ms(latencies, 0.99);
    s.stage_seconds = es.stage_seconds;
    return result;
  }

  std::span<const trace::Job> jobs_;
  core::NamedPredictor method_;
  StreamMonitorConfig config_;
  std::vector<double> arrivals_;
  /// Moved into the engine by ensure_engine(); use low_watermark() /
  /// engine state after that.
  std::vector<EngineEvent> events_;
  std::vector<JobSession> sessions_;
  std::optional<ShardEngine> engine_;
  bool ran_ = false;
};

StreamMonitor::StreamMonitor(std::span<const trace::Job> jobs,
                             core::NamedPredictor method,
                             StreamMonitorConfig config)
    : impl_(std::make_unique<Impl>(jobs, std::move(method),
                                   std::move(config))) {}

StreamMonitor::StreamMonitor(std::span<const trace::Job> jobs,
                             const std::string& method,
                             core::RegistryConfig registry,
                             StreamMonitorConfig config) {
  registry.refit = config.refit;
  impl_ = std::make_unique<Impl>(
      jobs, core::predictor_by_name(method, registry), std::move(config));
}

StreamMonitor::~StreamMonitor() = default;

std::span<const double> StreamMonitor::arrivals() const {
  return impl_->arrivals_;
}

void StreamMonitor::set_sink(FlagSink sink) {
  NURD_CHECK(!impl_->ran_, "set_sink after run()");
  impl_->config_.sink = std::move(sink);
}

double StreamMonitor::low_watermark() const { return impl_->low_watermark(); }

ServeResult StreamMonitor::run() { return impl_->run(); }

}  // namespace nurd::serve
