// The serving layer → cluster simulator bridge. LiveClusterFeed is a
// FlagSink that forwards every StreamMonitor decision into a live-mode
// sched::ClusterEngine the moment it is emitted, then advances the cluster
// behind the stream's low watermark — relaunch decisions are driven by the
// predictors AS THEY RUN instead of from a precomputed flag table
// (eval::run_method → simulate_cluster, the batch path the benches used
// until now).
//
// Correctness rests on two ordering facts:
//   * the monitor's low_watermark() only passes an event time once that
//     event's flags have been delivered to the sink, and the engine only
//     processes events strictly BELOW the watermark — so a flag can never
//     arrive behind cluster time;
//   * the live engine's RNG stream is drawn entirely at construction
//     (arrivals, then one relaunch latency per task), so the simulation
//     outcome is a deterministic function of (jobs, arrivals, flag set) —
//     identical at any serving thread count, whatever order flags arrive in.
//
// Thread-safety: the sink and finish() serialize on an internal mutex; one
// feed serves one StreamMonitor run. This mutex is the ONE lock in the
// codebase held across a call into another locked layer — the sink queries
// StreamMonitor::low_watermark() while holding mutex_, i.e. the order is
// LiveClusterFeed::mutex_ → StreamMonitor::mutex_, never the reverse (the
// monitor invokes sinks with its own lock released). See the lock-ordering
// table in common/sync.h.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "common/sync.h"
#include "sched/cluster.h"
#include "serve/stream_monitor.h"

namespace nurd::serve {

class LiveClusterFeed {
 public:
  /// Binds a live cluster to `monitor`'s job set and arrival schedule:
  /// `config.arrivals` is replaced by sched::fixed_arrivals(
  /// monitor.arrivals()) so both sides simulate the same timeline. `jobs`
  /// must be the monitor's job span (and outlive the feed); `seed` drives
  /// the per-task relaunch-latency draws.
  LiveClusterFeed(std::span<const trace::Job> jobs,
                  sched::ClusterConfig config, const StreamMonitor& monitor,
                  std::uint64_t seed);

  /// The FlagSink to place in StreamMonitorConfig::sink. Each call posts the
  /// flag and advances the engine to the monitor's current low watermark.
  FlagSink sink();

  /// Drains the cluster past the last event and returns the result. Call
  /// once, after StreamMonitor::run() returns.
  sched::ClusterResult finish() NURD_EXCLUDES(mutex_);

 private:
  const StreamMonitor* monitor_;
  sched::ClusterConfig config_;  ///< owns the fixed-arrivals override
  Rng rng_;
  Mutex mutex_;
  sched::ClusterEngine engine_ NURD_GUARDED_BY(mutex_);
};

}  // namespace nurd::serve
