// Job-placement policies for the sharded serving fleet (serve/shard_pool.h).
//
// A policy picks the shard a job lands on, at the job's first planned event
// and again at every drain re-placement. Policies run in the PLAN plane: the
// context they see — admission time, planned per-shard load, which shards
// are still open — is a deterministic function of (jobs, arrival process,
// seeds, config), never of execution timing, so the same inputs place the
// same jobs on the same shards at any thread count. That is the whole
// determinism story for placement; nothing else is needed.
//
// Contract: return an OPEN shard index < shard count (drained shards are
// closed forever — a policy returning one is a programming error, checked
// by the planner). Policies must not keep mutable state across calls beyond
// what the context carries; the planner re-invokes them in admission order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace nurd::serve {

/// What a policy knows when placing (or re-placing) one job.
struct PlacementContext {
  std::size_t job = 0;
  std::size_t tenant = 0;
  /// Simulated admission time of the event that triggered the placement.
  double time = 0.0;
  /// Checkpoints this placement will put on the chosen shard (the job's
  /// remaining planned events).
  std::size_t checkpoints = 0;
  /// Fleet-level placement seed (ShardedMonitorConfig::placement_seed).
  std::uint64_t seed = 0;
  /// Planned checkpoint-event load per shard, accumulated so far.
  std::span<const std::uint64_t> shard_load;
  /// Per shard: 1 = accepting placements, 0 = drained (closed forever).
  std::span<const std::uint8_t> shard_open;
};

/// Picks a shard for the context's job. Must return an open shard.
using PlacementPolicy = std::function<std::size_t(const PlacementContext&)>;

/// Stateless hash placement: splitmix64(seed, job) over the open shards.
/// Spreads uniformly, needs no load feedback, and a job's shard never
/// depends on other jobs — the cheapest policy and the bench default.
PlacementPolicy hash_placement();

/// Least-loaded placement: the open shard with the fewest planned
/// checkpoint events (ties to the lowest index). Balances heterogeneous
/// job lengths where hashing cannot.
PlacementPolicy least_loaded_placement();

/// Tenant-affinity (locality) placement: splitmix64(seed, tenant) over the
/// open shards — every job of a tenant lands on the same shard while it is
/// open, keeping a tenant's flag traffic on one engine.
PlacementPolicy tenant_affinity_placement();

/// Resolves a policy by name ("hash", "least-loaded", "affinity") — the
/// bench/CLI entry point. Throws on unknown names.
PlacementPolicy placement_by_name(const std::string& name);

}  // namespace nurd::serve
