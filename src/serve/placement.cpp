#include "serve/placement.h"

#include <string>
#include <vector>

#include "common/check.h"

namespace nurd::serve {

namespace {

// Fixed-constant splitmix64 — the same deterministic mixer everywhere, so a
// placement is reproducible from (seed, key) alone on every platform.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The open shards, in index order. Placement hashes/minimizes over this
// list so drained shards can never be chosen.
std::vector<std::size_t> open_shards(const PlacementContext& ctx) {
  std::vector<std::size_t> open;
  open.reserve(ctx.shard_open.size());
  for (std::size_t s = 0; s < ctx.shard_open.size(); ++s) {
    if (ctx.shard_open[s]) open.push_back(s);
  }
  NURD_CHECK(!open.empty(), "placement with every shard drained");
  return open;
}

}  // namespace

PlacementPolicy hash_placement() {
  return [](const PlacementContext& ctx) {
    const auto open = open_shards(ctx);
    const std::uint64_t h =
        splitmix64(ctx.seed ^ (0x517cc1b727220a95ULL *
                               static_cast<std::uint64_t>(ctx.job + 1)));
    return open[h % open.size()];
  };
}

PlacementPolicy least_loaded_placement() {
  return [](const PlacementContext& ctx) {
    const auto open = open_shards(ctx);
    std::size_t best = open.front();
    for (const std::size_t s : open) {
      if (ctx.shard_load[s] < ctx.shard_load[best]) best = s;
    }
    return best;
  };
}

PlacementPolicy tenant_affinity_placement() {
  return [](const PlacementContext& ctx) {
    const auto open = open_shards(ctx);
    const std::uint64_t h =
        splitmix64(ctx.seed ^ (0xda942042e4dd58b5ULL *
                               static_cast<std::uint64_t>(ctx.tenant + 1)));
    return open[h % open.size()];
  };
}

PlacementPolicy placement_by_name(const std::string& name) {
  if (name == "hash") return hash_placement();
  if (name == "least-loaded") return least_loaded_placement();
  if (name == "affinity") return tenant_affinity_placement();
  NURD_CHECK(false, "unknown placement policy (hash | least-loaded | "
                    "affinity)");
  return {};
}

}  // namespace nurd::serve
