#include "serve/shard_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <set>
#include <tuple>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/task_dag.h"

namespace nurd::serve {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

struct ShardEngine::Impl {
  // Per-job engine-local scheduling state (the session itself is the
  // caller's). The pending/scheduled pair only serves kSerialLanes and the
  // serialized loop, where a job is a serial lane drained by at most one
  // task at a time.
  struct Admitted {
    double time = 0.0;
    std::uint32_t checkpoint = 0;
    Clock::time_point admitted_at;
  };
  struct LaneState {
    std::deque<Admitted> pending;  ///< kSerialLanes / serialized only
    bool scheduled = false;        ///< kSerialLanes / serialized only
  };

  Impl(std::span<const trace::Job> jobs, std::span<JobSession> sessions,
       std::vector<EngineEvent> events, EngineConfig config,
       EngineHooks hooks)
      : jobs_(jobs),
        sessions_(sessions),
        events_(std::move(events)),
        config_(config),
        hooks_(std::move(hooks)) {
    NURD_CHECK(sessions_.size() == jobs_.size(),
               "one session per job, fleet-wide");
    lanes_.resize(jobs_.size());
    shed_.resize(jobs_.size());
    event_time_.resize(jobs_.size());
    // The plan slice must preserve each job's checkpoint order (ascending,
    // possibly gapped only at the FRONT for migrated-in jobs) — the session
    // protocol admits no other order.
    std::vector<std::size_t> next_seen(jobs_.size(),
                                       std::numeric_limits<std::size_t>::max());
    for (const EngineEvent& ev : events_) {
      NURD_CHECK(ev.job < jobs_.size(), "event job out of range");
      NURD_CHECK(sessions_[ev.job].run.has_value() &&
                     !sessions_[ev.job].ring.empty(),
                 "event for a job with no session");
      if (next_seen[ev.job] == std::numeric_limits<std::size_t>::max()) {
        first_checkpoint_.push_back({ev.job, ev.checkpoint});
      } else {
        NURD_CHECK(ev.checkpoint == next_seen[ev.job],
                   "engine events must follow checkpoint order per job");
      }
      next_seen[ev.job] = ev.checkpoint + 1;
      auto& times = event_time_[ev.job];
      if (times.empty()) times.resize(jobs_[ev.job].checkpoint_count(), 0.0);
      times[ev.checkpoint] = ev.time;
      if (ev.shed) {
        auto& bits = shed_[ev.job];
        if (bits.empty()) bits.resize(jobs_[ev.job].checkpoint_count(), 0);
        bits[ev.checkpoint] = 1;
      }
    }
    next_ingest_time_ = events_.empty()
                            ? std::numeric_limits<double>::infinity()
                            : events_.front().time;
  }

  double low_watermark() const NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return inflight_times_.empty() ? next_ingest_time_
                                   : *inflight_times_.begin();
  }

  // Admits `ev` into its lane (caller holds no locks) and, when the lane is
  // idle, starts a drain: submitted to `pool`, or run inline right here when
  // serialized (pool == nullptr).
  void admit(const EngineEvent& ev, ThreadPool* pool) NURD_EXCLUDES(mutex_) {
    bool schedule = false;
    {
      MutexLock lock(mutex_);
      while (!(inflight_ < cap_ || error_ != nullptr)) cv_.wait(mutex_);
      if (error_) return;  // stop admitting; run() rethrows after the drain
      LaneState& lane = lanes_[ev.job];
      lane.pending.push_back({ev.time, ev.checkpoint, Clock::now()});
      account_admit_locked(ev);
      if (!lane.scheduled) {
        lane.scheduled = true;
        schedule = true;
      }
    }
    if (!schedule) return;
    if (pool) {
      pool->submit([this, job = ev.job] { drain_lane(job); });
    } else {
      drain_lane(ev.job);
    }
  }

  void account_admit_locked(const EngineEvent& ev) NURD_REQUIRES(mutex_) {
    ++inflight_;
    inflight_times_.insert(ev.time);
    peak_backlog_ = std::max(peak_backlog_, inflight_);
    ++next_event_;
    next_ingest_time_ = next_event_ < events_.size()
                            ? events_[next_event_].time
                            : std::numeric_limits<double>::infinity();
  }

  bool is_shed(std::size_t job, std::size_t t) const {
    return !shed_[job].empty() && shed_[job][t] != 0;
  }

  // Executes ONE pipeline stage of checkpoint `t` of `job`, timing its body
  // into the per-stage busy counters. Every execution mode funnels through
  // here — the serialized loop and the serial lanes run the four stages back
  // to back, the DAG runs them as separate tasks — so the stage breakdown is
  // populated identically everywhere. The Flag stage is where decisions
  // leave the engine: the sink runs here, OUTSIDE the engine mutex and
  // BEFORE the event's time leaves the in-flight set, so low_watermark()
  // cannot pass a flag that is still being delivered.
  void run_stage(std::size_t job, std::size_t t, core::Stage stage)
      NURD_EXCLUDES(mutex_) {
    JobSession& session = sessions_[job];
    eval::CheckpointScratch& cell = session.ring[t % session.ring.size()];
    const bool shed = is_shed(job, t);
    const auto began = Clock::now();
    switch (stage) {
      case core::Stage::kFeaturize:
        session.run->featurize(t, &cell, shed);
        break;
      case core::Stage::kRefit:
        session.run->refit(t, &cell, shed);
        break;
      case core::Stage::kPredict:
        session.run->predict(t, &cell, shed);
        break;
      case core::Stage::kFlag: {
        const auto flagged = session.run->flag(t, &cell);
        if (!flagged.empty()) {
          if (hooks_.sink) {
            const double time = event_time_[job][t];
            for (auto task : flagged) hooks_.sink({job, task, t, time, 0, 0});
          }
          MutexLock lock(mutex_);
          flags_ += flagged.size();
        }
        if (shed) {
          MutexLock lock(mutex_);
          ++shed_count_;
        }
        break;
      }
    }
    stage_nanos_[static_cast<std::size_t>(stage)].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - began)
                .count()),
        std::memory_order_relaxed);
  }

  // Drains one job's lane (serialized and kSerialLanes modes): processes
  // admitted checkpoints strictly in order — all four stages back to back —
  // until the lane empties.
  void drain_lane(std::size_t job) NURD_EXCLUDES(mutex_) {
    LaneState& lane = lanes_[job];
    JobSession& session = sessions_[job];
    for (;;) {
      Admitted ev;
      {
        MutexLock lock(mutex_);
        if (lane.pending.empty() || error_) {
          lane.scheduled = false;
          if (error_) abandon_lane_locked(lane);
          return;
        }
        ev = lane.pending.front();
        lane.pending.pop_front();
      }

      try {
        NURD_CHECK(session.run->next_checkpoint() == ev.checkpoint,
                   "lane processed a checkpoint out of order");
        for (std::size_t s = 0; s < core::kStageCount; ++s) {
          run_stage(job, ev.checkpoint, static_cast<core::Stage>(s));
        }
      } catch (...) {
        MutexLock lock(mutex_);
        if (!error_) error_ = std::current_exception();
        retire_locked(ev.time);
        lane.scheduled = false;
        abandon_lane_locked(lane);
        return;
      }

      const double latency =
          std::chrono::duration<double>(Clock::now() - ev.admitted_at)
              .count();
      {
        MutexLock lock(mutex_);
        latencies_.push_back({static_cast<std::uint32_t>(job), latency});
        ++processed_;
        retire_locked(ev.time);
      }
      if (hooks_.retired) hooks_.retired(job, ev.checkpoint);
    }
  }

  // DAG-mode admission: the event accounting runs under the mutex, the
  // executor admit OUTSIDE it (the executor's callbacks take mutex_
  // themselves). A refused admit — the job was cancelled by an earlier stage
  // error — retires the event immediately so the in-flight count still
  // drains to zero.
  void admit_dag(const EngineEvent& ev, core::TaskDag& dag)
      NURD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!(inflight_ < cap_ || error_ != nullptr)) cv_.wait(mutex_);
      if (error_) return;  // stop admitting; run() rethrows after the drain
      account_admit_locked(ev);
      admitted_at_[ev.job][ev.checkpoint] = Clock::now();
    }
    if (!dag.admit(ev.job, ev.checkpoint)) {
      MutexLock lock(mutex_);
      retire_locked(ev.time);
    }
  }

  // Both _locked helpers require mutex_ held (compiler-enforced).
  void retire_locked(double time) NURD_REQUIRES(mutex_) {
    --inflight_;
    inflight_times_.erase(inflight_times_.find(time));
    cv_.notify_all();
  }

  // A failed lane abandons its backlog so run()'s in-flight count can still
  // drain to zero (the first error is what gets rethrown).
  void abandon_lane_locked(LaneState& lane) NURD_REQUIRES(mutex_) {
    for (const auto& dropped : lane.pending) retire_locked(dropped.time);
    lane.pending.clear();
  }

  void run() NURD_EXCLUDES(mutex_) {
    NURD_CHECK(!ran_, "ShardEngine::run() called twice");
    ran_ = true;

    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t workers =
        config_.threads == 0 ? std::max(1u, hw) : config_.threads;
    cap_ = config_.max_inflight == 0 ? 4 * workers : config_.max_inflight;

    const bool use_dag =
        config_.executor == ExecutorMode::kDag && workers > 1;
    if (use_dag) {
      MutexLock lock(mutex_);  // preamble, but the field is lock-annotated
      admitted_at_.resize(jobs_.size());
      for (const auto& fc : first_checkpoint_) {
        admitted_at_[fc.first].resize(jobs_[fc.first].checkpoint_count());
      }
    }

    // Serialized (threads == 1): no pool — each event is admitted and its
    // lane drained inline, in plan order. Concurrent: a private pool of
    // `workers` runs the stage work — as pipelined DAG tasks (default) or as
    // monolithic per-lane drains (kSerialLanes, the baseline) — and this
    // thread only admits. The dag is declared after the pool so it is
    // destroyed FIRST (its pumps run on the pool).
    std::optional<ThreadPool> pool;
    std::optional<core::TaskDag> dag;
    if (workers > 1) pool.emplace(workers);
    if (use_dag) {
      core::TaskDagConfig dag_config;
      dag_config.workers = workers;
      dag_config.window = config_.window;
      dag_config.featurize_ahead = std::min<std::size_t>(2, config_.window);
      dag.emplace(
          jobs_.size(), dag_config,
          [this](const core::TaskKey& k) {
            run_stage(k.job, k.checkpoint, k.stage);
          },
          [this](std::size_t job, std::size_t ckpt, bool completed) {
            {
              MutexLock lock(mutex_);
              if (completed) {
                latencies_.push_back(
                    {static_cast<std::uint32_t>(job),
                     std::chrono::duration<double>(Clock::now() -
                                                   admitted_at_[job][ckpt])
                         .count()});
                ++processed_;
              }
              retire_locked(event_time_[job][ckpt]);
            }
            if (completed && hooks_.retired) hooks_.retired(job, ckpt);
          },
          [this](std::size_t, std::exception_ptr e) {
            MutexLock lock(mutex_);
            if (!error_) error_ = e;
            cv_.notify_all();
          });
      // Migrated-in jobs start their pipeline at the handoff boundary; the
      // executor treats everything below it as already complete.
      for (const auto& fc : first_checkpoint_) {
        if (fc.second > 0) dag->begin_job_at(fc.first, fc.second);
      }
      dag->start(*pool);
    }

    // `dead` (handoff-abandoned jobs) is touched only on this admission
    // thread.
    std::vector<std::uint8_t> dead(jobs_.size(), 0);
    const auto start = Clock::now();
    for (const EngineEvent& ev : events_) {
      if (dead[ev.job]) continue;
      if (ev.wait_boundary != kNoHandoff) {
        // Migration handshake: block until the source engine retired every
        // checkpoint below the boundary (false = fleet abort).
        if (!hooks_.wait_handoff ||
            !hooks_.wait_handoff(ev.job, ev.wait_boundary)) {
          dead[ev.job] = 1;
          continue;
        }
      }
      if (dag) {
        admit_dag(ev, *dag);
      } else {
        admit(ev, pool ? &*pool : nullptr);
      }
      {
        MutexLock lock(mutex_);
        if (error_) break;
      }
    }
    if (dag) dag->close();
    {
      MutexLock lock(mutex_);
      while (inflight_ != 0) cv_.wait(mutex_);
    }
    if (dag) dag->wait();
    {
      MutexLock lock(mutex_);
      if (error_) std::rethrow_exception(error_);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Stats assembly holds mutex_: the drain above already guarantees every
    // writer is done (in-flight count zero, DAG pumps exited), but reading
    // the guarded counters through the same lock they were written under
    // makes the happens-before a compiler-checked fact instead of an
    // argument about pool teardown order.
    {
      MutexLock lock(mutex_);
      stats_.processed = processed_;
      stats_.flags = flags_;
      stats_.shed = shed_count_;
      stats_.workers = workers;
      stats_.peak_backlog = peak_backlog_;
      stats_.wall_seconds = wall;
      stats_.latencies = std::move(latencies_);
    }
    for (std::size_t i = 0; i < core::kStageCount; ++i) {
      stats_.stage_seconds[i] =
          static_cast<double>(
              stage_nanos_[i].load(std::memory_order_relaxed)) *
          1e-9;
    }
  }

  // ---- owner state: written at construction or in run()'s preamble, before
  // any worker exists; read-only once stage tasks are in flight. Sessions
  // are driven without a lock — exactly one stage task of a job runs at a
  // time (the DAG's refit chain / the serial lane). LaneState::pending /
  // ::scheduled are only touched under mutex_ (see drain_lane).
  std::span<const trace::Job> jobs_;
  std::span<JobSession> sessions_;
  std::vector<EngineEvent> events_;  ///< the plan slice, in admission order
  EngineConfig config_;
  EngineHooks hooks_;
  std::vector<LaneState> lanes_;
  /// Per job: 1 where the checkpoint is shed (empty = none shed).
  std::vector<std::vector<std::uint8_t>> shed_;
  /// Per job: simulated event time per checkpoint (filled for plan events).
  std::vector<std::vector<double>> event_time_;
  /// (job, first checkpoint in this engine's slice) per appearing job.
  std::vector<std::pair<std::size_t, std::size_t>> first_checkpoint_;
  bool ran_ = false;
  std::size_t cap_ = 1;
  EngineStats stats_;

  mutable Mutex mutex_;
  CondVar cv_;
  std::size_t inflight_ NURD_GUARDED_BY(mutex_) = 0;
  /// Admitted, not yet processed.
  std::multiset<double> inflight_times_ NURD_GUARDED_BY(mutex_);
  /// Next events_ index to admit.
  std::size_t next_event_ NURD_GUARDED_BY(mutex_) = 0;
  double next_ingest_time_ NURD_GUARDED_BY(mutex_) = 0.0;
  std::size_t peak_backlog_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t processed_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t flags_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t shed_count_ NURD_GUARDED_BY(mutex_) = 0;
  /// Seconds, unsorted; moved into stats_ when run() ends.
  std::vector<EngineStats::Latency> latencies_ NURD_GUARDED_BY(mutex_);
  std::exception_ptr error_ NURD_GUARDED_BY(mutex_);

  /// DAG mode: admission wall-clock per (job, checkpoint), stamped under
  /// mutex_ at admit and read under mutex_ at retire.
  std::vector<std::vector<Clock::time_point>> admitted_at_
      NURD_GUARDED_BY(mutex_);
  /// Cumulative busy nanoseconds per pipeline stage, across all workers.
  std::array<std::atomic<std::uint64_t>, core::kStageCount> stage_nanos_{};
};

ShardEngine::ShardEngine(std::span<const trace::Job> jobs,
                         std::span<JobSession> sessions,
                         std::vector<EngineEvent> events, EngineConfig config,
                         EngineHooks hooks)
    : impl_(std::make_unique<Impl>(jobs, sessions, std::move(events), config,
                                   std::move(hooks))) {}

ShardEngine::~ShardEngine() = default;

double ShardEngine::low_watermark() const { return impl_->low_watermark(); }

void ShardEngine::run() { impl_->run(); }

const EngineStats& ShardEngine::stats() const { return impl_->stats_; }

}  // namespace nurd::serve
