#include "censored/coxph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/linalg.h"

namespace nurd::censored {

CoxPh::CoxPh(CoxParams params) : params_(params) {
  NURD_CHECK(params_.max_iterations > 0, "max_iterations must be positive");
}

void CoxPh::fit(const Matrix& x, std::span<const SurvivalObservation> obs) {
  NURD_CHECK(x.rows() == obs.size(), "row/observation count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const Matrix xs = scaler_.fit_transform(x);

  // Sort sample indices by time ascending; the risk set at an event time is
  // the suffix of this ordering.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return obs[a].time < obs[b].time;
                   });

  beta_.assign(d, 0.0);
  std::vector<double> eta(n, 0.0), w(n, 1.0);

  for (int it = 0; it < params_.max_iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      eta[i] = 0.0;
      auto row = xs.row(i);
      for (std::size_t j = 0; j < d; ++j) eta[i] += beta_[j] * row[j];
      w[i] = std::exp(std::clamp(eta[i], -30.0, 30.0));
    }

    // Sweep times descending, maintaining suffix sums over the risk set:
    //   S0 = Σ w_j,  S1 = Σ w_j x_j,  S2 = Σ w_j x_j x_jᵀ.
    std::vector<double> grad(d, 0.0);
    Matrix hess(d, d, 0.0);
    double s0 = 0.0;
    std::vector<double> s1(d, 0.0);
    Matrix s2(d, d, 0.0);

    std::size_t pos = n;  // walk from latest time to earliest
    while (pos > 0) {
      // Pull in every sample tied at this time before processing events.
      const double t = obs[order[pos - 1]].time;
      std::size_t first = pos;
      while (first > 0 && obs[order[first - 1]].time == t) --first;
      for (std::size_t q = first; q < pos; ++q) {
        const std::size_t i = order[q];
        auto row = xs.row(i);
        s0 += w[i];
        for (std::size_t a = 0; a < d; ++a) {
          s1[a] += w[i] * row[a];
          for (std::size_t b = a; b < d; ++b) {
            s2(a, b) += w[i] * row[a] * row[b];
          }
        }
      }
      // Breslow: each event at this time contributes against the same
      // risk-set aggregates.
      for (std::size_t q = first; q < pos; ++q) {
        const std::size_t i = order[q];
        if (!obs[i].event) continue;
        auto row = xs.row(i);
        for (std::size_t a = 0; a < d; ++a) {
          const double mean_a = s1[a] / s0;
          grad[a] += row[a] - mean_a;
          for (std::size_t b = a; b < d; ++b) {
            hess(a, b) -= s2(a, b) / s0 - mean_a * (s1[b] / s0);
          }
        }
      }
      pos = first;
    }

    // Newton step on the penalized partial log-likelihood (maximize):
    // solve (−H + l2·I) step = grad.
    Matrix neg_h(d, d, 0.0);
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) {
        neg_h(a, b) = -hess(a, b);
        neg_h(b, a) = neg_h(a, b);
      }
      neg_h(a, a) += params_.l2 + 1e-8;
      grad[a] -= params_.l2 * beta_[a];
    }
    auto l = cholesky(neg_h);
    if (!l) break;
    const auto step = cholesky_solve(*l, grad);
    double max_step = 0.0;
    for (std::size_t a = 0; a < d; ++a) {
      beta_[a] += step[a];
      max_step = std::max(max_step, std::abs(step[a]));
    }
    if (max_step < params_.tolerance) break;
  }

  // Breslow baseline cumulative hazard on the event-time grid.
  for (std::size_t i = 0; i < n; ++i) {
    eta[i] = 0.0;
    auto row = xs.row(i);
    for (std::size_t j = 0; j < d; ++j) eta[i] += beta_[j] * row[j];
    w[i] = std::exp(std::clamp(eta[i], -30.0, 30.0));
  }
  h0_times_.clear();
  h0_values_.clear();
  double cum = 0.0;
  double s0 = 0.0;
  std::size_t pos = n;
  std::vector<std::pair<double, double>> increments;  // (time, d_k / s0)
  while (pos > 0) {
    const double t = obs[order[pos - 1]].time;
    std::size_t first = pos;
    while (first > 0 && obs[order[first - 1]].time == t) --first;
    int events = 0;
    for (std::size_t q = first; q < pos; ++q) {
      s0 += w[order[q]];
      if (obs[order[q]].event) ++events;
    }
    if (events > 0 && s0 > 0.0) {
      increments.emplace_back(t, static_cast<double>(events) / s0);
    }
    pos = first;
  }
  std::sort(increments.begin(), increments.end());
  for (const auto& [t, inc] : increments) {
    cum += inc;
    h0_times_.push_back(t);
    h0_values_.push_back(cum);
  }
  fitted_ = true;
}

double CoxPh::risk_score(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  std::vector<double> r(row.begin(), row.end());
  scaler_.transform_row(r);
  double s = 0.0;
  for (std::size_t j = 0; j < beta_.size(); ++j) s += beta_[j] * r[j];
  return s;
}

double CoxPh::baseline_cumulative_hazard(double t) const {
  NURD_CHECK(fitted_, "model not fitted");
  if (h0_times_.empty()) return 0.0;
  if (t >= h0_times_.back()) {
    // Average-rate extrapolation beyond the observed horizon.
    return h0_values_.back() * t / h0_times_.back();
  }
  // Step function: the largest grid value with time ≤ t.
  auto it = std::upper_bound(h0_times_.begin(), h0_times_.end(), t);
  if (it == h0_times_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::distance(h0_times_.begin(), it) - 1);
  return h0_values_[idx];
}

double CoxPh::survival(double t, std::span<const double> row) const {
  const double h = baseline_cumulative_hazard(t) *
                   std::exp(std::clamp(risk_score(row), -30.0, 30.0));
  return std::exp(-h);
}

}  // namespace nurd::censored
