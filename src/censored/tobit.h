// Linear Tobit (type-I) regression fitted by maximum likelihood (Tobin
// 1958). Handles right-censored targets: at checkpoint t every still-running
// task's latency is only known to exceed τrun_t. The latent latency is
// modeled as y* = x·β + σε with Gaussian ε — the distributional assumption
// the paper calls out as Tobit's weakness on long-tailed jobs.
//
// Optimized with Adam on (β, log σ); features are standardized internally.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/scaler.h"
#include "ml/loss.h"

namespace nurd::censored {

/// Tobit fit hyperparameters.
struct TobitParams {
  int max_iterations = 400;
  double learning_rate = 0.05;
  double l2 = 1e-3;  ///< ridge penalty on β (not intercept or log σ)
};

/// Linear Tobit regression with right-censoring.
class TobitRegression {
 public:
  explicit TobitRegression(TobitParams params = {});

  /// Fits on rows of `x` with targets carrying the censoring flag
  /// (`censored == true` means the true value is ≥ target.value).
  void fit(const Matrix& x, std::span<const ml::Target> targets);

  /// Predicted latent value x·β (the uncensored-mean prediction).
  double predict(std::span<const double> row) const;

  /// Estimated latent noise scale σ.
  double sigma() const { return sigma_; }

  /// Penalized negative log-likelihood at the fitted parameters (per sample).
  double final_nll() const { return final_nll_; }

  bool fitted() const { return fitted_; }

 private:
  TobitParams params_;
  StandardScaler scaler_;
  std::vector<double> beta_;  // weights, intercept last
  double y_shift_ = 0.0;      // target standardization (uncensored mean)
  double y_scale_ = 1.0;      // target standardization (uncensored stddev)
  double sigma_ = 1.0;
  double final_nll_ = 0.0;
  bool fitted_ = false;
};

}  // namespace nurd::censored
