// Cox proportional-hazards model (Cox 1972) fitted by Newton–Raphson on the
// Breslow-tie partial likelihood, with a Breslow baseline cumulative hazard.
//
// In the straggler setting the "event" is task completion: finished tasks
// are events at their latency, running tasks are right-censored at the
// checkpoint horizon τrun_t. A task is predicted to straggle when its
// predicted probability of "surviving" (still running) past the straggler
// threshold τstra is at least 1/2:  S(τstra | x) = exp(−H0(τstra)·e^{x·β}).
//
// H0 is only identified up to the largest observed time; since τstra always
// exceeds the current horizon during online prediction, H0 is extrapolated
// with the average observed hazard rate (H0(t) = H0(t_max)·t/t_max for
// t > t_max). The paper's critique — that a single shared survival-curve
// shape misfits heterogeneous jobs — applies equally under this
// extrapolation, which is the behaviour we want to reproduce.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/scaler.h"

namespace nurd::censored {

/// One survival observation: duration and whether the event (completion)
/// was observed (false ⇒ right-censored at `time`).
struct SurvivalObservation {
  double time = 0.0;
  bool event = false;
};

/// CoxPH fit hyperparameters.
struct CoxParams {
  int max_iterations = 25;
  double tolerance = 1e-8;
  double l2 = 1e-4;  ///< ridge on β for separable/collinear designs
};

/// Cox proportional-hazards regression.
class CoxPh {
 public:
  explicit CoxPh(CoxParams params = {});

  /// Fits β on rows of `x` with survival observations `obs`.
  void fit(const Matrix& x, std::span<const SurvivalObservation> obs);

  /// Linear risk score x·β (features standardized internally).
  double risk_score(std::span<const double> row) const;

  /// Baseline cumulative hazard H0(t), Breslow estimator with average-rate
  /// extrapolation beyond the last observed time.
  double baseline_cumulative_hazard(double t) const;

  /// Predicted survival probability S(t|x) = exp(−H0(t)·exp(x·β)).
  double survival(double t, std::span<const double> row) const;

  const std::vector<double>& beta() const { return beta_; }
  bool fitted() const { return fitted_; }

 private:
  CoxParams params_;
  StandardScaler scaler_;
  std::vector<double> beta_;
  // Breslow baseline: event times (ascending) with cumulative hazard values.
  std::vector<double> h0_times_;
  std::vector<double> h0_values_;
  bool fitted_ = false;
};

}  // namespace nurd::censored
