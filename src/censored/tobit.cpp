#include "censored/tobit.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace nurd::censored {

TobitRegression::TobitRegression(TobitParams params) : params_(params) {
  NURD_CHECK(params_.max_iterations > 0, "max_iterations must be positive");
  NURD_CHECK(params_.learning_rate > 0.0, "learning_rate must be positive");
}

void TobitRegression::fit(const Matrix& x,
                          std::span<const ml::Target> targets) {
  NURD_CHECK(x.rows() == targets.size(), "row/target count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const Matrix xs = scaler_.fit_transform(x);

  // Standardize the target as well: Adam's steps are scale-free, so fitting
  // in raw latency units (hundreds to thousands of seconds) would never move
  // the parameters far enough. Targets are mapped to (y − m)/s using the
  // uncensored mean/stddev; predictions are mapped back.
  std::vector<double> unc;
  for (const auto& t : targets) {
    if (!t.censored) unc.push_back(t.value);
  }
  y_shift_ = unc.empty() ? 0.0 : mean(unc);
  y_scale_ = std::max(unc.empty() ? 1.0 : stddev(unc), 1e-6);
  std::vector<ml::Target> ts(targets.begin(), targets.end());
  for (auto& t : ts) t.value = (t.value - y_shift_) / y_scale_;

  const std::size_t p = d + 2;  // β (d), intercept, log σ
  std::vector<double> theta(p, 0.0);
  theta[d + 1] = 0.0;  // σ starts at 1 in standardized units

  // Adam state.
  std::vector<double> m(p, 0.0), v(p, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;

  std::vector<double> grad(p);
  for (int it = 1; it <= params_.max_iterations; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    const double sigma = std::exp(theta[d + 1]);
    const double inv_s = 1.0 / sigma;
    double nll = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
      auto row = xs.row(i);
      double mu = theta[d];
      for (std::size_t j = 0; j < d; ++j) mu += theta[j] * row[j];

      if (!ts[i].censored) {
        const double r = (mu - ts[i].value) * inv_s;
        nll += theta[d + 1] + 0.5 * r * r;
        const double gmu = r * inv_s;
        for (std::size_t j = 0; j < d; ++j) grad[j] += gmu * row[j];
        grad[d] += gmu;
        grad[d + 1] += 1.0 - r * r;
      } else {
        // Right-censored at c: contribution −log Φ((μ − c)/σ).
        const double u = (mu - ts[i].value) * inv_s;
        const double mills = ml::TobitLoss::inverse_mills(u);
        nll += -std::log(std::max(normal_cdf(u), 1e-300));
        const double gmu = -mills * inv_s;
        for (std::size_t j = 0; j < d; ++j) grad[j] += gmu * row[j];
        grad[d] += gmu;
        grad[d + 1] += u * mills;
      }
    }

    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& g : grad) g *= inv_n;
    for (std::size_t j = 0; j < d; ++j) grad[j] += params_.l2 * theta[j];
    final_nll_ = nll * inv_n;

    for (std::size_t j = 0; j < p; ++j) {
      m[j] = b1 * m[j] + (1.0 - b1) * grad[j];
      v[j] = b2 * v[j] + (1.0 - b2) * grad[j] * grad[j];
      const double mh = m[j] / (1.0 - std::pow(b1, it));
      const double vh = v[j] / (1.0 - std::pow(b2, it));
      theta[j] -= params_.learning_rate * mh / (std::sqrt(vh) + eps);
    }
    // Keep σ in a sane range.
    theta[d + 1] = std::clamp(theta[d + 1], std::log(1e-4), std::log(1e6));
  }

  beta_.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(d + 1));
  sigma_ = std::exp(theta[d + 1]) * y_scale_;
  fitted_ = true;
}

double TobitRegression::predict(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  std::vector<double> r(row.begin(), row.end());
  scaler_.transform_row(r);
  double mu = beta_.back();
  for (std::size_t j = 0; j + 1 < beta_.size(); ++j) mu += beta_[j] * r[j];
  return y_shift_ + y_scale_ * mu;
}

}  // namespace nurd::censored
