#include "core/registry.h"

#include <memory>

#include "common/check.h"
#include "core/baselines.h"
#include "core/nurd.h"
#include "outlier/density_detectors.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"
#include "outlier/ocsvm.h"
#include "outlier/statistical_detectors.h"
#include "outlier/subspace_detectors.h"

namespace nurd::core {

namespace {

ml::GbtParams gbt_params(const RegistryConfig& config) {
  ml::GbtParams p;
  p.n_rounds = config.gbt_rounds;
  return p;
}

template <typename D, typename... Args>
NamedPredictor outlier_entry(const std::string& name,
                             const RegistryConfig& config, Args... args) {
  const double contamination = config.contamination;
  return {name, [name, contamination, args...]() {
            return std::make_unique<OutlierPredictor>(
                name,
                [args...]() -> std::unique_ptr<outlier::Detector> {
                  return std::make_unique<D>(args...);
                },
                contamination);
          }};
}

}  // namespace

RegistryConfig google_tuned() {
  RegistryConfig c;
  c.nurd_alpha = 0.25;
  c.nurd_gbt_rounds = 80;
  c.nurd_tree_depth = 3;
  return c;
}

RegistryConfig alibaba_tuned() {
  RegistryConfig c;
  c.nurd_alpha = 0.32;
  c.nurd_gbt_rounds = 40;
  c.nurd_tree_depth = 4;
  return c;
}

std::vector<NamedPredictor> all_predictors(RegistryConfig config) {
  std::vector<NamedPredictor> out;

  // Supervised.
  out.push_back({"GBTR", [config]() {
                   return std::make_unique<GbtrPredictor>(gbt_params(config));
                 }});

  // Outlier detection (Table 3 order).
  out.push_back(outlier_entry<outlier::AbodDetector>("ABOD", config));
  out.push_back(outlier_entry<outlier::CblofDetector>("CBLOF", config));
  out.push_back(outlier_entry<outlier::HbosDetector>("HBOS", config));
  out.push_back(outlier_entry<outlier::IForestDetector>("IFOREST", config));
  out.push_back(outlier_entry<outlier::KnnDetector>("KNN", config));
  out.push_back(outlier_entry<outlier::LofDetector>("LOF", config));
  out.push_back(outlier_entry<outlier::McdDetector>("MCD", config));
  out.push_back(outlier_entry<outlier::OcsvmDetector>("OCSVM", config));
  out.push_back(outlier_entry<outlier::PcaDetector>("PCA", config));
  out.push_back(outlier_entry<outlier::SosDetector>("SOS", config));
  out.push_back(outlier_entry<outlier::LscpDetector>("LSCP", config));
  out.push_back(outlier_entry<outlier::CofDetector>("COF", config));
  out.push_back(outlier_entry<outlier::SodDetector>("SOD", config));
  out.push_back({"XGBOD", [config]() {
                   outlier::XgbodParams p;
                   p.gbt = gbt_params(config);
                   return std::make_unique<XgbodPredictor>(
                       p, config.contamination);
                 }});

  // Positive-unlabeled.
  out.push_back({"PU-EN", [config]() {
                   pu::PuEnParams p;
                   p.gbt = gbt_params(config);
                   return std::make_unique<PuEnPredictor>(p);
                 }});
  out.push_back({"PU-BG", []() {
                   return std::make_unique<PuBgPredictor>();
                 }});

  // Censored and survival regression.
  out.push_back({"Tobit", []() {
                   return std::make_unique<TobitPredictor>();
                 }});
  out.push_back({"Grabit", [config]() {
                   return std::make_unique<GrabitPredictor>(
                       gbt_params(config));
                 }});
  out.push_back({"CoxPH", []() {
                   return std::make_unique<CoxPredictor>();
                 }});

  // Systems.
  out.push_back({"Wrangler", []() {
                   return std::make_unique<WranglerPredictor>();
                 }});

  // Ours.
  for (auto& np : nurd_predictors(config)) out.push_back(std::move(np));
  return out;
}

std::vector<NamedPredictor> nurd_predictors(RegistryConfig config) {
  const auto nurd_params = [config](bool calibrate) {
    NurdParams p;
    p.calibrate = calibrate;
    p.alpha = config.nurd_alpha;
    p.epsilon = config.nurd_epsilon;
    p.gbt.n_rounds = config.nurd_gbt_rounds;
    p.gbt.tree.max_depth = config.nurd_tree_depth;
    p.propensity.l2 = config.nurd_propensity_l2;
    return p;
  };
  std::vector<NamedPredictor> out;
  out.push_back({"NURD-NC", [nurd_params]() {
                   return std::make_unique<NurdPredictor>(nurd_params(false));
                 }});
  out.push_back({"NURD", [nurd_params]() {
                   return std::make_unique<NurdPredictor>(nurd_params(true));
                 }});
  return out;
}

NamedPredictor predictor_by_name(const std::string& name,
                                 RegistryConfig config) {
  for (auto& np : all_predictors(config)) {
    if (np.name == name) return np;
  }
  NURD_CHECK(false, "unknown predictor: " + name);
  return {};  // unreachable
}

}  // namespace nurd::core
