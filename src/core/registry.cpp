#include "core/registry.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "core/baselines.h"
#include "core/nurd.h"
#include "outlier/density_detectors.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"
#include "outlier/ocsvm.h"
#include "outlier/statistical_detectors.h"
#include "outlier/subspace_detectors.h"

namespace nurd::core {

namespace {

ml::GbtParams gbt_params(const RegistryConfig& config) {
  ml::GbtParams p;
  p.n_rounds = config.gbt_rounds;
  p.warm_rate_factor = config.gbt_warm_rate;
  return p;
}

template <typename D, typename... Args>
NamedPredictor outlier_entry(const std::string& name,
                             const RegistryConfig& config, Args... args) {
  const double contamination = config.contamination;
  const RefitPolicy refit = config.refit;
  return {name, [name, contamination, refit, args...]() {
            return std::make_unique<OutlierPredictor>(
                name,
                [args...]() -> std::unique_ptr<outlier::Detector> {
                  return std::make_unique<D>(args...);
                },
                contamination, refit);
          }};
}

}  // namespace

RegistryConfig google_tuned() {
  RegistryConfig c;
  c.nurd_alpha = 0.25;
  c.nurd_gbt_rounds = 80;
  c.nurd_tree_depth = 3;
  c.grabit_warm_rate = 1.4;
  return c;
}

RegistryConfig alibaba_tuned() {
  RegistryConfig c;
  c.nurd_alpha = 0.32;
  c.nurd_gbt_rounds = 40;
  c.nurd_tree_depth = 4;
  // The d=4 Alibaba schema concentrates each continuation tree's correction
  // on broad feature regions; damping the warm step keeps the incremental
  // path's flags tracking the full-refit reference (bench_refit). Grabit's
  // censored loss already self-damps across the censoring boundary, so its
  // tuned factor sits between the squared-loss methods' and none.
  c.gbt_warm_rate = 0.75;
  c.grabit_warm_rate = 1.4;
  return c;
}

std::vector<NamedPredictor> all_predictors(RegistryConfig config) {
  std::vector<NamedPredictor> out;

  // Supervised.
  out.push_back({"GBTR", [config]() {
                   return std::make_unique<GbtrPredictor>(gbt_params(config),
                                                          config.refit);
                 }});

  // Outlier detection (Table 3 order).
  out.push_back(outlier_entry<outlier::AbodDetector>("ABOD", config));
  out.push_back(outlier_entry<outlier::CblofDetector>("CBLOF", config));
  out.push_back(outlier_entry<outlier::HbosDetector>("HBOS", config));
  out.push_back(outlier_entry<outlier::IForestDetector>("IFOREST", config));
  out.push_back(outlier_entry<outlier::KnnDetector>("KNN", config));
  out.push_back(outlier_entry<outlier::LofDetector>("LOF", config));
  out.push_back(outlier_entry<outlier::McdDetector>("MCD", config));
  out.push_back(outlier_entry<outlier::OcsvmDetector>("OCSVM", config));
  out.push_back(outlier_entry<outlier::PcaDetector>("PCA", config));
  out.push_back(outlier_entry<outlier::SosDetector>("SOS", config));
  out.push_back(outlier_entry<outlier::LscpDetector>("LSCP", config));
  out.push_back(outlier_entry<outlier::CofDetector>("COF", config));
  out.push_back(outlier_entry<outlier::SodDetector>("SOD", config));
  out.push_back({"XGBOD", [config]() {
                   outlier::XgbodParams p;
                   p.gbt = gbt_params(config);
                   return std::make_unique<XgbodPredictor>(
                       p, config.contamination, config.refit);
                 }});

  // Positive-unlabeled.
  out.push_back({"PU-EN", [config]() {
                   pu::PuEnParams p;
                   p.gbt = gbt_params(config);
                   return std::make_unique<PuEnPredictor>(p, config.refit);
                 }});
  out.push_back({"PU-BG", [config]() {
                   return std::make_unique<PuBgPredictor>(pu::PuBgParams{},
                                                          config.refit);
                 }});

  // Censored and survival regression.
  out.push_back({"Tobit", [config]() {
                   return std::make_unique<TobitPredictor>(
                       censored::TobitParams{}, config.refit);
                 }});
  out.push_back({"Grabit", [config]() {
                   auto p = gbt_params(config);
                   p.warm_rate_factor = config.grabit_warm_rate;
                   return std::make_unique<GrabitPredictor>(p, config.refit);
                 }});
  out.push_back({"CoxPH", [config]() {
                   return std::make_unique<CoxPredictor>(
                       censored::CoxParams{}, config.refit);
                 }});

  // Systems.
  out.push_back({"Wrangler", [config]() {
                   return std::make_unique<WranglerPredictor>(
                       ml::SvmParams{}, 2.0 / 3.0, 97, config.refit);
                 }});

  // Ours.
  for (auto& np : nurd_predictors(config)) out.push_back(std::move(np));
  return out;
}

std::vector<NamedPredictor> nurd_predictors(RegistryConfig config) {
  const auto nurd_params = [config](bool calibrate) {
    NurdParams p;
    p.calibrate = calibrate;
    p.alpha = config.nurd_alpha;
    p.epsilon = config.nurd_epsilon;
    p.gbt.n_rounds = config.nurd_gbt_rounds;
    p.gbt.tree.max_depth = config.nurd_tree_depth;
    p.gbt.warm_rate_factor = config.gbt_warm_rate;
    p.propensity.l2 = config.nurd_propensity_l2;
    p.refit = config.refit;
    return p;
  };
  std::vector<NamedPredictor> out;
  out.push_back({"NURD-NC", [nurd_params]() {
                   return std::make_unique<NurdPredictor>(nurd_params(false));
                 }});
  out.push_back({"NURD", [nurd_params]() {
                   return std::make_unique<NurdPredictor>(nurd_params(true));
                 }});
  return out;
}

NamedPredictor predictor_by_name(const std::string& name,
                                 RegistryConfig config) {
  auto all = all_predictors(config);
  for (auto& np : all) {
    if (np.name == name) return np;
  }
  // Unknown: name every valid Table-3 method in the error so the caller (a
  // typo'd --method flag, usually) learns the accepted spelling.
  std::string valid;
  for (const auto& np : all) {
    if (!valid.empty()) valid += ", ";
    valid += np.name;
  }
  throw std::invalid_argument("unknown predictor \"" + name +
                              "\" — valid Table-3 names: " + valid);
}

}  // namespace nurd::core
