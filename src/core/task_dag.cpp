#include "core/task_dag.h"

#include <algorithm>
#include <array>
#include <deque>
#include <exception>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_pool.h"

namespace nurd::core {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kFeaturize:
      return "featurize";
    case Stage::kRefit:
      return "refit";
    case Stage::kPredict:
      return "predict";
    case Stage::kFlag:
      return "flag";
  }
  return "?";
}

namespace {
constexpr auto kF = Stage::kFeaturize;
constexpr auto kR = Stage::kRefit;
constexpr auto kP = Stage::kPredict;
constexpr auto kFl = Stage::kFlag;

std::size_t idx(Stage s) { return static_cast<std::size_t>(s); }
}  // namespace

// Lock discipline (compiler-checked): mutex_ is the single registry lock and
// a LEAF — the stage runner and the on_retire/on_error callbacks always run
// with it released (see run_one/cancel_job), so callbacks may re-enter admit
// or cancel_job freely. Helpers named *_locked plus the bookkeeping queries
// carry NURD_REQUIRES(mutex_) and cannot be called unlocked any more.
struct TaskDag::Impl {
  // One live checkpoint of one job: four stages with outstanding-dependency
  // counts. A stage becomes ready when its count reaches zero; the whole
  // node retires when its Flag stage completes.
  struct Node {
    std::size_t checkpoint = 0;
    std::uint64_t epoch = 0;
    std::array<int, kStageCount> deps{};
    std::array<bool, kStageCount> done{};
  };

  struct JobState {
    std::uint64_t epoch = 0;
    bool cancelled = false;
    std::size_t next_admit = 0;  ///< ascending-admission cursor
    std::size_t base = 0;        ///< checkpoint index of live.front()
    std::deque<Node> live;       ///< admitted, not yet retired (ascending)
  };

  Impl(std::size_t jobs, TaskDagConfig config, StageFn run, RetireFn retire,
       ErrorFn error)
      : config_(config),
        run_(std::move(run)),
        on_retire_(std::move(retire)),
        on_error_(std::move(error)),
        jobs_(jobs) {
    NURD_CHECK(run_ != nullptr, "TaskDag needs a stage runner");
    NURD_CHECK(config_.window >= 1, "window must be at least 1");
    NURD_CHECK(config_.featurize_ahead >= 1,
               "featurize_ahead must be at least 1");
    NURD_CHECK(config_.window >= config_.featurize_ahead,
               "window must cover the featurize-ahead bound");
  }

  // ---- completion queries --------------------------------------------------
  // Stage `s` of checkpoint `t` complete? Retired checkpoints (t < base) are
  // complete in every stage; live ones carry their flags.
  bool stage_done(const JobState& js, std::size_t t, Stage s) const
      NURD_REQUIRES(mutex_) {
    if (t < js.base) return true;
    const std::size_t off = t - js.base;
    NURD_CHECK(off < js.live.size(), "dependency on an unadmitted checkpoint");
    return js.live[off].done[idx(s)];
  }

  Node* node_at(JobState& js, std::size_t t) NURD_REQUIRES(mutex_) {
    if (t < js.base) return nullptr;
    const std::size_t off = t - js.base;
    return off < js.live.size() ? &js.live[off] : nullptr;
  }

  // ---- ready-queue plumbing ------------------------------------------------
  void push_ready(std::size_t worker, const TaskKey& task)
      NURD_REQUIRES(mutex_) {
    ready_[worker % ready_.size()].push_back(task);
    ++ready_count_;
    cv_.notify_one();
  }

  // Own deque LIFO (the stage just unlocked stays cache-warm), steal FIFO
  // from the left neighbour onward (the oldest waiting work elsewhere).
  bool pop_any(std::size_t wid, TaskKey* out) NURD_REQUIRES(mutex_) {
    auto& own = ready_[wid];
    if (!own.empty()) {
      *out = own.back();
      own.pop_back();
      --ready_count_;
      return true;
    }
    for (std::size_t k = 1; k < ready_.size(); ++k) {
      auto& victim = ready_[(wid + k) % ready_.size()];
      if (!victim.empty()) {
        *out = victim.front();
        victim.pop_front();
        --ready_count_;
        return true;
      }
    }
    return false;
  }

  // ---- graph construction -------------------------------------------------
  bool admit(std::size_t job, std::size_t checkpoint) NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    NURD_CHECK(job < jobs_.size(), "admit: job out of range");
    JobState& js = jobs_[job];
    if (js.cancelled) return false;
    NURD_CHECK(checkpoint == js.next_admit,
               "checkpoints must be admitted in ascending order per job");
    NURD_CHECK(!closed_, "admit after close()");
    ++js.next_admit;

    Node node;
    node.checkpoint = checkpoint;
    node.epoch = js.epoch;
    const std::size_t t = checkpoint;
    const std::size_t A = config_.featurize_ahead;
    const std::size_t W = config_.window;

    // Outstanding-dependency counts: each predecessor not yet complete adds
    // one. Same-checkpoint predecessors are created right here, so they
    // always count. (The lambda runs under mutex_ — it is called only on
    // this line-sequence where the MutexLock above is live — but the
    // analysis cannot see a lambda's caller, hence the assert.)
    auto need = [&](std::size_t pt, Stage ps) {
      mutex_.assert_held();
      return !stage_done(js, pt, ps) ? 1 : 0;
    };
    auto& d = node.deps;
    if (t > 0) d[idx(kF)] += need(t - 1, kF);
    if (t >= A) d[idx(kF)] += need(t - A, kR);
    if (t >= W) d[idx(kF)] += need(t - W, kFl);
    d[idx(kR)] += 1;  // Featurize(t)
    if (t > 0) d[idx(kR)] += need(t - 1, kR);
    if (t > 0) d[idx(kR)] += need(t - 1, kP);
    d[idx(kP)] += 1;  // Refit(t)
    if (t > 0) d[idx(kP)] += need(t - 1, kFl);
    d[idx(kFl)] += 1;  // Predict(t)
    if (t > 0) d[idx(kFl)] += need(t - 1, kFl);

    js.live.push_back(node);
    ++live_count_;
    if (node.deps[idx(kF)] == 0) {
      push_ready(inject_next_++, {job, t, kF, node.epoch});
    }
    return true;
  }

  // Mid-stream start (migration handoff): checkpoints below the boundary are
  // treated as retired — stage_done() already answers true for t < base, so
  // rebasing the admission cursor is the whole mechanism.
  void begin_job_at(std::size_t job, std::size_t first) NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    NURD_CHECK(job < jobs_.size(), "begin_job_at: job out of range");
    JobState& js = jobs_[job];
    NURD_CHECK(js.next_admit == 0 && js.live.empty() && !js.cancelled,
               "begin_job_at on a job with admission history");
    js.next_admit = first;
    js.base = first;
  }

  // ---- completion bookkeeping ---------------------------------------------
  // Called on the worker that finished (job, t, s). Decrements dependents,
  // pushes the newly ready onto this worker's deque, retires the checkpoint
  // when its Flag stage completed. Returns the retired checkpoint (== t) or
  // SIZE_MAX when nothing retired.
  std::size_t complete(std::size_t wid, const TaskKey& task)
      NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    JobState& js = jobs_[task.job];
    if (js.epoch != task.epoch) return SIZE_MAX;  // cancelled mid-run
    Node* node = node_at(js, task.checkpoint);
    NURD_CHECK(node != nullptr, "completed a task with no live node");
    node->done[idx(task.stage)] = true;

    const std::size_t t = task.checkpoint;
    // Runs only under the MutexLock above; see admit() for why the lambda
    // needs the assert.
    auto unlock_dep = [&](std::size_t dt, Stage ds) {
      mutex_.assert_held();
      Node* dep = node_at(js, dt);
      if (dep == nullptr) return;  // not admitted yet; admit() will see done
      if (--dep->deps[idx(ds)] == 0) {
        push_ready(wid, {task.job, dt, ds, dep->epoch});
      }
    };
    switch (task.stage) {
      case kF:
        unlock_dep(t, kR);
        unlock_dep(t + 1, kF);
        break;
      case kR:
        unlock_dep(t, kP);
        unlock_dep(t + 1, kR);
        unlock_dep(t + config_.featurize_ahead, kF);
        break;
      case kP:
        unlock_dep(t, kFl);
        unlock_dep(t + 1, kR);
        break;
      case kFl:
        unlock_dep(t + 1, kP);
        unlock_dep(t + 1, kFl);
        unlock_dep(t + config_.window, kF);
        // Flag stages complete in checkpoint order, so the retiring node is
        // always the oldest live one.
        NURD_CHECK(!js.live.empty() && js.live.front().checkpoint == t,
                   "flag stage retired out of order");
        js.live.pop_front();
        ++js.base;
        // live_count_ stays up until finish_retire(): wait() must not return
        // while the on_retire callback is still running.
        return t;
    }
    return SIZE_MAX;
  }

  // Counterpart of the node removals in complete()/cancel_locked(): the
  // retired checkpoints leave the live count only AFTER their on_retire
  // callbacks returned, so wait() covers the callbacks too.
  void finish_retire(std::size_t n) NURD_EXCLUDES(mutex_) {
    if (n == 0) return;
    MutexLock lock(mutex_);
    live_count_ -= n;
    if (live_count_ == 0) cv_.notify_all();
  }

  // Drops a job's queued and live work under a fresh epoch; returns the
  // checkpoints abandoned so the caller can retire them outside the lock.
  std::uint64_t cancel_locked(std::size_t job,
                              std::vector<std::size_t>* dropped)
      NURD_REQUIRES(mutex_) {
    JobState& js = jobs_[job];
    ++js.epoch;
    js.cancelled = true;
    for (const auto& node : js.live) dropped->push_back(node.checkpoint);
    js.live.clear();
    js.base = js.next_admit;
    for (auto& deque : ready_) {
      const auto stale = std::remove_if(
          deque.begin(), deque.end(),
          [&](const TaskKey& k) { return k.job == job; });
      ready_count_ -= static_cast<std::size_t>(deque.end() - stale);
      deque.erase(stale, deque.end());
    }
    cv_.notify_all();
    return js.epoch;
  }

  std::uint64_t cancel_job(std::size_t job, bool notify_retire)
      NURD_EXCLUDES(mutex_) {
    std::vector<std::size_t> dropped;
    std::uint64_t epoch;
    {
      MutexLock lock(mutex_);
      epoch = cancel_locked(job, &dropped);
    }
    if (notify_retire && on_retire_) {
      for (const auto t : dropped) on_retire_(job, t, /*completed=*/false);
    }
    finish_retire(dropped.size());
    return epoch;
  }

  // ---- the pump loop ------------------------------------------------------
  void pump(std::size_t wid) NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (;;) {
      TaskKey task;
      if (pop_any(wid, &task)) {
        if (jobs_[task.job].epoch != task.epoch) continue;  // stale epoch
        lock.unlock();
        run_one(wid, task);
        lock.lock();
        continue;
      }
      if ((closed_ && live_count_ == 0) || stopping_) break;
      cv_.wait(mutex_);
    }
    if (--active_pumps_ == 0) cv_.notify_all();
  }

  void run_one(std::size_t wid, const TaskKey& task) NURD_EXCLUDES(mutex_) {
    try {
      run_(task);
    } catch (...) {
      const auto error = std::current_exception();
      {
        MutexLock lock(mutex_);
        if (jobs_[task.job].epoch != task.epoch) return;  // already cancelled
      }
      if (on_error_) on_error_(task.job, error);
      cancel_job(task.job, /*notify_retire=*/true);
      return;
    }
    const std::size_t retired = complete(wid, task);
    if (retired != SIZE_MAX) {
      if (on_retire_) on_retire_(task.job, retired, /*completed=*/true);
      finish_retire(1);
    }
  }

  void start(ThreadPool& pool) NURD_EXCLUDES(mutex_) {
    NURD_CHECK(pool.size() >= 1,
               "TaskDag needs a pool with at least one worker");
    // One pump per pool worker at most: a pump holds its worker for the
    // whole run, so surplus pumps would never be scheduled (their deques are
    // still reachable through stealing, but there is no point creating
    // them). The guarded setup runs under mutex_ (pumps launched below read
    // these fields under it); the pump submissions happen OUTSIDE so this
    // never holds the registry lock while taking the pool's — every lock in
    // the stack stays a leaf (see common/sync.h).
    const std::size_t n =
        std::max<std::size_t>(1, std::min(config_.workers, pool.size()));
    {
      MutexLock lock(mutex_);
      NURD_CHECK(ready_.empty(), "TaskDag started twice");
      ready_.resize(n);
      active_pumps_ = n;
    }
    for (std::size_t w = 0; w < n; ++w) {
      pool.submit([this, w] { pump(w); });
    }
  }

  void close() NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  void wait() NURD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!(closed_ && live_count_ == 0)) cv_.wait(mutex_);
  }

  ~Impl() {
    // Emergency shutdown (normal callers close()+wait() first): drop all
    // remaining work WITHOUT callbacks — the owning layer is mid-teardown —
    // and wait for every pump to leave before the state is freed.
    {
      MutexLock lock(mutex_);
      stopping_ = true;
      closed_ = true;
      for (auto& deque : ready_) deque.clear();
      ready_count_ = 0;
      cv_.notify_all();
      while (active_pumps_ != 0) cv_.wait(mutex_);
    }
  }

  TaskDagConfig config_;
  StageFn run_;
  RetireFn on_retire_;
  ErrorFn on_error_;

  Mutex mutex_;
  CondVar cv_;
  std::vector<JobState> jobs_ NURD_GUARDED_BY(mutex_);
  /// Per-worker ready deques.
  std::vector<std::deque<TaskKey>> ready_ NURD_GUARDED_BY(mutex_);
  std::size_t ready_count_ NURD_GUARDED_BY(mutex_) = 0;
  /// Round-robin target for admit() pushes.
  std::size_t inject_next_ NURD_GUARDED_BY(mutex_) = 0;
  /// Admitted checkpoints not yet retired.
  std::size_t live_count_ NURD_GUARDED_BY(mutex_) = 0;
  std::size_t active_pumps_ NURD_GUARDED_BY(mutex_) = 0;
  bool closed_ NURD_GUARDED_BY(mutex_) = false;
  bool stopping_ NURD_GUARDED_BY(mutex_) = false;
};

TaskDag::TaskDag(std::size_t jobs, TaskDagConfig config, StageFn run,
                 RetireFn on_retire, ErrorFn on_error)
    : impl_(std::make_unique<Impl>(jobs, config, std::move(run),
                                   std::move(on_retire),
                                   std::move(on_error))) {}

TaskDag::~TaskDag() = default;

void TaskDag::start(ThreadPool& pool) { impl_->start(pool); }

bool TaskDag::admit(std::size_t job, std::size_t checkpoint) {
  return impl_->admit(job, checkpoint);
}

void TaskDag::begin_job_at(std::size_t job, std::size_t first_checkpoint) {
  impl_->begin_job_at(job, first_checkpoint);
}

std::uint64_t TaskDag::cancel_job(std::size_t job) {
  return impl_->cancel_job(job, /*notify_retire=*/true);
}

void TaskDag::close() { impl_->close(); }

void TaskDag::wait() { impl_->wait(); }

}  // namespace nurd::core
