#include "core/transfer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace nurd::core {

TransferModel::TransferModel(ml::GbtParams params)
    : params_(params), model_(ml::GradientBoosting::regressor(params)) {}

void TransferModel::fit(std::span<const trace::Job> jobs) {
  NURD_CHECK(!jobs.empty(), "transfer model needs source jobs");
  Matrix x(0, 0);
  std::vector<double> y;
  std::size_t total_tasks = 0;
  for (const auto& job : jobs) total_tasks += job.task_count();
  x.reserve_rows(total_tasks);
  y.reserve(total_tasks);
  for (const auto& job : jobs) {
    NURD_CHECK(job.checkpoint_count() > 0, "source job has no checkpoints");
    // Use the final snapshot (fullest feature state) of every task. This is
    // an OFFLINE pooling step over completed jobs, so materializing the
    // dense matrix (and reading every latency) is legitimate here.
    const Matrix features = job.trace.materialize(job.checkpoint_count() - 1);
    const double med = median(job.latencies());
    NURD_CHECK(med > 0.0, "source job has non-positive median latency");
    const auto mu = features.col_means();
    const auto sd = features.col_stddevs();
    std::vector<double> row(features.cols());
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      auto src = features.row(i);
      for (std::size_t f = 0; f < row.size(); ++f) {
        row[f] = (src[f] - mu[f]) / (sd[f] > 0.0 ? sd[f] : 1.0);
      }
      x.push_row(row);
      y.push_back(std::log(job.latency(i) / med));
    }
  }
  model_ = ml::GradientBoosting::regressor(params_);
  model_.fit(x, y);
  pooled_ = x.rows();
  fitted_ = true;
}

double TransferModel::predict(std::span<const double> row,
                              std::span<const double> col_means,
                              std::span<const double> col_stddevs,
                              double median_latency) const {
  NURD_CHECK(fitted_, "transfer model not fitted");
  NURD_CHECK(row.size() == col_means.size() &&
                 row.size() == col_stddevs.size(),
             "normalization stats dimension mismatch");
  std::vector<double> z(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    z[f] = (row[f] - col_means[f]) /
           (col_stddevs[f] > 0.0 ? col_stddevs[f] : 1.0);
  }
  return median_latency * std::exp(model_.predict(z));
}

TransferNurdPredictor::TransferNurdPredictor(
    std::shared_ptr<const TransferModel> global, TransferNurdParams params)
    : global_(std::move(global)), params_(params), base_(params.nurd) {
  NURD_CHECK(global_ != nullptr && global_->fitted(),
             "transfer model must be fitted");
  NURD_CHECK(params_.blend_halfway > 0.0, "blend_halfway must be positive");
}

void TransferNurdPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
  base_.initialize(context);
}

double TransferNurdPredictor::lambda(std::size_t finished) const {
  const double n = static_cast<double>(finished);
  return n / (n + params_.blend_halfway);
}

std::vector<std::size_t> TransferNurdPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  base_.calibrate(view);
  if (view.finished().empty() || candidates.empty()) return {};
  const auto models = base_.fit_models(view);

  // Per-job normalization context for the global model: z-scoring over the
  // current snapshot, latency scale from the finished tasks' median (the
  // only latency scale observable online). Both come from the base
  // predictor's session — fit_models() already observed this view, so the
  // snapshot is assembled (or delta-patched) at most once per checkpoint
  // between the two of them.
  const Matrix& snapshot = base_.session().snapshot();
  const auto mu = snapshot.col_means();
  const auto sd = snapshot.col_stddevs();
  const double scale = std::max(median(base_.session().y_fin()), 1e-9);
  const double lam = lambda(view.finished().size());

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    const auto row = view.row(i);
    const double local = models.ht->predict(row);
    const double pooled = global_->predict(row, mu, sd, scale);
    const double y_hat = lam * local + (1.0 - lam) * pooled;
    const double z = models.gt ? models.gt->predict_proba(row) : 1.0;
    if (y_hat / base_.weight(z) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
