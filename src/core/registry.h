// The method registry: one NamedPredictor per Table-3 row, in the paper's
// row order. Benches and the evaluation harness iterate this list to
// reproduce the full comparison.
//
// RefitPolicy — how every method's per-checkpoint refit runs (threaded to
// all 23 predictors through RegistryConfig::refit):
//   * kFull (default): both models refit from scratch at every checkpoint,
//     exactly as the paper's Algorithm 1 prescribes. This is the golden
//     reference — the parity suite pins every method's flags bit-identical
//     on this path.
//   * kIncremental: featurization is maintained from the trace delta
//     instead of rebuilt (with content bitwise equal to kFull's — see
//     core/fit_session.h), GBT-backed methods warm-continue their boosters
//     between geometric refreshes, and the propensity logistic warm-starts
//     Newton from the previous checkpoint. Methods whose models always
//     refit whole — the 13 outlier detectors, XGBOD, Tobit, CoxPH,
//     Wrangler, PU-EN, PU-BG — produce bit-identical decisions to kFull;
//     only the bookkeeping differs. The warm-started learners (NURD,
//     NURD-NC, NURD-TL, GBTR, Grabit) may diverge within tolerance during
//     continuation windows. bench_refit --check enforces both the
//     per-checkpoint cost win (≥3x at late checkpoints) and the end-metric
//     drift bound (macro-F1 within 0.01) on both tuned configs.
#pragma once

#include <vector>

#include "core/fit_session.h"
#include "core/predictor.h"

namespace nurd::core {

/// Tuning knobs shared across the registry (the paper tunes per-dataset on
/// six pilot jobs; we expose the same handful of knobs).
struct RegistryConfig {
  double contamination = 0.1;  ///< outlier-detector flag rate (p90 ⇒ 0.1)
  int gbt_rounds = 40;         ///< boosting rounds for all GBT-based methods
  /// Per-checkpoint refit strategy for every method (see file comment).
  RefitPolicy refit = RefitPolicy::kFull;
  /// kIncremental only: step-size factor for warm continuation rounds
  /// relative to the configured learning rate (GbtParams::warm_rate_factor).
  /// Tuned per dataset like every other knob — the Alibaba traces' shorter
  /// feature vector makes continuation corrections land harder, so its
  /// tuned config damps them.
  double gbt_warm_rate = 1.0;
  /// Grabit's own continuation step factor (per-method per-dataset tuning,
  /// exactly the paper's §6 methodology): its censored loss spreads each
  /// correction across the uncensored/censored boundary, so it wants less
  /// damping than the squared-loss methods on the same dataset.
  double grabit_warm_rate = 1.0;
  double nurd_alpha = 0.35;    ///< tuned on pilot jobs per §6's procedure —
                               ///< the paper's own tuned value is 0.5; our
                               ///< synthetic traces sit ~0.15 higher on the
                               ///< ρ scale, so the tuned α shifts with them
                               ///< (see DESIGN.md and the ablation bench)
  double nurd_epsilon = 0.05;  ///< §6: ε = 0.05
  double nurd_propensity_l2 = 0.3;  ///< PS-model ridge (per-dataset tuned)
  int nurd_gbt_rounds = 80;    ///< NURD's latency-model boosting rounds
  int nurd_tree_depth = 3;     ///< NURD's latency-model tree depth
};

/// Tuned configuration for Google-like traces (the paper tunes each method
/// on six pilot jobs per dataset — §6 "Hyperparameter tuning").
RegistryConfig google_tuned();

/// Tuned configuration for Alibaba-like traces.
RegistryConfig alibaba_tuned();

/// All 23 methods of Table 3 (supervised, 14 outlier detectors, 2 PU
/// learners, 3 censored/survival models, Wrangler, NURD-NC, NURD), in the
/// paper's row order. docs/METHODS.md documents each row and is kept in
/// sync by tests/test_docs_methods_sync.cpp.
///
/// Thread-safety: the returned factories capture `config` by value and are
/// safe to invoke concurrently from any thread (the serving layer creates
/// one predictor per job from pool lanes); the predictor INSTANCES they
/// produce are per-job and single-threaded — see predictor.h.
std::vector<NamedPredictor> all_predictors(RegistryConfig config = {});

/// Just NURD and NURD-NC (for quick runs and the ablation bench).
std::vector<NamedPredictor> nurd_predictors(RegistryConfig config = {});

/// Looks up a single method by Table-3 name. Throws std::invalid_argument on
/// an unknown name, with the full list of valid Table-3 names in the message
/// (a typo'd --method flag should tell the user what IS accepted).
NamedPredictor predictor_by_name(const std::string& name,
                                 RegistryConfig config = {});

}  // namespace nurd::core
