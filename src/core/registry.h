// The method registry: one NamedPredictor per Table-3 row, in the paper's
// row order. Benches and the evaluation harness iterate this list to
// reproduce the full comparison.
#pragma once

#include <vector>

#include "core/predictor.h"

namespace nurd::core {

/// Tuning knobs shared across the registry (the paper tunes per-dataset on
/// six pilot jobs; we expose the same handful of knobs).
struct RegistryConfig {
  double contamination = 0.1;  ///< outlier-detector flag rate (p90 ⇒ 0.1)
  int gbt_rounds = 40;         ///< boosting rounds for all GBT-based methods
  double nurd_alpha = 0.35;    ///< tuned on pilot jobs per §6's procedure —
                               ///< the paper's own tuned value is 0.5; our
                               ///< synthetic traces sit ~0.15 higher on the
                               ///< ρ scale, so the tuned α shifts with them
                               ///< (see DESIGN.md and the ablation bench)
  double nurd_epsilon = 0.05;  ///< §6: ε = 0.05
  double nurd_propensity_l2 = 0.3;  ///< PS-model ridge (per-dataset tuned)
  int nurd_gbt_rounds = 80;    ///< NURD's latency-model boosting rounds
  int nurd_tree_depth = 3;     ///< NURD's latency-model tree depth
};

/// Tuned configuration for Google-like traces (the paper tunes each method
/// on six pilot jobs per dataset — §6 "Hyperparameter tuning").
RegistryConfig google_tuned();

/// Tuned configuration for Alibaba-like traces.
RegistryConfig alibaba_tuned();

/// All 23 methods of Table 3 (supervised, 14 outlier detectors, 2 PU
/// learners, 3 censored/survival models, Wrangler, NURD-NC, NURD).
std::vector<NamedPredictor> all_predictors(RegistryConfig config = {});

/// Just NURD and NURD-NC (for quick runs and the ablation bench).
std::vector<NamedPredictor> nurd_predictors(RegistryConfig config = {});

/// Looks up a single method by Table-3 name (throws if unknown).
NamedPredictor predictor_by_name(const std::string& name,
                                 RegistryConfig config = {});

}  // namespace nurd::core
