#include "core/fit_session.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nurd::core {

bool warm_refresh_due(const trace::CheckpointView& view, std::size_t now,
                      std::size_t at_full_fit) {
  // Trees cannot extrapolate: each batch of completions reveals latencies
  // beyond the last fit's training support, and active-set continuation
  // rounds track the reference refit only approximately, so while the
  // training set is outgrowing the ensemble's from-scratch foundation
  // (+12.5%) the model refits whole — on bitwise-identical blocks, so each
  // refresh lands exactly on the kFull reference model and the accumulated
  // continuation drift resets to zero. The refreshes stop for good once
  // three quarters of the job has finished (the foundation then covers the
  // bulk of the distribution and the remaining completions are the thin
  // tail continuations absorb well) or 70% of the checkpoint grid has
  // elapsed (slow-completing jobs must not refresh late either): the LATE
  // checkpoints are where a full refit is at its most expensive, and
  // keeping refreshes out of that window is what the per-checkpoint cost
  // win is made of.
  const bool early =
      view.finished_fraction() < 0.75 &&
      10 * view.index() < 7 * view.store().checkpoint_count();
  return early && 8 * now >= 9 * at_full_fit;
}

void refit_finished_gbt(FitSession& session, const ml::GbtParams& params,
                        GbtRefitState* state) {
  NURD_CHECK(state != nullptr, "refit_finished_gbt needs a state slot");
  const Matrix& x_fin = session.x_fin();
  const auto y_fin = session.y_fin();
  NURD_CHECK(!x_fin.empty(), "refit_finished_gbt needs finished tasks");
  auto& model = state->model;

  // Geometric refresh (see warm_refresh_due): refit whole while the block
  // is still outgrowing its from-scratch foundation — the block is bitwise
  // the kFull block, so each refresh lands exactly on the reference model —
  // and continue once growth tapers.
  const bool can_continue =
      session.incremental() && model.has_value() && session.advanced() &&
      state->last_fit_checkpoint != trace::kNoCheckpoint &&
      !warm_refresh_due(session.current_view(), x_fin.rows(),
                        model->full_fit_rows());
  if (!can_continue) {
    auto warm = params;
    warm.warm_start = session.incremental();
    model.emplace(ml::GradientBoosting::regressor(warm));
    model->fit(x_fin, y_fin);
  } else if (x_fin.rows() > model->trained_rows()) {
    // Finished rows are frozen: the block changed only by the tasks that
    // finished since the model's last fit, spliced in at their id-ordered
    // positions. Locate them (two sorted walks) and hand continue_fit the
    // insertion map.
    session.current_view().delta_since(state->last_fit_checkpoint,
                                       &state->id_scratch, nullptr);
    const auto ids = session.fin_ids();
    state->pos_scratch.clear();
    state->pos_scratch.reserve(state->id_scratch.size());
    std::size_t next = 0;
    for (std::size_t r = 0; r < ids.size() && next < state->id_scratch.size();
         ++r) {
      if (ids[r] == state->id_scratch[next]) {
        state->pos_scratch.push_back(r);
        ++next;
      }
    }
    NURD_CHECK(next == state->id_scratch.size(),
               "newly finished tasks must appear in the finished block");
    // Full round BUDGET, delta-sized round COST: the continuation boosts
    // n_rounds active-set rounds over just the spliced-in rows (see
    // GradientBoosting::continue_fit) — absorption per round is
    // multiplicative, so fewer rounds would under-fit the fresh tail no
    // matter how small the delta, while active-set rounds make each round
    // cheap instead.
    model->continue_fit(x_fin, y_fin, std::min(24, std::max(1, params.n_rounds / 2)),
                        /*changed_rows=*/{}, state->pos_scratch);
  }
  state->last_fit_checkpoint = session.checkpoint();
}

void FitSession::reset() {
  view_ = nullptr;
  stream_ = nullptr;
  t_ = trace::kNoCheckpoint;
  advanced_ = false;
  newly_finished_.clear();
  changed_rows_.clear();
  slots_[0].invalidate();
  slots_[1].invalidate();
  cur_ = 0;
}

// Shared tail of observe() and promote(): computes the delta of `view`
// against the last observed checkpoint and makes it current.
void FitSession::adopt_view(const trace::CheckpointView& view) {
  const trace::TraceStore* stream = &view.store();
  const bool same_stream = stream == stream_ && t_ != trace::kNoCheckpoint;
  if (same_stream && view.index() >= t_) {
    // Forward step (or a repeated view, whose delta is empty) of the stream
    // we have been watching: the delta is a true increment.
    advanced_ = true;
    view.delta_since(t_, &newly_finished_, &changed_rows_);
  } else {
    // First observe, a different job, or a rewind: everything is new.
    advanced_ = false;
    view.delta_since(trace::kNoCheckpoint, &newly_finished_, &changed_rows_);
  }
  view_ = &view;
  stream_ = stream;
  t_ = view.index();
}

void FitSession::observe(const trace::CheckpointView& view) {
  const bool rebuild = !(&view.store() == stream_ &&
                         t_ != trace::kNoCheckpoint && view.index() >= t_);
  adopt_view(view);
  if (rebuild) current().invalidate();
  ensure_stream(view, &current());
}

void FitSession::ensure_stream(const trace::CheckpointView& view,
                               Blocks* slot) {
  if (slot->stream_tag != &view.store()) {
    slot->invalidate();
    slot->stream_tag = &view.store();
  }
}

void FitSession::stage(const trace::CheckpointView& view, unsigned mask) {
  Blocks& slot = slots_[view.index() % 2];
  ensure_stream(view, &slot);
  if (mask & kFinishedBlock) assemble_fin(view, &slot);
  if (mask & kMemberBlock) assemble_member(view, &slot);
  if (mask & kSnapshotBlock) assemble_snapshot(view, &slot);
  slot.staged_index = view.index();
}

void FitSession::promote(const trace::CheckpointView& view) {
  Blocks& slot = slots_[view.index() % 2];
  if (slot.stream_tag != &view.store() ||
      slot.staged_index != view.index()) {
    // Nothing (or a different checkpoint) staged: behave like the
    // monolithic path.
    observe(view);
    return;
  }
  // The staged blocks are bitwise what observe(view) would assemble, so
  // adoption is just a slot flip plus the delta bookkeeping — computed here,
  // not at stage() time, because only the refit chain knows which
  // checkpoint was REALLY observed last (skipped refits never promote).
  adopt_view(view);
  cur_ = view.index() % 2;
  slot.staged_index = trace::kNoCheckpoint;  // consumed
}

const trace::CheckpointView* FitSession::view() const {
  NURD_CHECK(view_ != nullptr && view_->index() == t_,
             "observe() a view before reading session blocks");
  return view_;
}

void FitSession::assemble_fin(const trace::CheckpointView& view,
                              Blocks* slot) {
  if (slot->fin_as_of == view.index()) return;
  // The seed's exact assembly under BOTH policies: finished rows gathered in
  // ascending task id. Bitwise-identical blocks are what let an incremental
  // refresh rebuild the exact reference ensemble (boosted-tree fits are
  // chaotic in their inputs; see the header's policy contract). A gather is
  // O(n_fin·d) copy — noise next to any fit on the block — so kIncremental
  // buys nothing by appending here and instead hands warm models the splice
  // positions (refit_finished_gbt).
  view.gather_rows(view.finished(), &slot->x_fin);
  view.finished_latencies(&slot->y_fin);
  const auto fin = view.finished();
  slot->fin_ids.assign(fin.begin(), fin.end());
  slot->fin_as_of = view.index();
}

void FitSession::assemble_member(const trace::CheckpointView& view,
                                 Blocks* slot) {
  if (slot->member_as_of == view.index()) return;
  // The seed's exact propensity assembly under BOTH policies: finished rows
  // (label 1) followed by running rows (label 0). An id-ordered design would
  // be cheaper to maintain from the delta, but the assembly is an O(n·d)
  // copy while the logistic fit on it is O(iters·n·d²) — and even though the
  // fit is convex, row order perturbs the Newton path enough (iteration caps,
  // near-degenerate Hessians breaking early) to matter downstream of the
  // chaotic reweighting consumers. Same bytes, same model.
  const auto fin = view.finished();
  const auto run = view.running();
  slot->x_member.reset(view.feature_count());
  slot->x_member.reserve_rows(fin.size() + run.size());
  slot->y_member.clear();
  slot->y_member.reserve(fin.size() + run.size());
  for (const auto task : fin) {
    slot->x_member.push_row(view.row(task));
    slot->y_member.push_back(1.0);
  }
  for (const auto task : run) {
    slot->x_member.push_row(view.row(task));
    slot->y_member.push_back(0.0);
  }
  slot->member_as_of = view.index();
}

void FitSession::assemble_snapshot(const trace::CheckpointView& view,
                                   Blocks* slot) {
  if (slot->snapshot_as_of == view.index()) return;
  if (incremental() && slot->snapshot_as_of != trace::kNoCheckpoint &&
      slot->snapshot_as_of < view.index()) {
    // Patch exactly the rows the store change-detected since the checkpoint
    // THIS slot last reflected (two checkpoints back on the staged path);
    // every other row is bitwise what a full rebuild would write.
    view.delta_since(slot->snapshot_as_of, nullptr, &slot->delta_scratch);
    for (const auto task : slot->delta_scratch) {
      const auto src = view.row(task);
      std::copy(src.begin(), src.end(), slot->snapshot.row(task).begin());
    }
  } else {
    view.snapshot(&slot->snapshot);
  }
  slot->snapshot_as_of = view.index();
}

const Matrix& FitSession::x_fin() {
  assemble_fin(*view(), &current());
  return current().x_fin;
}

std::span<const double> FitSession::y_fin() {
  x_fin();
  return current().y_fin;
}

std::span<const std::size_t> FitSession::fin_ids() {
  x_fin();
  return current().fin_ids;
}

const Matrix& FitSession::x_member() {
  assemble_member(*view(), &current());
  return current().x_member;
}

std::span<const double> FitSession::y_member() {
  x_member();
  return current().y_member;
}

const Matrix& FitSession::snapshot() {
  assemble_snapshot(*view(), &current());
  return current().snapshot;
}

}  // namespace nurd::core
