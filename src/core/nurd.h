// NURD — the paper's primary contribution (Algorithm 1).
//
// At each checkpoint t:
//   1. Train a latency predictor ht on finished tasks (negatives only).
//   2. Train a propensity-score model gt: P(finished by now | features),
//      a logistic regression on finished(1) vs running(0).
//   3. Reweight: ŷadj = ht(x) / max(ε, min(gt(x) + δ, 1)), where the
//      calibration term δ = 1/(1+ρ) − α is set once from the feature-space
//      centroid ratio ρ = ‖c_fin‖₂ / ‖c_run − c_fin‖₂ at the first
//      checkpoint (§4.2 "Calibration").
//   4. Flag task i as a straggler when ŷadj ≥ τstra; flagged tasks leave the
//      evaluation pool.
// Both models are refitted from the growing finished set at every
// checkpoint (§4.3 "Updating models online").
//
// NURD-NC is the ablation with w = z (no calibration term).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/predictor.h"
#include "ml/gbt.h"
#include "ml/logistic.h"

namespace nurd::core {

/// NURD hyperparameters (§6: α = 0.5, ε = 0.05).
struct NurdParams {
  double alpha = 0.5;     ///< calibration range: δ ∈ (−α, α)
  double epsilon = 0.05;  ///< minimum positive weight ε
  bool calibrate = true;  ///< false ⇒ NURD-NC (w = z)
  /// Latency-model settings. The default SplitMethod::kAuto matters here:
  /// Algorithm 1 refits ht at every checkpoint on the growing finished set,
  /// so early (tiny) refits take the exact backend while late (large) ones
  /// take the O(d·n) histogram backend — the dominant hot path of the whole
  /// reproduction.
  ml::GbtParams gbt;
  ml::LogisticParams propensity;  ///< PS-model settings
};

/// Online NURD predictor (one instance per job).
class NurdPredictor final : public StragglerPredictor {
 public:
  explicit NurdPredictor(NurdParams params = {});

  std::string name() const override {
    return params_.calibrate ? "NURD" : "NURD-NC";
  }

  void initialize(const trace::Job& job, double tau_stra) override;

  std::vector<std::size_t> predict_stragglers(
      const trace::Job& job, std::size_t t,
      std::span<const std::size_t> candidates) override;

  /// Centroid ratio ρ computed at initialization (exposed for tests and the
  /// calibration ablation bench).
  double rho() const { return rho_; }

  /// Calibration term δ = 1/(1+ρ) − α.
  double delta() const { return delta_; }

  /// The final weight w = max(ε, min(z + δ, 1)) for a propensity z — the
  /// paper's Eq. 4 denominator. Exposed for tests.
  double weight(double propensity) const;

  /// The two models Algorithm 1 fits at a checkpoint: the latency predictor
  /// ht (absent when no task has finished) and the propensity model gt
  /// (absent when one class is empty). Exposed so extensions (e.g. the
  /// transfer-learning variant) can reuse NURD's fitting and reweighting.
  struct CheckpointModels {
    std::optional<ml::GradientBoosting> ht;
    std::optional<ml::LogisticRegression> gt;
  };

  /// Fits ht and gt from checkpoint `t`'s finished/running split.
  CheckpointModels fit_models(const trace::Job& job, std::size_t t) const;

 private:
  NurdParams params_;
  double tau_stra_ = 0.0;
  double rho_ = 1.0;
  double delta_ = 0.0;
};

}  // namespace nurd::core
