// NURD — the paper's primary contribution (Algorithm 1).
//
// At each checkpoint t:
//   1. Train a latency predictor ht on finished tasks (negatives only).
//   2. Train a propensity-score model gt: P(finished by now | features),
//      a logistic regression on finished(1) vs running(0).
//   3. Reweight: ŷadj = ht(x) / max(ε, min(gt(x) + δ, 1)), where the
//      calibration term δ = 1/(1+ρ) − α is set once from the feature-space
//      centroid ratio ρ = ‖c_fin‖₂ / ‖c_run − c_fin‖₂ at the first
//      checkpoint (§4.2 "Calibration").
//   4. Flag task i as a straggler when ŷadj ≥ τstra; flagged tasks leave the
//      evaluation pool.
// Both models are refitted from the growing finished set at every
// checkpoint (§4.3 "Updating models online").
//
// NURD-NC is the ablation with w = z (no calibration term).
//
// Under the CheckpointView API the calibration happens at the FIRST view
// the predictor observes (the harness always starts at checkpoint 0) —
// calibrate() is idempotent and exposed so benches can calibrate against a
// chosen checkpoint explicitly. Refits reuse per-instance scratch matrices
// (the library's hottest allocation path before this change).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/predictor.h"
#include "ml/gbt.h"
#include "ml/logistic.h"

namespace nurd::core {

/// NURD hyperparameters (§6: α = 0.5, ε = 0.05).
struct NurdParams {
  double alpha = 0.5;     ///< calibration range: δ ∈ (−α, α)
  double epsilon = 0.05;  ///< minimum positive weight ε
  bool calibrate = true;  ///< false ⇒ NURD-NC (w = z)
  /// Latency-model settings. The default SplitMethod::kAuto matters here:
  /// Algorithm 1 refits ht at every checkpoint on the growing finished set,
  /// so early (tiny) refits take the exact backend while late (large) ones
  /// take the O(d·n) histogram backend — the dominant hot path of the whole
  /// reproduction.
  ml::GbtParams gbt;
  ml::LogisticParams propensity;  ///< PS-model settings
};

/// Online NURD predictor (one instance per job).
class NurdPredictor final : public StragglerPredictor {
 public:
  explicit NurdPredictor(NurdParams params = {});

  std::string name() const override {
    return params_.calibrate ? "NURD" : "NURD-NC";
  }

  void initialize(const JobContext& context) override;

  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

  /// Computes ρ and δ from `view`'s finished/running centroids (Algorithm 1
  /// lines 4–6). Called automatically on the first predicted view;
  /// idempotent afterwards.
  void calibrate(const trace::CheckpointView& view);

  /// Centroid ratio ρ computed at calibration (exposed for tests and the
  /// calibration ablation bench).
  double rho() const { return rho_; }

  /// Calibration term δ = 1/(1+ρ) − α.
  double delta() const { return delta_; }

  /// The final weight w = max(ε, min(z + δ, 1)) for a propensity z — the
  /// paper's Eq. 4 denominator. Exposed for tests.
  double weight(double propensity) const;

  /// The two models Algorithm 1 fits at a checkpoint: the latency predictor
  /// ht (absent when no task has finished) and the propensity model gt
  /// (absent when one class is empty). Exposed so extensions (e.g. the
  /// transfer-learning variant) can reuse NURD's fitting and reweighting.
  struct CheckpointModels {
    std::optional<ml::GradientBoosting> ht;
    std::optional<ml::LogisticRegression> gt;
  };

  /// Fits ht and gt from the view's finished/running split. Reuses the
  /// predictor's scratch buffers, so calls are cheap to repeat per
  /// checkpoint but not thread-safe across views.
  CheckpointModels fit_models(const trace::CheckpointView& view);

 private:
  NurdParams params_;
  double tau_stra_ = 0.0;
  bool calibrated_ = false;
  double rho_ = 1.0;
  double delta_ = 0.0;

  // Refit scratch (reused across checkpoints; see ISSUE 2's perf satellite).
  Matrix x_fin_;
  Matrix x_all_;
  std::vector<double> y_fin_;
  std::vector<double> y_all_;
};

}  // namespace nurd::core
