// NURD — the paper's primary contribution (Algorithm 1).
//
// At each checkpoint t:
//   1. Train a latency predictor ht on finished tasks (negatives only).
//   2. Train a propensity-score model gt: P(finished by now | features),
//      a logistic regression on finished(1) vs running(0).
//   3. Reweight: ŷadj = ht(x) / max(ε, min(gt(x) + δ, 1)), where the
//      calibration term δ = 1/(1+ρ) − α is set once from the feature-space
//      centroid ratio ρ = ‖c_fin‖₂ / ‖c_run − c_fin‖₂ at the first
//      checkpoint (§4.2 "Calibration").
//   4. Flag task i as a straggler when ŷadj ≥ τstra; flagged tasks leave the
//      evaluation pool.
// Both models are refitted from the growing finished set at every
// checkpoint (§4.3 "Updating models online").
//
// NURD-NC is the ablation with w = z (no calibration term).
//
// Under the CheckpointView API the calibration happens at the FIRST view
// the predictor observes (the harness always starts at checkpoint 0) —
// calibrate() is idempotent and exposed so benches can calibrate against a
// chosen checkpoint explicitly. Featurization runs through the shared
// FitSession layer: under RefitPolicy::kFull both models refit from scratch
// on the session's seed-ordered blocks (bit-identical to the published
// Algorithm 1); under kIncremental ht keeps its ensemble and warm-starts
// extra rounds on the appended completions (skipping entirely when a
// checkpoint reveals none) and gt warm-starts Newton from the previous
// checkpoint's weights.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fit_session.h"
#include "core/predictor.h"
#include "ml/gbt.h"
#include "ml/logistic.h"

namespace nurd::core {

/// NURD hyperparameters (§6: α = 0.5, ε = 0.05).
struct NurdParams {
  double alpha = 0.5;     ///< calibration range: δ ∈ (−α, α)
  double epsilon = 0.05;  ///< minimum positive weight ε
  bool calibrate = true;  ///< false ⇒ NURD-NC (w = z)
  /// Latency-model settings. The default SplitMethod::kAuto matters here:
  /// Algorithm 1 refits ht at every checkpoint on the growing finished set,
  /// so early (tiny) refits take the exact backend while late (large) ones
  /// take the O(d·n) histogram backend — the dominant hot path of the whole
  /// reproduction.
  ml::GbtParams gbt;
  ml::LogisticParams propensity;  ///< PS-model settings
  /// Checkpoint refit strategy (see core/fit_session.h for the contract).
  RefitPolicy refit = RefitPolicy::kFull;
};

/// Online NURD predictor (one instance per job).
class NurdPredictor final : public StragglerPredictor {
 public:
  explicit NurdPredictor(NurdParams params = {});

  std::string name() const override {
    return params_.calibrate ? "NURD" : "NURD-NC";
  }

  void initialize(const JobContext& context) override;

  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

  /// Staged pipeline: featurize stages the finished + membership blocks in
  /// the session's double buffer; refit replicates predict_stragglers'
  /// calibrate-then-guard-then-fit sequence; predict_stragglers detects the
  /// pre-fitted checkpoint and only scores.
  bool staged() const override { return true; }
  void featurize_checkpoint(const trace::CheckpointView& view) override;
  void refit_checkpoint(const trace::CheckpointView& view,
                        std::span<const std::size_t> candidates) override;

  /// Computes ρ and δ from `view`'s finished/running centroids (Algorithm 1
  /// lines 4–6). Called automatically on the first predicted view;
  /// idempotent afterwards.
  void calibrate(const trace::CheckpointView& view);

  /// Centroid ratio ρ computed at calibration (exposed for tests and the
  /// calibration ablation bench).
  double rho() const { return rho_; }

  /// Calibration term δ = 1/(1+ρ) − α.
  double delta() const { return delta_; }

  /// The final weight w = max(ε, min(z + δ, 1)) for a propensity z — the
  /// paper's Eq. 4 denominator. Exposed for tests.
  double weight(double propensity) const;

  /// The two models Algorithm 1 fits at a checkpoint: the latency predictor
  /// ht (null when no task has finished) and the propensity model gt (null
  /// when one class is empty). The pointees live in the predictor and stay
  /// valid until the next fit_models/initialize call — under kIncremental
  /// they are the SAME models being continued checkpoint to checkpoint.
  /// Exposed so extensions (e.g. the transfer-learning variant) can reuse
  /// NURD's fitting and reweighting.
  struct CheckpointModels {
    const ml::GradientBoosting* ht = nullptr;
    const ml::LogisticRegression* gt = nullptr;
  };

  /// Observes `view` through the FitSession and refits/continues ht and gt
  /// per the configured RefitPolicy. Cheap to repeat per checkpoint but not
  /// thread-safe across views.
  CheckpointModels fit_models(const trace::CheckpointView& view);

  /// The featurization session (exposed so the transfer extension shares the
  /// same per-checkpoint blocks instead of re-gathering).
  FitSession& session() { return session_; }

 private:
  NurdParams params_;
  double tau_stra_ = 0.0;
  bool calibrated_ = false;
  double rho_ = 1.0;
  double delta_ = 0.0;

  FitSession session_;
  GbtRefitState ht_;
  std::optional<ml::LogisticRegression> gt_;

  /// Checkpoint refit_checkpoint() last fitted (kNoCheckpoint otherwise):
  /// predict_stragglers for the same view reuses fitted_models_ instead of
  /// refitting.
  std::size_t fitted_checkpoint_ = trace::kNoCheckpoint;
  CheckpointModels fitted_models_;
};

}  // namespace nurd::core
