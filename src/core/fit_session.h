// The shared featurization layer between CheckpointView and the per-method
// models — one FitSession per predictor instance (so one per job, like the
// predictors themselves).
//
// Every Table-3 method assembles some subset of three design blocks at each
// checkpoint:
//   * the finished block  (x_fin, y_fin)   — latency-model training data;
//   * the membership block (x_member, y_member) — finished(1)/running(0)
//     classification data (NURD's propensity fit, XGBOD's pseudo-labels);
//   * the snapshot        (all n rows, ascending task id) — what the
//     whole-population detectors and censored fits consume.
// Before this layer each adapter hand-rolled its own gathers per checkpoint
// (nurd.cpp, baselines.cpp, transfer.cpp all repeated the same loops).
// FitSession owns the scratch matrices, assembles each block at most once
// per observed checkpoint, and — under RefitPolicy::kIncremental — maintains
// them from the view's delta (tasks newly finished, rows changed) instead of
// rebuilding, so per-checkpoint featurization cost tracks the delta size
// rather than the job size.
//
// Policy contract:
//   * kFull reproduces the seed's assembly EXACTLY — same row order, same
//     floating-point accumulation order — so every method driven through a
//     kFull session is bit-identical to the pre-FitSession code. This is the
//     golden-parity reference path.
//   * kIncremental keeps every block BITWISE identical to kFull's (the
//     snapshot is patched from the delta rather than rewritten; the finished
//     and membership blocks are assembled in the seed's exact order). This
//     is deliberate and load-bearing: boosted-tree fits are chaotic in
//     their inputs — a 1-ulp difference in one value can flip a split tie
//     and cascade into a visibly different ensemble — and since the tuned
//     configs sit at an F1 optimum, any such perturbation systematically
//     DEGRADES the tuned methods. Bitwise-equal blocks mean a full refit
//     under kIncremental rebuilds the exact kFull model; divergence enters
//     only through warm CONTINUATIONS between geometric refreshes.
//     bench_refit quantifies the residual drift.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/matrix.h"
#include "ml/gbt.h"
#include "trace/checkpoint_view.h"

namespace nurd::core {

/// How a method refits its models as checkpoints stream in.
enum class RefitPolicy {
  kFull,         ///< refit from scratch every checkpoint (Algorithm 1 as
                 ///< published; the bit-identical reference path)
  kIncremental,  ///< delta featurization + warm-started model continuation
};

/// True when a warm-started model whose last full fit covered `at_full_fit`
/// training rows should refit from scratch now that the set holds `now` at
/// the observed view: refreshes fire on 12.5% growth past the ensemble's
/// foundation (each lands exactly on the kFull reference model, since the
/// session blocks are bitwise identical) and stop for good once 75% of the
/// job has finished OR 70% of the checkpoint grid has elapsed — the late
/// checkpoints, where a full refit is at its most expensive, always take
/// the cheap active-set continuation instead, whatever the job's completion
/// curve looks like.
bool warm_refresh_due(const trace::CheckpointView& view, std::size_t now,
                      std::size_t at_full_fit);

class FitSession;

/// Bookkeeping for a warm-startable finished-block booster (NURD's ht,
/// GBTR): the model plus the checkpoint whose finished block it last
/// absorbed, so the next continuation can splice exactly the newly finished
/// rows into the cached scores and bins.
struct GbtRefitState {
  std::optional<ml::GradientBoosting> model;
  std::size_t last_fit_checkpoint = trace::kNoCheckpoint;
  std::vector<std::size_t> id_scratch;   ///< newly finished task ids
  std::vector<std::size_t> pos_scratch;  ///< their rows in the finished block

  void reset() {
    model.reset();
    last_fit_checkpoint = trace::kNoCheckpoint;
  }
};

/// The shared "latency model on the finished set" refit used by NURD's ht,
/// GBTR, and the transfer extension. Under kFull it fits a fresh
/// squared-loss booster every call (the bit-identical reference path).
/// Under kIncremental: full warm-retaining refits while the block is still
/// outgrowing the model's foundation (warm_refresh_due) — each of those
/// rebuilds the EXACT kFull ensemble, since the block is bitwise identical —
/// nothing at all when the block did not grow, and active-set continuation
/// rounds on the spliced-in completions otherwise. Requires a non-empty
/// finished set at the observed checkpoint.
void refit_finished_gbt(FitSession& session, const ml::GbtParams& params,
                        GbtRefitState* state);

/// Which design blocks a staged featurization pass should assemble (the
/// predictor's featurize hook knows its own consumption; see
/// FitSession::stage).
enum BlockMask : unsigned {
  kFinishedBlock = 1u << 0,
  kMemberBlock = 1u << 1,
  kSnapshotBlock = 1u << 2,
};

/// Per-job featurization session. Two usage modes:
///
/// Monolithic (the seed path): call observe() once per checkpoint, then read
/// the blocks you need — each is assembled lazily, at most once per
/// checkpoint, into reused capacity.
///
/// Staged (the task-DAG pipeline): the Featurize stage calls
/// stage(view, mask) to assemble blocks AHEAD of the refit that consumes
/// them, and the Refit stage calls promote(view) to adopt them. Storage is
/// double-buffered — checkpoint t stages into slot t % 2 — so staging
/// checkpoint t+1 never touches the blocks checkpoint t's refit is still
/// reading. The executor's Featurize(t) ◄─ Refit(t-2) edge is what makes the
/// slot reuse safe; a FitSession therefore supports featurize_ahead <= 2.
/// Every block a stage/promote pair produces is bitwise identical to what
/// observe() would have assembled (same gathers, same order; the snapshot
/// patches from its own slot's delta), so the policy contract above holds
/// unchanged on the staged path.
class FitSession {
 public:
  explicit FitSession(RefitPolicy policy = RefitPolicy::kFull)
      : policy_(policy) {}

  RefitPolicy policy() const { return policy_; }
  bool incremental() const { return policy_ == RefitPolicy::kIncremental; }

  /// Forgets all per-job state (a predictor's initialize() path).
  void reset();

  /// Observes the next checkpoint. The view must stay alive until the last
  /// block accessor call for this checkpoint (predictors observe and read
  /// within one predict_stragglers call, which satisfies this by
  /// construction).
  void observe(const trace::CheckpointView& view);

  /// (staged pipeline) Assembles the blocks in `mask` for `view` into the
  /// slot for view.index(), leaving whatever the current checkpoint's
  /// readers see untouched — safe to run concurrently with block reads for
  /// a DIFFERENT checkpoint, per the double-buffer contract above. Calls for
  /// one session must themselves be serialized (the executor's Featurize
  /// chain does this). The view must stay alive through the promote/read
  /// cycle for this checkpoint (the serving layer's scratch ring satisfies
  /// this).
  void stage(const trace::CheckpointView& view, unsigned mask);

  /// (staged pipeline) Adopts the slot staged for `view` as the current
  /// checkpoint — the blocks observe(view) would have assembled, already
  /// built — and recomputes the delta markers (advanced / newly_finished /
  /// changed_rows) against the checkpoint actually observed last, which may
  /// be further back than view.index()-1 when intervening refits were
  /// skipped. Falls back to a plain observe(view) when nothing (or a
  /// different checkpoint) is staged in the slot. Must run on the refit
  /// chain, like observe().
  void promote(const trace::CheckpointView& view);

  /// Checkpoint index of the last observe.
  std::size_t checkpoint() const { return t_; }

  /// The view observed last (valid through this checkpoint's block reads).
  const trace::CheckpointView& current_view() const { return *view(); }

  /// True when the last observe advanced an already-observed stream (the
  /// deltas below are then a single increment); false on the first observe
  /// of a job, where everything finished counts as new.
  bool advanced() const { return advanced_; }

  /// Tasks that finished since the previously observed view (ascending id).
  std::span<const std::size_t> newly_finished() const {
    return newly_finished_;
  }

  /// Tasks whose observed feature row changed since the previously observed
  /// view (ascending id).
  std::span<const std::size_t> changed_rows() const { return changed_rows_; }

  // ---- the finished block -------------------------------------------------
  /// Finished tasks' frozen rows, in ascending task id under BOTH policies —
  /// bitwise identical to the seed's assembly, so a from-scratch refit gives
  /// the same ensemble whichever policy is active. Newly finished tasks
  /// splice in at their id position; continue_fit's inserted_rows parameter
  /// is how warm models follow the splice.
  const Matrix& x_fin();
  /// Revealed latencies aligned with x_fin's rows.
  std::span<const double> y_fin();
  /// Task id of each x_fin row.
  std::span<const std::size_t> fin_ids();

  // ---- the membership block ----------------------------------------------
  /// Finished/running classification design: finished rows then running
  /// rows — the seed's exact propensity assembly under BOTH policies (rows
  /// re-sectioned each checkpoint as tasks finish; see the .cpp for why the
  /// assembly is rebuilt rather than delta-maintained).
  const Matrix& x_member();
  /// Labels aligned with x_member: 1.0 finished, 0.0 running.
  std::span<const double> y_member();

  // ---- the snapshot -------------------------------------------------------
  /// Dense n×d matrix of every task's current row, ascending task id. The
  /// content is bitwise identical under both policies; kIncremental merely
  /// patches the rows the delta reports instead of rewriting all n.
  const Matrix& snapshot();

 private:
  // One buffer of assembled design blocks. The session keeps two: the
  // monolithic path only ever touches the current one; the staged path
  // alternates by checkpoint parity. Each block carries the checkpoint it
  // reflects (as_of markers) plus a stream tag, so a slot is valid for reuse
  // exactly when both match.
  struct Blocks {
    const trace::TraceStore* stream_tag = nullptr;
    std::size_t staged_index = trace::kNoCheckpoint;  ///< set by stage()

    // Finished block (fin_as_of = checkpoint the block reflects). Label
    // scratch is 32-byte aligned: these spans feed straight into
    // kernel-layer batch primitives (loss grad/hess, logistic labels).
    Matrix x_fin;
    AlignedVector<double> y_fin;
    std::vector<std::size_t> fin_ids;
    std::size_t fin_as_of = trace::kNoCheckpoint;

    // Membership block ([finished; running] assembly, both policies).
    Matrix x_member;
    AlignedVector<double> y_member;
    std::size_t member_as_of = trace::kNoCheckpoint;

    // Snapshot block.
    Matrix snapshot;
    std::size_t snapshot_as_of = trace::kNoCheckpoint;
    std::vector<std::size_t> delta_scratch;

    void invalidate() {
      stream_tag = nullptr;
      staged_index = trace::kNoCheckpoint;
      fin_as_of = trace::kNoCheckpoint;
      member_as_of = trace::kNoCheckpoint;
      snapshot_as_of = trace::kNoCheckpoint;
    }
  };

  const trace::CheckpointView* view() const;
  Blocks& current() { return slots_[cur_]; }

  /// Retags `slot` for the view's stream, dropping every block that was
  /// assembled for a different job.
  static void ensure_stream(const trace::CheckpointView& view, Blocks* slot);
  void assemble_fin(const trace::CheckpointView& view, Blocks* slot);
  void assemble_member(const trace::CheckpointView& view, Blocks* slot);
  void assemble_snapshot(const trace::CheckpointView& view, Blocks* slot);
  /// Sets the delta markers for adopting `view` after the last observed
  /// checkpoint (shared tail of observe() and promote()).
  void adopt_view(const trace::CheckpointView& view);

  RefitPolicy policy_;
  const trace::CheckpointView* view_ = nullptr;
  const trace::TraceStore* stream_ = nullptr;  ///< job identity for deltas
  std::size_t t_ = trace::kNoCheckpoint;
  bool advanced_ = false;
  std::vector<std::size_t> newly_finished_;
  std::vector<std::size_t> changed_rows_;

  Blocks slots_[2];
  std::size_t cur_ = 0;
};

}  // namespace nurd::core
