// Adapters exposing every baseline from the paper's §6 "Comparisons" through
// the online StragglerPredictor interface. Each adapter documents how the
// underlying (usually offline) method is driven by streaming checkpoint
// data; the adaptations follow the paper and DESIGN.md §3.
//
// All adapters consume trace::CheckpointView through a shared FitSession —
// the featurization layer that assembles each checkpoint's design blocks
// (finished rows, membership labels, the dense snapshot) exactly once into
// reused scratch. Under RefitPolicy::kFull every adapter behaves
// bit-identically to the hand-rolled per-adapter gathers it replaced; under
// kIncremental the session maintains the blocks from the view's delta, the
// GBT-backed adapters warm-start their boosters, and the snapshot-backed
// adapters skip rewriting unchanged rows (their decisions stay bit-identical
// across policies, since the snapshot content does not change — only how it
// is kept up to date).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "censored/coxph.h"
#include "censored/tobit.h"
#include "core/fit_session.h"
#include "core/predictor.h"
#include "ml/gbt.h"
#include "ml/linear_svm.h"
#include "outlier/detector.h"
#include "outlier/ensemble_detectors.h"
#include "pu/pu_bg.h"
#include "pu/pu_en.h"

namespace nurd::core {

/// Supervised baseline: gradient-boosted regression on finished tasks only;
/// flags a task when the (unweighted) latency prediction reaches τstra.
/// Exactly NURD's ht without the reweighting stage — the paper's
/// demonstration of negative-only training bias. Under kIncremental the
/// booster warm-continues on the appended completions like NURD's ht.
class GbtrPredictor final : public StragglerPredictor {
 public:
  explicit GbtrPredictor(ml::GbtParams params = {},
                         RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "GBTR"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

  /// Staged pipeline (see StragglerPredictor): featurize stages the
  /// finished block, refit replicates the guard-then-fit sequence,
  /// predict_stragglers then only scores.
  bool staged() const override { return true; }
  void featurize_checkpoint(const trace::CheckpointView& view) override;
  void refit_checkpoint(const trace::CheckpointView& view,
                        std::span<const std::size_t> candidates) override;

 private:
  ml::GbtParams params_;
  double tau_stra_ = 0.0;
  FitSession session_;
  GbtRefitState model_;
  std::size_t fitted_checkpoint_ = trace::kNoCheckpoint;
};

/// Generic adapter for the 13 unsupervised detectors: at each checkpoint the
/// detector is fitted on the full feature snapshot and candidates whose
/// scores exceed the contamination threshold (default 0.1, matching the p90
/// straggler definition) are flagged. The snapshot comes from the session,
/// so under kIncremental only delta rows are rewritten; the detector itself
/// refits whole (their fits are not incrementalizable), and flag decisions
/// are bit-identical across policies.
class OutlierPredictor final : public StragglerPredictor {
 public:
  using DetectorFactory =
      std::function<std::unique_ptr<outlier::Detector>()>;

  OutlierPredictor(std::string name, DetectorFactory make,
                   double contamination = 0.1,
                   RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return name_; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  std::string name_;
  DetectorFactory make_;
  double contamination_;
  FitSession session_;
};

/// XGBOD adapter: TOS-augmented boosted classifier trained on the
/// finished(0)/running(1) pseudo-labels available online (DESIGN.md §1).
class XgbodPredictor final : public StragglerPredictor {
 public:
  explicit XgbodPredictor(outlier::XgbodParams params = {},
                          double contamination = 0.1,
                          RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "XGBOD"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  outlier::XgbodParams params_;
  double contamination_;
  FitSession session_;
};

/// PU-EN adapter (Elkan–Noto with swapped roles): flags a candidate when the
/// calibrated probability of belonging to the labeled (finished) class drops
/// below 1/2. The labeled side is the session's finished block; the
/// unlabeled side (shrinking running set) is gathered per checkpoint.
class PuEnPredictor final : public StragglerPredictor {
 public:
  explicit PuEnPredictor(pu::PuEnParams params = {},
                         RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "PU-EN"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  pu::PuEnParams params_;
  FitSession session_;
  Matrix unlabeled_;
};

/// PU-BG adapter (bagging SVM): flags a candidate when its aggregated
/// out-of-bag decision value leans toward the non-finished side (> 0).
class PuBgPredictor final : public StragglerPredictor {
 public:
  explicit PuBgPredictor(pu::PuBgParams params = {},
                         RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "PU-BG"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  pu::PuBgParams params_;
  FitSession session_;
  Matrix unlabeled_;
};

/// Linear Tobit adapter: all tasks enter the fit (finished uncensored,
/// running right-censored at τrun_t); flags when the latent prediction
/// reaches τstra.
class TobitPredictor final : public StragglerPredictor {
 public:
  explicit TobitPredictor(censored::TobitParams params = {},
                          RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "Tobit"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  censored::TobitParams params_;
  double tau_stra_ = 0.0;
  FitSession session_;
};

/// Grabit adapter: gradient boosting with the Tobit loss; σ is set to the
/// stddev of the finished tasks' latencies at each checkpoint. Under
/// kIncremental the booster warm-continues over the delta-patched snapshot
/// (the censoring horizon moving is just a target change, which boosting
/// continuation absorbs round by round) with σ swapped in per checkpoint.
class GrabitPredictor final : public StragglerPredictor {
 public:
  explicit GrabitPredictor(ml::GbtParams params = {},
                           RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "Grabit"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  ml::GbtParams params_;
  double tau_stra_ = 0.0;
  FitSession session_;
  std::optional<ml::GradientBoosting> model_;
  std::size_t last_fit_cp_ = 0;  ///< checkpoint of model_'s last (re)fit
  std::size_t full_fit_finished_ = 0;  ///< |finished| at the last full fit
  std::vector<std::size_t> fin_scratch_;
  std::vector<std::size_t> changed_scratch_;
};

/// CoxPH adapter: completion is the event; flags when the predicted
/// probability of surviving past τstra reaches 1/2.
class CoxPredictor final : public StragglerPredictor {
 public:
  explicit CoxPredictor(censored::CoxParams params = {},
                        RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "CoxPH"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  censored::CoxParams params_;
  double tau_stra_ = 0.0;
  FitSession session_;
};

/// Wrangler (Yadwadkar et al. 2014): the one privileged baseline — a random
/// 2/3 of the job's tasks (with their true labels, stragglers included) form
/// an offline training sample, stragglers are oversampled to balance, and a
/// linear SVM classifies the rest at every checkpoint. Mirrors §6 exactly.
/// The true labels arrive through the explicit OfflineSample capability the
/// harness grants to Privilege::kOfflineLabels methods. Under kIncremental
/// the training matrix is patched in place from the rows the trace delta
/// reports changed (∩ the training sample) instead of re-gathered — the SVM
/// refit itself is unchanged, so decisions match kFull bit-identically.
class WranglerPredictor final : public StragglerPredictor {
 public:
  explicit WranglerPredictor(ml::SvmParams params = {},
                             double train_fraction = 2.0 / 3.0,
                             std::uint64_t seed = 97,
                             RefitPolicy refit = RefitPolicy::kFull);
  std::string name() const override { return "Wrangler"; }
  Privilege privilege() const override { return Privilege::kOfflineLabels; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

 private:
  ml::SvmParams params_;
  double train_fraction_;
  std::uint64_t seed_;
  RefitPolicy refit_;
  std::vector<std::size_t> train_ids_;
  std::vector<int> labels_;
  Matrix x_;
  // Sample weights (straggler oversampling) are fixed per job; built on the
  // first non-degenerate fit.
  std::vector<double> y_;
  std::vector<double> w_;
  // Incremental bookkeeping: task id -> row of x_ (or npos), and the
  // checkpoint x_ currently reflects.
  std::vector<std::size_t> train_pos_;
  std::size_t x_as_of_ = trace::kNoCheckpoint;
  std::vector<std::size_t> changed_scratch_;
};

}  // namespace nurd::core
