// The unified online straggler-prediction interface. Every method in the
// paper's Table 3 — NURD, NURD-NC, and the 21 baselines — implements this
// interface, so the evaluation harness, scheduler simulations, and benches
// treat them identically.
//
// Protocol (paper §2 and §7.1): the harness walks a job's checkpoints in
// order and asks the predictor which of the not-yet-flagged running tasks
// will straggle. A task flagged positive is never asked about again; a task
// predicted negative is re-evaluated while it remains running.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/job.h"

namespace nurd::core {

/// Stateful per-job online predictor. Create one instance per job (via
/// PredictorFactory); the harness calls initialize() once and then
/// predict_stragglers() at each checkpoint in ascending order.
class StragglerPredictor {
 public:
  virtual ~StragglerPredictor() = default;

  /// Method name as printed in Table 3 (e.g. "NURD", "Grabit").
  virtual std::string name() const = 0;

  /// Called once before the first checkpoint. `tau_stra` is the operator's
  /// straggler threshold (p90 in all paper experiments). Implementations
  /// must not read task latencies beyond what the first checkpoint reveals —
  /// except Wrangler, whose privileged offline sample is part of its
  /// published protocol (§6).
  virtual void initialize(const trace::Job& job, double tau_stra) = 0;

  /// Returns the subset of `candidates` (running, not yet flagged) predicted
  /// to straggle at checkpoint `t`.
  virtual std::vector<std::size_t> predict_stragglers(
      const trace::Job& job, std::size_t t,
      std::span<const std::size_t> candidates) = 0;
};

/// Factory producing a fresh predictor per job.
using PredictorFactory =
    std::function<std::unique_ptr<StragglerPredictor>()>;

/// A named factory, the registry currency.
struct NamedPredictor {
  std::string name;
  PredictorFactory make;
};

}  // namespace nurd::core
