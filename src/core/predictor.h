// The unified online straggler-prediction interface. Every method in the
// paper's Table 3 — NURD, NURD-NC, and the 21 baselines — implements this
// interface, so the evaluation harness, scheduler simulations, and benches
// treat them identically.
//
// Protocol (paper §2 and §7.1): the harness walks a job's checkpoints in
// order and asks the predictor which of the not-yet-flagged running tasks
// will straggle. A task flagged positive is never asked about again; a task
// predicted negative is re-evaluated while it remains running.
//
// Observation discipline: a predictor sees a job only through
//   * JobContext at initialize() — static metadata plus, for methods that
//     explicitly declare the privilege, an OfflineSample capability; and
//   * trace::CheckpointView at each predict_stragglers() call — the exact
//     state observable at that horizon (finished latencies revealed,
//     running latencies hidden by construction).
// The seed interface handed every method the whole materialized Job and
// relied on convention; here the type system enforces it. Wrangler's
// privileged offline sample (its published protocol, §6) is the one
// sanctioned exception, granted as an explicit capability the harness can
// audit rather than a loophole.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/checkpoint_view.h"

namespace nurd::core {

/// The privileged offline capability: true straggler labels for the whole
/// job, available before execution. Only Wrangler's protocol uses it; the
/// harness constructs it solely for predictors declaring
/// Privilege::kOfflineLabels.
class OfflineSample {
 public:
  explicit OfflineSample(std::vector<int> straggler_labels)
      : labels_(std::move(straggler_labels)) {}

  /// True straggler labels (1 = straggler) at the protocol's fixed p90
  /// threshold (the harness builds them with straggler_labels(90.0)
  /// regardless of the evaluation percentile).
  std::span<const int> labels() const { return labels_; }
  std::size_t task_count() const { return labels_.size(); }

 private:
  std::vector<int> labels_;
};

/// What a predictor is allowed to observe beyond the online stream.
enum class Privilege {
  kOnline,         ///< checkpoint views only (every method but one)
  kOfflineLabels,  ///< + OfflineSample at initialize (Wrangler, §6)
};

/// Per-job static context handed to initialize(). Deliberately free of
/// feature or latency data: everything dynamic arrives via CheckpointView.
struct JobContext {
  std::string_view job_id;
  std::size_t task_count = 0;
  std::size_t feature_count = 0;
  std::size_t checkpoint_count = 0;
  double tau_stra = 0.0;  ///< operator straggler threshold (p90 in the paper)
  /// Non-null only for predictors whose privilege() is kOfflineLabels.
  const OfflineSample* offline = nullptr;
};

/// Stateful per-job online predictor. Create one instance per job (via
/// PredictorFactory); the harness calls initialize() once and then
/// predict_stragglers() with each checkpoint's view in ascending order.
///
/// Thread-safety and ordering contract (relied on by eval::run_method and
/// serve::StreamMonitor alike):
///   * an instance is NOT thread-safe — it is confined to one job and
///     driven by one thread at a time. Concurrency comes from many
///     instances on many jobs, never from sharing one;
///   * initialize() happens-before the first predict_stragglers(), and
///     views arrive strictly in ascending checkpoint order with no gaps —
///     the serving layer's task-DAG executor orders the refit chain so
///     checkpoint t+1 never observes state newer than t's model even
///     though stages of different checkpoints overlap;
///   * a driver may hand the instance between threads across checkpoints
///     (a stage task can run on any pool worker) as long as the hand-off
///     synchronizes (the executor's edges do), so implementations must
///     not cache thread-local state across calls;
///   * predictions must be a deterministic function of the views observed
///     so far (all randomness from explicit seeds) — this is what makes a
///     concurrent serving run's flag set bit-identical to the serialized
///     one;
///   * the staged hooks below relax single-threadedness in ONE controlled
///     way: featurize_checkpoint(t) may run concurrently with
///     refit/predict work for checkpoints < t of the SAME instance (at
///     most featurize_ahead = 2 ahead; see core/task_dag.h). Staged
///     implementations confine featurization writes to double-buffered
///     scratch (FitSession::stage) so the overlap never touches model
///     state.
class StragglerPredictor {
 public:
  virtual ~StragglerPredictor() = default;

  /// Method name as printed in Table 3 (e.g. "NURD", "Grabit").
  virtual std::string name() const = 0;

  /// Declared observation privilege; the harness grants capabilities
  /// accordingly. Default: strictly online.
  virtual Privilege privilege() const { return Privilege::kOnline; }

  /// Called once before the first checkpoint.
  virtual void initialize(const JobContext& context) = 0;

  /// Returns the subset of `candidates` (running, not yet flagged) predicted
  /// to straggle at the viewed checkpoint.
  virtual std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) = 0;

  // ---- staged-pipeline hooks (the task-DAG executor) ----------------------
  // A staged predictor splits its per-checkpoint work so the executor can
  // overlap checkpoints: featurize_checkpoint(t) assembles feature blocks
  // ahead of time, refit_checkpoint(t) adopts them and updates the models,
  // and predict_stragglers(t) then only scores. The split must be
  // semantics-preserving: driving a staged predictor through
  // featurize → refit → predict yields bit-identical flags to calling
  // predict_stragglers alone, including the skip guards (which is why
  // refit_checkpoint receives the candidate set — guards like "no finished
  // tasks or no candidates ⇒ don't touch the models" must fire identically
  // on both paths). Monolithic predictors keep the defaults: the harness
  // then runs all the work inside the Predict stage, still correct under
  // the executor's edge chain.

  /// True when featurize_checkpoint/refit_checkpoint carry real work.
  virtual bool staged() const { return false; }

  /// (Featurize stage) Assembles feature blocks for `view`, up to two
  /// checkpoints ahead of the refit chain. Must not read or write model
  /// state.
  virtual void featurize_checkpoint(const trace::CheckpointView& view) {
    (void)view;
  }

  /// (Refit stage) Adopts the staged blocks and refits the models exactly
  /// as predict_stragglers(view, candidates) would have. A following
  /// predict_stragglers call with the same view must not refit again.
  virtual void refit_checkpoint(const trace::CheckpointView& view,
                                std::span<const std::size_t> candidates) {
    (void)view;
    (void)candidates;
  }
};

/// Factory producing a fresh predictor per job. Factories are immutable
/// after construction and safe to invoke from any thread concurrently (the
/// harness and the serving layer both call make() from pool lanes); only
/// the instances they produce are single-threaded.
using PredictorFactory =
    std::function<std::unique_ptr<StragglerPredictor>()>;

/// A named factory, the registry currency.
struct NamedPredictor {
  std::string name;
  PredictorFactory make;
};

}  // namespace nurd::core
