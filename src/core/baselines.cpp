#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ml/loss.h"

namespace nurd::core {

namespace {

constexpr std::size_t kNotInTrain = std::numeric_limits<std::size_t>::max();

// Censored targets over all tasks: finished are exact, running are
// right-censored at the checkpoint horizon.
std::vector<ml::Target> censored_targets(const trace::CheckpointView& view) {
  std::vector<ml::Target> t(view.task_count());
  for (auto i : view.finished()) t[i] = {view.revealed_latency(i), false};
  for (auto i : view.running()) t[i] = {view.tau_run(), true};
  return t;
}

}  // namespace

// ---------------------------------------------------------------- GBTR ----

GbtrPredictor::GbtrPredictor(ml::GbtParams params, RefitPolicy refit)
    : params_(params), session_(refit) {}

void GbtrPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
  session_.reset();
  model_.reset();
  fitted_checkpoint_ = trace::kNoCheckpoint;
}

void GbtrPredictor::featurize_checkpoint(const trace::CheckpointView& view) {
  session_.stage(view, kFinishedBlock);
}

void GbtrPredictor::refit_checkpoint(const trace::CheckpointView& view,
                                     std::span<const std::size_t> candidates) {
  // The same skip guard as predict_stragglers: an untouched checkpoint must
  // stay untouched on both paths or warm-model trajectories diverge.
  if (view.finished().empty() || candidates.empty()) return;
  session_.promote(view);
  refit_finished_gbt(session_, params_, &model_);
  fitted_checkpoint_ = view.index();
}

std::vector<std::size_t> GbtrPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  if (fitted_checkpoint_ != view.index()) {
    session_.promote(view);  // falls back to observe() when nothing staged
    refit_finished_gbt(session_, params_, &model_);
  }
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model_.model->predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// ------------------------------------------------------ outlier family ----

OutlierPredictor::OutlierPredictor(std::string name, DetectorFactory make,
                                   double contamination, RefitPolicy refit)
    : name_(std::move(name)),
      make_(std::move(make)),
      contamination_(contamination),
      session_(refit) {
  NURD_CHECK(make_ != nullptr, "detector factory must not be null");
}

void OutlierPredictor::initialize(const JobContext&) { session_.reset(); }

std::vector<std::size_t> OutlierPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty()) return {};
  session_.observe(view);
  auto detector = make_();
  detector->fit(session_.snapshot());
  const auto& scores = detector->scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- XGBOD ----

XgbodPredictor::XgbodPredictor(outlier::XgbodParams params,
                               double contamination, RefitPolicy refit)
    : params_(params), contamination_(contamination), session_(refit) {}

void XgbodPredictor::initialize(const JobContext&) { session_.reset(); }

std::vector<std::size_t> XgbodPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty() || view.finished().empty() ||
      view.running().empty()) {
    return {};
  }
  session_.observe(view);
  std::vector<double> pseudo(view.task_count(), 0.0);
  for (auto i : view.running()) pseudo[i] = 1.0;
  outlier::XgbodDetector det(params_);
  det.fit(session_.snapshot(), pseudo);
  const auto& scores = det.scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- PU-EN ----

PuEnPredictor::PuEnPredictor(pu::PuEnParams params, RefitPolicy refit)
    : params_(params), session_(refit) {}

void PuEnPredictor::initialize(const JobContext&) { session_.reset(); }

std::vector<std::size_t> PuEnPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || view.running().empty() ||
      candidates.empty()) {
    return {};
  }
  session_.observe(view);
  const Matrix& labeled = session_.x_fin();
  view.gather_rows(view.running(), &unlabeled_);
  pu::PuElkanNoto model(params_);
  model.fit(labeled, unlabeled_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.prob_labeled_class(view.row(i)) < 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// --------------------------------------------------------------- PU-BG ----

PuBgPredictor::PuBgPredictor(pu::PuBgParams params, RefitPolicy refit)
    : params_(params), session_(refit) {}

void PuBgPredictor::initialize(const JobContext&) { session_.reset(); }

std::vector<std::size_t> PuBgPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  session_.observe(view);
  const Matrix& labeled = session_.x_fin();
  view.gather_rows(candidates, &unlabeled_);
  pu::PuBaggingSvm model(params_);
  model.fit(labeled, unlabeled_);
  const auto& scores = model.unlabeled_scores();
  std::vector<std::size_t> flagged;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (scores[c] > 0.0) flagged.push_back(candidates[c]);
  }
  return flagged;
}

// --------------------------------------------------------------- Tobit ----

TobitPredictor::TobitPredictor(censored::TobitParams params,
                               RefitPolicy refit)
    : params_(params), session_(refit) {}

void TobitPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
  session_.reset();
}

std::vector<std::size_t> TobitPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  session_.observe(view);
  const auto targets = censored_targets(view);
  censored::TobitRegression model(params_);
  model.fit(session_.snapshot(), targets);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// -------------------------------------------------------------- Grabit ----

GrabitPredictor::GrabitPredictor(ml::GbtParams params, RefitPolicy refit)
    : params_(params), session_(refit) {}

void GrabitPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
  session_.reset();
  model_.reset();
}

std::vector<std::size_t> GrabitPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  session_.observe(view);
  const auto targets = censored_targets(view);
  const double sigma = std::max(stddev(session_.y_fin()), 1e-3);
  const Matrix& snapshot = session_.snapshot();

  // Geometric refresh on the finished count: the snapshot's row count never
  // grows, but the model's information content is the uncensored set — once
  // that outgrows the last full fit's (warm_refresh_due), trees trained
  // against the stale censoring horizon get rebuilt whole (amortized O(1)
  // refreshes, none at late checkpoints).
  if (!session_.incremental() || !model_.has_value() ||
      !session_.advanced() ||
      warm_refresh_due(view, view.finished().size(), full_fit_finished_)) {
    auto warm = params_;
    warm.warm_start = session_.incremental();
    model_.emplace(ml::GradientBoosting::grabit(sigma, warm));
    model_->fit(snapshot, targets);
    last_fit_cp_ = view.index();
    full_fit_finished_ = view.finished().size();
  } else {
    // Warm continuation over the snapshot: σ tracks the finished set and the
    // censoring horizon moved, both plain target/loss changes. The active
    // set for the continuation rounds is every row whose (features, target)
    // pair moved since the last fit: the trace-change-detected rows (whose
    // cached scores and bins are refreshed) UNION the still-running rows
    // (censored targets advanced with τrun even where features did not)
    // UNION the newly finished rows — a task completing with a
    // bitwise-unchanged row is in neither of the former sets, yet its
    // target flipped from censored to its revealed exact latency.
    model_->set_loss(std::make_unique<ml::TobitLoss>(sigma));
    view.delta_since(last_fit_cp_, &fin_scratch_, &changed_scratch_);
    const auto running = view.running();
    changed_scratch_.insert(changed_scratch_.end(), running.begin(),
                            running.end());
    changed_scratch_.insert(changed_scratch_.end(), fin_scratch_.begin(),
                            fin_scratch_.end());
    std::sort(changed_scratch_.begin(), changed_scratch_.end());
    changed_scratch_.erase(
        std::unique(changed_scratch_.begin(), changed_scratch_.end()),
        changed_scratch_.end());
    model_->continue_fit(snapshot, targets,
                         std::min(12, std::max(1, params_.n_rounds / 2)),
                         changed_scratch_);
    last_fit_cp_ = view.index();
  }

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model_->predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- CoxPH ----

CoxPredictor::CoxPredictor(censored::CoxParams params, RefitPolicy refit)
    : params_(params), session_(refit) {}

void CoxPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
  session_.reset();
}

std::vector<std::size_t> CoxPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  session_.observe(view);
  std::vector<censored::SurvivalObservation> obs(view.task_count());
  for (auto i : view.finished()) obs[i] = {view.revealed_latency(i), true};
  for (auto i : view.running()) obs[i] = {view.tau_run(), false};
  censored::CoxPh model(params_);
  model.fit(session_.snapshot(), obs);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.survival(tau_stra_, view.row(i)) >= 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// ------------------------------------------------------------ Wrangler ----

WranglerPredictor::WranglerPredictor(ml::SvmParams params,
                                     double train_fraction,
                                     std::uint64_t seed, RefitPolicy refit)
    : params_(params),
      train_fraction_(train_fraction),
      seed_(seed),
      refit_(refit) {
  NURD_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
             "train_fraction must be in (0,1)");
}

void WranglerPredictor::initialize(const JobContext& context) {
  // Privileged offline sample: 2/3 of tasks with true labels (§6), granted
  // through the explicit capability rather than read off the job.
  NURD_CHECK(context.offline != nullptr,
             "Wrangler requires the OfflineSample capability");
  NURD_CHECK(context.offline->task_count() == context.task_count,
             "offline sample does not match the job");
  Rng rng(seed_);
  const std::size_t n = context.task_count;
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(train_fraction_ * static_cast<double>(n)));
  train_ids_ = rng.sample_without_replacement(n, std::min(k, n));
  const auto labels = context.offline->labels();
  labels_.assign(labels.begin(), labels.end());
  y_.clear();
  w_.clear();
  train_pos_.clear();
  x_as_of_ = trace::kNoCheckpoint;
}

std::vector<std::size_t> WranglerPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty()) return {};

  // Oversample stragglers by weighting them to parity with non-stragglers.
  // The sample and its labels are fixed per job, so the targets and weights
  // are built once and reused.
  std::size_t pos = 0;
  for (auto i : train_ids_) pos += static_cast<std::size_t>(labels_[i]);
  const std::size_t neg = train_ids_.size() - pos;
  if (pos == 0 || neg == 0) return {};  // degenerate sample: abstain
  if (y_.empty()) {
    const double pos_weight =
        static_cast<double>(neg) / static_cast<double>(pos);
    y_.reserve(train_ids_.size());
    w_.reserve(train_ids_.size());
    for (auto i : train_ids_) {
      y_.push_back(labels_[i]);
      w_.push_back(labels_[i] == 1 ? pos_weight : 1.0);
    }
  }

  // Training rows: full re-gather under kFull (the reference path); under
  // kIncremental only the change-detected rows that belong to the training
  // sample are patched — identical matrix content, delta-sized cost.
  const bool patch = refit_ == RefitPolicy::kIncremental &&
                     x_as_of_ != trace::kNoCheckpoint &&
                     x_as_of_ <= view.index();
  if (!patch) {
    view.gather_rows(train_ids_, &x_);
    if (refit_ == RefitPolicy::kIncremental && train_pos_.empty()) {
      train_pos_.assign(view.task_count(), kNotInTrain);
      for (std::size_t r = 0; r < train_ids_.size(); ++r) {
        train_pos_[train_ids_[r]] = r;
      }
    }
  } else {
    view.delta_since(x_as_of_, nullptr, &changed_scratch_);
    for (const auto task : changed_scratch_) {
      const auto r = train_pos_[task];
      if (r == kNotInTrain) continue;
      const auto src = view.row(task);
      std::copy(src.begin(), src.end(), x_.row(r).begin());
    }
  }
  x_as_of_ = view.index();

  ml::LinearSVM svm(params_);
  svm.fit(x_, y_, w_);

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (svm.decision(view.row(i)) > 0.0) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
