#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace nurd::core {

namespace {

// Censored targets over all tasks: finished are exact, running are
// right-censored at the checkpoint horizon.
std::vector<ml::Target> censored_targets(const trace::CheckpointView& view) {
  std::vector<ml::Target> t(view.task_count());
  for (auto i : view.finished()) t[i] = {view.revealed_latency(i), false};
  for (auto i : view.running()) t[i] = {view.tau_run(), true};
  return t;
}

}  // namespace

// ---------------------------------------------------------------- GBTR ----

GbtrPredictor::GbtrPredictor(ml::GbtParams params) : params_(params) {}

void GbtrPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
}

std::vector<std::size_t> GbtrPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  view.gather_rows(view.finished(), &x_);
  view.finished_latencies(&y_);
  auto model = ml::GradientBoosting::regressor(params_);
  model.fit(x_, y_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// ------------------------------------------------------ outlier family ----

OutlierPredictor::OutlierPredictor(std::string name, DetectorFactory make,
                                   double contamination)
    : name_(std::move(name)),
      make_(std::move(make)),
      contamination_(contamination) {
  NURD_CHECK(make_ != nullptr, "detector factory must not be null");
}

void OutlierPredictor::initialize(const JobContext&) {}

std::vector<std::size_t> OutlierPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty()) return {};
  view.snapshot(&snapshot_);
  auto detector = make_();
  detector->fit(snapshot_);
  const auto& scores = detector->scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- XGBOD ----

XgbodPredictor::XgbodPredictor(outlier::XgbodParams params,
                               double contamination)
    : params_(params), contamination_(contamination) {}

void XgbodPredictor::initialize(const JobContext&) {}

std::vector<std::size_t> XgbodPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty() || view.finished().empty() ||
      view.running().empty()) {
    return {};
  }
  std::vector<double> pseudo(view.task_count(), 0.0);
  for (auto i : view.running()) pseudo[i] = 1.0;
  view.snapshot(&snapshot_);
  outlier::XgbodDetector det(params_);
  det.fit(snapshot_, pseudo);
  const auto& scores = det.scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- PU-EN ----

PuEnPredictor::PuEnPredictor(pu::PuEnParams params) : params_(params) {}

void PuEnPredictor::initialize(const JobContext&) {}

std::vector<std::size_t> PuEnPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || view.running().empty() ||
      candidates.empty()) {
    return {};
  }
  view.gather_rows(view.finished(), &labeled_);
  view.gather_rows(view.running(), &unlabeled_);
  pu::PuElkanNoto model(params_);
  model.fit(labeled_, unlabeled_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.prob_labeled_class(view.row(i)) < 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// --------------------------------------------------------------- PU-BG ----

PuBgPredictor::PuBgPredictor(pu::PuBgParams params) : params_(params) {}

void PuBgPredictor::initialize(const JobContext&) {}

std::vector<std::size_t> PuBgPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  view.gather_rows(view.finished(), &labeled_);
  view.gather_rows(candidates, &unlabeled_);
  pu::PuBaggingSvm model(params_);
  model.fit(labeled_, unlabeled_);
  const auto& scores = model.unlabeled_scores();
  std::vector<std::size_t> flagged;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (scores[c] > 0.0) flagged.push_back(candidates[c]);
  }
  return flagged;
}

// --------------------------------------------------------------- Tobit ----

TobitPredictor::TobitPredictor(censored::TobitParams params)
    : params_(params) {}

void TobitPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
}

std::vector<std::size_t> TobitPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  const auto targets = censored_targets(view);
  view.snapshot(&snapshot_);
  censored::TobitRegression model(params_);
  model.fit(snapshot_, targets);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// -------------------------------------------------------------- Grabit ----

GrabitPredictor::GrabitPredictor(ml::GbtParams params) : params_(params) {}

void GrabitPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
}

std::vector<std::size_t> GrabitPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  const auto targets = censored_targets(view);
  view.finished_latencies(&fin_lat_);
  const double sigma = std::max(stddev(fin_lat_), 1e-3);
  view.snapshot(&snapshot_);
  auto model = ml::GradientBoosting::grabit(sigma, params_);
  model.fit(snapshot_, targets);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(view.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- CoxPH ----

CoxPredictor::CoxPredictor(censored::CoxParams params) : params_(params) {}

void CoxPredictor::initialize(const JobContext& context) {
  tau_stra_ = context.tau_stra;
}

std::vector<std::size_t> CoxPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (view.finished().empty() || candidates.empty()) return {};
  std::vector<censored::SurvivalObservation> obs(view.task_count());
  for (auto i : view.finished()) obs[i] = {view.revealed_latency(i), true};
  for (auto i : view.running()) obs[i] = {view.tau_run(), false};
  view.snapshot(&snapshot_);
  censored::CoxPh model(params_);
  model.fit(snapshot_, obs);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.survival(tau_stra_, view.row(i)) >= 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// ------------------------------------------------------------ Wrangler ----

WranglerPredictor::WranglerPredictor(ml::SvmParams params,
                                     double train_fraction,
                                     std::uint64_t seed)
    : params_(params), train_fraction_(train_fraction), seed_(seed) {
  NURD_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
             "train_fraction must be in (0,1)");
}

void WranglerPredictor::initialize(const JobContext& context) {
  // Privileged offline sample: 2/3 of tasks with true labels (§6), granted
  // through the explicit capability rather than read off the job.
  NURD_CHECK(context.offline != nullptr,
             "Wrangler requires the OfflineSample capability");
  NURD_CHECK(context.offline->task_count() == context.task_count,
             "offline sample does not match the job");
  Rng rng(seed_);
  const std::size_t n = context.task_count;
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(train_fraction_ * static_cast<double>(n)));
  train_ids_ = rng.sample_without_replacement(n, std::min(k, n));
  const auto labels = context.offline->labels();
  labels_.assign(labels.begin(), labels.end());
}

std::vector<std::size_t> WranglerPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  if (candidates.empty()) return {};

  // Oversample stragglers by weighting them to parity with non-stragglers.
  std::size_t pos = 0;
  for (auto i : train_ids_) pos += static_cast<std::size_t>(labels_[i]);
  const std::size_t neg = train_ids_.size() - pos;
  if (pos == 0 || neg == 0) return {};  // degenerate sample: abstain
  const double pos_weight =
      static_cast<double>(neg) / static_cast<double>(pos);

  view.gather_rows(train_ids_, &x_);
  std::vector<double> y, w;
  y.reserve(train_ids_.size());
  w.reserve(train_ids_.size());
  for (auto i : train_ids_) {
    y.push_back(labels_[i]);
    w.push_back(labels_[i] == 1 ? pos_weight : 1.0);
  }
  ml::LinearSVM svm(params_);
  svm.fit(x_, y, w);

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (svm.decision(view.row(i)) > 0.0) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
