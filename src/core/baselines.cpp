#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace nurd::core {

namespace {

// Finished-task design matrix and latency targets at a checkpoint.
struct FinishedData {
  Matrix x;
  std::vector<double> y;
};

FinishedData finished_data(const trace::Job& job,
                           const trace::Checkpoint& cp) {
  FinishedData out;
  out.x = cp.features.select_rows(cp.finished);
  out.y.resize(cp.finished.size());
  for (std::size_t i = 0; i < cp.finished.size(); ++i) {
    out.y[i] = job.latencies[cp.finished[i]];
  }
  return out;
}

// Censored targets over all tasks: finished are exact, running are
// right-censored at the checkpoint horizon.
std::vector<ml::Target> censored_targets(const trace::Job& job,
                                         const trace::Checkpoint& cp) {
  std::vector<ml::Target> t(job.task_count());
  for (auto i : cp.finished) t[i] = {job.latencies[i], false};
  for (auto i : cp.running) t[i] = {cp.tau_run, true};
  return t;
}

}  // namespace

// ---------------------------------------------------------------- GBTR ----

GbtrPredictor::GbtrPredictor(ml::GbtParams params) : params_(params) {}

void GbtrPredictor::initialize(const trace::Job&, double tau_stra) {
  tau_stra_ = tau_stra;
}

std::vector<std::size_t> GbtrPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || candidates.empty()) return {};
  const auto data = finished_data(job, cp);
  auto model = ml::GradientBoosting::regressor(params_);
  model.fit(data.x, data.y);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(cp.features.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// ------------------------------------------------------ outlier family ----

OutlierPredictor::OutlierPredictor(std::string name, DetectorFactory make,
                                   double contamination)
    : name_(std::move(name)),
      make_(std::move(make)),
      contamination_(contamination) {
  NURD_CHECK(make_ != nullptr, "detector factory must not be null");
}

void OutlierPredictor::initialize(const trace::Job&, double) {}

std::vector<std::size_t> OutlierPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (candidates.empty()) return {};
  auto detector = make_();
  detector->fit(cp.features);
  const auto& scores = detector->scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- XGBOD ----

XgbodPredictor::XgbodPredictor(outlier::XgbodParams params,
                               double contamination)
    : params_(params), contamination_(contamination) {}

void XgbodPredictor::initialize(const trace::Job&, double) {}

std::vector<std::size_t> XgbodPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (candidates.empty() || cp.finished.empty() || cp.running.empty()) {
    return {};
  }
  std::vector<double> pseudo(job.task_count(), 0.0);
  for (auto i : cp.running) pseudo[i] = 1.0;
  outlier::XgbodDetector det(params_);
  det.fit(cp.features, pseudo);
  const auto& scores = det.scores();
  const double thr = outlier::contamination_threshold(scores, contamination_);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (scores[i] > thr) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- PU-EN ----

PuEnPredictor::PuEnPredictor(pu::PuEnParams params) : params_(params) {}

void PuEnPredictor::initialize(const trace::Job&, double) {}

std::vector<std::size_t> PuEnPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || cp.running.empty() || candidates.empty()) {
    return {};
  }
  const Matrix labeled = cp.features.select_rows(cp.finished);
  const Matrix unlabeled = cp.features.select_rows(cp.running);
  pu::PuElkanNoto model(params_);
  model.fit(labeled, unlabeled);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.prob_labeled_class(cp.features.row(i)) < 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// --------------------------------------------------------------- PU-BG ----

PuBgPredictor::PuBgPredictor(pu::PuBgParams params) : params_(params) {}

void PuBgPredictor::initialize(const trace::Job&, double) {}

std::vector<std::size_t> PuBgPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || candidates.empty()) return {};
  const Matrix labeled = cp.features.select_rows(cp.finished);
  const Matrix unlabeled = cp.features.select_rows(candidates);
  pu::PuBaggingSvm model(params_);
  model.fit(labeled, unlabeled);
  const auto& scores = model.unlabeled_scores();
  std::vector<std::size_t> flagged;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (scores[c] > 0.0) flagged.push_back(candidates[c]);
  }
  return flagged;
}

// --------------------------------------------------------------- Tobit ----

TobitPredictor::TobitPredictor(censored::TobitParams params)
    : params_(params) {}

void TobitPredictor::initialize(const trace::Job&, double tau_stra) {
  tau_stra_ = tau_stra;
}

std::vector<std::size_t> TobitPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || candidates.empty()) return {};
  const auto targets = censored_targets(job, cp);
  censored::TobitRegression model(params_);
  model.fit(cp.features, targets);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(cp.features.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// -------------------------------------------------------------- Grabit ----

GrabitPredictor::GrabitPredictor(ml::GbtParams params) : params_(params) {}

void GrabitPredictor::initialize(const trace::Job&, double tau_stra) {
  tau_stra_ = tau_stra;
}

std::vector<std::size_t> GrabitPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || candidates.empty()) return {};
  const auto targets = censored_targets(job, cp);
  std::vector<double> fin_lat;
  fin_lat.reserve(cp.finished.size());
  for (auto i : cp.finished) fin_lat.push_back(job.latencies[i]);
  const double sigma = std::max(stddev(fin_lat), 1e-3);
  auto model = ml::GradientBoosting::grabit(sigma, params_);
  model.fit(cp.features, targets);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.predict(cp.features.row(i)) >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

// --------------------------------------------------------------- CoxPH ----

CoxPredictor::CoxPredictor(censored::CoxParams params) : params_(params) {}

void CoxPredictor::initialize(const trace::Job&, double tau_stra) {
  tau_stra_ = tau_stra;
}

std::vector<std::size_t> CoxPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (cp.finished.empty() || candidates.empty()) return {};
  std::vector<censored::SurvivalObservation> obs(job.task_count());
  for (auto i : cp.finished) obs[i] = {job.latencies[i], true};
  for (auto i : cp.running) obs[i] = {cp.tau_run, false};
  censored::CoxPh model(params_);
  model.fit(cp.features, obs);
  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (model.survival(tau_stra_, cp.features.row(i)) >= 0.5) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

// ------------------------------------------------------------ Wrangler ----

WranglerPredictor::WranglerPredictor(ml::SvmParams params,
                                     double train_fraction,
                                     std::uint64_t seed)
    : params_(params), train_fraction_(train_fraction), seed_(seed) {
  NURD_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
             "train_fraction must be in (0,1)");
}

void WranglerPredictor::initialize(const trace::Job& job, double) {
  // Privileged offline sample: 2/3 of tasks with true labels (§6).
  Rng rng(seed_);
  const std::size_t n = job.task_count();
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(train_fraction_ * static_cast<double>(n)));
  train_ids_ = rng.sample_without_replacement(n, std::min(k, n));
  labels_ = job.straggler_labels();
}

std::vector<std::size_t> WranglerPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  const auto& cp = job.checkpoints.at(t);
  if (candidates.empty()) return {};

  // Oversample stragglers by weighting them to parity with non-stragglers.
  std::size_t pos = 0;
  for (auto i : train_ids_) pos += static_cast<std::size_t>(labels_[i]);
  const std::size_t neg = train_ids_.size() - pos;
  if (pos == 0 || neg == 0) return {};  // degenerate sample: abstain
  const double pos_weight =
      static_cast<double>(neg) / static_cast<double>(pos);

  Matrix x(0, 0);
  std::vector<double> y, w;
  x.reserve_rows(train_ids_.size());
  for (auto i : train_ids_) {
    x.push_row(cp.features.row(i));
    y.push_back(labels_[i]);
    w.push_back(labels_[i] == 1 ? pos_weight : 1.0);
  }
  ml::LinearSVM svm(params_);
  svm.fit(x, y, w);

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    if (svm.decision(cp.features.row(i)) > 0.0) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
