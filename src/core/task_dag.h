// The pipelined checkpoint executor: a dependency-graph scheduler over the
// shared ThreadPool that overlaps the STAGES of different checkpoints of one
// job, where the per-job serial lanes it replaces ran each checkpoint's
// featurize → refit → predict → flag as one monolithic task.
//
// Tasks are keyed by (job, checkpoint, stage) with the stage pipeline
//
//        Featurize(j,t) ──► Refit(j,t) ──► Predict(j,t) ──► Flag(j,t)
//
// and the cross-checkpoint edges that encode what ACTUALLY depends on what:
//
//   Featurize(j,t) ◄─ Featurize(j,t-1)        stream/delta state advances in
//                                             checkpoint order
//   Featurize(j,t) ◄─ Refit(j,t-A)            featurization runs at most A-1
//                                             checkpoints ahead of the refit
//                                             consuming its blocks (A =
//                                             featurize_ahead; the FitSession
//                                             double buffer needs A = 2)
//   Featurize(j,t) ◄─ Flag(j,t-W)             the per-job in-flight WINDOW:
//                                             at most W checkpoints of one
//                                             job live at once (W = window;
//                                             bounds the scratch-cell ring)
//   Refit(j,t)     ◄─ Refit(j,t-1)            the model chain — checkpoint
//                                             t's refit never observes state
//                                             newer than t-1's model
//   Refit(j,t)     ◄─ Predict(j,t-1)          a refit must not mutate models
//                                             a predict is still scoring with
//   Predict(j,t)   ◄─ Flag(j,t-1)             predict writes the flag record
//                                             the previous flag stage reads
//   Flag(j,t)      ◄─ Flag(j,t-1)             per-job flag emission order
//
// Note what is NOT an edge: Refit(j,t+1) does not wait for Flag(j,t) — flag
// emission (confusion accounting + sink delivery, e.g. a live cluster feed)
// never blocks the next fit — and Featurize(j,t+1) does not wait for
// Refit(j,t), which is the overlap the executor exists for. Checkpoints of
// DIFFERENT jobs share no edges at all.
//
// Scheduling: ready tasks go to per-worker deques — a completing task pushes
// the dependents it unlocks onto ITS worker's deque (the next stage of the
// same checkpoint stays cache-warm), workers pop their own deque LIFO and
// steal FIFO from the others when empty. Graph bookkeeping (dependency
// counts, admission, retirement) runs under one registry mutex: stage bodies
// are model fits and O(n) scans, microseconds to milliseconds, so the
// bookkeeping lock is noise — the deques exist for locality and steal order,
// not lock avoidance.
//
// Cancellation: every job carries an epoch (generation) counter. cancel_job
// bumps it and drops the job's queued tasks; a task popped with a stale
// epoch is discarded, and a task already RUNNING when its job is cancelled
// completes harmlessly — its completion bookkeeping sees the stale epoch and
// is ignored. The error path uses exactly this: a stage that throws reports
// through on_error and cancels its job, surfacing every dropped checkpoint
// through on_retire(completed=false) so the caller's in-flight accounting
// still drains.
//
// Determinism: the executor decides only WHEN tasks run, never what they
// compute. Any schedule that honors the edges above yields bit-identical
// per-checkpoint results — the serving layer's flag-set determinism contract
// rests on the edges, not on timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace nurd {
class ThreadPool;
}

namespace nurd::core {

/// The four pipeline stages of one checkpoint, in execution order.
enum class Stage : std::uint8_t {
  kFeaturize = 0,  ///< bind the view, assemble feature blocks
  kRefit = 1,      ///< consume the blocks, update the models
  kPredict = 2,    ///< score candidates, record flags
  kFlag = 3,       ///< confusion accounting + sink emission
};

inline constexpr std::size_t kStageCount = 4;

const char* stage_name(Stage stage);

/// One schedulable task: stage `stage` of checkpoint `checkpoint` of job
/// `job`, tagged with the job epoch it was admitted under.
struct TaskKey {
  std::size_t job = 0;
  std::size_t checkpoint = 0;
  Stage stage = Stage::kFeaturize;
  std::uint64_t epoch = 0;
};

struct TaskDagConfig {
  /// Executor workers (pump loops submitted to the pool). At least 1.
  std::size_t workers = 1;
  /// Per-job in-flight window W: Featurize(j,t) waits for Flag(j,t-W), so at
  /// most W checkpoints of one job are live at once. Bounds the caller's
  /// per-checkpoint scratch ring. At least 1; must be >= featurize_ahead.
  std::size_t window = 4;
  /// Featurize-ahead bound A: Featurize(j,t) waits for Refit(j,t-A). A = 2
  /// matches the FitSession double buffer (featurization runs at most one
  /// checkpoint ahead of the refit consuming its blocks). A = 1 serializes
  /// featurize behind refit entirely.
  std::size_t featurize_ahead = 2;
};

/// Dependency-graph executor over the four-stage checkpoint pipeline.
///
/// Lifecycle: construct → start(pool) → admit() checkpoints (any thread,
/// ascending per job) → close() → wait() → destroy. The runner callback
/// executes stage bodies on pool workers; on_retire fires once per admitted
/// checkpoint (completed or cancelled); on_error fires at most once per job
/// epoch, after which the job is cancelled.
class TaskDag {
 public:
  /// Executes the work of one task. Called from pool workers; calls for the
  /// same job are ordered by the pipeline edges, calls for different jobs
  /// are concurrent. An exception cancels the task's job (see on_error).
  using StageFn = std::function<void(const TaskKey&)>;
  /// Called after checkpoint (job, checkpoint) leaves the graph — its Flag
  /// stage completed (completed=true) or its job was cancelled mid-flight
  /// (completed=false). Runs outside the registry lock; callbacks for a
  /// job's consecutive checkpoints may therefore interleave out of order
  /// (per-job ORDER guarantees belong to the stage bodies — the Flag chain —
  /// not to retirement notification).
  using RetireFn =
      std::function<void(std::size_t job, std::size_t checkpoint,
                         bool completed)>;
  /// Called with the exception a stage threw, before the job's remaining
  /// checkpoints retire as cancelled. Runs outside the registry lock.
  using ErrorFn = std::function<void(std::size_t job, std::exception_ptr)>;

  TaskDag(std::size_t jobs, TaskDagConfig config, StageFn run,
          RetireFn on_retire = nullptr, ErrorFn on_error = nullptr);
  ~TaskDag();

  TaskDag(const TaskDag&) = delete;
  TaskDag& operator=(const TaskDag&) = delete;

  /// Launches the worker pump loops as detached pool tasks. The pool must
  /// have at least one worker thread and must outlive wait(). Call once,
  /// before the first admit().
  void start(ThreadPool& pool);

  /// Admits checkpoint `checkpoint` of job `job` — all four stage tasks with
  /// their edges. Per job, checkpoints must be admitted in ascending order
  /// with no gaps; admissions for different jobs may interleave from any
  /// thread. Returns false (admitting nothing) when the job was cancelled.
  bool admit(std::size_t job, std::size_t checkpoint);

  /// Declares that job `job`'s first admission will be checkpoint
  /// `first_checkpoint` rather than 0: every earlier checkpoint counts as
  /// already complete, so cross-checkpoint edges reaching below the boundary
  /// are satisfied immediately. This is the migration hook the sharded
  /// serving layer uses — when a drained shard hands a job off mid-stream,
  /// the receiving executor starts the job's pipeline at the handoff
  /// boundary instead of replaying its history. Call before the job's first
  /// admit(); the job must have no admission history in THIS dag.
  void begin_job_at(std::size_t job, std::size_t first_checkpoint);

  /// Bumps the job's epoch and drops its queued/live checkpoints, retiring
  /// each through on_retire(completed=false). Stages of the job already
  /// running complete harmlessly (stale-epoch completions are ignored).
  /// Returns the new epoch.
  std::uint64_t cancel_job(std::size_t job);

  /// Declares admission finished: once the graph drains, the pumps exit.
  void close();

  /// Blocks until close() was called and every admitted checkpoint has
  /// retired.
  void wait();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nurd::core
