// Transfer-learning extension (the paper's future-work direction, §8:
// "there is a possibility to apply transfer learning to incorporate
// knowledge from other jobs to improve predictions").
//
// Design: jobs are unique (Reiss et al. 2012), so raw models do not move
// across jobs — but the *shape* of the feature→relative-slowness mapping
// does. A TransferModel pools normalized samples from completed jobs:
// features are z-scored within their source job and latencies divided by
// the job's median, giving a job-scale-free regression target
// log(y / median). A TransferNurd predictor blends this global model with
// the per-job ht, weighting the per-job model by how much local training
// data exists:
//
//   ŷ = λ·ht(x) + (1−λ)·scale·exp(g_global(z-scored x)),  λ = n_fin/(n_fin+k)
//
// so early checkpoints (tiny finished sets — exactly where NURD is weakest)
// lean on the pooled knowledge and late checkpoints converge to vanilla
// NURD. The propensity score and calibration are unchanged.
#pragma once

#include <memory>

#include "core/nurd.h"
#include "core/predictor.h"
#include "ml/gbt.h"
#include "trace/job.h"

namespace nurd::core {

/// Pooled cross-job latency knowledge. Fit offline on completed jobs, then
/// shared (read-only) by any number of TransferNurd predictors.
class TransferModel {
 public:
  explicit TransferModel(ml::GbtParams params = {});

  /// Pools every task of every job (features z-scored per job, target
  /// log(latency/median)) and fits the global model.
  void fit(std::span<const trace::Job> jobs);

  /// Predicted latency for a raw feature row, rescaled by `median_latency`
  /// (the consuming job's current scale estimate). Requires fit().
  double predict(std::span<const double> row,
                 std::span<const double> col_means,
                 std::span<const double> col_stddevs,
                 double median_latency) const;

  bool fitted() const { return fitted_; }
  std::size_t pooled_samples() const { return pooled_; }

 private:
  ml::GbtParams params_;
  ml::GradientBoosting model_;
  std::size_t pooled_ = 0;
  bool fitted_ = false;
};

/// TransferNurd hyperparameters.
struct TransferNurdParams {
  NurdParams nurd;            ///< base NURD settings
  double blend_halfway = 50;  ///< k: finished-set size at which λ = 1/2
};

/// NURD with cross-job warm-starting of the latency model.
class TransferNurdPredictor final : public StragglerPredictor {
 public:
  TransferNurdPredictor(std::shared_ptr<const TransferModel> global,
                        TransferNurdParams params = {});

  std::string name() const override { return "NURD-TL"; }
  void initialize(const JobContext& context) override;
  std::vector<std::size_t> predict_stragglers(
      const trace::CheckpointView& view,
      std::span<const std::size_t> candidates) override;

  /// Blend weight λ for a finished-set size (exposed for tests).
  double lambda(std::size_t finished) const;

 private:
  std::shared_ptr<const TransferModel> global_;
  TransferNurdParams params_;
  NurdPredictor base_;  ///< its FitSession also serves this wrapper
  double tau_stra_ = 0.0;
};

}  // namespace nurd::core
