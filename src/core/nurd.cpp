#include "core/nurd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"

namespace nurd::core {

NurdPredictor::NurdPredictor(NurdParams params)
    : params_(params), session_(params.refit) {
  NURD_CHECK(params_.alpha > 0.0, "alpha must be positive");
  NURD_CHECK(params_.epsilon > 0.0 && params_.epsilon <= 1.0,
             "epsilon must be in (0,1]");
}

void NurdPredictor::initialize(const JobContext& context) {
  NURD_CHECK(context.checkpoint_count > 0, "job has no checkpoints");
  tau_stra_ = context.tau_stra;
  calibrated_ = false;
  rho_ = 1.0;
  delta_ = 0.0;
  session_.reset();
  ht_.reset();
  gt_.reset();
  fitted_checkpoint_ = trace::kNoCheckpoint;
  fitted_models_ = {};
}

void NurdPredictor::calibrate(const trace::CheckpointView& view) {
  if (calibrated_) return;
  calibrated_ = true;

  // Latency indicator ρ from the first observed checkpoint's feature
  // centroids (Algorithm 1 lines 4–6). ρ ≤ 1 ⇒ far tail ⇒ large δ (suppress
  // false positives); ρ > 1 ⇒ near tail ⇒ small/negative δ (recover true
  // positives). One-shot per job, so plain locals instead of session blocks.
  Matrix fin_rows, run_rows;
  view.gather_rows(view.finished(), &fin_rows);
  view.gather_rows(view.running(), &run_rows);
  if (fin_rows.empty() || run_rows.empty()) {
    rho_ = 1.0;  // degenerate start: neutral calibration
  } else {
    const auto c_fin = fin_rows.col_means();
    const auto c_run = run_rows.col_means();
    std::vector<double> diff(c_fin.size());
    for (std::size_t j = 0; j < c_fin.size(); ++j) {
      diff[j] = c_run[j] - c_fin[j];
    }
    const double sep = norm2(diff);
    rho_ = sep > 1e-12 ? norm2(c_fin) / sep : 1.0;
  }
  delta_ = 1.0 / (1.0 + rho_) - params_.alpha;
}

double NurdPredictor::weight(double propensity) const {
  const double z = params_.calibrate ? propensity + delta_ : propensity;
  return std::max(params_.epsilon, std::min(z, 1.0));
}

NurdPredictor::CheckpointModels NurdPredictor::fit_models(
    const trace::CheckpointView& view) {
  // promote() adopts blocks the featurize stage pre-assembled and degrades
  // to a plain observe() when nothing is staged (the monolithic path).
  session_.promote(view);
  CheckpointModels models;
  if (view.finished().empty()) {
    ht_.reset();
    gt_.reset();
    return models;
  }

  // ht: latency model on finished tasks (Algorithm 1 line 11). kFull refits
  // from scratch on the session's id-ordered finished block — bit-identical
  // to the published algorithm; kIncremental warm-continues the ensemble
  // (and skips entirely when a checkpoint revealed no completion).
  refit_finished_gbt(session_, params_.gbt, &ht_);
  models.ht = &*ht_.model;

  // gt: propensity of membership in the finished set — an unweighted
  // logistic regression on finished(1) vs running(0), exactly Eq. 2: the
  // propensity reflects both the class prior (how much of the job has
  // finished) and feature similarity. Absent when one class is missing.
  // Running rows drift every checkpoint, so gt refits regardless of policy;
  // kIncremental warm-starts Newton from the previous checkpoint's weights.
  if (!view.running().empty()) {
    const Matrix& x_mem = session_.x_member();
    const auto y_mem = session_.y_member();
    if (!session_.incremental() || !gt_.has_value()) {
      auto propensity = params_.propensity;
      propensity.warm_start = session_.incremental();
      gt_.emplace(propensity);
    }
    gt_->fit(x_mem, y_mem);
    models.gt = &*gt_;
  } else {
    gt_.reset();
  }
  return models;
}

void NurdPredictor::featurize_checkpoint(const trace::CheckpointView& view) {
  // Everything fit_models reads from the session: the finished block for ht,
  // the membership block for gt. Model state is untouched — that is the
  // staged-hook contract.
  session_.stage(view, kFinishedBlock | kMemberBlock);
}

void NurdPredictor::refit_checkpoint(const trace::CheckpointView& view,
                                     std::span<const std::size_t> candidates) {
  // Exactly predict_stragglers' preamble, including the skip guard: a
  // checkpoint with no finished tasks or no candidates must leave the models
  // (and the session's observed cursor) untouched on both paths, or the
  // warm-start trajectories diverge.
  calibrate(view);
  if (view.finished().empty() || candidates.empty()) return;
  fitted_models_ = fit_models(view);
  fitted_checkpoint_ = view.index();
}

std::vector<std::size_t> NurdPredictor::predict_stragglers(
    const trace::CheckpointView& view,
    std::span<const std::size_t> candidates) {
  calibrate(view);
  if (view.finished().empty() || candidates.empty()) return {};
  const auto models = fitted_checkpoint_ == view.index()
                          ? fitted_models_
                          : fit_models(view);

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    const auto row = view.row(i);
    const double y_hat = models.ht->predict(row);
    const double z = models.gt ? models.gt->predict_proba(row) : 1.0;
    const double y_adj = y_hat / weight(z);
    if (y_adj >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
