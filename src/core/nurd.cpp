#include "core/nurd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"

namespace nurd::core {

NurdPredictor::NurdPredictor(NurdParams params) : params_(params) {
  NURD_CHECK(params_.alpha > 0.0, "alpha must be positive");
  NURD_CHECK(params_.epsilon > 0.0 && params_.epsilon <= 1.0,
             "epsilon must be in (0,1]");
}

void NurdPredictor::initialize(const trace::Job& job, double tau_stra) {
  NURD_CHECK(!job.checkpoints.empty(), "job has no checkpoints");
  tau_stra_ = tau_stra;

  // Latency indicator ρ from the first checkpoint's feature centroids
  // (Algorithm 1 lines 4–6). ρ ≤ 1 ⇒ far tail ⇒ large δ (suppress false
  // positives); ρ > 1 ⇒ near tail ⇒ small/negative δ (recover true
  // positives).
  const auto& cp0 = job.checkpoints.front();
  const Matrix x_fin = cp0.features.select_rows(cp0.finished);
  const Matrix x_run = cp0.features.select_rows(cp0.running);
  if (x_fin.empty() || x_run.empty()) {
    rho_ = 1.0;  // degenerate start: neutral calibration
  } else {
    const auto c_fin = x_fin.col_means();
    const auto c_run = x_run.col_means();
    std::vector<double> diff(c_fin.size());
    for (std::size_t j = 0; j < c_fin.size(); ++j) {
      diff[j] = c_run[j] - c_fin[j];
    }
    const double sep = norm2(diff);
    rho_ = sep > 1e-12 ? norm2(c_fin) / sep : 1.0;
  }
  delta_ = 1.0 / (1.0 + rho_) - params_.alpha;
}

double NurdPredictor::weight(double propensity) const {
  const double z = params_.calibrate ? propensity + delta_ : propensity;
  return std::max(params_.epsilon, std::min(z, 1.0));
}

NurdPredictor::CheckpointModels NurdPredictor::fit_models(
    const trace::Job& job, std::size_t t) const {
  NURD_CHECK(t < job.checkpoints.size(), "checkpoint index out of range");
  const auto& cp = job.checkpoints[t];
  CheckpointModels models;
  if (cp.finished.empty()) return models;

  // ht: latency model on finished tasks (Algorithm 1 line 11).
  const Matrix x_fin = cp.features.select_rows(cp.finished);
  std::vector<double> y_fin(cp.finished.size());
  for (std::size_t i = 0; i < cp.finished.size(); ++i) {
    y_fin[i] = job.latencies[cp.finished[i]];
  }
  models.ht.emplace(ml::GradientBoosting::regressor(params_.gbt));
  models.ht->fit(x_fin, y_fin);

  // gt: propensity of membership in the finished set — an unweighted
  // logistic regression on finished(1) vs running(0), exactly Eq. 2: the
  // propensity reflects both the class prior (how much of the job has
  // finished) and feature similarity. Absent when one class is missing.
  if (!cp.running.empty()) {
    Matrix x_all(0, 0);
    std::vector<double> y_all;
    x_all.reserve_rows(cp.finished.size() + cp.running.size());
    y_all.reserve(cp.finished.size() + cp.running.size());
    for (auto i : cp.finished) {
      x_all.push_row(cp.features.row(i));
      y_all.push_back(1.0);
    }
    for (auto i : cp.running) {
      x_all.push_row(cp.features.row(i));
      y_all.push_back(0.0);
    }
    models.gt.emplace(params_.propensity);
    models.gt->fit(x_all, y_all);
  }
  return models;
}

std::vector<std::size_t> NurdPredictor::predict_stragglers(
    const trace::Job& job, std::size_t t,
    std::span<const std::size_t> candidates) {
  NURD_CHECK(t < job.checkpoints.size(), "checkpoint index out of range");
  const auto& cp = job.checkpoints[t];
  if (cp.finished.empty() || candidates.empty()) return {};
  const auto models = fit_models(job, t);

  std::vector<std::size_t> flagged;
  for (auto i : candidates) {
    const auto row = cp.features.row(i);
    const double y_hat = models.ht->predict(row);
    const double z = models.gt ? models.gt->predict_proba(row) : 1.0;
    const double y_adj = y_hat / weight(z);
    if (y_adj >= tau_stra_) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace nurd::core
