// The online evaluation harness. Drives a StragglerPredictor over a job's
// checkpoint stream under the paper's protocol (§7.1):
//   * a task predicted positive is flagged permanently and never
//     re-evaluated (Algorithm 1 removes it from Rt);
//   * a task predicted negative is re-evaluated at the next checkpoint while
//     it remains running;
//   * final confusion counts each task once against its true p90 label;
//   * streaming confusion at checkpoint t counts flags made up to t, with
//     every not-yet-flagged true straggler as a (provisional) false negative
//     — this is the cumulative F1 plotted in Figures 2 and 3.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "eval/metrics.h"
#include "trace/checkpoint_view.h"
#include "trace/job.h"

namespace nurd::eval {

/// Sentinel for "task never flagged".
inline constexpr std::size_t kNeverFlagged =
    std::numeric_limits<std::size_t>::max();

/// One predictor's run over one job.
struct JobRunResult {
  Confusion final;                        ///< end-of-job confusion
  std::vector<Confusion> per_checkpoint;  ///< cumulative confusion at each t
  std::vector<std::size_t> flagged_at;    ///< per task: checkpoint index or
                                          ///< kNeverFlagged
};

/// The static per-job context run_job hands to initialize() — without the
/// privileged capability, which run_job grants separately by declared
/// privilege. Shared by the parity tests, benches, and examples so every
/// caller mirrors the harness protocol exactly.
core::JobContext make_job_context(const trace::Job& job, double tau_stra);

/// Per-checkpoint scratch cell handed between the pipeline stages of ONE
/// checkpoint: featurize() binds the view, refit() fills the candidate set,
/// predict() fills the newly-flagged set, flag() consumes both. The serving
/// layer keeps a ring of these per job (one cell per in-flight checkpoint,
/// reused modulo the executor's window); the batch harness reuses a single
/// cell. A default-constructed cell is ready for any checkpoint — the view
/// rebinds in place, reusing partition capacity, once bound.
struct CheckpointScratch {
  std::optional<trace::CheckpointView> view;
  std::vector<std::size_t> candidates;
  std::vector<std::size_t> newly_flagged;
};

/// The §7.1 protocol, one checkpoint at a time. OnlineJobRun owns exactly
/// the state run_job used to keep on its stack — the labels, the checkpoint
/// cursors, the growing flag/confusion record — and step() advances one
/// checkpoint: candidates are the running tasks not yet flagged,
/// predict_stragglers decides, flags are recorded permanently, the
/// cumulative confusion is appended. run_job is a loop over this class, and
/// the serving layer (serve::StreamMonitor) drives the SAME class from its
/// event queue — which is what makes serving bit-identical to the batch
/// harness by construction rather than by parallel maintenance.
///
/// step() is itself the composition of four STAGE methods — featurize,
/// refit, predict, flag — so the task-DAG executor can run the stages of
/// different checkpoints concurrently (core/task_dag.h) while the batch
/// path runs them back to back; one code path, bit-identical flags.
///
/// Threading: one OnlineJobRun per (job, predictor instance). The stage
/// methods may run on different pool workers, but calls must honor the
/// executor's edges — per stage strictly ascending checkpoints, and the
/// cross-stage edges documented on each method. step() (all four inline) is
/// the fully serialized special case.
class OnlineJobRun {
 public:
  /// Binds to a job and a fresh predictor (both must outlive the run) and
  /// performs the harness's initialize() protocol, including the privileged
  /// OfflineSample grant for methods declaring it.
  OnlineJobRun(const trace::Job& job, core::StragglerPredictor& predictor,
               double pct = 90.0);

  /// Checkpoints remaining (i.e. flag() not yet called for the last one)?
  bool done() const { return flagged_through_ >= checkpoint_count_; }

  /// Index of the checkpoint the next step() will process.
  std::size_t next_checkpoint() const;

  /// Processes the next checkpoint — the four stages below, back to back —
  /// and returns the tasks newly flagged at it (valid until the next step()).
  std::span<const std::size_t> step();

  // ---- the pipeline stages ------------------------------------------------
  // Each takes the checkpoint index (strictly ascending per stage, no gaps)
  // and the checkpoint's scratch cell; the same cell must flow through all
  // four stages of one checkpoint. Concurrency limits are exactly the
  // executor's edges (core/task_dag.h).
  //
  // `shed = true` skips the checkpoint's model work — the serving layer's
  // load-shedding path. A shed featurize/refit/predict only advances its
  // cursor (predict additionally clears the cell's newly-flagged set, since
  // ring cells are reused); flag() then carries the confusion record forward
  // from the standing flag set. Whole checkpoints are shed, never single
  // stages: predictors re-fit inline on a stale session (the staged-hook
  // fallback), so shedding just the refit would save nothing. FitSession
  // tolerates the resulting observation gap by design (promote() re-derives
  // delta markers against the last checkpoint actually observed).

  /// Stage 1 — binds the checkpoint view into the cell and runs the
  /// predictor's featurize hook (block staging; a no-op for monolithic
  /// methods). May run while refit/predict/flag of checkpoints < t are
  /// still in flight, up to the executor's featurize-ahead bound.
  void featurize(std::size_t t, CheckpointScratch* scratch,
                 bool shed = false);

  /// Stage 2 — computes the candidate set (running tasks unflagged through
  /// t-1; requires predict(t-1) retired) and runs the predictor's refit
  /// hook with it, replicating the monolithic skip guards.
  void refit(std::size_t t, CheckpointScratch* scratch, bool shed = false);

  /// Stage 3 — predict_stragglers on the candidates (a staged predictor
  /// only scores here; a monolithic one does all its work) and records the
  /// flags permanently. Requires flag(t-1) retired (it writes the record
  /// flag(t-1) reads).
  void predict(std::size_t t, CheckpointScratch* scratch, bool shed = false);

  /// Stage 4 — cumulative confusion accounting; populates `final` on the
  /// last checkpoint. Returns the newly flagged tasks (valid while the cell
  /// is). Never blocks the next refit — that is the executor's non-edge.
  std::span<const std::size_t> flag(std::size_t t, CheckpointScratch* scratch);

  /// The accumulated record; `final` is populated once done().
  const JobRunResult& result() const { return result_; }

  /// Moves the record out (call once, after done()).
  JobRunResult take_result();

 private:
  const trace::Job* job_;
  core::StragglerPredictor* predictor_;
  std::vector<int> labels_;
  std::optional<core::OfflineSample> offline_;
  std::size_t checkpoint_count_ = 0;
  // Per-stage cursors: the next checkpoint each stage expects. Between
  // step() calls all four agree; under the executor they fan out by at most
  // the in-flight window.
  std::size_t featurized_through_ = 0;
  std::size_t refitted_through_ = 0;
  std::size_t predicted_through_ = 0;
  std::size_t flagged_through_ = 0;
  CheckpointScratch step_scratch_;  ///< the batch path's single cell
  JobRunResult result_;
};

/// Runs `predictor` over `job` (fresh instance expected) with the straggler
/// threshold at latency percentile `pct`.
JobRunResult run_job(const trace::Job& job,
                     core::StragglerPredictor& predictor, double pct = 90.0);

/// A method's metrics macro-averaged over a job set. TPR/FPR/FNR average
/// over all jobs with the zero conventions documented in metrics.h; the F1
/// macro-average (and the per-checkpoint timeline) covers only jobs with at
/// least one true straggler — a positive-free job's F1 is the degenerate 1.0
/// whatever the predictor does, which would inflate the mean (metrics.h
/// documents the policy).
struct MethodResult {
  std::string name;
  double tpr = 0.0;
  double fpr = 0.0;
  double fnr = 0.0;
  double f1 = 0.0;
  std::vector<double> f1_timeline;  ///< mean cumulative F1 per checkpoint
};

/// Evaluates one registry entry over all jobs (a fresh predictor per job).
///
/// Jobs are independent, so they fan out over `threads` pool lanes
/// (0 = hardware concurrency, 1 = fully serial). Each job gets its own
/// predictor instance and writes to its own result slot, and the final
/// aggregation walks jobs in input order — metrics are bit-identical for
/// every thread count.
MethodResult evaluate_method(const core::NamedPredictor& method,
                             std::span<const trace::Job> jobs,
                             double pct = 90.0, std::size_t threads = 0);

/// The aggregation behind evaluate_method, exposed so callers holding
/// per-job runs (run_method output or synthetic vectors) can macro-average
/// without re-running predictors. Walks runs in order; deterministic.
MethodResult aggregate_method(std::string name,
                              std::span<const JobRunResult> runs);

/// Per-job run results for one method (used by the scheduler benches, which
/// need flag times rather than aggregate rates). Same parallelism and
/// determinism contract as evaluate_method; results are in job order.
std::vector<JobRunResult> run_method(const core::NamedPredictor& method,
                                     std::span<const trace::Job> jobs,
                                     double pct = 90.0,
                                     std::size_t threads = 0);

}  // namespace nurd::eval
