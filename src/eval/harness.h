// The online evaluation harness. Drives a StragglerPredictor over a job's
// checkpoint stream under the paper's protocol (§7.1):
//   * a task predicted positive is flagged permanently and never
//     re-evaluated (Algorithm 1 removes it from Rt);
//   * a task predicted negative is re-evaluated at the next checkpoint while
//     it remains running;
//   * final confusion counts each task once against its true p90 label;
//   * streaming confusion at checkpoint t counts flags made up to t, with
//     every not-yet-flagged true straggler as a (provisional) false negative
//     — this is the cumulative F1 plotted in Figures 2 and 3.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "eval/metrics.h"
#include "trace/job.h"
#include "trace/replay.h"

namespace nurd::eval {

/// Sentinel for "task never flagged".
inline constexpr std::size_t kNeverFlagged =
    std::numeric_limits<std::size_t>::max();

/// One predictor's run over one job.
struct JobRunResult {
  Confusion final;                        ///< end-of-job confusion
  std::vector<Confusion> per_checkpoint;  ///< cumulative confusion at each t
  std::vector<std::size_t> flagged_at;    ///< per task: checkpoint index or
                                          ///< kNeverFlagged
};

/// The static per-job context run_job hands to initialize() — without the
/// privileged capability, which run_job grants separately by declared
/// privilege. Shared by the parity tests, benches, and examples so every
/// caller mirrors the harness protocol exactly.
core::JobContext make_job_context(const trace::Job& job, double tau_stra);

/// The §7.1 protocol, one checkpoint at a time. OnlineJobRun owns exactly
/// the state run_job used to keep on its stack — the labels, the Replay
/// cursor, the candidate scratch, the growing flag/confusion record — and
/// step() advances one checkpoint: candidates are the running tasks not yet
/// flagged, predict_stragglers decides, flags are recorded permanently, the
/// cumulative confusion is appended. run_job is a loop over this class, and
/// the serving layer (serve::StreamMonitor) drives the SAME class from its
/// event queue — which is what makes serialized serving bit-identical to the
/// batch harness by construction rather than by parallel maintenance.
///
/// Not thread-safe: one OnlineJobRun per (job, predictor instance), stepped
/// by one thread at a time. Checkpoints advance strictly in order.
class OnlineJobRun {
 public:
  /// Binds to a job and a fresh predictor (both must outlive the run) and
  /// performs the harness's initialize() protocol, including the privileged
  /// OfflineSample grant for methods declaring it.
  OnlineJobRun(const trace::Job& job, core::StragglerPredictor& predictor,
               double pct = 90.0);

  /// Checkpoints remaining?
  bool done() const { return !replay_.has_next(); }

  /// Index of the checkpoint the next step() will process.
  std::size_t next_checkpoint() const;

  /// Processes the next checkpoint and returns the tasks newly flagged at it
  /// (valid until the next step()).
  std::span<const std::size_t> step();

  /// The accumulated record; `final` is populated once done().
  const JobRunResult& result() const { return result_; }

  /// Moves the record out (call once, after done()).
  JobRunResult take_result();

 private:
  const trace::Job* job_;
  core::StragglerPredictor* predictor_;
  std::vector<int> labels_;
  std::optional<core::OfflineSample> offline_;
  trace::Replay replay_;
  std::vector<std::size_t> candidates_;  ///< reused per-checkpoint scratch
  std::vector<std::size_t> newly_flagged_;
  JobRunResult result_;
};

/// Runs `predictor` over `job` (fresh instance expected) with the straggler
/// threshold at latency percentile `pct`.
JobRunResult run_job(const trace::Job& job,
                     core::StragglerPredictor& predictor, double pct = 90.0);

/// A method's metrics macro-averaged over a job set. TPR/FPR/FNR average
/// over all jobs with the zero conventions documented in metrics.h; the F1
/// macro-average (and the per-checkpoint timeline) covers only jobs with at
/// least one true straggler — a positive-free job's F1 is the degenerate 1.0
/// whatever the predictor does, which would inflate the mean (metrics.h
/// documents the policy).
struct MethodResult {
  std::string name;
  double tpr = 0.0;
  double fpr = 0.0;
  double fnr = 0.0;
  double f1 = 0.0;
  std::vector<double> f1_timeline;  ///< mean cumulative F1 per checkpoint
};

/// Evaluates one registry entry over all jobs (a fresh predictor per job).
///
/// Jobs are independent, so they fan out over `threads` pool lanes
/// (0 = hardware concurrency, 1 = fully serial). Each job gets its own
/// predictor instance and writes to its own result slot, and the final
/// aggregation walks jobs in input order — metrics are bit-identical for
/// every thread count.
MethodResult evaluate_method(const core::NamedPredictor& method,
                             std::span<const trace::Job> jobs,
                             double pct = 90.0, std::size_t threads = 0);

/// The aggregation behind evaluate_method, exposed so callers holding
/// per-job runs (run_method output or synthetic vectors) can macro-average
/// without re-running predictors. Walks runs in order; deterministic.
MethodResult aggregate_method(std::string name,
                              std::span<const JobRunResult> runs);

/// Per-job run results for one method (used by the scheduler benches, which
/// need flag times rather than aggregate rates). Same parallelism and
/// determinism contract as evaluate_method; results are in job order.
std::vector<JobRunResult> run_method(const core::NamedPredictor& method,
                                     std::span<const trace::Job> jobs,
                                     double pct = 90.0,
                                     std::size_t threads = 0);

}  // namespace nurd::eval
