// Confusion-matrix metrics under the paper's evaluation protocol (§7.1):
// TPR, FPR, FNR and F1, reported per job and macro-averaged over jobs.
#pragma once

#include <cstddef>

namespace nurd::eval {

/// Confusion counts for one job's straggler predictions.
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  /// True positive rate TP/(TP+FN); 0 when there are no positives.
  double tpr() const;
  /// False positive rate FP/(FP+TN); 0 when there are no negatives.
  double fpr() const;
  /// False negative rate FN/(TP+FN); 0 when there are no positives.
  double fnr() const;
  /// F1 = 2TP/(2TP+FP+FN); defined as 1 when the denominator is zero
  /// (no positives anywhere and none predicted).
  double f1() const;

  Confusion& operator+=(const Confusion& other);
};

}  // namespace nurd::eval
