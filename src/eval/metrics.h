// Confusion-matrix metrics under the paper's evaluation protocol (§7.1):
// TPR, FPR, FNR and F1, reported per job and macro-averaged over jobs.
//
// Macro-averaging policy (enforced by eval::aggregate_method): a job with no
// true stragglers (tp + fn == 0) is excluded from the F1 macro-average and
// from the Figure 2/3 F1 timelines. Such a job's F1 is the degenerate 1.0
// whatever the predictor does (2tp + fp + fn == 0 until a false flag lands),
// so including it only inflates the mean. TPR/FPR/FNR keep the all-jobs mean
// with the per-rate zero conventions below. Only if the entire job set is
// positive-free does the F1 average fall back to covering every job.
#pragma once

#include <cstddef>

namespace nurd::eval {

/// Confusion counts for one job's straggler predictions.
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  /// True positive rate TP/(TP+FN); 0 when there are no positives.
  double tpr() const;
  /// False positive rate FP/(FP+TN); 0 when there are no negatives.
  double fpr() const;
  /// False negative rate FN/(TP+FN); 0 when there are no positives.
  double fnr() const;
  /// F1 = 2TP/(2TP+FP+FN); defined as 1 when the denominator is zero
  /// (no positives anywhere and none predicted). Because of this convention,
  /// positive-free jobs are excluded from macro-averages — see the policy
  /// note at the top of this header.
  double f1() const;

  Confusion& operator+=(const Confusion& other);
};

}  // namespace nurd::eval
