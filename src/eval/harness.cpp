#include "eval/harness.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/thread_pool.h"

namespace nurd::eval {

core::JobContext make_job_context(const trace::Job& job, double tau_stra) {
  core::JobContext context;
  context.job_id = job.id;
  context.task_count = job.task_count();
  context.feature_count = job.feature_count();
  context.checkpoint_count = job.checkpoint_count();
  context.tau_stra = tau_stra;
  return context;
}

OnlineJobRun::OnlineJobRun(const trace::Job& job,
                           core::StragglerPredictor& predictor, double pct)
    : job_(&job),
      predictor_(&predictor),
      checkpoint_count_(job.checkpoint_count()) {
  NURD_CHECK(job.checkpoint_count() > 0, "job has no checkpoints");
  labels_ = job.straggler_labels(pct);
  result_.flagged_at.assign(job.task_count(), kNeverFlagged);
  result_.per_checkpoint.resize(job.checkpoint_count());

  // The predictor sees static metadata only; privileged methods (Wrangler)
  // additionally receive the offline-label capability, explicitly. The
  // capability carries the FIXED p90 labels of Wrangler's published protocol
  // (§6), not the evaluation percentile: scoring a run at pct != 90 must not
  // quietly retrain Wrangler on different privileged labels.
  core::JobContext context = make_job_context(job, job.straggler_threshold(pct));
  if (predictor.privilege() == core::Privilege::kOfflineLabels) {
    offline_.emplace(pct == 90.0 ? labels_ : job.straggler_labels(90.0));
    context.offline = &*offline_;
  }
  predictor.initialize(context);
}

std::size_t OnlineJobRun::next_checkpoint() const {
  NURD_CHECK(flagged_through_ < checkpoint_count_,
             "job run already complete");
  return flagged_through_;
}

void OnlineJobRun::featurize(std::size_t t, CheckpointScratch* scratch,
                             bool shed) {
  NURD_CHECK(t == featurized_through_,
             "featurize stages must advance checkpoints in order");
  ++featurized_through_;
  if (shed) return;  // cursor advances; no view bind, no block staging
  // Bind the checkpoint view into the cell — rebinding in place once bound,
  // reusing the partition capacity, the same forward-only stream the old
  // Replay cursor produced.
  if (scratch->view.has_value() && &scratch->view->store() == &job_->trace) {
    scratch->view->rebind(t);
  } else {
    scratch->view.emplace(job_->trace, t);
  }
  predictor_->featurize_checkpoint(*scratch->view);
}

void OnlineJobRun::refit(std::size_t t, CheckpointScratch* scratch,
                         bool shed) {
  NURD_CHECK(t == refitted_through_,
             "refit stages must advance checkpoints in order");
  if (shed) {  // cursor advances; the model keeps checkpoint t-1's state
    ++refitted_through_;
    return;
  }
  // "featurize ran first" is checked through the cell, not the featurize
  // cursor: featurize(t+1) may legally run concurrently with refit(t) (the
  // executor's overlap), so reading featurized_through_ here would race.
  // The cell's view is written by featurize(t) itself, which the
  // Refit(t) ◄─ Featurize(t) edge orders before this call.
  NURD_CHECK(scratch->view.has_value() && scratch->view->index() == t,
             "refit before featurize");
  ++refitted_through_;
  const trace::CheckpointView& view = *scratch->view;
  // Candidates: running tasks that have not been flagged yet. The flag
  // record is complete through t-1 here (the executor's Refit ◄─ Predict
  // edge; inline composition trivially), so this is exactly the monolithic
  // candidate set.
  const auto running = view.running();
  scratch->candidates.clear();
  scratch->candidates.reserve(running.size());
  for (auto i : running) {
    if (result_.flagged_at[i] == kNeverFlagged) {
      scratch->candidates.push_back(i);
    }
  }
  predictor_->refit_checkpoint(view, scratch->candidates);
}

void OnlineJobRun::predict(std::size_t t, CheckpointScratch* scratch,
                           bool shed) {
  NURD_CHECK(t == predicted_through_,
             "predict stages must advance checkpoints in order");
  NURD_CHECK(t < refitted_through_, "predict before refit");
  ++predicted_through_;
  if (shed) {
    // No new decisions at a shed checkpoint. The cell is a reused ring
    // slot, so the previous tenant's newly-flagged set must not leak into
    // this checkpoint's flag() call.
    scratch->newly_flagged.clear();
    return;
  }
  const std::size_t n = job_->task_count();
  const trace::CheckpointView& view = *scratch->view;
  scratch->newly_flagged =
      predictor_->predict_stragglers(view, scratch->candidates);
  for (auto i : scratch->newly_flagged) {
    NURD_CHECK(i < n, "predictor flagged an invalid task id");
    NURD_CHECK(result_.flagged_at[i] == kNeverFlagged,
               "predictor flagged a task twice");
    result_.flagged_at[i] = t;
  }
}

std::span<const std::size_t> OnlineJobRun::flag(std::size_t t,
                                                CheckpointScratch* scratch) {
  NURD_CHECK(t == flagged_through_,
             "flag stages must advance checkpoints in order");
  NURD_CHECK(t < predicted_through_, "flag before predict");
  ++flagged_through_;
  // Cumulative confusion at this checkpoint: every unflagged true straggler
  // counts as a provisional miss. flagged_at entries written by LATER
  // predicts carry indices > t, so the <= t test is stable even while
  // predict(t+1) runs concurrently... except that concurrent writes to
  // other slots are real; the executor's Predict(t+1) ◄─ Flag(t) edge is
  // what rules them out.
  const std::size_t n = job_->task_count();
  Confusion& c = result_.per_checkpoint[t];
  for (std::size_t i = 0; i < n; ++i) {
    const bool flagged_yet = result_.flagged_at[i] <= t;
    if (flagged_yet && labels_[i] == 1) ++c.tp;
    if (flagged_yet && labels_[i] == 0) ++c.fp;
    if (!flagged_yet && labels_[i] == 1) ++c.fn;
    if (!flagged_yet && labels_[i] == 0) ++c.tn;
  }
  if (flagged_through_ == checkpoint_count_) {
    result_.final = result_.per_checkpoint.back();
  }
  return scratch->newly_flagged;
}

std::span<const std::size_t> OnlineJobRun::step() {
  const std::size_t t = next_checkpoint();
  featurize(t, &step_scratch_);
  refit(t, &step_scratch_);
  predict(t, &step_scratch_);
  return flag(t, &step_scratch_);
}

JobRunResult OnlineJobRun::take_result() {
  NURD_CHECK(done(), "job run still has checkpoints");
  return std::move(result_);
}

JobRunResult run_job(const trace::Job& job,
                     core::StragglerPredictor& predictor, double pct) {
  OnlineJobRun run(job, predictor, pct);
  while (!run.done()) run.step();
  return run.take_result();
}

MethodResult evaluate_method(const core::NamedPredictor& method,
                             std::span<const trace::Job> jobs, double pct,
                             std::size_t threads) {
  NURD_CHECK(!jobs.empty(), "no jobs to evaluate");
  // Runs fan out across jobs; the aggregation walks them in job order, so
  // the sums are bit-identical for every thread count.
  return aggregate_method(method.name, run_method(method, jobs, pct, threads));
}

MethodResult aggregate_method(std::string name,
                              std::span<const JobRunResult> runs) {
  NURD_CHECK(!runs.empty(), "no runs to aggregate");
  MethodResult out;
  out.name = std::move(name);

  // Jobs without a single true straggler are excluded from the F1
  // macro-average and timeline (policy documented in metrics.h): their F1 is
  // the degenerate 1.0 regardless of predictions and would inflate the mean.
  // If the entire job set is positive-free the exclusion would leave nothing,
  // so the average falls back to covering every job, which preserves the
  // per-job conventions (1.0 when nothing was flagged, 0.0 on false flags).
  const bool exclude_positive_free =
      std::any_of(runs.begin(), runs.end(), [](const JobRunResult& run) {
        return run.final.tp + run.final.fn > 0;
      });

  // The timeline spans only the jobs included in the F1 average — trailing
  // slots covered by excluded jobs alone would otherwise read as F1 = 0.
  std::size_t timeline_len = 0;
  for (const auto& run : runs) {
    if (exclude_positive_free && run.final.tp + run.final.fn == 0) continue;
    timeline_len = std::max(timeline_len, run.per_checkpoint.size());
  }
  out.f1_timeline.assign(timeline_len, 0.0);
  std::vector<std::size_t> timeline_counts(timeline_len, 0);

  std::size_t f1_jobs = 0;
  for (const auto& run : runs) {
    out.tpr += run.final.tpr();
    out.fpr += run.final.fpr();
    out.fnr += run.final.fnr();
    if (exclude_positive_free && run.final.tp + run.final.fn == 0) continue;
    ++f1_jobs;
    out.f1 += run.final.f1();
    for (std::size_t t = 0; t < run.per_checkpoint.size(); ++t) {
      out.f1_timeline[t] += run.per_checkpoint[t].f1();
      ++timeline_counts[t];
    }
  }

  const double n = static_cast<double>(runs.size());
  out.tpr /= n;
  out.fpr /= n;
  out.fnr /= n;
  out.f1 /= static_cast<double>(f1_jobs);  // >= 1: runs are non-empty
  for (std::size_t t = 0; t < timeline_len; ++t) {
    if (timeline_counts[t] > 0) {
      out.f1_timeline[t] /= static_cast<double>(timeline_counts[t]);
    }
  }
  return out;
}

std::vector<JobRunResult> run_method(const core::NamedPredictor& method,
                                     std::span<const trace::Job> jobs,
                                     double pct, std::size_t threads) {
  std::vector<JobRunResult> out(jobs.size());
  // Each job writes only its own slot; order-independent.
  ThreadPool::run_indexed(jobs.size(), threads, [&](std::size_t i) {
    auto predictor = method.make();
    out[i] = run_job(jobs[i], *predictor, pct);
  });
  return out;
}

}  // namespace nurd::eval
