#include "eval/harness.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/thread_pool.h"
#include "trace/replay.h"

namespace nurd::eval {

core::JobContext make_job_context(const trace::Job& job, double tau_stra) {
  core::JobContext context;
  context.job_id = job.id;
  context.task_count = job.task_count();
  context.feature_count = job.feature_count();
  context.checkpoint_count = job.checkpoint_count();
  context.tau_stra = tau_stra;
  return context;
}

JobRunResult run_job(const trace::Job& job,
                     core::StragglerPredictor& predictor, double pct) {
  NURD_CHECK(job.checkpoint_count() > 0, "job has no checkpoints");
  const auto labels = job.straggler_labels(pct);
  const double tau_stra = job.straggler_threshold(pct);
  const std::size_t n = job.task_count();
  const std::size_t T = job.checkpoint_count();

  JobRunResult result;
  result.flagged_at.assign(n, kNeverFlagged);
  result.per_checkpoint.resize(T);

  // The predictor sees static metadata only; privileged methods (Wrangler)
  // additionally receive the offline-label capability, explicitly. The
  // capability carries the FIXED p90 labels of Wrangler's published protocol
  // (§6), not the evaluation percentile: scoring a run at pct != 90 must not
  // quietly retrain Wrangler on different privileged labels.
  core::JobContext context = make_job_context(job, tau_stra);
  std::optional<core::OfflineSample> offline;
  if (predictor.privilege() == core::Privilege::kOfflineLabels) {
    offline.emplace(pct == 90.0 ? labels : job.straggler_labels(90.0));
    context.offline = &*offline;
  }
  predictor.initialize(context);

  // The checkpoint stream arrives through the Replay cursor, whose advance
  // path rebinds one view in place (reusing the partition capacity) — the
  // same forward-only stream a FitSession-backed predictor consumes
  // incrementally.
  trace::Replay replay(job);
  std::vector<std::size_t> candidates;
  for (std::size_t t = 0; t < T; ++t) {
    replay.advance();
    const trace::CheckpointView& view = replay.view();
    // Candidates: running tasks that have not been flagged yet.
    const auto running = view.running();
    candidates.clear();
    candidates.reserve(running.size());
    for (auto i : running) {
      if (result.flagged_at[i] == kNeverFlagged) candidates.push_back(i);
    }
    const auto flagged = predictor.predict_stragglers(view, candidates);
    for (auto i : flagged) {
      NURD_CHECK(i < n, "predictor flagged an invalid task id");
      NURD_CHECK(result.flagged_at[i] == kNeverFlagged,
                 "predictor flagged a task twice");
      result.flagged_at[i] = t;
    }

    // Cumulative confusion at this checkpoint: every unflagged true
    // straggler counts as a provisional miss.
    Confusion& c = result.per_checkpoint[t];
    for (std::size_t i = 0; i < n; ++i) {
      const bool flagged_yet = result.flagged_at[i] <= t;
      if (flagged_yet && labels[i] == 1) ++c.tp;
      if (flagged_yet && labels[i] == 0) ++c.fp;
      if (!flagged_yet && labels[i] == 1) ++c.fn;
      if (!flagged_yet && labels[i] == 0) ++c.tn;
    }
  }

  result.final = result.per_checkpoint.back();
  return result;
}

MethodResult evaluate_method(const core::NamedPredictor& method,
                             std::span<const trace::Job> jobs, double pct,
                             std::size_t threads) {
  NURD_CHECK(!jobs.empty(), "no jobs to evaluate");
  // Runs fan out across jobs; the aggregation walks them in job order, so
  // the sums are bit-identical for every thread count.
  return aggregate_method(method.name, run_method(method, jobs, pct, threads));
}

MethodResult aggregate_method(std::string name,
                              std::span<const JobRunResult> runs) {
  NURD_CHECK(!runs.empty(), "no runs to aggregate");
  MethodResult out;
  out.name = std::move(name);

  // Jobs without a single true straggler are excluded from the F1
  // macro-average and timeline (policy documented in metrics.h): their F1 is
  // the degenerate 1.0 regardless of predictions and would inflate the mean.
  // If the entire job set is positive-free the exclusion would leave nothing,
  // so the average falls back to covering every job, which preserves the
  // per-job conventions (1.0 when nothing was flagged, 0.0 on false flags).
  const bool exclude_positive_free =
      std::any_of(runs.begin(), runs.end(), [](const JobRunResult& run) {
        return run.final.tp + run.final.fn > 0;
      });

  // The timeline spans only the jobs included in the F1 average — trailing
  // slots covered by excluded jobs alone would otherwise read as F1 = 0.
  std::size_t timeline_len = 0;
  for (const auto& run : runs) {
    if (exclude_positive_free && run.final.tp + run.final.fn == 0) continue;
    timeline_len = std::max(timeline_len, run.per_checkpoint.size());
  }
  out.f1_timeline.assign(timeline_len, 0.0);
  std::vector<std::size_t> timeline_counts(timeline_len, 0);

  std::size_t f1_jobs = 0;
  for (const auto& run : runs) {
    out.tpr += run.final.tpr();
    out.fpr += run.final.fpr();
    out.fnr += run.final.fnr();
    if (exclude_positive_free && run.final.tp + run.final.fn == 0) continue;
    ++f1_jobs;
    out.f1 += run.final.f1();
    for (std::size_t t = 0; t < run.per_checkpoint.size(); ++t) {
      out.f1_timeline[t] += run.per_checkpoint[t].f1();
      ++timeline_counts[t];
    }
  }

  const double n = static_cast<double>(runs.size());
  out.tpr /= n;
  out.fpr /= n;
  out.fnr /= n;
  out.f1 /= static_cast<double>(f1_jobs);  // >= 1: runs are non-empty
  for (std::size_t t = 0; t < timeline_len; ++t) {
    if (timeline_counts[t] > 0) {
      out.f1_timeline[t] /= static_cast<double>(timeline_counts[t]);
    }
  }
  return out;
}

std::vector<JobRunResult> run_method(const core::NamedPredictor& method,
                                     std::span<const trace::Job> jobs,
                                     double pct, std::size_t threads) {
  std::vector<JobRunResult> out(jobs.size());
  // Each job writes only its own slot; order-independent.
  ThreadPool::run_indexed(jobs.size(), threads, [&](std::size_t i) {
    auto predictor = method.make();
    out[i] = run_job(jobs[i], *predictor, pct);
  });
  return out;
}

}  // namespace nurd::eval
