#include "eval/metrics.h"

namespace nurd::eval {

double Confusion::tpr() const {
  const auto pos = tp + fn;
  return pos == 0 ? 0.0
                  : static_cast<double>(tp) / static_cast<double>(pos);
}

double Confusion::fpr() const {
  const auto neg = fp + tn;
  return neg == 0 ? 0.0
                  : static_cast<double>(fp) / static_cast<double>(neg);
}

double Confusion::fnr() const {
  const auto pos = tp + fn;
  return pos == 0 ? 0.0
                  : static_cast<double>(fn) / static_cast<double>(pos);
}

double Confusion::f1() const {
  const auto denom = 2 * tp + fp + fn;
  return denom == 0 ? 1.0
                    : 2.0 * static_cast<double>(tp) /
                          static_cast<double>(denom);
}

Confusion& Confusion::operator+=(const Confusion& other) {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
  return *this;
}

}  // namespace nurd::eval
