#include "trace/csv.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "common/check.h"

namespace nurd::trace {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

}  // namespace

void write_csv(std::ostream& out, const Job& job,
               const FeatureSchema& schema) {
  NURD_CHECK(schema.size() == job.feature_count(),
             "schema width does not match the job's feature count");
  out << "task,latency,checkpoint,tau_run";
  for (const auto& name : schema.names) out << "," << name;
  out << "\n";
  out.precision(10);
  for (std::size_t t = 0; t < job.checkpoint_count(); ++t) {
    const double tau = job.trace.tau_run(t);
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      out << i << "," << job.latency(i) << "," << t << "," << tau;
      for (double v : job.trace.row(t, i)) out << "," << v;
      out << "\n";
    }
  }
}

void save_csv(const std::string& path, const Job& job,
              const FeatureSchema& schema) {
  std::ofstream f(path);
  NURD_CHECK(f.good(), "cannot open for writing: " + path);
  write_csv(f, job, schema);
  NURD_CHECK(f.good(), "write failed: " + path);
}

Job read_csv(std::istream& in, std::string id, std::size_t* drifted_rows) {
  std::string line;
  NURD_CHECK(static_cast<bool>(std::getline(in, line)), "empty CSV");
  const auto header = split_commas(line);
  NURD_CHECK(header.size() > 4 && header[0] == "task" &&
                 header[1] == "latency" && header[2] == "checkpoint" &&
                 header[3] == "tau_run",
             "unrecognized CSV header");
  const std::size_t d = header.size() - 4;

  // (checkpoint -> (task -> feature row)), latencies and horizons collected
  // on the way.
  std::map<std::size_t, std::map<std::size_t, std::vector<double>>> rows;
  std::map<std::size_t, double> tau_of;
  std::map<std::size_t, double> latency_of;

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_commas(line);
    NURD_CHECK(cells.size() == header.size(),
               "row " + std::to_string(line_no) + " has wrong cell count");
    const auto task = static_cast<std::size_t>(std::stoull(cells[0]));
    const double latency = std::stod(cells[1]);
    const auto cp = static_cast<std::size_t>(std::stoull(cells[2]));
    const double tau = std::stod(cells[3]);
    NURD_CHECK(latency > 0.0, "non-positive latency at row " +
                                  std::to_string(line_no));
    auto [it, inserted] = latency_of.try_emplace(task, latency);
    NURD_CHECK(inserted || it->second == latency,
               "conflicting latency for task " + std::to_string(task));
    auto [tit, tins] = tau_of.try_emplace(cp, tau);
    NURD_CHECK(tins || tit->second == tau,
               "conflicting tau_run for checkpoint " + std::to_string(cp));
    std::vector<double> feats(d);
    for (std::size_t f = 0; f < d; ++f) feats[f] = std::stod(cells[4 + f]);
    const bool fresh = rows[cp].try_emplace(task, std::move(feats)).second;
    NURD_CHECK(fresh, "duplicate (task, checkpoint) row at line " +
                          std::to_string(line_no));
  }
  NURD_CHECK(!rows.empty(), "CSV has no data rows");

  const std::size_t n = latency_of.size();
  // Tasks must be exactly 0..n-1 and present at every checkpoint.
  for (std::size_t i = 0; i < n; ++i) {
    NURD_CHECK(latency_of.contains(i),
               "task ids must be contiguous from 0; missing " +
                   std::to_string(i));
  }

  std::vector<double> latencies(n);
  for (const auto& [task, lat] : latency_of) latencies[task] = lat;

  Job job;
  job.id = std::move(id);
  job.trace = TraceStore(std::move(latencies), d);

  double prev_tau = 0.0;
  std::size_t next_cp = 0;
  for (const auto& [cp_idx, tasks] : rows) {
    NURD_CHECK(cp_idx == next_cp, "checkpoint ids must be contiguous from 0");
    ++next_cp;
    NURD_CHECK(tasks.size() == n, "checkpoint " + std::to_string(cp_idx) +
                                      " is missing tasks");
    const double tau = tau_of.at(cp_idx);
    NURD_CHECK(tau > prev_tau, "tau_run must be strictly ascending");
    prev_tau = tau;
    // The store asks only for the rows it may need (running tasks and the
    // freeze observation of newly-finished ones); redundant later rows of
    // frozen tasks in the file are ignored.
    job.trace.append_checkpoint(
        tau, [&tasks](std::size_t task, std::span<double> out) {
          const auto& feats = tasks.at(task);
          std::copy(feats.begin(), feats.end(), out.begin());
        });
  }
  job.trace.finalize();

  // Freeze-on-finish is an assumption about the file, not a guarantee: a
  // foreign trace may keep drifting a task's features after its finish
  // horizon. The store keeps exactly one frozen row per finished task, so
  // such post-freeze rows cannot round-trip; count the ones that differ from
  // the frozen observation and surface the loss instead of dropping it
  // silently.
  std::size_t drifted = 0;
  for (const auto& [cp_idx, tasks] : rows) {
    for (const auto& [task, feats] : tasks) {
      if (cp_idx <= job.trace.freeze_checkpoint(task)) continue;
      const auto stored = job.trace.row(cp_idx, task);
      // Bitwise, like the store's own change detection (NaN repeats a
      // frozen NaN exactly; operator== would miscount it as drift).
      if (std::memcmp(stored.data(), feats.data(),
                      stored.size() * sizeof(double)) != 0) {
        ++drifted;
      }
    }
  }
  if (drifted_rows != nullptr) *drifted_rows = drifted;
  if (drifted > 0) {
    std::cerr << "nurd: read_csv(" << job.id << "): " << drifted
              << " post-freeze row(s) drift from the task's frozen "
                 "observation and were ignored (the store assumes "
                 "freeze-on-finish; the trace will not round-trip exactly)\n";
  }
  return job;
}

Job load_csv(const std::string& path, std::string id,
             std::size_t* drifted_rows) {
  std::ifstream f(path);
  NURD_CHECK(f.good(), "cannot open for reading: " + path);
  return read_csv(f, std::move(id), drifted_rows);
}

}  // namespace nurd::trace
