#include "trace/checkpoint_view.h"

#include "common/check.h"

namespace nurd::trace {

CheckpointView::CheckpointView(const TraceStore& store, std::size_t t)
    : store_(&store), t_(t) {
  NURD_CHECK(store.finalized(), "trace store must be finalized");
  NURD_CHECK(t < store.checkpoint_count(), "checkpoint index out of range");
  store.partition(t, &finished_ids_, &running_ids_);
}

CheckpointView::CheckpointView(const TraceStore& store, std::size_t t,
                               const Matrix& snapshot)
    : store_(&store), dense_(&snapshot), t_(t) {
  NURD_CHECK(store.finalized(), "trace store must be finalized");
  NURD_CHECK(t < store.checkpoint_count(), "checkpoint index out of range");
  NURD_CHECK(snapshot.rows() == store.task_count() &&
                 snapshot.cols() == store.feature_count(),
             "snapshot shape does not match the store");
  store.partition(t, &finished_ids_, &running_ids_);
}

void CheckpointView::rebind(std::size_t t) {
  NURD_CHECK(dense_ == nullptr, "cannot rebind a dense-backed view");
  NURD_CHECK(t < store_->checkpoint_count(), "checkpoint index out of range");
  t_ = t;
  store_->partition(t, &finished_ids_, &running_ids_);
}

double CheckpointView::finished_fraction() const {
  return static_cast<double>(finished().size()) /
         static_cast<double>(task_count());
}

std::span<const double> CheckpointView::row(std::size_t task) const {
  if (dense_ != nullptr) {
    NURD_CHECK(task < dense_->rows(), "task id out of range");
    return dense_->row(task);
  }
  return store_->row(t_, task);
}

double CheckpointView::revealed_latency(std::size_t task) const {
  NURD_CHECK(task < task_count(), "task id out of range");
  NURD_CHECK(is_finished(task),
             "latency of a still-running task is not observable online");
  return store_->latency(task);
}

void CheckpointView::gather_rows(std::span<const std::size_t> tasks,
                                 Matrix* out) const {
  NURD_CHECK(out != nullptr, "gather_rows needs a destination");
  out->reset(feature_count());
  out->reserve_rows(tasks.size());
  for (const auto task : tasks) out->push_row(row(task));
}

void CheckpointView::snapshot(Matrix* out) const {
  NURD_CHECK(out != nullptr, "snapshot needs a destination");
  out->reset(feature_count());
  out->reserve_rows(task_count());
  for (std::size_t task = 0; task < task_count(); ++task) {
    out->push_row(row(task));
  }
}

void CheckpointView::finished_latencies(AlignedVector<double>* out) const {
  NURD_CHECK(out != nullptr, "finished_latencies needs a destination");
  out->clear();
  const auto fin = finished();
  out->reserve(fin.size());
  for (const auto task : fin) out->push_back(store_->latency(task));
}

}  // namespace nurd::trace
