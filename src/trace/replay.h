// Streaming replay cursor over a Job's checkpoints — the §6 "simulator"
// interface: it "replicates real execution by sending [the predictor] the
// features that would be available at each time checkpoint". Where the Job
// struct exposes the whole materialized trace (convenient for benches), a
// Replay enforces the online discipline: consumers see checkpoints strictly
// in order and can only query state for the current horizon.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/job.h"

namespace nurd::trace {

/// Forward-only cursor over a job's checkpoint stream.
class Replay {
 public:
  /// Binds to a job; the job must outlive the replay.
  explicit Replay(const Job& job);

  /// True while checkpoints remain.
  bool has_next() const { return next_ < job_->checkpoints.size(); }

  /// Advances to the next checkpoint and returns its index.
  std::size_t advance();

  /// Index of the current checkpoint (throws before the first advance()).
  std::size_t current_index() const;

  /// The current observation horizon τrun.
  double tau_run() const;

  /// Feature snapshot at the current checkpoint.
  const Matrix& features() const;

  /// Tasks finished by the current horizon.
  std::span<const std::size_t> finished() const;

  /// Tasks still running at the current horizon.
  std::span<const std::size_t> running() const;

  /// Latency of a task — ONLY available once it has finished at the current
  /// horizon; querying a still-running task throws (the online discipline).
  double revealed_latency(std::size_t task) const;

  /// Fraction of tasks finished at the current horizon.
  double finished_fraction() const;

  /// Resets to the beginning.
  void reset() { next_ = 0; }

 private:
  const Checkpoint& cp() const;

  const Job* job_;
  std::size_t next_ = 0;
};

}  // namespace nurd::trace
