// Streaming replay cursor over a job's checkpoint stream — the §6
// "simulator" interface: it "replicates real execution by sending [the
// predictor] the features that would be available at each time checkpoint".
// Replay is a thin forward-only cursor over the job's columnar TraceStore:
// advancing yields the next CheckpointView, and the view (not the replay)
// is what enforces which state is observable at the current horizon.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "trace/job.h"

namespace nurd::trace {

/// Forward-only cursor over a job's checkpoint stream.
class Replay {
 public:
  /// Binds to a job; the job must outlive the replay.
  explicit Replay(const Job& job);

  /// True while checkpoints remain.
  bool has_next() const { return next_ < job_->checkpoint_count(); }

  /// Advances to the next checkpoint and returns its index.
  std::size_t advance();

  /// Index the next advance() will yield (== checkpoint_count() when
  /// exhausted). Valid before the first advance(), unlike current_index() —
  /// the serving layer timestamps a job's next checkpoint event with it.
  std::size_t next_index() const { return next_; }

  /// Index of the current checkpoint (throws before the first advance()).
  std::size_t current_index() const;

  /// Observation boundary at the current checkpoint. The returned view lives
  /// inside the replay and is replaced by the next advance()/reset().
  const CheckpointView& view() const;

  /// The current observation horizon τrun.
  double tau_run() const { return view().tau_run(); }

  /// Tasks finished by the current horizon (ascending task id).
  std::span<const std::size_t> finished() const { return view().finished(); }

  /// Tasks still running at the current horizon (ascending task id).
  std::span<const std::size_t> running() const { return view().running(); }

  /// Latency of a task — ONLY available once it has finished at the current
  /// horizon; querying a still-running task throws (the online discipline).
  double revealed_latency(std::size_t task) const {
    return view().revealed_latency(task);
  }

  /// Fraction of tasks finished at the current horizon.
  double finished_fraction() const { return view().finished_fraction(); }

  /// Resets to the beginning.
  void reset() {
    next_ = 0;
    view_.reset();
  }

 private:
  const Job* job_;
  std::size_t next_ = 0;
  std::optional<CheckpointView> view_;  ///< view at current_index()
};

}  // namespace nurd::trace
