// Synthetic trace generators standing in for the Google 2011 and Alibaba
// 2017/2018 production traces (see DESIGN.md §1 for the substitution
// argument). The generators control the structural properties NURD's claims
// rest on:
//
//  * heavy-tailed latency with ~10% stragglers at the p90 threshold;
//  * two job regimes mirroring Figure 1 — "far tail" jobs whose p90 falls
//    below half the maximum latency (ρ ≤ 1 calibration branch) and
//    "near tail" jobs whose p90 exceeds it (ρ > 1 branch);
//  * task features correlated with (log) latency through job-specific
//    loadings, plus per-checkpoint drift for slow tasks, so running tasks'
//    feature distribution diverges from finished tasks' — the NU bias;
//  * dataset contrast: Google-like jobs expose 15 informative features,
//    Alibaba-like jobs only 4 noisier ones, reproducing the paper's weaker
//    absolute scores and narrower margins on Alibaba.
//
// Observation model (and why the columnar TraceStore pays off): real trace
// features are aggregate counters sampled over long windows — temporally
// coherent, not white. Feature noise is therefore PERSISTENT per task
// (machine heterogeneity, fixed over a task's life) rather than redrawn per
// checkpoint, and a task's row freezes at its completion horizon, exactly
// as a monitoring pipeline's counters stop moving when the task exits. The
// only per-checkpoint motion is the straggler-cause drift of slow running
// tasks, so most row-versions deduplicate in the store.
//
// Generation is embarrassingly parallel across jobs: every job draws from
// its own forked RNG stream decided in a serial prefix pass, so the output
// is bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "trace/job.h"

namespace nurd::trace {

/// Which latency-tail regime a job is drawn from (Figure 1's two shapes).
enum class TailRegime {
  kFar,   ///< stragglers much slower than p90; threshold < max/2
  kNear,  ///< stragglers only slightly slower; threshold > max/2
  kMixed  ///< regime drawn per job with probability far_fraction
};

/// Generator knobs shared by both datasets.
struct GeneratorConfig {
  std::size_t min_tasks = 100;
  std::size_t max_tasks = 400;
  std::size_t checkpoints = 10;       ///< prediction checkpoints T
  double initial_finished_frac = 0.04;  ///< §6: 4% finished before prediction
  TailRegime regime = TailRegime::kMixed;
  double far_fraction = 0.5;          ///< P(far regime) under kMixed
  double straggler_rate = 0.12;       ///< fraction of tasks given a tail draw
  double feature_signal = 1.0;        ///< loading scale (informativeness)
  double feature_noise = 0.6;         ///< per-task persistent noise stddev
  double drift_strength = 0.5;        ///< slow-task feature drift over time
  double tail_feature_boost = 3.0;    ///< straggler-cause signature strength
                                      ///< beyond the p90 scale (resource
                                      ///< anomalies are super-linear in
                                      ///< straggling severity)
  std::size_t straggler_causes = 3;   ///< distinct cause signatures per job
                                      ///< (heterogeneous causes — Zheng & Lee
                                      ///< 2018); each straggler expresses one
  double anomaly_rate = 0.08;         ///< latency-INDEPENDENT feature-outlier
                                      ///< tasks (noisy machines): stragglers
                                      ///< are outliers in latency, not
                                      ///< necessarily in feature space (§3.2)
  double anomaly_strength = 2.0;      ///< anomaly offset in noise units
  // --- Mid-stream distribution shift (the scenario zoo's drift axis) ------
  // Past `shift_at` (a fraction of the job's completion horizon) the body
  // feature loadings rotate toward a SECOND, independently drawn loading
  // vector: observations of still-running tasks — and the frozen rows of
  // tasks finishing late — are produced under a progressively different
  // feature↔latency mapping than the early stream a warm-started model was
  // fitted on. `shift_rotation` in [0, 1] is the fully-shifted blend share.
  // shift_at >= 1 (default) disables the shift; the shift draws happen LAST
  // in the per-job setup, so enabling it leaves every other draw untouched
  // and pre-shift observations stay bit-identical to the stationary job.
  double shift_at = 1.0;
  double shift_rotation = 0.0;
  std::uint64_t seed = 1234;
};

/// Base generator: everything but the feature schema and dataset-specific
/// defaults. Instantiate via GoogleLikeGenerator / AlibabaLikeGenerator.
class TraceGenerator {
 public:
  TraceGenerator(FeatureSchema schema, GeneratorConfig config);
  virtual ~TraceGenerator() = default;

  /// Generates `count` independent jobs, fanned out over `threads` pool
  /// lanes (0 = hardware concurrency, 1 = fully serial). Regime decisions
  /// and per-job RNG streams are drawn in a serial prefix pass, so the
  /// output is deterministic in config.seed and bit-identical at any
  /// thread count.
  std::vector<Job> generate(std::size_t count, std::size_t threads = 0);

  /// Generates a single job with an explicit regime (used by the Figure-1
  /// bench and the calibration tests).
  Job generate_job(std::size_t index, bool far_tail);

  const GeneratorConfig& config() const { return config_; }
  const FeatureSchema& schema() const { return schema_; }

 private:
  /// The per-job body: consumes only `rng` (the job's private stream).
  Job generate_job_impl(Rng rng, std::size_t index, bool far_tail) const;

  FeatureSchema schema_;
  GeneratorConfig config_;
  Rng rng_;
};

/// 15-feature generator mirroring the Google trace (Table 1): informative
/// resource/microarchitecture/scheduling features.
class GoogleLikeGenerator : public TraceGenerator {
 public:
  explicit GoogleLikeGenerator(GeneratorConfig config = google_defaults());
  static GeneratorConfig google_defaults();
};

/// 4-feature generator mirroring the Alibaba trace (Table 2): fewer, noisier
/// features and milder tails.
class AlibabaLikeGenerator : public TraceGenerator {
 public:
  explicit AlibabaLikeGenerator(GeneratorConfig config = alibaba_defaults());
  static GeneratorConfig alibaba_defaults();
};

}  // namespace nurd::trace
