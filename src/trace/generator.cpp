#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace nurd::trace {

TraceGenerator::TraceGenerator(FeatureSchema schema, GeneratorConfig config)
    : schema_(std::move(schema)), config_(config), rng_(config.seed) {
  NURD_CHECK(schema_.size() > 0, "schema must have features");
  NURD_CHECK(config_.min_tasks >= 10, "jobs need at least 10 tasks");
  NURD_CHECK(config_.min_tasks <= config_.max_tasks, "bad task range");
  NURD_CHECK(config_.checkpoints >= 2, "need at least two checkpoints");
  NURD_CHECK(config_.shift_at > 0.0, "shift_at must be positive");
  NURD_CHECK(config_.shift_rotation >= 0.0 && config_.shift_rotation <= 1.0,
             "shift_rotation must lie in [0, 1]");
}

std::vector<Job> TraceGenerator::generate(std::size_t count,
                                          std::size_t threads) {
  // Serial prefix: regime decisions and per-job RNG forks consume the shared
  // stream in job order, making the fan-out below order-independent.
  struct Plan {
    bool far = false;
    Rng rng{0};
  };
  std::vector<Plan> plans;
  plans.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    Plan plan;
    switch (config_.regime) {
      case TailRegime::kFar:
        plan.far = true;
        break;
      case TailRegime::kNear:
        plan.far = false;
        break;
      case TailRegime::kMixed:
        plan.far = rng_.bernoulli(config_.far_fraction);
        break;
    }
    plan.rng = rng_.fork();
    plans.push_back(std::move(plan));
  }

  std::vector<Job> jobs(count);
  // Each job writes only its own slot, from its own pre-forked stream.
  ThreadPool::run_indexed(count, threads, [&](std::size_t j) {
    jobs[j] = generate_job_impl(plans[j].rng, j, plans[j].far);
  });
  return jobs;
}

Job TraceGenerator::generate_job(std::size_t index, bool far_tail) {
  return generate_job_impl(rng_.fork(), index, far_tail);
}

Job TraceGenerator::generate_job_impl(Rng rng, std::size_t index,
                                      bool far_tail) const {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.min_tasks),
      static_cast<std::int64_t>(config_.max_tasks)));
  const std::size_t d = schema_.size();

  // --- Latency model -----------------------------------------------------
  // Base: a WIDE lognormal body (Figure 1: most mass at low normalized
  // latency, smoothly spread) truncated just above the p90 scale, so body
  // tasks never masquerade as extreme stragglers. Tail tasks multiply the
  // p90-scale latency by a regime-dependent factor: far-tail jobs use a
  // Pareto draw (stragglers several times slower than the threshold, p90
  // ends up below half the max), near-tail jobs a mild uniform bump
  // (stragglers just past the threshold, p90 above half the max).
  const double med = std::exp(rng.uniform(std::log(50.0), std::log(500.0)));
  const double sigma_job = rng.uniform(0.7, 1.1);
  const double l90 = med * std::exp(1.2816 * sigma_job);

  std::vector<double> latencies(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = std::min(rng.normal(), 1.45);
    double y = med * std::exp(sigma_job * z);
    if (rng.bernoulli(config_.straggler_rate)) {
      if (far_tail) {
        const double mult = 1.0 + std::min(rng.pareto(1.5, 1.2), 25.0);
        y = l90 * mult;
      } else {
        y = l90 * (1.0 + rng.uniform(0.05, 0.55));
      }
    }
    latencies[i] = y;
  }

  // --- Feature model ------------------------------------------------------
  // Loadings are job specific (datacenter jobs are unique — Reiss et al.
  // 2012), with a persistent per-task noise component. The feature response
  // has three parts:
  //  * a BODY component, linear in log-slowness but saturating at the p90
  //    scale — it makes latency predictable within the body, yet renders
  //    stragglers linearly indistinguishable from merely-slow tasks;
  //  * a CAUSE signature: each straggler expresses one of `straggler_causes`
  //    sparse nonnegative subspace directions, scaled by its severity beyond
  //    the p90 scale and building up with elapsed time (resource anomalies
  //    grow as the task struggles). Heterogeneous causes defeat linear
  //    classifiers (the paper's critique of Wrangler) while nonlinear models
  //    and the propensity score still pick them up. Because cause directions
  //    are nonnegative, far-tail stragglers (large severity) drag the
  //    running-tasks centroid away from the finished centroid, which is what
  //    makes ρ ≤ 1 signal a far tail (§4.2).
  //  * an ANOMALY offset on a latency-independent random subset of tasks:
  //    stragglers are outliers in latency, not necessarily in feature space
  //    (§3.2), so feature-space outlier detectors must face feature outliers
  //    that are NOT stragglers.
  // Noise is PERSISTENT per task (temporally-coherent aggregate counters;
  // see the header comment). Its stddev folds in the seed model's white
  // per-checkpoint component (√(0.6² + 0.4²) = √0.52 ≈ 0.7211, rounded to
  // 0.72 — ~0.3% below the seed's per-snapshot noise floor), so the noise
  // floor every model sees is essentially unchanged — the noise just stops
  // being redrawn between checkpoints, which is also what lets the columnar
  // TraceStore deduplicate non-drifting rows.
  const double z90 = 1.2816 * sigma_job;
  std::vector<double> z_body(n), severity(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = std::log(latencies[i] / med);
    z_body[i] = std::min(z, z90);
    // Blend of √excess (keeps mild stragglers visible) and linear excess
    // (keeps extreme far-tail stragglers dragging the running centroid, so
    // ρ separates the regimes).
    const double excess = std::max(z - z90, 0.0);
    severity[i] =
        0.5 * (std::sqrt(excess) + excess) * config_.tail_feature_boost;
  }

  // Feature means sit near the unit range (real trace features are usage
  // fractions and normalized counters), so the centroid norm ‖c_fin‖ is
  // comparable to the finished/running separation and ρ straddles 1.
  std::vector<double> mu(d), loading(d);
  for (std::size_t f = 0; f < d; ++f) {
    mu[f] = rng.uniform(0.6, 1.3);
    const double sign = rng.bernoulli(0.8) ? 1.0 : -1.0;
    loading[f] = sign * std::abs(rng.normal(0.4, 0.15)) *
                 config_.feature_signal;
  }

  // Sparse nonnegative cause directions (≈ d/3 features each, ≥ 2):
  // resource anomalies are elevations, and their common orientation is what
  // drags the running centroid and gives ρ its regime signal.
  const std::size_t n_causes =
      std::max<std::size_t>(config_.straggler_causes, 1);
  Matrix cause_dir(n_causes, d, 0.0);
  for (std::size_t c = 0; c < n_causes; ++c) {
    const auto active = rng.sample_without_replacement(
        d, std::max<std::size_t>(2, d / 3));
    for (auto f : active) {
      cause_dir(c, f) =
          std::abs(rng.normal(1.2, 0.35)) * config_.feature_signal;
    }
  }
  std::vector<std::size_t> cause_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cause_of[i] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_causes) - 1));
  }

  // Latency-independent feature anomalies ("noisy machines").
  Matrix anomaly(n, d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.bernoulli(config_.anomaly_rate)) continue;
    const auto active = rng.sample_without_replacement(
        d, std::max<std::size_t>(2, d / 2));
    for (auto f : active) {
      anomaly(i, f) = rng.normal(
          0.0, config_.anomaly_strength * config_.feature_noise);
    }
  }

  Matrix persistent(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f) {
      persistent(i, f) = rng.normal(0.0, 0.72 * config_.feature_noise);
    }
  }

  // Mid-stream distribution shift: a second loading basis the body mapping
  // rotates onto past shift_at (see GeneratorConfig). Drawn LAST so enabling
  // the shift leaves every draw above untouched — the pre-shift stream is
  // bit-identical to the stationary job from the same seed.
  const bool shifted =
      config_.shift_at < 1.0 && config_.shift_rotation > 0.0;
  std::vector<double> shift_loading(d, 0.0);
  if (shifted) {
    for (std::size_t f = 0; f < d; ++f) {
      const double sign = rng.bernoulli(0.8) ? 1.0 : -1.0;
      shift_loading[f] =
          sign * std::abs(rng.normal(0.4, 0.15)) * config_.feature_signal;
    }
  }

  // --- Checkpoint grid ----------------------------------------------------
  // Prediction starts once initial_finished_frac of tasks completed (§6).
  // The grid is GEOMETRIC between that point and just below the completion
  // time: heavy-tailed jobs run for many multiples of the typical task
  // latency, and a linear grid would place every checkpoint after the entire
  // body had finished, skipping exactly the early window where online
  // prediction is hard and valuable. Log spacing mirrors the effective
  // information growth of a periodically-sampled trace.
  const double t_start =
      percentile(latencies, 100.0 * config_.initial_finished_frac);
  const double t_end = 0.985 * max_value(latencies);
  const double t_total = max_value(latencies);
  const double ratio = std::max(t_end / std::max(t_start, 1e-9), 1.0001);
  const std::size_t T = config_.checkpoints;

  Job job;
  job.id = std::string(far_tail ? "far" : "near") + "-job-" +
           std::to_string(index);
  job.trace = TraceStore(std::move(latencies), d);
  const auto lat = job.trace.latencies();

  // The observed row of task i at effective elapsed time t_eff: metrics
  // freeze when a task completes (the store calls with t_eff = latency for
  // the frozen observation), and the cause signature builds up over the
  // task's lifetime — partially visible from the start, growing toward full
  // strength (drift_strength is the ramped share).
  const auto observe = [&](std::size_t i, double t_eff,
                           std::span<double> out) {
    const double progress = t_eff / t_total;
    const double ramp =
        (1.0 - config_.drift_strength) + config_.drift_strength * progress;
    const double sig = severity[i] * ramp;
    const auto cause = cause_dir.row(cause_of[i]);
    // Distribution-shift blend weight: 0 before shift_at, ramping to
    // shift_rotation at the completion horizon.
    double w = 0.0;
    if (shifted && progress > config_.shift_at) {
      const double span = std::max(1.0 - config_.shift_at, 1e-9);
      w = config_.shift_rotation *
          std::min((progress - config_.shift_at) / span, 1.0);
    }
    for (std::size_t f = 0; f < d; ++f) {
      const double load = (1.0 - w) * loading[f] + w * shift_loading[f];
      out[f] = mu[f] + load * z_body[i] + cause[f] * sig + anomaly(i, f) +
               persistent(i, f);
    }
  };

  for (std::size_t k = 0; k < T; ++k) {
    const double tau = t_start * std::pow(ratio, static_cast<double>(k + 1) /
                                                     static_cast<double>(T));
    job.trace.append_checkpoint(tau, [&](std::size_t i, std::span<double> out) {
      observe(i, std::min(tau, lat[i]), out);
    });
  }
  job.trace.finalize();
  return job;
}

GeneratorConfig GoogleLikeGenerator::google_defaults() {
  GeneratorConfig c;
  c.feature_signal = 0.6;
  c.feature_noise = 1.0;
  c.drift_strength = 0.5;
  c.far_fraction = 0.85;  // extreme tails dominate production jobs
  c.seed = 20110501;  // Google trace release month
  return c;
}

GoogleLikeGenerator::GoogleLikeGenerator(GeneratorConfig config)
    : TraceGenerator(google_schema(), config) {}

GeneratorConfig AlibabaLikeGenerator::alibaba_defaults() {
  GeneratorConfig c;
  c.feature_signal = 0.55;
  c.feature_noise = 1.0;
  c.drift_strength = 0.35;
  c.far_fraction = 0.75;
  c.seed = 20170801;  // Alibaba trace release month
  return c;
}

AlibabaLikeGenerator::AlibabaLikeGenerator(GeneratorConfig config)
    : TraceGenerator(alibaba_schema(), config) {}

}  // namespace nurd::trace
