// The trace data model: a Job is a set of tasks with true latencies and a
// grid of time checkpoints (paper §2 "Problem formulation" and §6
// "Evaluation methodology"). Feature observations live in a columnar
// TraceStore — one base row-version per task plus change-detected overlays —
// rather than the seed's per-checkpoint dense matrices; consumers observe a
// checkpoint through a CheckpointView, which also enforces the online
// discipline (finished latencies revealed, running latencies hidden).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/checkpoint_view.h"
#include "trace/trace_store.h"

namespace nurd::trace {

/// A complete job trace: id + columnar feature/latency store.
struct Job {
  std::string id;
  TraceStore trace;  ///< latencies, checkpoint grid, columnar features

  std::size_t task_count() const { return trace.task_count(); }
  std::size_t feature_count() const { return trace.feature_count(); }
  std::size_t checkpoint_count() const { return trace.checkpoint_count(); }

  /// True latency per task (ground truth; online visibility is enforced by
  /// CheckpointView, not here).
  std::span<const double> latencies() const { return trace.latencies(); }
  double latency(std::size_t task) const { return trace.latency(task); }

  /// The observation boundary at checkpoint `t`.
  CheckpointView checkpoint(std::size_t t) const { return {trace, t}; }

  /// Straggler threshold τstra at the given latency percentile (default p90,
  /// the paper's definition).
  double straggler_threshold(double pct = 90.0) const;

  /// True straggler labels at percentile `pct`: 1 = straggler.
  std::vector<int> straggler_labels(double pct = 90.0) const;

  /// Job completion time without intervention (max latency).
  double completion_time() const;

  /// Latencies scaled into [0,1] by the maximum (Figure 1's x-axis).
  std::vector<double> normalized_latencies() const;
};

/// Feature schema of a dataset (names mirror the paper's Tables 1 and 2).
struct FeatureSchema {
  std::vector<std::string> names;
  std::size_t size() const { return names.size(); }
};

/// The 15 Google trace features (Table 1).
const FeatureSchema& google_schema();

/// The 4 Alibaba trace features (Table 2).
const FeatureSchema& alibaba_schema();

}  // namespace nurd::trace
