// The trace data model: a Job is a set of tasks with true latencies and a
// grid of time checkpoints, each checkpoint carrying the feature snapshot
// and finished/running partition the online predictor would observe at that
// moment (paper §2 "Problem formulation" and §6 "Evaluation methodology").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace nurd::trace {

/// One observation instant during job execution. At horizon tau_run, tasks
/// with latency ≤ tau_run are finished (latency revealed); the rest are
/// running (latency known only to exceed tau_run).
struct Checkpoint {
  double tau_run = 0.0;                 ///< observation horizon τrun_t
  std::vector<std::size_t> finished;    ///< task ids with y ≤ τrun_t
  std::vector<std::size_t> running;     ///< task ids still executing
  Matrix features;                      ///< n × d feature snapshot x_ti
};

/// A complete job trace, fully materialized for deterministic replay.
struct Job {
  std::string id;
  std::vector<double> latencies;        ///< true latency per task
  std::vector<Checkpoint> checkpoints;  ///< ascending τrun grid
  std::size_t feature_count = 0;

  std::size_t task_count() const { return latencies.size(); }

  /// Straggler threshold τstra at the given latency percentile (default p90,
  /// the paper's definition).
  double straggler_threshold(double pct = 90.0) const;

  /// True straggler labels at percentile `pct`: 1 = straggler.
  std::vector<int> straggler_labels(double pct = 90.0) const;

  /// Job completion time without intervention (max latency).
  double completion_time() const;

  /// Latencies scaled into [0,1] by the maximum (Figure 1's x-axis).
  std::vector<double> normalized_latencies() const;
};

/// Feature schema of a dataset (names mirror the paper's Tables 1 and 2).
struct FeatureSchema {
  std::vector<std::string> names;
  std::size_t size() const { return names.size(); }
};

/// The 15 Google trace features (Table 1).
const FeatureSchema& google_schema();

/// The 4 Alibaba trace features (Table 2).
const FeatureSchema& alibaba_schema();

}  // namespace nurd::trace
