// Columnar per-job trace storage.
//
// The seed data model materialized one dense n×d feature matrix PER
// checkpoint (O(T·n·d) bytes per job). Production traces do not need that:
// a task's observable metrics freeze the moment it completes (its counters
// stop moving), and most running tasks' aggregate counters are temporally
// coherent between adjacent checkpoints. TraceStore exploits both:
//
//   * every task stores ONE base row-version at the first checkpoint (the
//     "base feature block");
//   * a later checkpoint stores a row-version ONLY for tasks whose observed
//     row actually changed (drifting running tasks, and the final frozen
//     observation of a task completing between two checkpoints);
//   * the finished/running partition of EVERY checkpoint is one prefix
//     length ("split") into a single latency-sorted task permutation:
//     finished sets are nested (monotone in τrun), so no per-checkpoint id
//     vectors are stored at all. That permutation is deliberately an
//     internal detail: enumerating running tasks in latency order would
//     rank them by their unrevealed latencies — a future-information oracle
//     — so the public partition accessors emit ascending task-id order
//     (reconstructed on demand), which depends on nothing hidden.
//
// Memory per job is O(n·d + Σ_t |changed_t|·d) — bounded above by
// O(n·d + Σ_t |running_t|·d) since frozen tasks never change — instead of
// O(T·n·d). bench/bench_trace.cpp measures the ratio.
//
// Build protocol: construct with the true latency vector, call
// append_checkpoint() once per horizon in ascending τ order, then
// finalize(). finalize() compacts the per-task version lists into a
// task-major CSR index; all read accessors require a finalized store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace nurd::trace {

/// Sentinel: task is still running at the last checkpoint.
inline constexpr std::size_t kNeverFrozen =
    std::numeric_limits<std::size_t>::max();

/// Sentinel for delta queries: "no checkpoint observed yet" — everything
/// finished is newly finished and every task's row counts as changed.
inline constexpr std::size_t kNoCheckpoint =
    std::numeric_limits<std::size_t>::max();

class TraceStore {
 public:
  TraceStore() = default;

  /// Starts an empty store for tasks with the given true latencies, each
  /// described by `feature_count` features.
  TraceStore(std::vector<double> latencies, std::size_t feature_count);

  /// Writes task `task`'s observed feature row (length feature_count) into
  /// `row`. Must be a pure function of (task, current horizon).
  using RowWriter =
      std::function<void(std::size_t task, std::span<double> row)>;

  /// Appends the next checkpoint at horizon `tau` (strictly ascending).
  /// The store derives the finished/running partition from the latencies and
  /// invokes `write_row` exactly once per task whose row it may need to
  /// store: every still-running task (its drifting observation at `tau`) and
  /// every task finishing in (prev_tau, tau] (its frozen observation at its
  /// completion time). Tasks frozen at an earlier checkpoint are never asked
  /// again, and a produced row that is bitwise identical to the task's
  /// previous stored version costs no memory.
  void append_checkpoint(double tau, const RowWriter& write_row);

  /// Seals the store: compacts the version index. Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t task_count() const { return latencies_.size(); }
  std::size_t feature_count() const { return d_; }
  std::size_t checkpoint_count() const { return taus_.size(); }

  /// True per-task latencies (the trace ground truth). Whether a caller may
  /// look at a specific task's latency at a specific horizon is enforced one
  /// layer up, by CheckpointView::revealed_latency.
  std::span<const double> latencies() const { return latencies_; }
  double latency(std::size_t task) const;

  /// Observation horizon τrun of checkpoint `t`.
  double tau_run(std::size_t t) const;

  /// Number of tasks finished by checkpoint `t`.
  std::size_t finished_count(std::size_t t) const;

  /// Fills `*finished` / `*running` with the tasks finished by / still
  /// running at checkpoint `t`, both in ascending task-id order, reusing the
  /// vectors' capacity. Either pointer may be null to skip that side. Task-id
  /// order is part of the online contract: it is the one enumeration that
  /// reveals nothing about the running tasks' unrevealed latencies.
  void partition(std::size_t t, std::vector<std::size_t>* finished,
                 std::vector<std::size_t>* running) const;

  /// Convenience copies of the two partition sides (ascending task id).
  std::vector<std::size_t> finished(std::size_t t) const;
  std::vector<std::size_t> running(std::size_t t) const;

  /// True iff `task` has finished by checkpoint `t`.
  bool is_finished(std::size_t t, std::size_t task) const;

  /// Incremental-observer delta between two checkpoints of the same stream:
  /// fills `*newly_finished` with the tasks finishing in (prev, t] and
  /// `*changed_rows` with the tasks whose observed row at `t` differs from
  /// their row at `prev` (i.e. tasks with a change-detected overlay version
  /// stamped in (prev, t] — a task completing with a bitwise-unchanged row is
  /// newly finished but NOT a changed row). Both sides come back in ascending
  /// task-id order, reuse the vectors' capacity, and may be null to skip.
  /// `prev == kNoCheckpoint` means nothing was observed yet: every finished
  /// task is newly finished and every task's row is new. `prev == t` yields
  /// empty deltas. Requires prev <= t (or the sentinel) — the store only
  /// streams forward.
  void delta(std::size_t prev, std::size_t t,
             std::vector<std::size_t>* newly_finished,
             std::vector<std::size_t>* changed_rows) const;

  /// Checkpoint at which `task`'s row froze (first checkpoint where it is
  /// finished), or kNeverFrozen.
  std::size_t freeze_checkpoint(std::size_t task) const;

  /// Task `task`'s observed feature row at checkpoint `t`: its latest stored
  /// version at or before `t` (the frozen row once the task has finished).
  std::span<const double> row(std::size_t t, std::size_t task) const;

  /// Dense n×d snapshot of checkpoint `t` (benches, CSV export, parity
  /// tests) — the seed's per-checkpoint matrix, reconstructed on demand.
  Matrix materialize(std::size_t t) const;

  /// Total stored row-versions (n base rows + overlay rows).
  std::size_t version_count() const;

  /// Bytes held by the sealed store (payload of every internal array).
  std::size_t memory_bytes() const;

  /// Bytes the seed's fully-materialized representation of the same trace
  /// would occupy: T dense n×d matrices plus per-checkpoint partition index
  /// vectors. The "before" of bench_trace's before/after comparison.
  std::size_t materialized_bytes() const;

 private:
  void check_finalized() const;

  std::size_t d_ = 0;
  std::vector<double> latencies_;
  std::vector<std::size_t> by_latency_;  ///< task ids sorted by (latency, id)
  std::vector<std::uint32_t> rank_;      ///< task -> position in by_latency_
  std::vector<double> taus_;
  std::vector<std::uint32_t> split_;     ///< finished prefix length per cp

  // Version storage during building: one (checkpoint, slot) list per task,
  // rows appended checkpoint-major into build_data_.
  struct BuildVersion {
    std::uint32_t checkpoint;
    std::uint32_t slot;
  };
  std::vector<std::vector<BuildVersion>> build_versions_;
  std::vector<double> build_data_;
  std::vector<double> scratch_row_;

  // Sealed CSR index (task-major): task i's versions occupy
  // [version_offset_[i], version_offset_[i+1]) in version_cp_ (checkpoint
  // stamps, ascending per task) and version_data_ (rows).
  bool finalized_ = false;
  std::vector<std::uint32_t> version_offset_;
  std::vector<std::uint16_t> version_cp_;
  std::vector<double> version_data_;

  // Checkpoint-major inverse of the CSR index (also built by finalize): the
  // tasks with a version stamped at checkpoint t occupy
  // [cp_offset_[t], cp_offset_[t+1]) of cp_task_, in ascending task id. This
  // is what makes delta()'s changed-rows side O(|changed|) instead of a scan
  // over every task's version list.
  std::vector<std::uint32_t> cp_offset_;
  std::vector<std::uint32_t> cp_task_;
};

}  // namespace nurd::trace
