#include "trace/job.h"

#include "common/check.h"
#include "common/stats.h"

namespace nurd::trace {

double Job::straggler_threshold(double pct) const {
  NURD_CHECK(task_count() > 0, "job has no tasks");
  return percentile(latencies(), pct);
}

std::vector<int> Job::straggler_labels(double pct) const {
  const double thr = straggler_threshold(pct);
  const auto lat = latencies();
  std::vector<int> labels(lat.size(), 0);
  for (std::size_t i = 0; i < lat.size(); ++i) {
    labels[i] = lat[i] >= thr ? 1 : 0;
  }
  return labels;
}

double Job::completion_time() const {
  NURD_CHECK(task_count() > 0, "job has no tasks");
  return max_value(latencies());
}

std::vector<double> Job::normalized_latencies() const {
  const double m = completion_time();
  const auto lat = latencies();
  std::vector<double> out(lat.size());
  for (std::size_t i = 0; i < lat.size(); ++i) {
    out[i] = m > 0.0 ? lat[i] / m : 0.0;
  }
  return out;
}

const FeatureSchema& google_schema() {
  static const FeatureSchema schema{{
      "MCU",     // mean CPU usage
      "MAXCPU",  // maximum CPU usage
      "SCPU",    // sampled CPU usage
      "CMU",     // canonical memory usage
      "AMU",     // assigned memory usage
      "MAXMU",   // maximum memory usage
      "UPC",     // unmapped page cache memory usage
      "TPC",     // total page cache memory usage
      "MIO",     // mean disk I/O time
      "MAXIO",   // maximum disk I/O time
      "MDK",     // mean local disk space used
      "CPI",     // cycles per instruction
      "MAI",     // memory accesses per instruction
      "EV",      // times task evicted
      "FL",      // times task failed
  }};
  return schema;
}

const FeatureSchema& alibaba_schema() {
  static const FeatureSchema schema{{
      "cpu_avg",
      "cpu_max",
      "mem_avg",
      "mem_max",
  }};
  return schema;
}

}  // namespace nurd::trace
