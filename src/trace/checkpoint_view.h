// The online observation boundary. A CheckpointView is everything a
// predictor may legally see at one horizon τrun_t:
//
//   * the finished/running partition and the horizon itself;
//   * every task's CURRENT feature row (finished tasks frozen at their
//     completion, running tasks at τrun_t);
//   * the latency of a task ONLY once it has finished — querying a running
//     task's latency throws. This turns the paper's §6 online discipline
//     ("the simulator sends the predictor the features that would be
//     available at each time checkpoint") from a convention into an
//     enforced interface: predictors receive a view, not the job.
//
// Views are cheap value types (three pointers). The row accessor is
// normally backed by the columnar TraceStore; the alternate constructor
// backs it by a dense materialized snapshot instead, which is how the
// golden-parity test proves the columnar reconstruction is exact.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "trace/trace_store.h"

namespace nurd::trace {

class CheckpointView {
 public:
  /// Columnar-backed view of checkpoint `t`. The store must outlive the
  /// view and be finalized.
  CheckpointView(const TraceStore& store, std::size_t t);

  /// Dense-backed view: partition and latencies still come from the store,
  /// rows from `snapshot` (an n×d materialized matrix that must outlive the
  /// view). Used by parity tests and offline tooling.
  CheckpointView(const TraceStore& store, std::size_t t,
                 const Matrix& snapshot);

  std::size_t index() const { return t_; }
  double tau_run() const { return store_->tau_run(t_); }
  std::size_t task_count() const { return store_->task_count(); }
  std::size_t feature_count() const { return store_->feature_count(); }

  /// Tasks finished by this horizon (ascending latency).
  std::span<const std::size_t> finished() const {
    return store_->finished(t_);
  }

  /// Tasks still running at this horizon (ascending latency).
  std::span<const std::size_t> running() const { return store_->running(t_); }

  bool is_finished(std::size_t task) const {
    return store_->is_finished(t_, task);
  }

  double finished_fraction() const;

  /// Task `task`'s observable feature row at this horizon.
  std::span<const double> row(std::size_t task) const;

  /// Latency of a task — ONLY available once it has finished at this
  /// horizon; querying a still-running task throws (the online discipline).
  double revealed_latency(std::size_t task) const;

  /// Gathers the rows of `tasks` into `*out` (|tasks| × d), reusing the
  /// matrix's existing capacity instead of allocating a fresh matrix — the
  /// refit hot path runs this once per model per checkpoint.
  void gather_rows(std::span<const std::size_t> tasks, Matrix* out) const;

  /// Gathers every task's row in task-id order (the dense snapshot the
  /// whole-population detectors fit on), reusing `out`'s capacity.
  void snapshot(Matrix* out) const;

  /// Revealed latencies of the finished set, in finished() order, into the
  /// reused `*out`.
  void finished_latencies(std::vector<double>* out) const;

 private:
  const TraceStore* store_;
  const Matrix* dense_ = nullptr;
  std::size_t t_ = 0;
};

}  // namespace nurd::trace
