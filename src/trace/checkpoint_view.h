// The online observation boundary. A CheckpointView is everything a
// predictor may legally see at one horizon τrun_t:
//
//   * the finished/running partition and the horizon itself, both sides
//     enumerated in ascending TASK-ID order. The ordering is part of the
//     discipline: the store internally partitions via a latency-sorted
//     permutation, and handing that order out would present still-running
//     tasks ranked by their unrevealed latencies — a future-information
//     oracle for any order-sensitive predictor. Task-id order is a function
//     of revealed information only (it also matches the seed's enumeration,
//     keeping floating-point accumulation order reproducible);
//   * every task's CURRENT feature row (finished tasks frozen at their
//     completion, running tasks at τrun_t);
//   * the latency of a task ONLY once it has finished — querying a running
//     task's latency throws. This turns the paper's §6 online discipline
//     ("the simulator sends the predictor the features that would be
//     available at each time checkpoint") from a convention into an
//     enforced interface: predictors receive a view, not the job.
//
// A view owns its id-ordered partition (one O(n) pass at construction) and
// otherwise points into the store; construct one per checkpoint, not per
// accessor call. The row accessor is normally backed by the columnar
// TraceStore; the alternate constructor backs it by a dense materialized
// snapshot instead, which is how the golden-parity test proves the columnar
// reconstruction is exact.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/matrix.h"
#include "trace/trace_store.h"

namespace nurd::trace {

class CheckpointView {
 public:
  /// Columnar-backed view of checkpoint `t`. The store must outlive the
  /// view and be finalized.
  CheckpointView(const TraceStore& store, std::size_t t);

  /// Dense-backed view: partition and latencies still come from the store,
  /// rows from `snapshot` (an n×d materialized matrix that must outlive the
  /// view). Used by parity tests and offline tooling.
  CheckpointView(const TraceStore& store, std::size_t t,
                 const Matrix& snapshot);

  std::size_t index() const { return t_; }
  double tau_run() const { return store_->tau_run(t_); }

  /// The backing store — the stream identity an incremental observer (e.g.
  /// core::FitSession) uses to tell "the next view of the same job" from "a
  /// view of some other job".
  const TraceStore& store() const { return *store_; }
  std::size_t task_count() const { return store_->task_count(); }
  std::size_t feature_count() const { return store_->feature_count(); }

  /// Tasks finished by this horizon (ascending task id).
  std::span<const std::size_t> finished() const { return finished_ids_; }

  /// Tasks still running at this horizon (ascending task id — deliberately
  /// NOT latency order, which is unrevealed for running tasks).
  std::span<const std::size_t> running() const { return running_ids_; }

  bool is_finished(std::size_t task) const {
    return store_->is_finished(t_, task);
  }

  double finished_fraction() const;

  /// Task `task`'s observable feature row at this horizon.
  std::span<const double> row(std::size_t task) const;

  /// Latency of a task — ONLY available once it has finished at this
  /// horizon; querying a still-running task throws (the online discipline).
  double revealed_latency(std::size_t task) const;

  /// Gathers the rows of `tasks` into `*out` (|tasks| × d), reusing the
  /// matrix's existing capacity instead of allocating a fresh matrix — the
  /// refit hot path runs this once per model per checkpoint.
  void gather_rows(std::span<const std::size_t> tasks, Matrix* out) const;

  /// Gathers every task's row in task-id order (the dense snapshot the
  /// whole-population detectors fit on), reusing `out`'s capacity.
  void snapshot(Matrix* out) const;

  /// Revealed latencies of the finished set, in finished() order, into the
  /// reused `*out`. Aligned destination: the block feeds kernel-layer batch
  /// primitives downstream (loss gradients, logistic labels).
  void finished_latencies(AlignedVector<double>* out) const;

  /// Delta against a previously observed checkpoint of the same stream:
  /// tasks that finished in (prev, t] and tasks whose observed row changed in
  /// (prev, t], both ascending task id into reused capacity (either pointer
  /// may be null). `prev == kNoCheckpoint` means nothing observed yet;
  /// `prev == index()` yields empty deltas (a repeated view adds nothing).
  /// This is what lets featurization APPEND per checkpoint instead of
  /// rebuilding: the contract `row(t, task) != row(prev, task) ⇒ task ∈
  /// changed_rows` holds for dense-backed views too, since both backings
  /// reconstruct the same observations.
  void delta_since(std::size_t prev, std::vector<std::size_t>* newly_finished,
                   std::vector<std::size_t>* changed_rows) const {
    store_->delta(prev, t_, newly_finished, changed_rows);
  }

  /// Re-points a columnar-backed view at checkpoint `t` of the same store,
  /// reusing the partition vectors' capacity — the replay cursor's advance
  /// path, which would otherwise reallocate the partition every step.
  void rebind(std::size_t t);

 private:
  const TraceStore* store_;
  const Matrix* dense_ = nullptr;
  std::size_t t_ = 0;
  std::vector<std::size_t> finished_ids_;  ///< ascending task id
  std::vector<std::size_t> running_ids_;   ///< ascending task id
};

}  // namespace nurd::trace
