// CSV import/export for job traces — the bridge for users with real parsed
// traces (the paper's own workflow parses the Google/Alibaba dumps into a
// time-series format; this is that format's on-disk representation).
//
// Layout (one file per job):
//   line 1:  header  "task,latency,checkpoint,tau_run,<feature names...>"
//   rest:    one row per (task, checkpoint) pair with the feature snapshot
//
// Latencies repeat on every row of their task (simple and greppable). The
// reader validates structural invariants (consistent feature width, every
// task present at every checkpoint, ascending tau_run) and rebuilds the
// finished/running partitions from latency vs tau_run.
//
// The on-disk format stays fully materialized (one row per task per
// checkpoint — the interchange format real parsed traces arrive in), but
// in memory both directions go through the columnar TraceStore: the writer
// expands stored row-versions back to dense rows, and the reader adopts the
// freeze-on-finish discipline — a finished task's row is its observation at
// the checkpoint where it first appears finished; any later drift of that
// task in a foreign CSV is ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/job.h"

namespace nurd::trace {

/// Writes `job` as CSV to `out`. Feature names come from `schema` (must
/// match the job's feature count).
void write_csv(std::ostream& out, const Job& job,
               const FeatureSchema& schema);

/// Convenience: writes to a file path (throws on I/O failure).
void save_csv(const std::string& path, const Job& job,
              const FeatureSchema& schema);

/// Parses a job from CSV (the write_csv format). The job id is taken from
/// `id`. Throws std::invalid_argument on malformed input.
///
/// Freeze-on-finish is an assumption about the file, not a guarantee: a
/// foreign trace may keep drifting a task's features after its finish
/// horizon, and those post-freeze rows are dropped (the store keeps one
/// frozen row per finished task), so the trace will not round-trip exactly.
/// When that happens the dropped-row count is written to `*drifted_rows`
/// (if non-null) and a one-line diagnostic goes to stderr.
Job read_csv(std::istream& in, std::string id = "csv-job",
             std::size_t* drifted_rows = nullptr);

/// Convenience: reads from a file path (throws on I/O failure).
Job load_csv(const std::string& path, std::string id = "csv-job",
             std::size_t* drifted_rows = nullptr);

}  // namespace nurd::trace
