#include "trace/trace_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"

namespace nurd::trace {

TraceStore::TraceStore(std::vector<double> latencies,
                       std::size_t feature_count)
    : d_(feature_count), latencies_(std::move(latencies)) {
  NURD_CHECK(!latencies_.empty(), "trace store needs at least one task");
  NURD_CHECK(d_ > 0, "trace store needs at least one feature");
  const std::size_t n = latencies_.size();
  by_latency_.resize(n);
  std::iota(by_latency_.begin(), by_latency_.end(), std::size_t{0});
  std::sort(by_latency_.begin(), by_latency_.end(),
            [this](std::size_t a, std::size_t b) {
              return latencies_[a] != latencies_[b]
                         ? latencies_[a] < latencies_[b]
                         : a < b;
            });
  rank_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    rank_[by_latency_[pos]] = static_cast<std::uint32_t>(pos);
  }
  build_versions_.resize(n);
  scratch_row_.resize(d_);
}

void TraceStore::append_checkpoint(double tau, const RowWriter& write_row) {
  NURD_CHECK(!finalized_, "cannot append to a finalized trace store");
  NURD_CHECK(d_ > 0, "trace store is default-constructed");
  NURD_CHECK(taus_.empty() || tau > taus_.back(),
             "tau_run must be strictly ascending");
  NURD_CHECK(taus_.size() < std::numeric_limits<std::uint16_t>::max(),
             "too many checkpoints");
  const auto t = static_cast<std::uint32_t>(taus_.size());
  const std::uint32_t prev_split = split_.empty() ? 0 : split_.back();

  // Finished prefix length: tasks in by_latency_ order with latency <= tau.
  const auto it = std::upper_bound(
      by_latency_.begin(), by_latency_.end(), tau,
      [this](double v, std::size_t task) { return v < latencies_[task]; });
  const auto split =
      static_cast<std::uint32_t>(std::distance(by_latency_.begin(), it));

  taus_.push_back(tau);
  split_.push_back(split);

  // Observe every not-yet-frozen task: tasks finishing in (prev_tau, tau]
  // contribute their frozen row, still-running tasks their row at tau. A row
  // bitwise equal to the task's previous version is deduplicated.
  for (std::size_t task = 0; task < task_count(); ++task) {
    if (rank_[task] < prev_split) continue;  // frozen at an earlier cp
    write_row(task, scratch_row_);
    auto& versions = build_versions_[task];
    if (!versions.empty()) {
      const double* last =
          build_data_.data() +
          static_cast<std::size_t>(versions.back().slot) * d_;
      if (std::memcmp(last, scratch_row_.data(), d_ * sizeof(double)) == 0) {
        continue;  // unchanged since the previous checkpoint
      }
    }
    const auto slot = static_cast<std::uint32_t>(build_data_.size() / d_);
    build_data_.insert(build_data_.end(), scratch_row_.begin(),
                       scratch_row_.end());
    versions.push_back({t, slot});
  }
}

void TraceStore::finalize() {
  if (finalized_) return;
  NURD_CHECK(!taus_.empty(), "cannot finalize a store with no checkpoints");
  const std::size_t n = task_count();
  std::size_t total = 0;
  for (const auto& v : build_versions_) total += v.size();

  version_offset_.assign(n + 1, 0);
  version_cp_.reserve(total);
  version_data_.reserve(total * d_);
  for (std::size_t task = 0; task < n; ++task) {
    for (const auto& v : build_versions_[task]) {
      version_cp_.push_back(static_cast<std::uint16_t>(v.checkpoint));
      const double* src =
          build_data_.data() + static_cast<std::size_t>(v.slot) * d_;
      version_data_.insert(version_data_.end(), src, src + d_);
    }
    version_offset_[task + 1] = static_cast<std::uint32_t>(version_cp_.size());
  }

  // Checkpoint-major inverse (counting sort of the version stamps). The
  // task-major walk visits tasks in ascending id, so each checkpoint's slice
  // comes out id-sorted without an explicit sort.
  cp_offset_.assign(taus_.size() + 1, 0);
  for (const auto cp : version_cp_) ++cp_offset_[cp + 1];
  for (std::size_t t = 0; t < taus_.size(); ++t) {
    cp_offset_[t + 1] += cp_offset_[t];
  }
  cp_task_.resize(total);
  std::vector<std::uint32_t> fill(cp_offset_.begin(), cp_offset_.end() - 1);
  for (std::size_t task = 0; task < n; ++task) {
    for (std::uint32_t v = version_offset_[task]; v < version_offset_[task + 1];
         ++v) {
      cp_task_[fill[version_cp_[v]]++] = static_cast<std::uint32_t>(task);
    }
  }
  build_versions_.clear();
  build_versions_.shrink_to_fit();
  build_data_.clear();
  build_data_.shrink_to_fit();
  scratch_row_.clear();
  scratch_row_.shrink_to_fit();
  finalized_ = true;
}

void TraceStore::check_finalized() const {
  NURD_CHECK(finalized_, "trace store must be finalized before reads");
}

double TraceStore::latency(std::size_t task) const {
  NURD_CHECK(task < task_count(), "task id out of range");
  return latencies_[task];
}

double TraceStore::tau_run(std::size_t t) const {
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  return taus_[t];
}

std::size_t TraceStore::finished_count(std::size_t t) const {
  check_finalized();
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  return split_[t];
}

void TraceStore::partition(std::size_t t, std::vector<std::size_t>* finished,
                           std::vector<std::size_t>* running) const {
  check_finalized();
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  const std::uint32_t split = split_[t];
  if (finished != nullptr) {
    finished->clear();
    finished->reserve(split);
  }
  if (running != nullptr) {
    running->clear();
    running->reserve(task_count() - split);
  }
  for (std::size_t task = 0; task < task_count(); ++task) {
    if (rank_[task] < split) {
      if (finished != nullptr) finished->push_back(task);
    } else if (running != nullptr) {
      running->push_back(task);
    }
  }
}

std::vector<std::size_t> TraceStore::finished(std::size_t t) const {
  std::vector<std::size_t> out;
  partition(t, &out, nullptr);
  return out;
}

std::vector<std::size_t> TraceStore::running(std::size_t t) const {
  std::vector<std::size_t> out;
  partition(t, nullptr, &out);
  return out;
}

bool TraceStore::is_finished(std::size_t t, std::size_t task) const {
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  NURD_CHECK(task < task_count(), "task id out of range");
  return rank_[task] < split_[t];
}

void TraceStore::delta(std::size_t prev, std::size_t t,
                       std::vector<std::size_t>* newly_finished,
                       std::vector<std::size_t>* changed_rows) const {
  check_finalized();
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  NURD_CHECK(prev == kNoCheckpoint || prev <= t,
             "delta requires prev <= t: the store streams forward");
  const bool from_start = prev == kNoCheckpoint;
  const std::uint32_t split_prev = from_start ? 0 : split_[prev];

  if (newly_finished != nullptr) {
    // Tasks whose latency rank entered the finished prefix in (prev, t]:
    // the by_latency_ slice [split_prev, split_t), re-sorted to ascending id
    // so nothing about the internal latency order leaks out.
    newly_finished->assign(by_latency_.begin() + split_prev,
                           by_latency_.begin() + split_[t]);
    std::sort(newly_finished->begin(), newly_finished->end());
  }

  if (changed_rows != nullptr) {
    changed_rows->clear();
    const std::size_t lo = from_start ? 0 : cp_offset_[prev + 1];
    const std::size_t hi = cp_offset_[t + 1];
    changed_rows->reserve(hi - lo);
    for (std::size_t v = lo; v < hi; ++v) {
      changed_rows->push_back(cp_task_[v]);
    }
    const std::size_t first_cp = from_start ? 0 : prev + 1;
    if (t > first_cp) {
      // Multi-step delta: a task may have versions at several checkpoints in
      // the range, and the concatenated slices are only id-sorted per
      // checkpoint. A single-checkpoint slice is already unique and sorted.
      std::sort(changed_rows->begin(), changed_rows->end());
      changed_rows->erase(
          std::unique(changed_rows->begin(), changed_rows->end()),
          changed_rows->end());
    }
  }
}

std::size_t TraceStore::freeze_checkpoint(std::size_t task) const {
  NURD_CHECK(task < task_count(), "task id out of range");
  // First checkpoint whose finished prefix covers the task's rank; split_ is
  // nondecreasing, so this is a lower bound over the split sequence.
  const auto it =
      std::upper_bound(split_.begin(), split_.end(), rank_[task]);
  return it == split_.end()
             ? kNeverFrozen
             : static_cast<std::size_t>(std::distance(split_.begin(), it));
}

std::span<const double> TraceStore::row(std::size_t t, std::size_t task) const {
  check_finalized();
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  NURD_CHECK(task < task_count(), "task id out of range");
  const std::uint32_t lo = version_offset_[task];
  const std::uint32_t hi = version_offset_[task + 1];
  // Latest version at or before t. Every task has a version at its first
  // checkpoint, so the search always lands.
  const auto it = std::upper_bound(version_cp_.begin() + lo,
                                   version_cp_.begin() + hi,
                                   static_cast<std::uint16_t>(t));
  const auto v = static_cast<std::size_t>(
      std::distance(version_cp_.begin(), it) - 1);
  return {version_data_.data() + v * d_, d_};
}

Matrix TraceStore::materialize(std::size_t t) const {
  check_finalized();
  NURD_CHECK(t < taus_.size(), "checkpoint index out of range");
  Matrix m(task_count(), d_);
  for (std::size_t task = 0; task < task_count(); ++task) {
    const auto src = row(t, task);
    std::copy(src.begin(), src.end(), m.row(task).begin());
  }
  return m;
}

std::size_t TraceStore::version_count() const {
  check_finalized();
  return version_cp_.size();
}

std::size_t TraceStore::memory_bytes() const {
  check_finalized();
  return latencies_.size() * sizeof(double) +
         by_latency_.size() * sizeof(std::size_t) +
         rank_.size() * sizeof(std::uint32_t) +
         taus_.size() * sizeof(double) +
         split_.size() * sizeof(std::uint32_t) +
         version_offset_.size() * sizeof(std::uint32_t) +
         version_cp_.size() * sizeof(std::uint16_t) +
         version_data_.size() * sizeof(double) +
         cp_offset_.size() * sizeof(std::uint32_t) +
         cp_task_.size() * sizeof(std::uint32_t);
}

std::size_t TraceStore::materialized_bytes() const {
  const std::size_t per_checkpoint =
      task_count() * d_ * sizeof(double) +   // dense feature matrix
      task_count() * sizeof(std::size_t) +   // finished/running id vectors
      sizeof(double);                        // tau_run
  return checkpoint_count() * per_checkpoint +
         latencies_.size() * sizeof(double);
}

}  // namespace nurd::trace
