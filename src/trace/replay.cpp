#include "trace/replay.h"

#include "common/check.h"

namespace nurd::trace {

Replay::Replay(const Job& job) : job_(&job) {
  NURD_CHECK(job.checkpoint_count() > 0, "job has no checkpoints");
}

std::size_t Replay::advance() {
  NURD_CHECK(has_next(), "replay exhausted");
  return next_++;
}

std::size_t Replay::current_index() const {
  NURD_CHECK(next_ > 0, "advance() has not been called");
  return next_ - 1;
}

}  // namespace nurd::trace
