#include "trace/replay.h"

#include "common/check.h"

namespace nurd::trace {

Replay::Replay(const Job& job) : job_(&job) {
  NURD_CHECK(job.checkpoint_count() > 0, "job has no checkpoints");
}

std::size_t Replay::advance() {
  NURD_CHECK(has_next(), "replay exhausted");
  if (view_.has_value()) {
    view_->rebind(next_);  // reuses the partition vectors' capacity
  } else {
    view_.emplace(job_->trace, next_);
  }
  return next_++;
}

std::size_t Replay::current_index() const {
  NURD_CHECK(next_ > 0, "advance() has not been called");
  return next_ - 1;
}

const CheckpointView& Replay::view() const {
  NURD_CHECK(view_.has_value(), "advance() has not been called");
  return *view_;
}

}  // namespace nurd::trace
