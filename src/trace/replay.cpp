#include "trace/replay.h"

#include "common/check.h"

namespace nurd::trace {

Replay::Replay(const Job& job) : job_(&job) {
  NURD_CHECK(!job.checkpoints.empty(), "job has no checkpoints");
}

std::size_t Replay::advance() {
  NURD_CHECK(has_next(), "replay exhausted");
  return next_++;
}

std::size_t Replay::current_index() const {
  NURD_CHECK(next_ > 0, "advance() has not been called");
  return next_ - 1;
}

const Checkpoint& Replay::cp() const {
  return job_->checkpoints[current_index()];
}

double Replay::tau_run() const { return cp().tau_run; }

const Matrix& Replay::features() const { return cp().features; }

std::span<const std::size_t> Replay::finished() const {
  return cp().finished;
}

std::span<const std::size_t> Replay::running() const { return cp().running; }

double Replay::revealed_latency(std::size_t task) const {
  NURD_CHECK(task < job_->task_count(), "task id out of range");
  const double y = job_->latencies[task];
  NURD_CHECK(y <= tau_run(),
             "latency of a still-running task is not observable online");
  return y;
}

double Replay::finished_fraction() const {
  return static_cast<double>(cp().finished.size()) /
         static_cast<double>(job_->task_count());
}

}  // namespace nurd::trace
