#include "outlier/ocsvm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/knn.h"
#include "common/stats.h"

namespace nurd::outlier {

std::vector<double> OcsvmDetector::feature_map(
    std::span<const double> row) const {
  if (params_.rff_dim == 0) {
    return {row.begin(), row.end()};
  }
  // φ(x)_k = sqrt(2/D) · cos(√(2γ)·ω_k·x + b_k) approximates the RBF kernel
  // exp(−γ‖x−y‖²).
  const std::size_t big_d = params_.rff_dim;
  std::vector<double> out(big_d);
  const double scale = std::sqrt(2.0 / static_cast<double>(big_d));
  const double freq = std::sqrt(2.0 * gamma_eff_);
  for (std::size_t k = 0; k < big_d; ++k) {
    out[k] = scale * std::cos(freq * dot(omega_.row(k), row) + phase_[k]);
  }
  return out;
}

void OcsvmDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "OCSVM needs at least two points");
  NURD_CHECK(params_.nu > 0.0 && params_.nu < 1.0, "nu must be in (0,1)");
  const Matrix xs = scaler_.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  Rng rng(params_.seed);

  if (params_.rff_dim > 0) {
    // Median heuristic for the RBF bandwidth unless the caller fixed gamma:
    // gamma = 1 / median(‖xi − xj‖²) over a pair sample.
    if (params_.gamma > 0.0) {
      gamma_eff_ = params_.gamma;
    } else {
      std::vector<double> d2;
      const std::size_t pairs = std::min<std::size_t>(500, n * (n - 1) / 2);
      for (std::size_t p = 0; p < pairs; ++p) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (i == j) continue;
        d2.push_back(squared_distance(xs.row(i), xs.row(j)));
      }
      const double med = d2.empty() ? 1.0 : median(d2);
      gamma_eff_ = med > 0.0 ? 1.0 / med : 1.0;
    }
    omega_ = Matrix(params_.rff_dim, d);
    phase_.resize(params_.rff_dim);
    for (std::size_t k = 0; k < params_.rff_dim; ++k) {
      for (std::size_t j = 0; j < d; ++j) omega_(k, j) = rng.normal();
      phase_[k] = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    }
  }

  // Precompute feature maps once.
  std::vector<std::vector<double>> phi(n);
  for (std::size_t i = 0; i < n; ++i) phi[i] = feature_map(xs.row(i));
  const std::size_t p = phi[0].size();

  w_.assign(p, 0.0);
  rho_ = 0.0;
  const double inv_nu_n = 1.0 / (params_.nu * static_cast<double>(n));

  std::size_t t = 0;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (std::size_t idx : order) {
      ++t;
      const double eta = 1.0 / std::sqrt(static_cast<double>(t));
      const double margin = dot(w_, phi[idx]);
      // Subgradient of ½‖w‖² + (1/νn)max(0, ρ−⟨w,φ⟩) − ρ.
      for (auto& wj : w_) wj *= (1.0 - eta);
      if (margin < rho_) {
        for (std::size_t j = 0; j < p; ++j) {
          w_[j] += eta * inv_nu_n * static_cast<double>(n) * phi[idx][j];
        }
        rho_ -= eta * (inv_nu_n * static_cast<double>(n) - 1.0);
      } else {
        rho_ += eta;
      }
    }
  }

  scores_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scores_[i] = rho_ - dot(w_, phi[i]);
  }
}

}  // namespace nurd::outlier
