// Unsupervised outlier detection — the interface behind all fourteen
// detectors the paper benchmarks against (§6 "Comparisons", PyOD versions).
//
// Detectors are used *transductively* in the online straggler pipeline: at
// each checkpoint they are fitted on the feature snapshot of every task in
// the job, and the scores of the still-running tasks are thresholded at a
// contamination level. Higher score = more outlying, matching PyOD's
// decision_scores_ convention.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace nurd::outlier {

/// Base interface for unsupervised detectors.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Fits the detector on the rows of `x` and computes per-row scores.
  virtual void fit(const Matrix& x) = 0;

  /// Outlier score per fitted row, aligned with the rows passed to fit().
  /// Higher = more outlying. Only valid after fit().
  virtual const std::vector<double>& scores() const = 0;

  /// Short identifier matching the paper's method names (e.g. "LOF").
  virtual std::string name() const = 0;
};

/// Score threshold that flags the top `contamination` fraction of the fitted
/// sample as outliers (the (1−contamination)-quantile of `scores`).
double contamination_threshold(std::span<const double> scores,
                               double contamination);

/// Binary outlier labels (1 = outlier) from scores at a contamination level.
std::vector<int> labels_from_scores(std::span<const double> scores,
                                    double contamination);

}  // namespace nurd::outlier
