// Neighbourhood-based detectors sharing the brute-force KnnIndex:
//   KNN  — k-th-nearest-neighbour distance (Ramaswamy et al. 2000)
//   LOF  — local outlier factor (Breunig et al. 2000)
//   COF  — connectivity-based outlier factor (Tang et al. 2002)
//   ABOD — angle-based outlier detection, FastABOD variant over the kNN set
//          (Kriegel et al. 2008)
#pragma once

#include <vector>

#include "common/knn.h"
#include "common/scaler.h"
#include "outlier/detector.h"

namespace nurd::outlier {

/// k-th-nearest-neighbour distance detector ("largest" variant).
class KnnDetector final : public Detector {
 public:
  explicit KnnDetector(std::size_t k = 5) : k_(k) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "KNN"; }

 private:
  std::size_t k_;
  std::vector<double> scores_;
};

/// Local outlier factor: ratio of the average local reachability density of
/// a point's neighbours to its own.
class LofDetector final : public Detector {
 public:
  explicit LofDetector(std::size_t k = 20) : k_(k) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "LOF"; }

 private:
  std::size_t k_;
  std::vector<double> scores_;
};

/// Connectivity-based outlier factor: ratio of a point's average chaining
/// distance (over its set-based nearest path) to its neighbours'.
class CofDetector final : public Detector {
 public:
  explicit CofDetector(std::size_t k = 10) : k_(k) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "COF"; }

 private:
  std::size_t k_;
  std::vector<double> scores_;
};

/// FastABOD: negated variance of distance-weighted angles between all pairs
/// of a point's k nearest neighbours (small angle variance ⇒ outlier ⇒ high
/// score after negation).
class AbodDetector final : public Detector {
 public:
  explicit AbodDetector(std::size_t k = 10) : k_(k) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "ABOD"; }

 private:
  std::size_t k_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
