#include "outlier/detector.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace nurd::outlier {

double contamination_threshold(std::span<const double> scores,
                               double contamination) {
  NURD_CHECK(!scores.empty(), "no scores to threshold");
  NURD_CHECK(contamination > 0.0 && contamination < 1.0,
             "contamination must be in (0,1)");
  return percentile(scores, 100.0 * (1.0 - contamination));
}

std::vector<int> labels_from_scores(std::span<const double> scores,
                                    double contamination) {
  const double thr = contamination_threshold(scores, contamination);
  std::vector<int> labels(scores.size(), 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    labels[i] = scores[i] > thr ? 1 : 0;
  }
  return labels;
}

}  // namespace nurd::outlier
