#include "outlier/ensemble_detectors.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/knn.h"
#include "common/scaler.h"
#include "common/stats.h"
#include "outlier/density_detectors.h"
#include "outlier/iforest.h"
#include "outlier/knn_detectors.h"

namespace nurd::outlier {

void LscpDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 3, "LSCP needs at least three points");
  const std::size_t n = x.rows();

  // Fit the base pool; z-score each detector's scores so they are comparable.
  std::vector<std::vector<double>> base;
  for (std::size_t k : params_.lof_ks) {
    LofDetector lof(k);
    lof.fit(x);
    base.push_back(zscore(lof.scores()));
  }
  for (std::size_t k : params_.knn_ks) {
    KnnDetector knn(k);
    knn.fit(x);
    base.push_back(zscore(knn.scores()));
  }
  NURD_CHECK(!base.empty(), "LSCP needs at least one base detector");

  // Pseudo ground truth: per-point mean of normalized base scores.
  std::vector<double> consensus(n, 0.0);
  for (const auto& s : base) {
    for (std::size_t i = 0; i < n; ++i) consensus[i] += s[i];
  }
  for (auto& c : consensus) c /= static_cast<double>(base.size());

  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  KnnIndex index(xs);
  const std::size_t region =
      std::min(params_.local_region, n - 1);

  scores_.assign(n, 0.0);
  std::vector<double> local_truth(region), local_scores(region);
  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = index.neighbors_of(i, region);
    for (std::size_t r = 0; r < nbrs.size(); ++r) {
      local_truth[r] = consensus[nbrs[r].index];
    }
    // Select the detector most correlated with the consensus locally.
    double best_corr = -2.0;
    std::size_t best_d = 0;
    for (std::size_t dix = 0; dix < base.size(); ++dix) {
      for (std::size_t r = 0; r < nbrs.size(); ++r) {
        local_scores[r] = base[dix][nbrs[r].index];
      }
      const double corr =
          pearson(std::span(local_truth).first(nbrs.size()),
                  std::span(local_scores).first(nbrs.size()));
      if (corr > best_corr) {
        best_corr = corr;
        best_d = dix;
      }
    }
    scores_[i] = base[best_d][i];
  }
}

XgbodDetector::XgbodDetector(XgbodParams params) : params_(params) {}

void XgbodDetector::fit(const Matrix& x, std::span<const double> y) {
  NURD_CHECK(x.rows() == y.size(), "row/label count mismatch");
  NURD_CHECK(x.rows() >= 3, "XGBOD needs at least three points");
  const std::size_t n = x.rows();

  // Transformed outlier scores from a small unsupervised pool.
  std::vector<std::vector<double>> tos;
  {
    KnnDetector knn(params_.knn_k);
    knn.fit(x);
    tos.push_back(minmax_normalize(knn.scores()));
  }
  {
    LofDetector lof(params_.knn_k);
    lof.fit(x);
    tos.push_back(minmax_normalize(lof.scores()));
  }
  {
    HbosDetector hbos;
    hbos.fit(x);
    tos.push_back(minmax_normalize(hbos.scores()));
  }
  {
    IForestDetector iforest;
    iforest.fit(x);
    tos.push_back(minmax_normalize(iforest.scores()));
  }

  // Augmented design matrix: raw features + TOS columns.
  Matrix aug(n, x.cols() + tos.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto src = x.row(i);
    auto dst = aug.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    for (std::size_t t = 0; t < tos.size(); ++t) {
      dst[x.cols() + t] = tos[t][i];
    }
  }

  auto clf = ml::GradientBoosting::classifier(params_.gbt);
  clf.fit(aug, y);
  scores_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scores_[i] = clf.predict(aug.row(i));
}

}  // namespace nurd::outlier
