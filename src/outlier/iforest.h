// Isolation Forest (Liu, Ting & Zhou 2008): ensembles of random isolation
// trees; anomalies have short expected path lengths. Scores follow the
// paper's 2^(−E[h(x)]/c(ψ)) normalization, so 0.5 is "average" and values
// toward 1 are anomalous.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "outlier/detector.h"

namespace nurd::outlier {

/// Isolation forest hyperparameters.
struct IForestParams {
  std::size_t n_trees = 100;
  std::size_t subsample = 256;  ///< ψ, clamped to n
  std::uint64_t seed = 5;
};

/// Isolation forest detector.
class IForestDetector final : public Detector {
 public:
  explicit IForestDetector(IForestParams params = {}) : params_(params) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "IFOREST"; }

  /// Average path length of an unsuccessful BST search over n points —
  /// the c(n) normalizer from the paper. Exposed for tests.
  static double average_path_length(std::size_t n);

 private:
  struct Node {
    bool is_leaf = true;
    std::size_t size = 0;      // points reaching this leaf
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double path_length(std::span<const double> row) const;
  };

  static std::int32_t build(Tree& tree, const Matrix& x,
                            std::vector<std::size_t>& rows, int depth,
                            int max_depth, Rng& rng);

  IForestParams params_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
