// Density-style detectors:
//   HBOS — histogram-based outlier score (Goldstein & Dengel 2012): features
//          are treated independently; score is the sum of per-feature
//          negative log densities.
//   SOS  — stochastic outlier selection (Janssens et al. 2012): perplexity-
//          calibrated affinities define binding probabilities; the outlier
//          probability is the product of "not bound to" probabilities.
#pragma once

#include <vector>

#include "outlier/detector.h"

namespace nurd::outlier {

/// Histogram-based outlier score.
class HbosDetector final : public Detector {
 public:
  explicit HbosDetector(std::size_t bins = 10) : bins_(bins) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "HBOS"; }

 private:
  std::size_t bins_;
  std::vector<double> scores_;
};

/// Stochastic outlier selection. O(n²) affinity computation with per-point
/// bandwidths found by binary search on perplexity.
class SosDetector final : public Detector {
 public:
  explicit SosDetector(double perplexity = 4.5) : perplexity_(perplexity) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "SOS"; }

 private:
  double perplexity_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
