#include "outlier/iforest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nurd::outlier {

double IForestDetector::average_path_length(std::size_t n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double nn = static_cast<double>(n);
  static const double kEuler = 0.5772156649015329;
  return 2.0 * (std::log(nn - 1.0) + kEuler) - 2.0 * (nn - 1.0) / nn;
}

std::int32_t IForestDetector::build(Tree& tree, const Matrix& x,
                                    std::vector<std::size_t>& rows, int depth,
                                    int max_depth, Rng& rng) {
  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.is_leaf = true;
    leaf.size = rows.size();
    tree.nodes.push_back(leaf);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  };
  if (rows.size() <= 1 || depth >= max_depth) return make_leaf();

  // Pick a random feature with spread, then a random split point within it.
  const std::size_t d = x.cols();
  const auto feat_order = rng.permutation(d);
  std::size_t feature = d;
  double lo = 0.0, hi = 0.0;
  for (std::size_t f : feat_order) {
    lo = hi = x(rows[0], f);
    for (auto r : rows) {
      lo = std::min(lo, x(r, f));
      hi = std::max(hi, x(r, f));
    }
    if (hi > lo) {
      feature = f;
      break;
    }
  }
  if (feature == d) return make_leaf();  // all duplicate rows

  const double threshold = rng.uniform(lo, hi);
  std::vector<std::size_t> left_rows, right_rows;
  for (auto r : rows) {
    (x(r, feature) < threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  Node node;
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.size = rows.size();
  tree.nodes.push_back(node);
  const auto self = static_cast<std::int32_t>(tree.nodes.size() - 1);
  const auto left = build(tree, x, left_rows, depth + 1, max_depth, rng);
  const auto right = build(tree, x, right_rows, depth + 1, max_depth, rng);
  tree.nodes[static_cast<std::size_t>(self)].left = left;
  tree.nodes[static_cast<std::size_t>(self)].right = right;
  return self;
}

double IForestDetector::Tree::path_length(std::span<const double> row) const {
  double depth = 0.0;
  std::size_t i = 0;
  while (!nodes[i].is_leaf) {
    const auto& n = nodes[i];
    i = static_cast<std::size_t>(row[n.feature] < n.threshold ? n.left
                                                              : n.right);
    depth += 1.0;
  }
  // Unresolved leaves contribute the expected remaining depth c(size).
  return depth + average_path_length(nodes[i].size);
}

void IForestDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "IForest needs at least two points");
  const std::size_t n = x.rows();
  const std::size_t psi = std::min(params_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max<std::size_t>(psi, 2))));

  Rng rng(params_.seed);
  std::vector<Tree> trees(params_.n_trees);
  for (auto& tree : trees) {
    auto rows = rng.sample_without_replacement(n, psi);
    build(tree, x, rows, 0, max_depth, rng);
  }

  const double c = average_path_length(psi);
  scores_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double mean_path = 0.0;
    for (const auto& tree : trees) mean_path += tree.path_length(x.row(i));
    mean_path /= static_cast<double>(trees.size());
    scores_[i] = std::pow(2.0, -mean_path / std::max(c, 1e-12));
  }
}

}  // namespace nurd::outlier
