// Detectors built on classical multivariate statistics:
//   MCD — minimum covariance determinant (Hardin & Rocke 2004): a FastMCD-
//         style search for the h-subset with smallest covariance
//         determinant; scores are robust Mahalanobis distances.
//   PCA — principal-component classifier (Shyu et al. 2003): scores are
//         variance-weighted squared projections onto the principal axes
//         (a Mahalanobis distance decomposed in PC space).
//   CBLOF — cluster-based local outlier factor (He et al. 2003): k-means
//         clusters split into "large" and "small"; small-cluster points are
//         scored by distance to the nearest large cluster's centroid.
#pragma once

#include <cstdint>

#include "common/kmeans.h"
#include "outlier/detector.h"

namespace nurd::outlier {

/// MCD hyperparameters.
struct McdParams {
  double support_fraction = 0.75;  ///< h/n, clamped to [(n+d+1)/2n, 1]
  int n_initial_subsets = 20;      ///< random (d+1)-subsets tried
  int c_steps = 10;                ///< concentration steps per subset
  std::uint64_t seed = 13;
};

/// Robust Mahalanobis distance via minimum covariance determinant.
class McdDetector final : public Detector {
 public:
  explicit McdDetector(McdParams params = {}) : params_(params) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "MCD"; }

 private:
  McdParams params_;
  std::vector<double> scores_;
};

/// Shyu-style PCA outlier detector.
class PcaDetector final : public Detector {
 public:
  /// `variance_kept` selects the leading components explaining at least this
  /// fraction of total variance (1.0 = all non-degenerate components).
  explicit PcaDetector(double variance_kept = 1.0)
      : variance_kept_(variance_kept) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "PCA"; }

 private:
  double variance_kept_;
  std::vector<double> scores_;
};

/// CBLOF hyperparameters (He et al.'s α/β large-cluster rule).
struct CblofParams {
  std::size_t n_clusters = 8;
  double alpha = 0.9;  ///< large clusters jointly hold ≥ α·n points
  double beta = 5.0;   ///< or a size ratio ≥ β between consecutive clusters
  std::uint64_t seed = 17;
};

/// Cluster-based local outlier factor (unweighted variant, PyOD default).
class CblofDetector final : public Detector {
 public:
  explicit CblofDetector(CblofParams params = {}) : params_(params) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "CBLOF"; }

 private:
  CblofParams params_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
