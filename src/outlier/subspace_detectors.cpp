#include "outlier/subspace_detectors.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/knn.h"
#include "common/scaler.h"

namespace nurd::outlier {

void SodDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 3, "SOD needs at least three points");
  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  const std::size_t k = std::min(params_.knn, n - 1);
  const std::size_t l = std::min(params_.ref_set, k);
  KnnIndex index(xs);

  // kNN lists for shared-nearest-neighbour similarity.
  std::vector<std::vector<bool>> in_knn(n, std::vector<bool>(n, false));
  std::vector<std::vector<Neighbor>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    nbrs[i] = index.neighbors_of(i, k);
    for (const auto& nb : nbrs[i]) in_knn[i][nb.index] = true;
  }

  scores_.assign(n, 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    // SNN similarity of p to every other point: |kNN(p) ∩ kNN(q)|.
    std::vector<std::size_t> snn(n, 0);
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p) continue;
      std::size_t shared = 0;
      for (const auto& nb : nbrs[p]) {
        if (in_knn[q][nb.index]) ++shared;
      }
      snn[q] = shared;
    }
    // Reference set: the l points with highest SNN similarity.
    std::vector<std::size_t> cand;
    cand.reserve(n - 1);
    for (std::size_t q = 0; q < n; ++q) {
      if (q != p) cand.push_back(q);
    }
    std::stable_sort(cand.begin(), cand.end(),
                     [&](std::size_t a, std::size_t b) {
                       return snn[a] > snn[b];
                     });
    cand.resize(l);

    // Per-dimension mean and variance of the reference set.
    std::vector<double> mu(d, 0.0), var(d, 0.0);
    for (auto q : cand) {
      auto row = xs.row(q);
      for (std::size_t j = 0; j < d; ++j) mu[j] += row[j];
    }
    for (auto& m : mu) m /= static_cast<double>(cand.size());
    double total_var = 0.0;
    for (auto q : cand) {
      auto row = xs.row(q);
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = row[j] - mu[j];
        var[j] += diff * diff;
      }
    }
    for (auto& v : var) {
      v /= static_cast<double>(cand.size());
      total_var += v;
    }

    // Relevant subspace: dimensions with variance below α·(mean variance).
    const double threshold =
        params_.alpha * total_var / static_cast<double>(d);
    double dist2 = 0.0;
    std::size_t dims = 0;
    auto row_p = xs.row(p);
    for (std::size_t j = 0; j < d; ++j) {
      if (var[j] < threshold) {
        const double diff = row_p[j] - mu[j];
        dist2 += diff * diff;
        ++dims;
      }
    }
    scores_[p] = dims == 0 ? 0.0
                           : std::sqrt(dist2 / static_cast<double>(dims));
  }
}

}  // namespace nurd::outlier
