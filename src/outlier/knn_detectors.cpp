#include "outlier/knn_detectors.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"

namespace nurd::outlier {

namespace {

// All four detectors standardize features: they are distance/angle based and
// the trace features have wildly different native scales.
Matrix standardized(const Matrix& x) {
  StandardScaler scaler;
  return scaler.fit_transform(x);
}

std::size_t clamp_k(std::size_t k, std::size_t n) {
  // Need at least one neighbour and at most n-1.
  return std::max<std::size_t>(1, std::min(k, n > 1 ? n - 1 : 1));
}

}  // namespace

void KnnDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "KNN needs at least two points");
  const Matrix xs = standardized(x);
  const std::size_t k = clamp_k(k_, xs.rows());
  KnnIndex index(xs);
  scores_.assign(xs.rows(), 0.0);
  for (std::size_t i = 0; i < xs.rows(); ++i) {
    const auto nb = index.neighbors_of(i, k);
    scores_[i] = nb.back().distance;  // k-th neighbour distance
  }
}

void LofDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "LOF needs at least two points");
  const Matrix xs = standardized(x);
  const std::size_t n = xs.rows();
  const std::size_t k = clamp_k(k_, n);
  KnnIndex index(xs);

  std::vector<std::vector<Neighbor>> nbrs(n);
  std::vector<double> k_dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    nbrs[i] = index.neighbors_of(i, k);
    k_dist[i] = nbrs[i].back().distance;
  }

  // Local reachability density: inverse mean reachability distance.
  std::vector<double> lrd(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum_reach = 0.0;
    for (const auto& nb : nbrs[i]) {
      sum_reach += std::max(k_dist[nb.index], nb.distance);
    }
    lrd[i] = sum_reach > 0.0
                 ? static_cast<double>(nbrs[i].size()) / sum_reach
                 : std::numeric_limits<double>::infinity();
  }

  scores_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(lrd[i])) {
      scores_[i] = 1.0;  // duplicate-dense point: inlier by construction
      continue;
    }
    double sum_ratio = 0.0;
    for (const auto& nb : nbrs[i]) {
      const double r = std::isfinite(lrd[nb.index])
                           ? lrd[nb.index] / lrd[i]
                           : 1.0;
      sum_ratio += r;
    }
    scores_[i] = sum_ratio / static_cast<double>(nbrs[i].size());
  }
}

void CofDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "COF needs at least two points");
  const Matrix xs = standardized(x);
  const std::size_t n = xs.rows();
  const std::size_t k = clamp_k(k_, n);
  KnnIndex index(xs);

  // Average chaining distance of each point over its set-based nearest path
  // through its k-neighbourhood (Tang et al. 2002, eq. 5): the i-th edge of
  // the SBN path gets weight 2(k+1−i)/(k(k+1)).
  std::vector<double> ac_dist(n, 0.0);
  std::vector<std::vector<Neighbor>> nbrs(n);
  for (std::size_t p = 0; p < n; ++p) {
    nbrs[p] = index.neighbors_of(p, k);
    // Greedy SBN trail: start at p, repeatedly connect the unvisited
    // neighbour closest to ANY visited vertex.
    std::vector<std::size_t> visited{p};
    std::vector<std::size_t> remaining;
    for (const auto& nb : nbrs[p]) remaining.push_back(nb.index);
    double acc = 0.0;
    const auto kk = static_cast<double>(remaining.size());
    std::size_t edge = 1;
    while (!remaining.empty()) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < remaining.size(); ++j) {
        double dmin = std::numeric_limits<double>::max();
        for (std::size_t v : visited) {
          dmin = std::min(dmin,
                          euclidean_distance(xs.row(remaining[j]), xs.row(v)));
        }
        if (dmin < best) {
          best = dmin;
          best_j = j;
        }
      }
      const double weight =
          2.0 * (kk + 1.0 - static_cast<double>(edge)) / (kk * (kk + 1.0));
      acc += weight * best;
      visited.push_back(remaining[best_j]);
      remaining.erase(remaining.begin() +
                      static_cast<std::ptrdiff_t>(best_j));
      ++edge;
    }
    ac_dist[p] = acc;
  }

  scores_.assign(n, 1.0);
  for (std::size_t p = 0; p < n; ++p) {
    double nbr_sum = 0.0;
    for (const auto& nb : nbrs[p]) nbr_sum += ac_dist[nb.index];
    if (nbr_sum <= 0.0) {
      scores_[p] = 1.0;
      continue;
    }
    scores_[p] = ac_dist[p] * static_cast<double>(nbrs[p].size()) / nbr_sum;
  }
}

void AbodDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 3, "ABOD needs at least three points");
  const Matrix xs = standardized(x);
  const std::size_t n = xs.rows();
  const std::size_t k = std::max<std::size_t>(2, clamp_k(k_, n));
  KnnIndex index(xs);
  const std::size_t d = xs.cols();

  scores_.assign(n, 0.0);
  std::vector<double> va(d), vb(d);
  for (std::size_t p = 0; p < n; ++p) {
    const auto nb = index.neighbors_of(p, k);
    auto xp = xs.row(p);
    // Distance-weighted angle statistic over all neighbour pairs.
    double sum = 0.0, sum_sq = 0.0;
    std::size_t count = 0;
    for (std::size_t a = 0; a < nb.size(); ++a) {
      for (std::size_t b = a + 1; b < nb.size(); ++b) {
        auto xa = xs.row(nb[a].index);
        auto xb = xs.row(nb[b].index);
        double na2 = 0.0, nb2 = 0.0, ab = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          va[j] = xa[j] - xp[j];
          vb[j] = xb[j] - xp[j];
          na2 += va[j] * va[j];
          nb2 += vb[j] * vb[j];
          ab += va[j] * vb[j];
        }
        if (na2 <= 1e-24 || nb2 <= 1e-24) continue;
        const double val = ab / (na2 * nb2);  // angle weighted by 1/(|a||b|)²
        sum += val;
        sum_sq += val * val;
        ++count;
      }
    }
    if (count < 2) {
      scores_[p] = 0.0;
      continue;
    }
    const double m = sum / static_cast<double>(count);
    const double var = sum_sq / static_cast<double>(count) - m * m;
    scores_[p] = -var;  // low angle variance ⇒ outlier ⇒ high score
  }
}

}  // namespace nurd::outlier
