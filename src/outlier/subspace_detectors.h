// SOD — subspace outlier detection (Kriegel et al. 2009). Each point's
// outlierness is measured in the axis-parallel subspace its reference set
// (selected by shared-nearest-neighbour similarity) spans with low variance.
#pragma once

#include <vector>

#include "outlier/detector.h"

namespace nurd::outlier {

/// SOD hyperparameters.
struct SodParams {
  std::size_t knn = 20;       ///< neighbours used for SNN similarity
  std::size_t ref_set = 10;   ///< reference set size (≤ knn)
  double alpha = 0.8;         ///< dimension-selection threshold
};

/// Subspace outlier degree detector.
class SodDetector final : public Detector {
 public:
  explicit SodDetector(SodParams params = {}) : params_(params) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "SOD"; }

 private:
  SodParams params_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
