#include "outlier/statistical_detectors.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "common/scaler.h"
#include "common/stats.h"

namespace nurd::outlier {

namespace {

// Mean and covariance of a row subset, with a small ridge so Cholesky
// succeeds on near-degenerate subsets.
struct MeanCov {
  std::vector<double> mean;
  Matrix cov;
};

MeanCov subset_mean_cov(const Matrix& x, std::span<const std::size_t> rows) {
  const Matrix sub = x.select_rows(rows);
  MeanCov mc;
  mc.mean = sub.col_means();
  mc.cov = covariance(sub);
  for (std::size_t i = 0; i < mc.cov.rows(); ++i) mc.cov(i, i) += 1e-8;
  return mc;
}

std::vector<double> all_mahalanobis(const Matrix& x, const MeanCov& mc) {
  auto precision = spd_inverse(mc.cov);
  std::vector<double> d2(x.rows(), 0.0);
  if (!precision) {
    // Degenerate covariance: fall back to Euclidean distance from the mean.
    for (std::size_t i = 0; i < x.rows(); ++i) {
      d2[i] = squared_distance(x.row(i), mc.mean);
    }
    return d2;
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    d2[i] = mahalanobis_squared(x.row(i), mc.mean, *precision);
  }
  return d2;
}

double cov_logdet(const Matrix& cov) {
  auto l = cholesky(cov);
  if (!l) return std::numeric_limits<double>::max();
  return cholesky_logdet(*l);
}

}  // namespace

void McdDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "MCD needs at least two points");
  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  const auto h_min = (n + d + 1) / 2;
  const auto h = std::clamp<std::size_t>(
      static_cast<std::size_t>(params_.support_fraction *
                               static_cast<double>(n)),
      std::min(h_min, n), n);

  Rng rng(params_.seed);
  double best_logdet = std::numeric_limits<double>::max();
  MeanCov best;

  for (int trial = 0; trial < params_.n_initial_subsets; ++trial) {
    // Seed with a random (d+1)-subset, then concentrate.
    auto rows = rng.sample_without_replacement(
        n, std::min<std::size_t>(d + 1, n));
    MeanCov mc = subset_mean_cov(xs, rows);
    for (int step = 0; step < params_.c_steps; ++step) {
      const auto d2 = all_mahalanobis(xs, mc);
      const auto order = argsort(d2);
      rows.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(h));
      mc = subset_mean_cov(xs, rows);
    }
    const double ld = cov_logdet(mc.cov);
    if (ld < best_logdet) {
      best_logdet = ld;
      best = std::move(mc);
    }
  }

  if (best.mean.empty()) {
    // All trials degenerate: fall back to the full-sample estimate.
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    best = subset_mean_cov(xs, all);
  }

  scores_ = all_mahalanobis(xs, best);
  for (auto& s : scores_) s = std::sqrt(std::max(s, 0.0));
}

void PcaDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "PCA needs at least two points");
  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  const Matrix cov = covariance(xs);
  const auto eig = jacobi_eigen(cov);

  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  NURD_CHECK(total > 0.0, "PCA on zero-variance data");

  // Keep the leading components reaching the requested explained variance.
  std::size_t kept = 0;
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    if (eig.values[j] <= 1e-10) break;
    acc += eig.values[j];
    ++kept;
    if (acc / total >= variance_kept_) break;
  }
  kept = std::max<std::size_t>(kept, 1);

  const auto mu = xs.col_means();
  scores_.assign(n, 0.0);
  std::vector<double> centered(d);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = xs.row(i);
    for (std::size_t j = 0; j < d; ++j) centered[j] = row[j] - mu[j];
    double s = 0.0;
    for (std::size_t c = 0; c < kept; ++c) {
      const double proj = dot(centered, eig.vectors.row(c));
      s += proj * proj / eig.values[c];
    }
    scores_[i] = s;
  }
}

void CblofDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 2, "CBLOF needs at least two points");
  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  const std::size_t n = xs.rows();

  Rng rng(params_.seed);
  KMeansParams kp;
  kp.k = params_.n_clusters;
  const auto km = kmeans(xs, kp, rng);
  const std::size_t k = km.centroids.rows();

  // Order clusters by size (descending) and find the large/small boundary.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return km.sizes[a] > km.sizes[b];
  });

  std::size_t boundary = k;  // first index in `order` that is a small cluster
  std::size_t cum = 0;
  for (std::size_t r = 0; r < k; ++r) {
    cum += km.sizes[order[r]];
    const bool alpha_met =
        static_cast<double>(cum) >= params_.alpha * static_cast<double>(n);
    const bool beta_met =
        r + 1 < k && km.sizes[order[r + 1]] > 0 &&
        static_cast<double>(km.sizes[order[r]]) /
                static_cast<double>(km.sizes[order[r + 1]]) >=
            params_.beta;
    if (alpha_met || beta_met) {
      boundary = r + 1;
      break;
    }
  }
  std::vector<bool> is_large(k, false);
  for (std::size_t r = 0; r < std::min(boundary, k); ++r) {
    is_large[order[r]] = true;
  }
  // Guarantee at least one large cluster.
  if (boundary == 0) is_large[order[0]] = true;

  scores_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = km.labels[i];
    if (is_large[c]) {
      scores_[i] = euclidean_distance(xs.row(i), km.centroids.row(c));
    } else {
      double best = std::numeric_limits<double>::max();
      for (std::size_t j = 0; j < k; ++j) {
        if (!is_large[j]) continue;
        best = std::min(best,
                        euclidean_distance(xs.row(i), km.centroids.row(j)));
      }
      scores_[i] = best;
    }
  }
}

}  // namespace nurd::outlier
