// Ensemble detectors:
//   LSCP  — locally selective combination in parallel outlier ensembles
//           (Zhao et al. 2019a): per test point, pick the base detector whose
//           scores correlate best with the ensemble consensus in the point's
//           local region.
//   XGBOD — extreme boosting outlier detection (Zhao & Hryniewicki 2018):
//           transformed outlier scores (TOS) from unsupervised detectors are
//           appended to the raw features and a boosted classifier is trained
//           on labels. In the online straggler setting there are no true
//           labels, so callers supply finished(0)/running(1) pseudo-labels
//           (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/gbt.h"
#include "outlier/detector.h"

namespace nurd::outlier {

/// LSCP hyperparameters.
struct LscpParams {
  std::vector<std::size_t> lof_ks = {10, 15, 20, 25};  ///< base LOF pool
  std::vector<std::size_t> knn_ks = {5, 10};           ///< base KNN pool
  std::size_t local_region = 30;  ///< neighbours defining the local region
};

/// Locally selective combination ensemble (average-of-maximum variant over a
/// LOF + KNN pool).
class LscpDetector final : public Detector {
 public:
  explicit LscpDetector(LscpParams params = {}) : params_(std::move(params)) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "LSCP"; }

 private:
  LscpParams params_;
  std::vector<double> scores_;
};

/// XGBOD hyperparameters.
struct XgbodParams {
  ml::GbtParams gbt;       ///< boosted classifier settings
  std::size_t knn_k = 10;  ///< TOS generators use this neighbourhood size
};

/// XGBOD: TOS features + boosted logistic classifier. Unlike the
/// unsupervised detectors this one is semi-supervised — fit takes labels.
class XgbodDetector final {
 public:
  explicit XgbodDetector(XgbodParams params = {});

  /// Fits on features `x` with labels `y` in {0,1} (1 = outlier class).
  void fit(const Matrix& x, std::span<const double> y);

  /// P(outlier) per fitted row.
  const std::vector<double>& scores() const { return scores_; }

  std::string name() const { return "XGBOD"; }

 private:
  XgbodParams params_;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
