#include "outlier/density_detectors.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/histogram.h"
#include "common/knn.h"
#include "common/scaler.h"

namespace nurd::outlier {

void HbosDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 1, "HBOS needs data");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  scores_.assign(n, 0.0);
  for (std::size_t f = 0; f < d; ++f) {
    const auto col = x.col_view(f);
    const Histogram hist(x, f, bins_);
    for (std::size_t i = 0; i < n; ++i) {
      scores_[i] += -std::log(hist.density(col[i]));
    }
  }
}

void SosDetector::fit(const Matrix& x) {
  NURD_CHECK(x.rows() >= 3, "SOS needs at least three points");
  StandardScaler scaler;
  const Matrix xs = scaler.fit_transform(x);
  const std::size_t n = xs.rows();
  const Matrix dist = pairwise_distances(xs);

  // Per-point bandwidth beta_i (=1/2σ²) via binary search so that the
  // affinity distribution has the requested perplexity.
  const double target_entropy = std::log2(std::min(
      perplexity_, static_cast<double>(n - 1)));
  Matrix binding(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
    std::vector<double> aff(n, 0.0);
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        aff[j] = std::exp(-dist(i, j) * dist(i, j) * beta);
        sum += aff[j];
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
        continue;
      }
      double entropy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double p = aff[j] / sum;
        if (p > 1e-12) entropy -= p * std::log2(p);
      }
      if (std::abs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi >= 1e12 ? beta * 2.0 : 0.5 * (beta_lo + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      aff[j] = std::exp(-dist(i, j) * dist(i, j) * beta);
      sum += aff[j];
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || sum <= 0.0) continue;
      binding(i, j) = aff[j] / sum;
    }
  }

  // Outlier probability: product over all other points of (1 − b_ji).
  scores_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double log_p = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      log_p += std::log(std::clamp(1.0 - binding(j, i), 1e-12, 1.0));
    }
    scores_[i] = std::exp(log_p);
  }
}

}  // namespace nurd::outlier
