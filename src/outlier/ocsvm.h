// One-class SVM (Schölkopf et al. 2001) trained by SGD on the primal
// ν-formulation, with an optional random-Fourier-feature map approximating
// an RBF kernel (Rahimi & Recht 2007). The RFF map gives the detector the
// nonlinear support boundary of a kernel OCSVM at linear-model cost.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/scaler.h"
#include "outlier/detector.h"

namespace nurd::outlier {

/// OCSVM hyperparameters.
struct OcsvmParams {
  double nu = 0.1;            ///< asymptotic outlier fraction bound
  int epochs = 40;            ///< SGD passes
  std::size_t rff_dim = 100;  ///< random Fourier features; 0 = linear kernel
  double gamma = 0.0;         ///< RBF bandwidth; 0 = median heuristic
  std::uint64_t seed = 23;
};

/// SGD one-class SVM: minimizes ½‖w‖² + (1/νn)·Σ max(0, ρ − ⟨w, φ(x)⟩) − ρ.
/// Score = ρ − ⟨w, φ(x)⟩ (positive ⇒ outside the learned support).
class OcsvmDetector final : public Detector {
 public:
  explicit OcsvmDetector(OcsvmParams params = {}) : params_(params) {}
  void fit(const Matrix& x) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "OCSVM"; }

 private:
  std::vector<double> feature_map(std::span<const double> row) const;

  OcsvmParams params_;
  StandardScaler scaler_;
  Matrix omega_;               // RFF projection directions (rff_dim × d)
  std::vector<double> phase_;  // RFF phases
  double gamma_eff_ = 1.0;
  std::vector<double> w_;
  double rho_ = 0.0;
  std::vector<double> scores_;
};

}  // namespace nurd::outlier
